
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbn/axis.cc" "src/pbn/CMakeFiles/vpbn_pbn.dir/axis.cc.o" "gcc" "src/pbn/CMakeFiles/vpbn_pbn.dir/axis.cc.o.d"
  "/root/repo/src/pbn/codec.cc" "src/pbn/CMakeFiles/vpbn_pbn.dir/codec.cc.o" "gcc" "src/pbn/CMakeFiles/vpbn_pbn.dir/codec.cc.o.d"
  "/root/repo/src/pbn/dynamic.cc" "src/pbn/CMakeFiles/vpbn_pbn.dir/dynamic.cc.o" "gcc" "src/pbn/CMakeFiles/vpbn_pbn.dir/dynamic.cc.o.d"
  "/root/repo/src/pbn/numbering.cc" "src/pbn/CMakeFiles/vpbn_pbn.dir/numbering.cc.o" "gcc" "src/pbn/CMakeFiles/vpbn_pbn.dir/numbering.cc.o.d"
  "/root/repo/src/pbn/pbn.cc" "src/pbn/CMakeFiles/vpbn_pbn.dir/pbn.cc.o" "gcc" "src/pbn/CMakeFiles/vpbn_pbn.dir/pbn.cc.o.d"
  "/root/repo/src/pbn/structural_join.cc" "src/pbn/CMakeFiles/vpbn_pbn.dir/structural_join.cc.o" "gcc" "src/pbn/CMakeFiles/vpbn_pbn.dir/structural_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vpbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vpbn_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
