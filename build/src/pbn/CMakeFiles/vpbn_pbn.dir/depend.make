# Empty dependencies file for vpbn_pbn.
# This may be replaced when dependencies are built.
