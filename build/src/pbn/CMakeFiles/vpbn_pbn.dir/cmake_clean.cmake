file(REMOVE_RECURSE
  "CMakeFiles/vpbn_pbn.dir/axis.cc.o"
  "CMakeFiles/vpbn_pbn.dir/axis.cc.o.d"
  "CMakeFiles/vpbn_pbn.dir/codec.cc.o"
  "CMakeFiles/vpbn_pbn.dir/codec.cc.o.d"
  "CMakeFiles/vpbn_pbn.dir/dynamic.cc.o"
  "CMakeFiles/vpbn_pbn.dir/dynamic.cc.o.d"
  "CMakeFiles/vpbn_pbn.dir/numbering.cc.o"
  "CMakeFiles/vpbn_pbn.dir/numbering.cc.o.d"
  "CMakeFiles/vpbn_pbn.dir/pbn.cc.o"
  "CMakeFiles/vpbn_pbn.dir/pbn.cc.o.d"
  "CMakeFiles/vpbn_pbn.dir/structural_join.cc.o"
  "CMakeFiles/vpbn_pbn.dir/structural_join.cc.o.d"
  "libvpbn_pbn.a"
  "libvpbn_pbn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_pbn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
