file(REMOVE_RECURSE
  "libvpbn_pbn.a"
)
