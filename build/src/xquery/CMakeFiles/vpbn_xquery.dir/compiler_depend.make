# Empty compiler generated dependencies file for vpbn_xquery.
# This may be replaced when dependencies are built.
