
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/xq_engine.cc" "src/xquery/CMakeFiles/vpbn_xquery.dir/xq_engine.cc.o" "gcc" "src/xquery/CMakeFiles/vpbn_xquery.dir/xq_engine.cc.o.d"
  "/root/repo/src/xquery/xq_parser.cc" "src/xquery/CMakeFiles/vpbn_xquery.dir/xq_parser.cc.o" "gcc" "src/xquery/CMakeFiles/vpbn_xquery.dir/xq_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vpbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vpbn_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pbn/CMakeFiles/vpbn_pbn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataguide/CMakeFiles/vpbn_dataguide.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vpbn_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vpbn/CMakeFiles/vpbn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/vpbn_query.dir/DependInfo.cmake"
  "/root/repo/build/src/vdg/CMakeFiles/vpbn_vdg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
