file(REMOVE_RECURSE
  "libvpbn_xquery.a"
)
