file(REMOVE_RECURSE
  "CMakeFiles/vpbn_xquery.dir/xq_engine.cc.o"
  "CMakeFiles/vpbn_xquery.dir/xq_engine.cc.o.d"
  "CMakeFiles/vpbn_xquery.dir/xq_parser.cc.o"
  "CMakeFiles/vpbn_xquery.dir/xq_parser.cc.o.d"
  "libvpbn_xquery.a"
  "libvpbn_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
