# Empty dependencies file for vpbn_storage.
# This may be replaced when dependencies are built.
