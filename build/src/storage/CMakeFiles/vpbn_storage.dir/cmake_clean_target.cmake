file(REMOVE_RECURSE
  "libvpbn_storage.a"
)
