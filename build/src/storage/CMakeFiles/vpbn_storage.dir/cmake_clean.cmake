file(REMOVE_RECURSE
  "CMakeFiles/vpbn_storage.dir/stored_document.cc.o"
  "CMakeFiles/vpbn_storage.dir/stored_document.cc.o.d"
  "libvpbn_storage.a"
  "libvpbn_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
