# Empty dependencies file for vpbn_query.
# This may be replaced when dependencies are built.
