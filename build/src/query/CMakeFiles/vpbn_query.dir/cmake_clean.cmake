file(REMOVE_RECURSE
  "CMakeFiles/vpbn_query.dir/eval_bulk.cc.o"
  "CMakeFiles/vpbn_query.dir/eval_bulk.cc.o.d"
  "CMakeFiles/vpbn_query.dir/eval_indexed.cc.o"
  "CMakeFiles/vpbn_query.dir/eval_indexed.cc.o.d"
  "CMakeFiles/vpbn_query.dir/eval_nav.cc.o"
  "CMakeFiles/vpbn_query.dir/eval_nav.cc.o.d"
  "CMakeFiles/vpbn_query.dir/eval_virtual.cc.o"
  "CMakeFiles/vpbn_query.dir/eval_virtual.cc.o.d"
  "CMakeFiles/vpbn_query.dir/path_parser.cc.o"
  "CMakeFiles/vpbn_query.dir/path_parser.cc.o.d"
  "libvpbn_query.a"
  "libvpbn_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
