file(REMOVE_RECURSE
  "libvpbn_query.a"
)
