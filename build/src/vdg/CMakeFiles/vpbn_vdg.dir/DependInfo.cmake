
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vdg/report.cc" "src/vdg/CMakeFiles/vpbn_vdg.dir/report.cc.o" "gcc" "src/vdg/CMakeFiles/vpbn_vdg.dir/report.cc.o.d"
  "/root/repo/src/vdg/spec_parser.cc" "src/vdg/CMakeFiles/vpbn_vdg.dir/spec_parser.cc.o" "gcc" "src/vdg/CMakeFiles/vpbn_vdg.dir/spec_parser.cc.o.d"
  "/root/repo/src/vdg/vdataguide.cc" "src/vdg/CMakeFiles/vpbn_vdg.dir/vdataguide.cc.o" "gcc" "src/vdg/CMakeFiles/vpbn_vdg.dir/vdataguide.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vpbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataguide/CMakeFiles/vpbn_dataguide.dir/DependInfo.cmake"
  "/root/repo/build/src/pbn/CMakeFiles/vpbn_pbn.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vpbn_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
