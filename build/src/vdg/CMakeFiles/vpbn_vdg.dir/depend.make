# Empty dependencies file for vpbn_vdg.
# This may be replaced when dependencies are built.
