file(REMOVE_RECURSE
  "libvpbn_vdg.a"
)
