file(REMOVE_RECURSE
  "CMakeFiles/vpbn_vdg.dir/report.cc.o"
  "CMakeFiles/vpbn_vdg.dir/report.cc.o.d"
  "CMakeFiles/vpbn_vdg.dir/spec_parser.cc.o"
  "CMakeFiles/vpbn_vdg.dir/spec_parser.cc.o.d"
  "CMakeFiles/vpbn_vdg.dir/vdataguide.cc.o"
  "CMakeFiles/vpbn_vdg.dir/vdataguide.cc.o.d"
  "libvpbn_vdg.a"
  "libvpbn_vdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_vdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
