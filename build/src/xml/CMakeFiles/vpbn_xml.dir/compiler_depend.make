# Empty compiler generated dependencies file for vpbn_xml.
# This may be replaced when dependencies are built.
