file(REMOVE_RECURSE
  "CMakeFiles/vpbn_xml.dir/binary_io.cc.o"
  "CMakeFiles/vpbn_xml.dir/binary_io.cc.o.d"
  "CMakeFiles/vpbn_xml.dir/document.cc.o"
  "CMakeFiles/vpbn_xml.dir/document.cc.o.d"
  "CMakeFiles/vpbn_xml.dir/parser.cc.o"
  "CMakeFiles/vpbn_xml.dir/parser.cc.o.d"
  "CMakeFiles/vpbn_xml.dir/serializer.cc.o"
  "CMakeFiles/vpbn_xml.dir/serializer.cc.o.d"
  "libvpbn_xml.a"
  "libvpbn_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
