file(REMOVE_RECURSE
  "libvpbn_xml.a"
)
