file(REMOVE_RECURSE
  "libvpbn_workload.a"
)
