# Empty dependencies file for vpbn_workload.
# This may be replaced when dependencies are built.
