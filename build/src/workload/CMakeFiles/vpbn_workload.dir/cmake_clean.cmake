file(REMOVE_RECURSE
  "CMakeFiles/vpbn_workload.dir/auctions.cc.o"
  "CMakeFiles/vpbn_workload.dir/auctions.cc.o.d"
  "CMakeFiles/vpbn_workload.dir/bibliography.cc.o"
  "CMakeFiles/vpbn_workload.dir/bibliography.cc.o.d"
  "CMakeFiles/vpbn_workload.dir/books.cc.o"
  "CMakeFiles/vpbn_workload.dir/books.cc.o.d"
  "CMakeFiles/vpbn_workload.dir/random_trees.cc.o"
  "CMakeFiles/vpbn_workload.dir/random_trees.cc.o.d"
  "CMakeFiles/vpbn_workload.dir/treebank.cc.o"
  "CMakeFiles/vpbn_workload.dir/treebank.cc.o.d"
  "libvpbn_workload.a"
  "libvpbn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
