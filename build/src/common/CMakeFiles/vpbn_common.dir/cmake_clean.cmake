file(REMOVE_RECURSE
  "CMakeFiles/vpbn_common.dir/random.cc.o"
  "CMakeFiles/vpbn_common.dir/random.cc.o.d"
  "CMakeFiles/vpbn_common.dir/status.cc.o"
  "CMakeFiles/vpbn_common.dir/status.cc.o.d"
  "CMakeFiles/vpbn_common.dir/str_util.cc.o"
  "CMakeFiles/vpbn_common.dir/str_util.cc.o.d"
  "CMakeFiles/vpbn_common.dir/varint.cc.o"
  "CMakeFiles/vpbn_common.dir/varint.cc.o.d"
  "libvpbn_common.a"
  "libvpbn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
