file(REMOVE_RECURSE
  "libvpbn_common.a"
)
