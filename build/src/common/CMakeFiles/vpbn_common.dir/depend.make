# Empty dependencies file for vpbn_common.
# This may be replaced when dependencies are built.
