file(REMOVE_RECURSE
  "CMakeFiles/vpbn_core.dir/level_array.cc.o"
  "CMakeFiles/vpbn_core.dir/level_array.cc.o.d"
  "CMakeFiles/vpbn_core.dir/level_array_builder.cc.o"
  "CMakeFiles/vpbn_core.dir/level_array_builder.cc.o.d"
  "CMakeFiles/vpbn_core.dir/materializer.cc.o"
  "CMakeFiles/vpbn_core.dir/materializer.cc.o.d"
  "CMakeFiles/vpbn_core.dir/virtual_document.cc.o"
  "CMakeFiles/vpbn_core.dir/virtual_document.cc.o.d"
  "CMakeFiles/vpbn_core.dir/virtual_value.cc.o"
  "CMakeFiles/vpbn_core.dir/virtual_value.cc.o.d"
  "CMakeFiles/vpbn_core.dir/vpbn.cc.o"
  "CMakeFiles/vpbn_core.dir/vpbn.cc.o.d"
  "CMakeFiles/vpbn_core.dir/vpbn_codec.cc.o"
  "CMakeFiles/vpbn_core.dir/vpbn_codec.cc.o.d"
  "libvpbn_core.a"
  "libvpbn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
