# Empty compiler generated dependencies file for vpbn_core.
# This may be replaced when dependencies are built.
