file(REMOVE_RECURSE
  "libvpbn_core.a"
)
