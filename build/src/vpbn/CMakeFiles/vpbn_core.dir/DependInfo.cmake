
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpbn/level_array.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/level_array.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/level_array.cc.o.d"
  "/root/repo/src/vpbn/level_array_builder.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/level_array_builder.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/level_array_builder.cc.o.d"
  "/root/repo/src/vpbn/materializer.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/materializer.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/materializer.cc.o.d"
  "/root/repo/src/vpbn/virtual_document.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/virtual_document.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/virtual_document.cc.o.d"
  "/root/repo/src/vpbn/virtual_value.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/virtual_value.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/virtual_value.cc.o.d"
  "/root/repo/src/vpbn/vpbn.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/vpbn.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/vpbn.cc.o.d"
  "/root/repo/src/vpbn/vpbn_codec.cc" "src/vpbn/CMakeFiles/vpbn_core.dir/vpbn_codec.cc.o" "gcc" "src/vpbn/CMakeFiles/vpbn_core.dir/vpbn_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vpbn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vpbn_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pbn/CMakeFiles/vpbn_pbn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataguide/CMakeFiles/vpbn_dataguide.dir/DependInfo.cmake"
  "/root/repo/build/src/vdg/CMakeFiles/vpbn_vdg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vpbn_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
