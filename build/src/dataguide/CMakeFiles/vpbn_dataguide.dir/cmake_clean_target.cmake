file(REMOVE_RECURSE
  "libvpbn_dataguide.a"
)
