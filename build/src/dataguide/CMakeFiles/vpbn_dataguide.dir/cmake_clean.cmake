file(REMOVE_RECURSE
  "CMakeFiles/vpbn_dataguide.dir/dataguide.cc.o"
  "CMakeFiles/vpbn_dataguide.dir/dataguide.cc.o.d"
  "libvpbn_dataguide.a"
  "libvpbn_dataguide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_dataguide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
