# Empty compiler generated dependencies file for vpbn_dataguide.
# This may be replaced when dependencies are built.
