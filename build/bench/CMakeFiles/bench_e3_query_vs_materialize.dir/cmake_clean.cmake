file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_query_vs_materialize.dir/bench_e3_query_vs_materialize.cc.o"
  "CMakeFiles/bench_e3_query_vs_materialize.dir/bench_e3_query_vs_materialize.cc.o.d"
  "bench_e3_query_vs_materialize"
  "bench_e3_query_vs_materialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_query_vs_materialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
