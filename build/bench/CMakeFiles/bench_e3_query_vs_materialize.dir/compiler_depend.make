# Empty compiler generated dependencies file for bench_e3_query_vs_materialize.
# This may be replaced when dependencies are built.
