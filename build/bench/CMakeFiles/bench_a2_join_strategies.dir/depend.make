# Empty dependencies file for bench_a2_join_strategies.
# This may be replaced when dependencies are built.
