file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_join_strategies.dir/bench_a2_join_strategies.cc.o"
  "CMakeFiles/bench_a2_join_strategies.dir/bench_a2_join_strategies.cc.o.d"
  "bench_a2_join_strategies"
  "bench_a2_join_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_join_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
