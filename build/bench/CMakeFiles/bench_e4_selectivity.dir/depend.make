# Empty dependencies file for bench_e4_selectivity.
# This may be replaced when dependencies are built.
