# Empty compiler generated dependencies file for bench_e1_levelarray_build.
# This may be replaced when dependencies are built.
