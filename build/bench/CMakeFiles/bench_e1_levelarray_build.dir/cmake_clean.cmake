file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_levelarray_build.dir/bench_e1_levelarray_build.cc.o"
  "CMakeFiles/bench_e1_levelarray_build.dir/bench_e1_levelarray_build.cc.o.d"
  "bench_e1_levelarray_build"
  "bench_e1_levelarray_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_levelarray_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
