# Empty compiler generated dependencies file for bench_e2_axis_throughput.
# This may be replaced when dependencies are built.
