# Empty dependencies file for bench_e8_xquery_pipeline.
# This may be replaced when dependencies are built.
