file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_xquery_pipeline.dir/bench_e8_xquery_pipeline.cc.o"
  "CMakeFiles/bench_e8_xquery_pipeline.dir/bench_e8_xquery_pipeline.cc.o.d"
  "bench_e8_xquery_pipeline"
  "bench_e8_xquery_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_xquery_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
