# Empty compiler generated dependencies file for bench_e6_virtual_value.
# This may be replaced when dependencies are built.
