file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_virtual_value.dir/bench_e6_virtual_value.cc.o"
  "CMakeFiles/bench_e6_virtual_value.dir/bench_e6_virtual_value.cc.o.d"
  "bench_e6_virtual_value"
  "bench_e6_virtual_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_virtual_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
