file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_case_mix.dir/bench_e7_case_mix.cc.o"
  "CMakeFiles/bench_e7_case_mix.dir/bench_e7_case_mix.cc.o.d"
  "bench_e7_case_mix"
  "bench_e7_case_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_case_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
