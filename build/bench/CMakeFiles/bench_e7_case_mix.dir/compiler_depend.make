# Empty compiler generated dependencies file for bench_e7_case_mix.
# This may be replaced when dependencies are built.
