file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_space.dir/bench_e5_space.cc.o"
  "CMakeFiles/bench_e5_space.dir/bench_e5_space.cc.o.d"
  "bench_e5_space"
  "bench_e5_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
