# Empty dependencies file for bench_e0_substrate.
# This may be replaced when dependencies are built.
