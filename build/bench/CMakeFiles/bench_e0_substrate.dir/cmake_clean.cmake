file(REMOVE_RECURSE
  "CMakeFiles/bench_e0_substrate.dir/bench_e0_substrate.cc.o"
  "CMakeFiles/bench_e0_substrate.dir/bench_e0_substrate.cc.o.d"
  "bench_e0_substrate"
  "bench_e0_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e0_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
