# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_virtual_view "/root/repo/build/examples/virtual_view")
set_tests_properties(example_virtual_view PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auction_watch "/root/repo/build/examples/auction_watch" "20")
set_tests_properties(example_auction_watch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bibliography "/root/repo/build/examples/bibliography" "60")
set_tests_properties(example_bibliography PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_feed "/root/repo/build/examples/live_feed" "300")
set_tests_properties(example_live_feed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
