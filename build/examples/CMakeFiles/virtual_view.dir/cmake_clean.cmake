file(REMOVE_RECURSE
  "CMakeFiles/virtual_view.dir/virtual_view.cpp.o"
  "CMakeFiles/virtual_view.dir/virtual_view.cpp.o.d"
  "virtual_view"
  "virtual_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
