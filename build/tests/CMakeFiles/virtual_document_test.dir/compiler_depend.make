# Empty compiler generated dependencies file for virtual_document_test.
# This may be replaced when dependencies are built.
