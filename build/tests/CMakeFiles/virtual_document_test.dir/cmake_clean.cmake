file(REMOVE_RECURSE
  "CMakeFiles/virtual_document_test.dir/virtual_document_test.cc.o"
  "CMakeFiles/virtual_document_test.dir/virtual_document_test.cc.o.d"
  "virtual_document_test"
  "virtual_document_test.pdb"
  "virtual_document_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
