# Empty compiler generated dependencies file for auction_integration_test.
# This may be replaced when dependencies are built.
