file(REMOVE_RECURSE
  "CMakeFiles/auction_integration_test.dir/auction_integration_test.cc.o"
  "CMakeFiles/auction_integration_test.dir/auction_integration_test.cc.o.d"
  "auction_integration_test"
  "auction_integration_test.pdb"
  "auction_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
