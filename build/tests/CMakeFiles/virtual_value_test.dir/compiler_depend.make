# Empty compiler generated dependencies file for virtual_value_test.
# This may be replaced when dependencies are built.
