file(REMOVE_RECURSE
  "CMakeFiles/virtual_value_test.dir/virtual_value_test.cc.o"
  "CMakeFiles/virtual_value_test.dir/virtual_value_test.cc.o.d"
  "virtual_value_test"
  "virtual_value_test.pdb"
  "virtual_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
