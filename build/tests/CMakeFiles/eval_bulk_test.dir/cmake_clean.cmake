file(REMOVE_RECURSE
  "CMakeFiles/eval_bulk_test.dir/eval_bulk_test.cc.o"
  "CMakeFiles/eval_bulk_test.dir/eval_bulk_test.cc.o.d"
  "eval_bulk_test"
  "eval_bulk_test.pdb"
  "eval_bulk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_bulk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
