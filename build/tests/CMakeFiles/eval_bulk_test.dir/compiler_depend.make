# Empty compiler generated dependencies file for eval_bulk_test.
# This may be replaced when dependencies are built.
