file(REMOVE_RECURSE
  "CMakeFiles/pbn_test.dir/pbn_test.cc.o"
  "CMakeFiles/pbn_test.dir/pbn_test.cc.o.d"
  "pbn_test"
  "pbn_test.pdb"
  "pbn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
