# Empty compiler generated dependencies file for pbn_test.
# This may be replaced when dependencies are built.
