
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pbn_test.cc" "tests/CMakeFiles/pbn_test.dir/pbn_test.cc.o" "gcc" "tests/CMakeFiles/pbn_test.dir/pbn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbn/CMakeFiles/vpbn_pbn.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/vpbn_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpbn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
