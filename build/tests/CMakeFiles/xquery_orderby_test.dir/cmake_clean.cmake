file(REMOVE_RECURSE
  "CMakeFiles/xquery_orderby_test.dir/xquery_orderby_test.cc.o"
  "CMakeFiles/xquery_orderby_test.dir/xquery_orderby_test.cc.o.d"
  "xquery_orderby_test"
  "xquery_orderby_test.pdb"
  "xquery_orderby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_orderby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
