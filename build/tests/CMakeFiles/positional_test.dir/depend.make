# Empty dependencies file for positional_test.
# This may be replaced when dependencies are built.
