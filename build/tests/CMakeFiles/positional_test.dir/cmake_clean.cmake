file(REMOVE_RECURSE
  "CMakeFiles/positional_test.dir/positional_test.cc.o"
  "CMakeFiles/positional_test.dir/positional_test.cc.o.d"
  "positional_test"
  "positional_test.pdb"
  "positional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/positional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
