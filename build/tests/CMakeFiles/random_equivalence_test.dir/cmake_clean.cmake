file(REMOVE_RECURSE
  "CMakeFiles/random_equivalence_test.dir/random_equivalence_test.cc.o"
  "CMakeFiles/random_equivalence_test.dir/random_equivalence_test.cc.o.d"
  "random_equivalence_test"
  "random_equivalence_test.pdb"
  "random_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
