# Empty compiler generated dependencies file for vdataguide_test.
# This may be replaced when dependencies are built.
