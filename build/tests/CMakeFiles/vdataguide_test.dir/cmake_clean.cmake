file(REMOVE_RECURSE
  "CMakeFiles/vdataguide_test.dir/vdataguide_test.cc.o"
  "CMakeFiles/vdataguide_test.dir/vdataguide_test.cc.o.d"
  "vdataguide_test"
  "vdataguide_test.pdb"
  "vdataguide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdataguide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
