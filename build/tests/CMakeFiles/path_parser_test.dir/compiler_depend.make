# Empty compiler generated dependencies file for path_parser_test.
# This may be replaced when dependencies are built.
