file(REMOVE_RECURSE
  "CMakeFiles/path_parser_test.dir/path_parser_test.cc.o"
  "CMakeFiles/path_parser_test.dir/path_parser_test.cc.o.d"
  "path_parser_test"
  "path_parser_test.pdb"
  "path_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
