# Empty dependencies file for materializer_test.
# This may be replaced when dependencies are built.
