file(REMOVE_RECURSE
  "CMakeFiles/materializer_test.dir/materializer_test.cc.o"
  "CMakeFiles/materializer_test.dir/materializer_test.cc.o.d"
  "materializer_test"
  "materializer_test.pdb"
  "materializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
