file(REMOVE_RECURSE
  "CMakeFiles/vpbn_space_test.dir/vpbn_space_test.cc.o"
  "CMakeFiles/vpbn_space_test.dir/vpbn_space_test.cc.o.d"
  "vpbn_space_test"
  "vpbn_space_test.pdb"
  "vpbn_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
