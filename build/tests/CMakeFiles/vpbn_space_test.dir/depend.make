# Empty dependencies file for vpbn_space_test.
# This may be replaced when dependencies are built.
