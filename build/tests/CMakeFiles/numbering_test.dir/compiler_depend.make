# Empty compiler generated dependencies file for numbering_test.
# This may be replaced when dependencies are built.
