file(REMOVE_RECURSE
  "CMakeFiles/numbering_test.dir/numbering_test.cc.o"
  "CMakeFiles/numbering_test.dir/numbering_test.cc.o.d"
  "numbering_test"
  "numbering_test.pdb"
  "numbering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numbering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
