file(REMOVE_RECURSE
  "CMakeFiles/path_functions_test.dir/path_functions_test.cc.o"
  "CMakeFiles/path_functions_test.dir/path_functions_test.cc.o.d"
  "path_functions_test"
  "path_functions_test.pdb"
  "path_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
