# Empty dependencies file for path_functions_test.
# This may be replaced when dependencies are built.
