# Empty dependencies file for vpbn_codec_test.
# This may be replaced when dependencies are built.
