file(REMOVE_RECURSE
  "CMakeFiles/vpbn_codec_test.dir/vpbn_codec_test.cc.o"
  "CMakeFiles/vpbn_codec_test.dir/vpbn_codec_test.cc.o.d"
  "vpbn_codec_test"
  "vpbn_codec_test.pdb"
  "vpbn_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbn_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
