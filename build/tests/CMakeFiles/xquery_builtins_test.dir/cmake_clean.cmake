file(REMOVE_RECURSE
  "CMakeFiles/xquery_builtins_test.dir/xquery_builtins_test.cc.o"
  "CMakeFiles/xquery_builtins_test.dir/xquery_builtins_test.cc.o.d"
  "xquery_builtins_test"
  "xquery_builtins_test.pdb"
  "xquery_builtins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
