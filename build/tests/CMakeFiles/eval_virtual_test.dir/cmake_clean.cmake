file(REMOVE_RECURSE
  "CMakeFiles/eval_virtual_test.dir/eval_virtual_test.cc.o"
  "CMakeFiles/eval_virtual_test.dir/eval_virtual_test.cc.o.d"
  "eval_virtual_test"
  "eval_virtual_test.pdb"
  "eval_virtual_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_virtual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
