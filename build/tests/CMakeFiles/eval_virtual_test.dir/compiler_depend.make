# Empty compiler generated dependencies file for eval_virtual_test.
# This may be replaced when dependencies are built.
