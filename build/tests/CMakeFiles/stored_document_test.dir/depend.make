# Empty dependencies file for stored_document_test.
# This may be replaced when dependencies are built.
