file(REMOVE_RECURSE
  "CMakeFiles/stored_document_test.dir/stored_document_test.cc.o"
  "CMakeFiles/stored_document_test.dir/stored_document_test.cc.o.d"
  "stored_document_test"
  "stored_document_test.pdb"
  "stored_document_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stored_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
