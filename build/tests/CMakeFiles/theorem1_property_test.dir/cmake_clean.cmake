file(REMOVE_RECURSE
  "CMakeFiles/theorem1_property_test.dir/theorem1_property_test.cc.o"
  "CMakeFiles/theorem1_property_test.dir/theorem1_property_test.cc.o.d"
  "theorem1_property_test"
  "theorem1_property_test.pdb"
  "theorem1_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
