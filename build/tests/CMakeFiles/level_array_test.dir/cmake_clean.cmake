file(REMOVE_RECURSE
  "CMakeFiles/level_array_test.dir/level_array_test.cc.o"
  "CMakeFiles/level_array_test.dir/level_array_test.cc.o.d"
  "level_array_test"
  "level_array_test.pdb"
  "level_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
