# Empty compiler generated dependencies file for level_array_test.
# This may be replaced when dependencies are built.
