file(REMOVE_RECURSE
  "CMakeFiles/dynamic_numbering_test.dir/dynamic_numbering_test.cc.o"
  "CMakeFiles/dynamic_numbering_test.dir/dynamic_numbering_test.cc.o.d"
  "dynamic_numbering_test"
  "dynamic_numbering_test.pdb"
  "dynamic_numbering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_numbering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
