# Empty dependencies file for evaluator_util_test.
# This may be replaced when dependencies are built.
