file(REMOVE_RECURSE
  "CMakeFiles/evaluator_util_test.dir/evaluator_util_test.cc.o"
  "CMakeFiles/evaluator_util_test.dir/evaluator_util_test.cc.o.d"
  "evaluator_util_test"
  "evaluator_util_test.pdb"
  "evaluator_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
