# Empty compiler generated dependencies file for axis_test.
# This may be replaced when dependencies are built.
