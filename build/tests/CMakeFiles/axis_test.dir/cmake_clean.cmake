file(REMOVE_RECURSE
  "CMakeFiles/axis_test.dir/axis_test.cc.o"
  "CMakeFiles/axis_test.dir/axis_test.cc.o.d"
  "axis_test"
  "axis_test.pdb"
  "axis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
