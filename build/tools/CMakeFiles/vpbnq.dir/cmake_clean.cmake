file(REMOVE_RECURSE
  "CMakeFiles/vpbnq.dir/vpbnq.cc.o"
  "CMakeFiles/vpbnq.dir/vpbnq.cc.o.d"
  "vpbnq"
  "vpbnq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpbnq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
