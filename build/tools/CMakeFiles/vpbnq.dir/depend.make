# Empty dependencies file for vpbnq.
# This may be replaced when dependencies are built.
