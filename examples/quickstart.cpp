/// \file quickstart.cpp
/// \brief First contact with the library: parse a document, number it,
/// inspect its DataGuide, open a virtual hierarchy, and query it.
///
///   $ ./quickstart

#include <iostream>
#include <memory>

#include "query/engine.h"
#include "storage/stored_document.h"
#include "vpbn/virtual_document.h"
#include "xml/parser.h"

int main() {
  using namespace vpbn;

  // 1. Parse some XML. The library models documents as forests of element
  //    and text nodes; attributes are element properties.
  const char* kXml = R"(
    <library>
      <shelf topic="databases">
        <book year="1970"><title>Relational Model</title>
          <author>Codd</author></book>
        <book year="1994"><title>TCP/IP Illustrated</title>
          <author>Stevens</author></book>
      </shelf>
      <shelf topic="algorithms">
        <book year="1968"><title>TAOCP</title><author>Knuth</author></book>
      </shelf>
    </library>)";
  auto parsed = xml::Parse(kXml);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return 1;
  }
  xml::Document doc = std::move(parsed).ValueUnsafe();

  // 2. Build the stored form: the serialized string, prefix-based numbers
  //    (PBN) for every node, the DataGuide (structural summary), the value
  //    index and the type index. Shared ownership (shared_ptr) is the
  //    engine-facing convention: engines and virtual views co-own the
  //    document, so it can never dangle beneath them.
  auto stored = std::make_shared<const storage::StoredDocument>(
      storage::StoredDocument::Build(std::move(doc)));

  std::cout << "Types in the DataGuide:\n";
  for (dg::TypeId t = 0; t < stored->dataguide().num_types(); ++t) {
    std::cout << "  " << stored->dataguide().path(t) << "\n";
  }

  std::cout << "\nPBN numbers of the <book> elements:\n";
  dg::TypeId book =
      stored->dataguide().FindByPath("library.shelf.book").value();
  for (const num::Pbn& pbn : stored->NodesOfType(book)) {
    std::cout << "  " << pbn << "  value: " << *stored->Value(pbn) << "\n";
  }

  // 3. Sketch a *virtual hierarchy*: titles at the top, each containing the
  //    authors of the same book. No data moves; the vDataGuide plus level
  //    arrays (vPBN) reinterpret the numbers.
  auto opened = virt::VirtualDocument::OpenShared(stored, "title { author }");
  if (!opened.ok()) {
    std::cerr << "virtual open failed: " << opened.status() << "\n";
    return 1;
  }
  std::shared_ptr<const virt::VirtualDocument> vdoc = *opened;

  std::cout << "\nVirtual hierarchy 'title { author }':\n";
  for (const virt::VirtualNode& root : vdoc->Roots()) {
    std::cout << "  <title> " << vdoc->StringValue(root) << "\n";
  }

  // 4. Query the virtual hierarchy with XPath through the QueryEngine
  //    facade: Prepare parses and plans once, Execute runs the plan (here
  //    sequentially; pass {.threads = N} for the parallel engine). author
  //    is now a *child* of title even though physically it is a sibling.
  query::QueryEngine engine(vdoc);
  auto prepared = engine.Prepare("//title[author = \"Knuth\"]");
  if (!prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status() << "\n";
    return 1;
  }
  auto result = engine.Execute(*prepared, {.collect_stats = true});
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "\nTitles by Knuth (via virtual //title[author = ...]):\n";
  for (const virt::VirtualNode& n : result->virtual_nodes()) {
    std::cout << "  " << vdoc->StringValue(n) << "\n";
  }
  std::cout << "\nExecution stats:\n" << result->stats().ToString();
  return 0;
}
