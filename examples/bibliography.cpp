/// \file bibliography.cpp
/// \brief The classic inversion: a DBLP-style bibliography is stored by
/// publication; invert it virtually to browse by author. Demonstrates the
/// full pipeline — virtualDoc in an XQuery, plus a cost comparison against
/// physically materializing the inverted view.
///
///   $ ./bibliography [num_publications]

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "query/engine.h"
#include "vpbn/materializer.h"
#include "vpbn/virtual_document.h"
#include "workload/bibliography.h"
#include "xquery/xq_engine.h"

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpbn;
  using Clock = std::chrono::steady_clock;

  workload::BibliographyOptions opts;
  opts.num_publications = argc > 1 ? std::atoi(argv[1]) : 400;
  opts.author_pool = 40;
  xml::Document doc = workload::GenerateBibliography(opts);

  xq::Engine engine;
  if (auto s = engine.RegisterDocument("dblp.xml", &doc); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "Bibliography: " << doc.num_nodes() << " nodes, "
            << opts.num_publications << " publications\n\n";

  // Browse by author (qualified to article authors): each author element
  // carries its article — inverted, the article hangs *below* the author,
  // related through the publication least common ancestor.
  const char* kByAuthor =
      "article.author { article { article.title article.year } }";
  auto result = engine.RunToXml(std::string(R"(
      for $a in virtualDoc("dblp.xml", ")") + kByAuthor + R"(")//author
      where $a/text() = "Author1" and $a/article/year >= 2020
      return <recent>{$a/text()}: {$a/article/title/text()}</recent>)");
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "Author1's recent articles (browsing the inverted view):\n"
            << *result << "\n\n";

  // Cost comparison: virtual navigation vs materialize-then-navigate.
  // Non-owning Build: `doc` is shared with the xq engine above.
  auto stored = std::make_shared<const storage::StoredDocument>(
      storage::StoredDocument::Build(doc));
  auto vdoc = virt::VirtualDocument::OpenShared(stored, kByAuthor);
  const char* kQuery = "//author[text() = \"Author1\"]/article/title";

  query::QueryEngine virtual_engine(*vdoc);
  auto t0 = Clock::now();
  auto virtual_hits = virtual_engine.Execute(kQuery, {});
  auto t1 = Clock::now();

  auto m0 = Clock::now();
  auto materialized = virt::Materialize(**vdoc);
  auto renumbered = num::Numbering::Number(materialized->doc);
  // materialized outlives the engine; the aliasing shared_ptr (empty
  // owner) expresses exactly that caller-managed lifetime.
  query::QueryEngine nav_engine(std::shared_ptr<const xml::Document>(
      std::shared_ptr<const void>(), &materialized->doc));
  auto physical_hits = nav_engine.Execute(kQuery, {});
  auto m1 = Clock::now();

  std::cout << "Author1's articles, two ways:\n";
  std::cout << "  virtual (vPBN):            " << virtual_hits->size()
            << " titles in " << Ms(t0, t1) << " ms\n";
  std::cout << "  materialize + renumber:    " << physical_hits->size()
            << " titles in " << Ms(m0, m1) << " ms ("
            << materialized->doc.num_nodes() << " nodes instantiated, "
            << renumbered.size() << " renumbered)\n";
  return 0;
}
