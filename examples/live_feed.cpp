/// \file live_feed.cpp
/// \brief Keeping PBN numbers valid under updates (the §3 context): a feed
/// document grows while axis checks keep working on gapped numbers;
/// appends never renumber, and out-of-order insertions only occasionally
/// trigger local renumbering.
///
///   $ ./live_feed [events]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/random.h"
#include "pbn/axis.h"
#include "pbn/dynamic.h"
#include "xml/document.h"

int main(int argc, char** argv) {
  using namespace vpbn;

  int events = argc > 1 ? std::atoi(argv[1]) : 2000;

  xml::Document doc;
  xml::NodeId feed = doc.AddElement("feed", xml::kNullNode);
  num::DynamicNumbering numbering(/*gap=*/8);
  numbering.NumberAll(doc);

  Rng rng(99);
  // The feed's logical order, maintained by the application; the numbering
  // tracks it so axis predicates stay decidable from numbers alone.
  std::vector<xml::NodeId> timeline;
  for (int i = 0; i < events; ++i) {
    xml::NodeId entry = doc.AddElement("entry", feed);
    if (timeline.empty() || rng.Bernoulli(0.8)) {
      numbering.OnAppend(doc, entry);  // the common case: newest at the end
      timeline.push_back(entry);
    } else {
      // A late arrival slots in before a random recent entry.
      size_t pos = timeline.size() - 1 - rng.Uniform(
                       std::min<size_t>(timeline.size(), 10));
      numbering.OnInsertBefore(doc, entry, timeline[pos]);
      timeline.insert(timeline.begin() + pos, entry);
    }
  }

  const auto& stats = numbering.stats();
  std::cout << "feed grew to " << doc.num_nodes() << " nodes\n"
            << "appends:          " << stats.appends << "\n"
            << "mid inserts:      " << stats.inserts << "\n"
            << "renumber events:  " << stats.renumber_events << "\n"
            << "nodes renumbered: " << stats.renumbered_nodes << "\n\n";

  // The numbers are a faithful total order over the application's
  // timeline: each entry is a preceding sibling of its successor.
  size_t ordered = 0;
  for (size_t i = 1; i < timeline.size(); ++i) {
    if (num::IsPrecedingSibling(numbering.OfNode(timeline[i - 1]),
                                numbering.OfNode(timeline[i]))) {
      ++ordered;
    }
  }
  std::cout << ordered << " of " << timeline.size() - 1
            << " adjacent pairs correctly ordered (expected: all)\n";
  std::cout << "first entry " << numbering.OfNode(timeline.front())
            << ", last entry " << numbering.OfNode(timeline.back()) << "\n";
  return ordered == timeline.size() - 1 ? 0 : 1;
}
