/// \file virtual_view.cpp
/// \brief The paper's §2 walkthrough, end to end: Sam's transformation,
/// Rhonda's nested query (Figure 4) versus the virtualDoc form (Figure 6),
/// and the vPBN numbers of Figure 10.
///
///   $ ./virtual_view

#include <iostream>

#include "vpbn/virtual_document.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/xq_engine.h"

int main() {
  using namespace vpbn;

  // Figure 2's data model instance.
  auto parsed = xml::Parse(R"(
    <data>
      <book><title>X</title>
        <author><name>C</name></author>
        <publisher><location>W</location></publisher>
      </book>
      <book><title>Y</title>
        <author><name>D</name></author>
        <publisher><location>M</location></publisher>
      </book>
    </data>)");
  xml::Document doc = std::move(parsed).ValueUnsafe();

  xq::Engine engine;
  if (auto s = engine.RegisterDocument("book.xml", &doc); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  std::cout << "== Sam's query (Figure 1) ==\n";
  auto sam = engine.RunToXml(R"(
      for $t in doc("book.xml")//book/title
      let $a := $t/../author
      return <title>{$t/text()}{$a}</title>)");
  std::cout << *sam << "\n\n";

  std::cout << "== Rhonda's nested query (Figure 4: materializes Sam's "
               "result, then counts) ==\n";
  auto nested = engine.RunToXml(R"(
      for $t in (for $t in doc("book.xml")//book/title
                 let $a := $t/../author
                 return <title>{$t/text()}{$a}</title>)//title
      return <result>{$t/text()}<count>{count($t/author)}</count></result>)");
  std::cout << *nested << "\n";
  std::cout << "   (materialized " << engine.stats().materialized_nodes
            << " nodes along the way)\n\n";

  engine.ResetStats();
  std::cout << "== Rhonda via virtualDoc (Figure 6: no materialization) ==\n";
  auto virt_form = engine.RunToXml(R"(
      for $t in virtualDoc("book.xml", "title { author { name } }")//title
      return <result>{$t/text()}<count>{count($t/author)}</count></result>)");
  std::cout << *virt_form << "\n";
  std::cout << "   (materialized " << engine.stats().materialized_nodes
            << " view nodes — the view itself was never instantiated)\n\n";

  // Show the vPBN numbers of Figure 10: each node keeps its original PBN,
  // each virtual type carries a level array. Non-owning Build: the xq
  // engine above still holds a pointer to this document.
  storage::StoredDocument stored = storage::StoredDocument::Build(doc);
  auto vdoc =
      virt::VirtualDocument::Open(stored, "title { author { name } }");
  std::cout << "== vPBN numbers (Figure 10) ==\n";
  const vdg::VDataGuide& vg = vdoc->vguide();
  for (vdg::VTypeId t : vg.PreOrder()) {
    for (const virt::VirtualNode& n : vdoc->NodesOfVType(t)) {
      std::cout << "  " << (vg.IsTextVType(t) ? "text" : vg.label(t))
                << "  pbn " << stored.numbering().OfNode(n.node)
                << "  level array "
                << vdoc->space().level_array(t).ToString() << "\n";
    }
  }
  return 0;
}
