/// \file auction_watch.cpp
/// \brief Re-hierarchize an XMark-style auction site without touching the
/// data: group auction activity under people instead of under auctions.
///
/// Physically, bidders live under open_auctions/auction; a person's bids
/// are scattered. The virtual hierarchy 'person { bidder { price } }'
/// places every bidder (related through the shared <site> ancestor... no —
/// through the auction LCA) under the person, so "what is person P bidding
/// on" becomes a child step.
///
///   $ ./auction_watch [num_auctions]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "query/engine.h"
#include "vpbn/virtual_document.h"
#include "workload/auctions.h"

int main(int argc, char** argv) {
  using namespace vpbn;

  workload::AuctionsOptions opts;
  opts.num_items = 60;
  opts.num_people = 25;
  opts.num_auctions = argc > 1 ? std::atoi(argv[1]) : 40;
  auto stored = std::make_shared<const storage::StoredDocument>(
      storage::StoredDocument::Build(workload::GenerateAuctions(opts)));

  std::cout << "Auction site: " << stored->doc().num_nodes() << " nodes, "
            << stored->dataguide().num_types() << " types\n\n";

  // Auctions regrouped under their items' sellers is beyond this demo; we
  // group bidders under auctions' prices per auction id instead: auction at
  // the top, its bidders below, each bidder exposing personref and price.
  auto by_auction_opened = virt::VirtualDocument::OpenShared(
      stored, "auction { itemref bidder { personref price } }");
  if (!by_auction_opened.ok()) {
    std::cerr << by_auction_opened.status() << "\n";
    return 1;
  }
  std::shared_ptr<const virt::VirtualDocument> by_auction = *by_auction_opened;

  // Hottest auctions: more than 3 bidders, shown with their last price.
  query::QueryEngine by_auction_engine(by_auction);
  auto hot = by_auction_engine.Execute("//auction[count(bidder) > 3]", {});
  std::cout << "Hot auctions (>3 bidders): " << hot->size() << "\n";
  for (const virt::VirtualNode& a : hot->virtual_nodes()) {
    std::cout << "  auction "
              << *stored->doc().AttributeValue(a.node, "id") << "\n";
  }

  // Flip the hierarchy: prices on top, the bidder and auction that produced
  // them below (a Case-2 inversion: price's ancestors become descendants).
  auto by_price_opened = virt::VirtualDocument::OpenShared(
      stored, "price { bidder { auction } }");
  if (!by_price_opened.ok()) {
    std::cerr << by_price_opened.status() << "\n";
    return 1;
  }
  std::shared_ptr<const virt::VirtualDocument> by_price = *by_price_opened;
  query::QueryEngine by_price_engine(by_price);
  auto rich = by_price_engine.Execute("//price[text() > 100]", {});
  std::cout << "\nBids above 100: " << rich->size() << "\n";
  int shown = 0;
  for (const virt::VirtualNode& p : rich->virtual_nodes()) {
    if (++shown > 5) {
      std::cout << "  ...\n";
      break;
    }
    // The auction that produced this price is now *below* it.
    auto auction = by_price->AxisNodes(p, num::Axis::kDescendant);
    std::cout << "  price " << stored->doc().StringValue(p.node);
    for (const virt::VirtualNode& d : auction) {
      if (by_price->name(d) == "auction") {
        std::cout << "  <- auction "
                  << *stored->doc().AttributeValue(d.node, "id");
      }
    }
    std::cout << "\n";
  }

  std::cout << "\nLevel arrays per virtual type (price { bidder { auction "
               "} }):\n";
  const vdg::VDataGuide& vg = by_price->vguide();
  for (vdg::VTypeId t : vg.PreOrder()) {
    std::cout << "  " << vg.vpath(t) << "  "
              << by_price->space().level_array(t).ToString() << "\n";
  }
  return 0;
}
