/// \file snapshot.h
/// \brief Versioned full-index snapshots of a StoredDocument.
///
/// xml/binary_io.h snapshots only the raw Document; every process still
/// pays the full ingest — renumber, rebuild the DataGuide, re-pack the
/// per-type arenas, re-intern the value dictionary — on load. That is
/// exactly the "physically transform + renumber + re-index" cost the paper
/// positions PBN against (§2, §4.3), sitting on our own startup path. A
/// Snapshot persists the *built* artifacts alongside the document, so Load
/// reconstructs a query-ready StoredDocument (owning its Document) with no
/// renumbering or re-indexing.
///
/// Layout (all integers LEB128 varints; strings are length-prefixed):
///
///   magic "VPSN" | version
///   document    : xml::WriteBinary blob (one length-prefixed string)
///   stored text : the serialized stored string + per-node (start, len)
///   dataguide   : type count + per type (label, parent+1) in TypeId order
///   type lists  : per type, instance count + one NodeId per instance in
///                 document order + the ordered-codec packed arena
///   values      : dictionary terms in term-id order; per type a covered
///                 flag + term-id column; per type the attribute columns
///                 (sorted by name; absent cells encode as 0)
///
/// Everything cheap to re-derive is re-derived on Load rather than stored:
/// packed offset/length/key columns from the arena framing, the node-type
/// and node-row columns from the type lists, postings and numeric rows
/// from the term-id columns. The NodeId <-> Pbn map is not rebuilt at all
/// — the packed arenas carry every number, and the StoredDocument hydrates
/// the map lazily if some query path asks for it.
///
/// Load validates every section — arbitrary (truncated, bit-flipped,
/// hostile) input returns InvalidArgument, never crashes (fuzz-tested).
/// The packed numbers are verified *structurally*: the canonical PBN
/// numbering is a pure function of the tree (root index, then child
/// ordinals), so Load recomputes what each node's bytes must be from its
/// parent's and rejects any deviation — stronger than the uniqueness hash
/// check it replaces, and cheaper.
#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/stored_document.h"

namespace vpbn::storage {

class Snapshot {
 public:
  /// Current on-disk format version.
  static constexpr uint32_t kVersion = 1;

  /// Serialize \p sd (document + every built artifact) into snapshot form.
  static std::string Write(const StoredDocument& sd);

  /// Reconstruct a query-ready StoredDocument. The returned document owns
  /// its xml::Document; nothing is renumbered or re-indexed. With a pool,
  /// the per-type restore work (arena framing, number materialization,
  /// postings rebuild) fans out — the result is identical for any thread
  /// count. Fails with InvalidArgument on corrupt or version-incompatible
  /// input.
  static Result<StoredDocument> Load(std::string_view data,
                                     common::ThreadPool* pool = nullptr);

  /// File convenience wrappers around Write/Load.
  static Status WriteFile(const StoredDocument& sd, const std::string& path);
  static Result<StoredDocument> LoadFile(const std::string& path,
                                         common::ThreadPool* pool = nullptr);
};

}  // namespace vpbn::storage
