/// \file snapshot.h
/// \brief Versioned full-index snapshots of a StoredDocument.
///
/// xml/binary_io.h snapshots only the raw Document; every process still
/// pays the full ingest — renumber, rebuild the DataGuide, re-pack the
/// per-type arenas, re-intern the value dictionary — on load. That is
/// exactly the "physically transform + renumber + re-index" cost the paper
/// positions PBN against (§2, §4.3), sitting on our own startup path. A
/// Snapshot persists the *built* artifacts alongside the document, so Load
/// reconstructs a query-ready StoredDocument (owning its Document) with no
/// renumbering or re-indexing.
///
/// Layout (all integers LEB128 varints; strings are length-prefixed):
///
///   magic "VPSN" | version
///   document    : xml::WriteBinary blob (one length-prefixed string)
///   stored text : the serialized stored string + per-node (start, len)
///   dataguide   : type count + per type (label, parent+1) in TypeId order
///   type lists  : per type, instance count + one NodeId per instance in
///                 document order + the ordered-codec packed arena
///   values      : dictionary terms in term-id order; per type a covered
///                 flag + term-id column; per type the attribute columns
///                 (sorted by name; absent cells encode as 0)
///
/// Everything cheap to re-derive is re-derived on Load rather than stored:
/// packed offset/length/key columns from the arena framing, the node-type
/// and node-row columns from the type lists, postings and numeric rows
/// from the term-id columns. The NodeId <-> Pbn map is not rebuilt at all
/// — the packed arenas carry every number, and the StoredDocument hydrates
/// the map lazily if some query path asks for it.
///
/// Load validates every section — arbitrary (truncated, bit-flipped,
/// hostile) input returns InvalidArgument, never crashes (fuzz-tested).
/// The packed numbers are verified *structurally*: the canonical PBN
/// numbering is a pure function of the tree (root index, then child
/// ordinals), so Load recomputes what each node's bytes must be from its
/// parent's and rejects any deviation — stronger than the uniqueness hash
/// check it replaces, and cheaper.
///
/// Version 2 trades the flat layout for a compressed, checksummed,
/// mmap-friendly one:
///
///   magic "VPSN" | varint version=2 | u64 LE checksum (Hash64 of every
///   byte after this field) | section directory (u8 count; per section
///   u8 kind, u64 LE offset, u64 LE size) | page-aligned sections
///
///   DOC    : the xml::WriteBinary blob, deflated
///   ARENAS : per type, instance count + the *blocked* ordered-codec blob
///            (pbn/packed.h EncodeBlocked: front-coded keys, varint-delta
///            offset directory, per-block min/max sort keys), deflated
///   VALUES : the v1 value-index bytes, deflated
///   STATS  : *optional* — per covered type, the precomputed column
///            statistics (index/value_index.h ColumnStats: aggregate
///            counts, the equi-depth histogram, the zone maps), deflated.
///            Doubles store as fixed64 bit patterns so restored statistics
///            are bit-identical. When present, Load moves them into the
///            restored columns (after validating their shapes against the
///            rebuilt columns) instead of recomputing; when absent — every
///            snapshot written before the section existed — Load falls
///            back to ValueIndex::ComputeStats, which produces the same
///            statistics from the term columns. Either way a loaded
///            document costs queries identically to a freshly built one.
///
/// Every blob is framed `u8 codec | varint raw_size | varint payload_size`
/// (codec 0 = stored, 1 = deflate); builds without zlib write codec 0 and
/// reject codec 1. Everything else — stored text, node ranges, the
/// DataGuide, node-type/row columns — is re-derived from the document with
/// Build's own deterministic phases, which both shrinks the file (the E13
/// corpus drops below its source-XML size) and keeps exactly one source of
/// truth. The checksum makes the corruption check O(bytes) up front, so a
/// v2 load skips the per-node canonical-numbering walk, leaves the arena
/// blobs in place (mapped or buffered), and decodes each type on first
/// touch — the lazy path pbn/packed.h DecodeBlocked still fully validates.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/stored_document.h"

namespace vpbn::storage {

class Snapshot {
 public:
  /// Current on-disk format version. Version 1 is the legacy flat layout
  /// (everything stored raw, structurally re-validated on load); version 2
  /// is the compressed, checksummed, page-aligned section layout described
  /// above. Both load; Write defaults to the newest.
  static constexpr uint32_t kVersion = 2;

  /// Serialize \p sd (document + every built artifact) into snapshot form.
  /// \p version selects the on-disk format (1 or 2); anything else returns
  /// an empty string. \p stats_section controls whether a v2 snapshot
  /// carries the optional STATS section (ignored for v1); writing without
  /// it reproduces the pre-STATS v2 layout, which the backward-compat
  /// tests load to prove old snapshots keep working.
  static std::string Write(const StoredDocument& sd,
                           uint32_t version = kVersion,
                           bool stats_section = true);

  /// Reconstruct a query-ready StoredDocument. The returned document owns
  /// its xml::Document; nothing is renumbered or re-indexed. With a pool,
  /// the per-type restore work fans out — the result is identical for any
  /// thread count. Fails with InvalidArgument on corrupt or
  /// version-incompatible input. For v2 input the arena bytes are retained
  /// in an internal buffer and decoded per type on first touch.
  static Result<StoredDocument> Load(std::string_view data,
                                     common::ThreadPool* pool = nullptr);

  /// File convenience wrappers around Write/Load. With \p use_mmap (the
  /// default), LoadFile memory-maps the file instead of copying it; a v2
  /// document then keeps the mapping alive and decodes arenas straight out
  /// of it, so the page cache is shared across processes.
  static Status WriteFile(const StoredDocument& sd, const std::string& path,
                          uint32_t version = kVersion);
  static Result<StoredDocument> LoadFile(const std::string& path,
                                         common::ThreadPool* pool = nullptr,
                                         bool use_mmap = true);

 private:
  static std::string WriteV1(const StoredDocument& sd);
  static std::string WriteV2(const StoredDocument& sd, bool stats_section);
  /// The value-index section bytes, shared verbatim by both versions.
  static void WriteValues(const StoredDocument& sd, std::string* out);
  /// \p stats, when non-null, holds per-type statistics parsed from a v2
  /// STATS section; covered columns move them in instead of recomputing.
  static Status LoadValues(std::string_view* data, StoredDocument* out,
                           common::ThreadPool* pool,
                           std::vector<std::unique_ptr<idx::ColumnStats>>*
                               stats = nullptr);
  static Result<StoredDocument> LoadV1(std::string_view data,
                                       common::ThreadPool* pool);
  /// Version dispatch over a backing store the caller hands over (mapping
  /// or buffer; both may be null for v1, which copies everything out).
  static Result<StoredDocument> LoadOwned(
      std::string_view full, common::ThreadPool* pool,
      std::shared_ptr<common::MappedFile> mapping,
      std::unique_ptr<std::string> buffer);
  /// \p full is the whole snapshot (for section offsets); \p data is
  /// positioned just past the version varint. Exactly one of \p mapping /
  /// \p buffer backs the lazy arena views of the returned document.
  static Result<StoredDocument> LoadV2(
      std::string_view full, std::string_view data, common::ThreadPool* pool,
      std::shared_ptr<common::MappedFile> mapping,
      std::unique_ptr<std::string> buffer);
};

}  // namespace vpbn::storage
