#include "storage/stored_document.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "common/compress.h"
#include "common/parallel.h"
#include "pbn/codec.h"
#include "xml/serializer.h"

namespace vpbn::storage {

StoredDocument::StoredDocument(StoredDocument&& other) noexcept
    : doc_(other.doc_),
      owned_doc_(std::move(other.owned_doc_)),
      ingest_ms_(other.ingest_ms_),
      from_snapshot_(other.from_snapshot_),
      text_(std::move(other.text_)),
      numbering_(std::move(other.numbering_)),
      numbering_ready_(other.numbering_ready_.load()),
      guide_(std::move(other.guide_)),
      node_types_(std::move(other.node_types_)),
      node_rows_(std::move(other.node_rows_)),
      value_index_(std::move(other.value_index_)),
      partitions_(std::move(other.partitions_)),
      ranges_(std::move(other.ranges_)),
      packed_type_index_(std::move(other.packed_type_index_)),
      type_node_index_(std::move(other.type_node_index_)),
      mapping_(std::move(other.mapping_)),
      snapshot_buffer_(std::move(other.snapshot_buffer_)),
      lazy_arenas_(std::move(other.lazy_arenas_)),
      packed_ready_(std::move(other.packed_ready_)),
      snapshot_bytes_(other.snapshot_bytes_),
      mapped_bytes_(other.mapped_bytes_),
      type_cache_(std::move(other.type_cache_)) {}

StoredDocument& StoredDocument::operator=(StoredDocument&& other) noexcept {
  if (this != &other) {
    doc_ = other.doc_;
    owned_doc_ = std::move(other.owned_doc_);
    ingest_ms_ = other.ingest_ms_;
    from_snapshot_ = other.from_snapshot_;
    text_ = std::move(other.text_);
    numbering_ = std::move(other.numbering_);
    numbering_ready_.store(other.numbering_ready_.load());
    guide_ = std::move(other.guide_);
    node_types_ = std::move(other.node_types_);
    node_rows_ = std::move(other.node_rows_);
    value_index_ = std::move(other.value_index_);
    partitions_ = std::move(other.partitions_);
    ranges_ = std::move(other.ranges_);
    packed_type_index_ = std::move(other.packed_type_index_);
    type_node_index_ = std::move(other.type_node_index_);
    mapping_ = std::move(other.mapping_);
    snapshot_buffer_ = std::move(other.snapshot_buffer_);
    lazy_arenas_ = std::move(other.lazy_arenas_);
    packed_ready_ = std::move(other.packed_ready_);
    snapshot_bytes_ = other.snapshot_bytes_;
    mapped_bytes_ = other.mapped_bytes_;
    type_cache_ = std::move(other.type_cache_);
  }
  return *this;
}

StoredDocument StoredDocument::Build(const xml::Document& doc,
                                     common::ThreadPool* pool) {
  auto start = std::chrono::steady_clock::now();
  StoredDocument out;
  out.doc_ = &doc;
  out.ranges_.assign(doc.num_nodes(), {0, 0});

  // Phase 1 — serialize / number / DataGuide + type-of-node: three
  // independent read-only passes over the document. The numbering and guide
  // passes go to the pool while the serializer runs on the caller thread,
  // fanning its own subtree chunks into the same pool, so every worker
  // stays busy. Each pass writes a disjoint member; none reads another's
  // output.
  if (pool != nullptr && pool->num_threads() > 1 &&
      !common::ThreadPool::InWorker()) {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 2;
    std::exception_ptr error;
    auto done = [&](std::exception_ptr e) {
      // Notify under the lock: the joining thread destroys mu/cv as soon as
      // it observes pending == 0 (same discipline as ParallelFor).
      std::lock_guard<std::mutex> lock(mu);
      if (e && !error) error = e;
      --pending;
      cv.notify_one();
    };
    pool->Submit([&] {
      try {
        out.numbering_ = num::Numbering::Number(doc);
        done(nullptr);
      } catch (...) {
        done(std::current_exception());
      }
    });
    pool->Submit([&] {
      try {
        out.guide_ = dg::DataGuide::Build(doc, &out.node_types_);
        done(nullptr);
      } catch (...) {
        done(std::current_exception());
      }
    });
    xml::SerializeForestWithRanges(doc, pool, &out.text_, &out.ranges_);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
    if (error) std::rethrow_exception(error);
  } else {
    out.numbering_ = num::Numbering::Number(doc);
    out.guide_ = dg::DataGuide::Build(doc, &out.node_types_);
    xml::SerializeForestWithRanges(doc, nullptr, &out.text_, &out.ranges_);
  }

  // Phase 2 — row assignment, chunk-parallel (storage/partitions.h): the
  // document splits into contiguous document-order chunks, per-chunk type
  // counts prefix-sum into the rows the sequential pass would assign, and
  // the fill writes disjoint slices. The prefix sums *are* the partition
  // row-offset matrix, so the subtree-partition metadata the partition-wise
  // evaluator needs comes out of this phase for free.
  out.packed_type_index_.assign(out.guide_.num_types(), {});
  out.type_cache_.resize(out.guide_.num_types());
  out.partitions_ =
      BuildTypeRows(doc, out.node_types_, out.guide_.num_types(), pool,
                    &out.node_rows_, &out.type_node_index_);

  // Phase 3 — pack the per-type PBN arenas. The instance lists are already
  // document-ordered, so each arena comes out sorted — what the memcmp
  // binary searches and packed structural joins rely on — and identical to
  // the sequential interleaved build. Tasks split per (type, row segment)
  // rather than per type, so one dominant type (every large real document
  // has one) cannot serialize the phase; segments encode into scratch lists
  // stitched back in row order, byte-identical to the straight append.
  constexpr size_t kPackSegmentRows = 16384;
  struct PackTask {
    size_t type;
    size_t row_lo;
    size_t row_hi;
    size_t slot;  // scratch index; contiguous per type, in row order
  };
  std::vector<PackTask> tasks;
  std::vector<size_t> first_slot(out.guide_.num_types() + 1, 0);
  for (size_t t = 0; t < out.guide_.num_types(); ++t) {
    first_slot[t] = tasks.size();
    const size_t rows = out.type_node_index_[t].size();
    for (size_t lo = 0; lo < rows || (rows == 0 && lo == 0);
         lo += kPackSegmentRows) {
      tasks.push_back({t, lo, std::min(rows, lo + kPackSegmentRows),
                       tasks.size()});
      if (rows == 0) break;
    }
  }
  first_slot[out.guide_.num_types()] = tasks.size();
  std::vector<num::PackedPbnList> scratch(tasks.size());
  common::ParallelFor(pool, tasks.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const PackTask& task = tasks[i];
      const std::vector<xml::NodeId>& ids = out.type_node_index_[task.type];
      num::PackedPbnList& list = scratch[task.slot];
      list.Reserve(task.row_hi - task.row_lo);
      for (size_t row = task.row_lo; row < task.row_hi; ++row) {
        list.Append(out.numbering_.OfNode(ids[row]));
      }
    }
  });
  common::ParallelFor(
      pool, out.guide_.num_types(), 1, [&](size_t lo, size_t hi) {
        for (size_t t = lo; t < hi; ++t) {
          num::PackedPbnList& list = out.packed_type_index_[t];
          if (first_slot[t + 1] - first_slot[t] == 1) {
            list = std::move(scratch[first_slot[t]]);
            continue;
          }
          list.Reserve(out.type_node_index_[t].size());
          for (size_t s = first_slot[t]; s < first_slot[t + 1]; ++s) {
            list.AppendSlice(scratch[s], 0, scratch[s].size());
          }
        }
      });

  // Phase 4 — value-index columns (parallel string-value computation,
  // sequential canonical interning inside).
  out.value_index_ =
      idx::ValueIndex::Build(doc, out.guide_, out.type_node_index_, pool);

  out.ingest_ms_ =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

StoredDocument StoredDocument::Build(xml::Document&& doc,
                                     common::ThreadPool* pool) {
  auto owned = std::make_unique<xml::Document>(std::move(doc));
  StoredDocument out = Build(*owned, pool);
  out.owned_doc_ = std::move(owned);
  out.doc_ = out.owned_doc_.get();
  return out;
}

void StoredDocument::HydrateNumbering() const {
  std::lock_guard<std::mutex> lock(numbering_mu_);
  if (numbering_ready_.load(std::memory_order_relaxed)) return;
  EnsureAllPacked();
  std::vector<num::Pbn> numbers(doc_->num_nodes());
  for (size_t t = 0; t < type_node_index_.size(); ++t) {
    const std::vector<xml::NodeId>& ids = type_node_index_[t];
    for (size_t row = 0; row < ids.size(); ++row) {
      numbers[ids[row]] = packed_type_index_[t][row].Materialize();
    }
  }
  numbering_ = num::Numbering::FromNumbers(std::move(numbers));
  numbering_ready_.store(true, std::memory_order_release);
}

Result<std::string_view> StoredDocument::Value(const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(auto range, ValueRange(pbn));
  return std::string_view(text_).substr(range.first,
                                        range.second - range.first);
}

Result<std::pair<uint64_t, uint64_t>> StoredDocument::ValueRange(
    const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, numbering().NodeOf(pbn));
  return ranges_[id];
}

Result<NodeHeader> StoredDocument::Header(const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, numbering().NodeOf(pbn));
  return NodeHeader{pbn, node_types_[id]};
}

const num::PackedPbnList& StoredDocument::PackedNodesOfType(
    dg::TypeId t) const {
  static const num::PackedPbnList kEmpty;
  if (t >= packed_type_index_.size()) return kEmpty;
  if (packed_ready_ != nullptr &&
      packed_ready_[t].load(std::memory_order_acquire) == 0) {
    DecodeLazyArena(t);
  }
  return packed_type_index_[t];
}

void StoredDocument::DecodeLazyArena(dg::TypeId t) const {
  std::lock_guard<std::mutex> lock(packed_mu_);
  if (packed_ready_[t].load(std::memory_order_relaxed) != 0) return;
  const LazyArena& la = lazy_arenas_[t];
  std::string inflated;
  std::string_view blob = la.blob;
  bool ok = true;
  if (la.deflated) {
    ok = common::Inflate(blob, la.raw_bytes, &inflated).ok();
    blob = inflated;
  }
  if (ok) {
    Result<num::PackedPbnList> list =
        num::DecodeBlocked(blob, type_node_index_[t].size());
    // The snapshot checksum vouched for these bytes at load time, so a
    // failure here is unreachable absent a logic bug; DecodeBlocked's own
    // validation still keeps the failure mode defined (type reads empty).
    if (list.ok()) packed_type_index_[t] = std::move(list).ValueUnsafe();
  }
  packed_ready_[t].store(1, std::memory_order_release);
}

void StoredDocument::EnsureAllPacked() const {
  if (packed_ready_ == nullptr) return;
  for (size_t t = 0; t < packed_type_index_.size(); ++t) {
    PackedNodesOfType(static_cast<dg::TypeId>(t));
  }
}

const std::vector<num::Pbn>& StoredDocument::NodesOfType(dg::TypeId t) const {
  static const std::vector<num::Pbn> kEmpty;
  if (t >= packed_type_index_.size()) return kEmpty;
  const num::PackedPbnList& packed = PackedNodesOfType(t);
  std::lock_guard<std::mutex> lock(type_cache_mu_);
  std::unique_ptr<std::vector<num::Pbn>>& slot = type_cache_[t];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<num::Pbn>>(packed.MaterializeAll());
  }
  return *slot;
}

const std::vector<xml::NodeId>& StoredDocument::NodeIdsOfType(
    dg::TypeId t) const {
  static const std::vector<xml::NodeId> kEmpty;
  if (t >= type_node_index_.size()) return kEmpty;
  return type_node_index_[t];
}

std::pair<size_t, size_t> StoredDocument::TypeRangeWithin(
    dg::TypeId t, const num::Pbn& scope) const {
  // One small encoding of the scope, then pure memcmp binary searches.
  std::string encoded;
  num::EncodeOrdered(scope, &encoded);
  return TypeRangeWithin(
      t, num::PackedPbnRef(encoded.data(),
                           static_cast<uint32_t>(encoded.size()),
                           static_cast<uint32_t>(scope.length())));
}

std::pair<size_t, size_t> StoredDocument::TypeRangeWithin(
    dg::TypeId t, const num::PackedPbnRef& scope) const {
  return PackedNodesOfType(t).PrefixRange(scope);
}

std::vector<num::Pbn> StoredDocument::NodesOfTypeWithin(
    dg::TypeId t, const num::Pbn& scope) const {
  const num::PackedPbnList& all = PackedNodesOfType(t);
  auto [first, last] = TypeRangeWithin(t, scope);
  std::vector<num::Pbn> out;
  out.reserve(last - first);
  for (size_t i = first; i < last; ++i) out.push_back(all.Materialize(i));
  return out;
}

size_t StoredDocument::resident_mapped_bytes() const {
  return mapping_ != nullptr ? mapping_->ResidentBytes() : 0;
}

void StoredDocument::EvictMappedPages() const {
  if (mapping_ != nullptr) mapping_->EvictPages();
}

size_t StoredDocument::MemoryUsage() const {
  size_t total = text_.capacity() +
                 ranges_.capacity() * sizeof(std::pair<uint64_t, uint64_t>);
  total += numbering().NumbersMemoryUsage();
  total += guide_.MemoryUsage();
  total += node_types_.capacity() * sizeof(dg::TypeId);
  total += node_rows_.capacity() * sizeof(uint32_t);
  total += value_index_.MemoryUsage();
  for (const auto& list : packed_type_index_) total += list.MemoryUsage();
  for (const auto& v : type_node_index_) {
    total += v.capacity() * sizeof(xml::NodeId);
  }
  return total;
}

}  // namespace vpbn::storage
