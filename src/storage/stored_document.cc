#include "storage/stored_document.h"

#include <algorithm>

#include "xml/serializer.h"

namespace vpbn::storage {

StoredDocument StoredDocument::Build(const xml::Document& doc) {
  StoredDocument out;
  out.doc_ = &doc;
  out.numbering_ = num::Numbering::Number(doc);
  out.guide_ = dg::DataGuide::Build(doc, &out.node_types_);

  out.ranges_.assign(doc.num_nodes(), {0, 0});
  for (xml::NodeId root : doc.roots()) {
    xml::SerializeWithRanges(doc, root, &out.text_, &out.ranges_);
  }

  out.type_index_.assign(out.guide_.num_types(), {});
  out.type_node_index_.assign(out.guide_.num_types(), {});
  // DocumentOrder guarantees the per-type vectors come out sorted in
  // document order, which the binary searches rely on.
  for (xml::NodeId id : doc.DocumentOrder()) {
    out.type_index_[out.node_types_[id]].push_back(out.numbering_.OfNode(id));
    out.type_node_index_[out.node_types_[id]].push_back(id);
  }
  return out;
}

Result<std::string_view> StoredDocument::Value(const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(auto range, ValueRange(pbn));
  return std::string_view(text_).substr(range.first,
                                        range.second - range.first);
}

Result<std::pair<uint64_t, uint64_t>> StoredDocument::ValueRange(
    const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, numbering_.NodeOf(pbn));
  return ranges_[id];
}

Result<NodeHeader> StoredDocument::Header(const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, numbering_.NodeOf(pbn));
  return NodeHeader{pbn, node_types_[id]};
}

const std::vector<num::Pbn>& StoredDocument::NodesOfType(dg::TypeId t) const {
  static const std::vector<num::Pbn> kEmpty;
  if (t >= type_index_.size()) return kEmpty;
  return type_index_[t];
}

const std::vector<xml::NodeId>& StoredDocument::NodeIdsOfType(
    dg::TypeId t) const {
  static const std::vector<xml::NodeId> kEmpty;
  if (t >= type_node_index_.size()) return kEmpty;
  return type_node_index_[t];
}

std::pair<size_t, size_t> StoredDocument::TypeRangeWithin(
    dg::TypeId t, const num::Pbn& scope) const {
  const std::vector<num::Pbn>& all = NodesOfType(t);
  // Descendants-or-self of `scope` form a contiguous run in document order:
  // [scope, successor-of-subtree). lower_bound on scope starts the run; the
  // run ends at the first number that scope does not prefix. Because all
  // instances of one type share a depth, the end can also be found by
  // binary search on the scope prefix.
  auto first = std::lower_bound(all.begin(), all.end(), scope);
  auto last = first;
  while (last != all.end() && scope.IsPrefixOf(*last)) ++last;
  return {static_cast<size_t>(first - all.begin()),
          static_cast<size_t>(last - all.begin())};
}

std::vector<num::Pbn> StoredDocument::NodesOfTypeWithin(
    dg::TypeId t, const num::Pbn& scope) const {
  const std::vector<num::Pbn>& all = NodesOfType(t);
  auto [first, last] = TypeRangeWithin(t, scope);
  return std::vector<num::Pbn>(all.begin() + first, all.begin() + last);
}

size_t StoredDocument::MemoryUsage() const {
  size_t total = text_.capacity() +
                 ranges_.capacity() * sizeof(std::pair<uint64_t, uint64_t>);
  total += numbering_.NumbersMemoryUsage();
  total += guide_.MemoryUsage();
  total += node_types_.capacity() * sizeof(dg::TypeId);
  for (const auto& v : type_index_) {
    total += v.capacity() * sizeof(num::Pbn);
    for (const auto& p : v) total += p.MemoryUsage();
  }
  return total;
}

}  // namespace vpbn::storage
