#include "storage/stored_document.h"

#include <algorithm>

#include "pbn/codec.h"
#include "xml/serializer.h"

namespace vpbn::storage {

StoredDocument::StoredDocument(StoredDocument&& other) noexcept
    : doc_(other.doc_),
      text_(std::move(other.text_)),
      numbering_(std::move(other.numbering_)),
      guide_(std::move(other.guide_)),
      node_types_(std::move(other.node_types_)),
      node_rows_(std::move(other.node_rows_)),
      value_index_(std::move(other.value_index_)),
      ranges_(std::move(other.ranges_)),
      packed_type_index_(std::move(other.packed_type_index_)),
      type_node_index_(std::move(other.type_node_index_)),
      type_cache_(std::move(other.type_cache_)) {}

StoredDocument& StoredDocument::operator=(StoredDocument&& other) noexcept {
  if (this != &other) {
    doc_ = other.doc_;
    text_ = std::move(other.text_);
    numbering_ = std::move(other.numbering_);
    guide_ = std::move(other.guide_);
    node_types_ = std::move(other.node_types_);
    node_rows_ = std::move(other.node_rows_);
    value_index_ = std::move(other.value_index_);
    ranges_ = std::move(other.ranges_);
    packed_type_index_ = std::move(other.packed_type_index_);
    type_node_index_ = std::move(other.type_node_index_);
    type_cache_ = std::move(other.type_cache_);
  }
  return *this;
}

StoredDocument StoredDocument::Build(const xml::Document& doc) {
  StoredDocument out;
  out.doc_ = &doc;
  out.numbering_ = num::Numbering::Number(doc);
  out.guide_ = dg::DataGuide::Build(doc, &out.node_types_);

  out.ranges_.assign(doc.num_nodes(), {0, 0});
  for (xml::NodeId root : doc.roots()) {
    xml::SerializeWithRanges(doc, root, &out.text_, &out.ranges_);
  }

  out.packed_type_index_.assign(out.guide_.num_types(), {});
  out.type_node_index_.assign(out.guide_.num_types(), {});
  out.type_cache_.resize(out.guide_.num_types());
  // DocumentOrder guarantees the per-type arenas come out sorted in
  // document order, which the memcmp binary searches and the packed
  // structural joins rely on.
  out.node_rows_.assign(doc.num_nodes(), 0);
  for (xml::NodeId id : doc.DocumentOrder()) {
    out.node_rows_[id] = static_cast<uint32_t>(
        out.type_node_index_[out.node_types_[id]].size());
    out.packed_type_index_[out.node_types_[id]].Append(
        out.numbering_.OfNode(id));
    out.type_node_index_[out.node_types_[id]].push_back(id);
  }
  out.value_index_ =
      idx::ValueIndex::Build(doc, out.guide_, out.type_node_index_);
  return out;
}

Result<std::string_view> StoredDocument::Value(const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(auto range, ValueRange(pbn));
  return std::string_view(text_).substr(range.first,
                                        range.second - range.first);
}

Result<std::pair<uint64_t, uint64_t>> StoredDocument::ValueRange(
    const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, numbering_.NodeOf(pbn));
  return ranges_[id];
}

Result<NodeHeader> StoredDocument::Header(const num::Pbn& pbn) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, numbering_.NodeOf(pbn));
  return NodeHeader{pbn, node_types_[id]};
}

const num::PackedPbnList& StoredDocument::PackedNodesOfType(
    dg::TypeId t) const {
  static const num::PackedPbnList kEmpty;
  if (t >= packed_type_index_.size()) return kEmpty;
  return packed_type_index_[t];
}

const std::vector<num::Pbn>& StoredDocument::NodesOfType(dg::TypeId t) const {
  static const std::vector<num::Pbn> kEmpty;
  if (t >= packed_type_index_.size()) return kEmpty;
  std::lock_guard<std::mutex> lock(type_cache_mu_);
  std::unique_ptr<std::vector<num::Pbn>>& slot = type_cache_[t];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<num::Pbn>>(
        packed_type_index_[t].MaterializeAll());
  }
  return *slot;
}

const std::vector<xml::NodeId>& StoredDocument::NodeIdsOfType(
    dg::TypeId t) const {
  static const std::vector<xml::NodeId> kEmpty;
  if (t >= type_node_index_.size()) return kEmpty;
  return type_node_index_[t];
}

std::pair<size_t, size_t> StoredDocument::TypeRangeWithin(
    dg::TypeId t, const num::Pbn& scope) const {
  // One small encoding of the scope, then pure memcmp binary searches.
  std::string encoded;
  num::EncodeOrdered(scope, &encoded);
  return TypeRangeWithin(
      t, num::PackedPbnRef(encoded.data(),
                           static_cast<uint32_t>(encoded.size()),
                           static_cast<uint32_t>(scope.length())));
}

std::pair<size_t, size_t> StoredDocument::TypeRangeWithin(
    dg::TypeId t, const num::PackedPbnRef& scope) const {
  return PackedNodesOfType(t).PrefixRange(scope);
}

std::vector<num::Pbn> StoredDocument::NodesOfTypeWithin(
    dg::TypeId t, const num::Pbn& scope) const {
  const num::PackedPbnList& all = PackedNodesOfType(t);
  auto [first, last] = TypeRangeWithin(t, scope);
  std::vector<num::Pbn> out;
  out.reserve(last - first);
  for (size_t i = first; i < last; ++i) out.push_back(all.Materialize(i));
  return out;
}

size_t StoredDocument::MemoryUsage() const {
  size_t total = text_.capacity() +
                 ranges_.capacity() * sizeof(std::pair<uint64_t, uint64_t>);
  total += numbering_.NumbersMemoryUsage();
  total += guide_.MemoryUsage();
  total += node_types_.capacity() * sizeof(dg::TypeId);
  total += node_rows_.capacity() * sizeof(uint32_t);
  total += value_index_.MemoryUsage();
  for (const auto& list : packed_type_index_) total += list.MemoryUsage();
  for (const auto& v : type_node_index_) {
    total += v.capacity() * sizeof(xml::NodeId);
  }
  return total;
}

}  // namespace vpbn::storage
