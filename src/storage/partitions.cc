#include "storage/partitions.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/varint.h"

namespace vpbn::storage {

size_t DocumentPartitions::TargetChunkCount(size_t n) {
  if (n == 0) return 0;
  const size_t chunks = (n + kTargetChunkNodes - 1) / kTargetChunkNodes;
  return std::min(std::max<size_t>(chunks, 1), kMaxChunks);
}

void DocumentPartitions::Encode(std::string* out) const {
  const size_t chunks = count();
  PutVarint64(out, chunks);
  for (size_t b = 1; b <= chunks; ++b) {
    PutVarint64(out, cuts[b] - cuts[b - 1]);
  }
  PutVarint64(out, type_offsets.size());
  for (size_t t = 0; t < type_offsets.size(); ++t) {
    const std::vector<uint32_t>& off = type_offsets[t];
    for (size_t b = 1; b <= chunks; ++b) {
      PutVarint32(out, off[b] - off[b - 1]);
    }
    const std::vector<uint32_t>& spine = spine_rows[t];
    PutVarint64(out, spine.size());
    uint32_t prev = 0;
    for (size_t i = 0; i < spine.size(); ++i) {
      // Strictly increasing rows: delta-code with an implicit -1 so every
      // delta fits a short varint.
      PutVarint32(out, i == 0 ? spine[i] : spine[i] - prev - 1);
      prev = spine[i];
    }
  }
}

Result<DocumentPartitions> DocumentPartitions::Decode(std::string_view data,
                                                      size_t num_types,
                                                      uint64_t num_nodes) {
  DocumentPartitions parts;
  VPBN_ASSIGN_OR_RETURN(uint64_t chunks, GetVarint64(&data));
  if (chunks > kMaxChunks || chunks > num_nodes + 1) {
    return Status::InvalidArgument("PARTS: implausible chunk count");
  }
  parts.cuts.resize(chunks == 0 ? 0 : chunks + 1, 0);
  uint64_t pos = 0;
  for (uint64_t b = 1; b <= chunks; ++b) {
    VPBN_ASSIGN_OR_RETURN(uint64_t delta, GetVarint64(&data));
    pos += delta;
    if (pos > num_nodes) {
      return Status::InvalidArgument("PARTS: cut beyond document");
    }
    parts.cuts[b] = pos;
  }
  if (chunks > 0 && pos != num_nodes) {
    return Status::InvalidArgument("PARTS: cuts do not cover the document");
  }
  VPBN_ASSIGN_OR_RETURN(uint64_t types, GetVarint64(&data));
  if (types != num_types) {
    return Status::InvalidArgument("PARTS: type count mismatch");
  }
  parts.type_offsets.assign(num_types, {});
  parts.spine_rows.assign(num_types, {});
  for (size_t t = 0; t < num_types; ++t) {
    std::vector<uint32_t>& off = parts.type_offsets[t];
    off.resize(chunks == 0 ? 0 : chunks + 1, 0);
    uint64_t row = 0;
    for (uint64_t b = 1; b <= chunks; ++b) {
      VPBN_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32(&data));
      row += delta;
      if (row > num_nodes) {
        return Status::InvalidArgument("PARTS: row offset beyond document");
      }
      off[b] = static_cast<uint32_t>(row);
    }
    VPBN_ASSIGN_OR_RETURN(uint64_t spine_count, GetVarint64(&data));
    if (spine_count > row) {
      return Status::InvalidArgument("PARTS: more spine rows than rows");
    }
    std::vector<uint32_t>& spine = parts.spine_rows[t];
    spine.reserve(spine_count);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < spine_count; ++i) {
      VPBN_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32(&data));
      const uint64_t value = i == 0 ? delta : prev + 1 + delta;
      if (value >= row) {
        return Status::InvalidArgument("PARTS: spine row out of range");
      }
      spine.push_back(static_cast<uint32_t>(value));
      prev = value;
    }
  }
  if (!data.empty()) {
    return Status::InvalidArgument("PARTS: trailing bytes");
  }
  return parts;
}

DocumentPartitions BuildTypeRows(
    const xml::Document& doc, const std::vector<dg::TypeId>& node_types,
    size_t num_types, common::ThreadPool* pool,
    std::vector<uint32_t>* node_rows,
    std::vector<std::vector<xml::NodeId>>* type_node_index) {
  const std::vector<xml::NodeId> order = doc.DocumentOrder();
  const size_t n = order.size();
  node_rows->assign(doc.num_nodes(), 0);
  type_node_index->assign(num_types, {});

  DocumentPartitions parts;
  const size_t chunks = DocumentPartitions::TargetChunkCount(n);
  if (chunks == 0) return parts;
  parts.cuts.resize(chunks + 1);
  for (size_t b = 0; b <= chunks; ++b) {
    parts.cuts[b] = static_cast<uint64_t>(n) * b / chunks;
  }

  // Count per (chunk, type), chunk-parallel: each chunk is a contiguous
  // document-order slice, so per-type prefix sums over the chunk counts are
  // exactly the rows the sequential pass would assign.
  std::vector<std::vector<uint32_t>> counts(
      chunks, std::vector<uint32_t>(num_types, 0));
  common::ParallelFor(pool, chunks, 1, [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      std::vector<uint32_t>& c = counts[b];
      for (uint64_t pos = parts.cuts[b]; pos < parts.cuts[b + 1]; ++pos) {
        ++c[node_types[order[pos]]];
      }
    }
  });

  parts.type_offsets.assign(num_types, {});
  for (size_t t = 0; t < num_types; ++t) {
    std::vector<uint32_t>& off = parts.type_offsets[t];
    off.resize(chunks + 1, 0);
    for (size_t b = 0; b < chunks; ++b) off[b + 1] = off[b] + counts[b][t];
    (*type_node_index)[t].resize(off[chunks]);
  }

  // Fill, chunk-parallel: chunk b writes rows [off[t][b], off[t][b+1]) of
  // every type — disjoint slices, so the parallel fill is byte-identical to
  // the sequential document-order pass.
  common::ParallelFor(pool, chunks, 1, [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      std::vector<uint32_t> cursor(num_types);
      for (size_t t = 0; t < num_types; ++t) {
        cursor[t] = parts.type_offsets[t][b];
      }
      for (uint64_t pos = parts.cuts[b]; pos < parts.cuts[b + 1]; ++pos) {
        const xml::NodeId id = order[pos];
        const dg::TypeId t = node_types[id];
        const uint32_t row = cursor[t]++;
        (*node_rows)[id] = row;
        (*type_node_index)[t][row] = id;
      }
    }
  });

  // Spine: a node spans cut c iff it is a proper ancestor of the node at
  // position c (it starts before c and its subtree contains c), so the
  // spine is the union of the cut nodes' ancestor chains.
  std::vector<xml::NodeId> spine_nodes;
  for (size_t b = 1; b < chunks; ++b) {
    for (xml::NodeId p = doc.parent(order[parts.cuts[b]]); p != xml::kNullNode;
         p = doc.parent(p)) {
      spine_nodes.push_back(p);
    }
  }
  std::sort(spine_nodes.begin(), spine_nodes.end());
  spine_nodes.erase(std::unique(spine_nodes.begin(), spine_nodes.end()),
                    spine_nodes.end());
  parts.spine_rows.assign(num_types, {});
  for (xml::NodeId id : spine_nodes) {
    parts.spine_rows[node_types[id]].push_back((*node_rows)[id]);
  }
  for (std::vector<uint32_t>& rows : parts.spine_rows) {
    std::sort(rows.begin(), rows.end());
  }
  return parts;
}

}  // namespace vpbn::storage
