#include "storage/snapshot.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/compress.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/varint.h"
#include "index/value_index.h"
#include "pbn/packed.h"
#include "xml/binary_io.h"
#include "xml/serializer.h"

namespace vpbn::storage {

namespace {

constexpr std::string_view kMagic = "VPSN";

/// \name v2 section plumbing
/// @{

constexpr size_t kPageSize = 4096;
constexpr uint8_t kSectionDoc = 1;
constexpr uint8_t kSectionArenas = 2;
constexpr uint8_t kSectionValues = 3;
constexpr uint8_t kSectionStats = 4;  // optional; absent in older snapshots
constexpr uint8_t kSectionParts = 5;  // optional; partition metadata
constexpr uint8_t kMaxSectionKind = kSectionParts;
// zlib's worst-case expansion bound, used to cap attacker-chosen raw sizes
// before allocating.
constexpr uint64_t kMaxInflateRatio = 1032;

void PutFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Frames one section blob: u8 codec (0 stored / 1 deflate) | varint
/// raw_size | varint payload_size | payload. Deflates when zlib is in the
/// build and it actually shrinks the bytes.
void PutBlob(std::string* out, std::string_view raw) {
  std::string deflated;
  bool use_deflate = common::CompressionAvailable() && raw.size() >= 64 &&
                     common::Deflate(raw, &deflated).ok() &&
                     deflated.size() < raw.size();
  out->push_back(use_deflate ? 1 : 0);
  PutVarint64(out, raw.size());
  std::string_view payload = use_deflate ? std::string_view(deflated) : raw;
  PutVarint64(out, payload.size());
  out->append(payload);
}

struct BlobView {
  std::string_view payload;  ///< stored or deflated bytes, in place
  uint64_t raw_size = 0;
  bool deflated = false;
};

Result<BlobView> GetBlob(std::string_view* in) {
  if (in->empty()) {
    return Status::InvalidArgument("snapshot: truncated blob header");
  }
  uint8_t codec = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  if (codec > 1) {
    return Status::InvalidArgument("snapshot: unknown blob codec");
  }
  BlobView out;
  out.deflated = codec == 1;
  VPBN_ASSIGN_OR_RETURN(out.raw_size, GetVarint64(in));
  VPBN_ASSIGN_OR_RETURN(uint64_t payload_size, GetVarint64(in));
  if (payload_size > in->size()) {
    return Status::InvalidArgument("snapshot: truncated blob payload");
  }
  if (out.deflated) {
    if (!common::CompressionAvailable()) {
      return Status::InvalidArgument(
          "snapshot: compressed section but compiled without zlib");
    }
    if (out.raw_size > (payload_size + 64) * kMaxInflateRatio) {
      return Status::InvalidArgument("snapshot: implausible inflated size");
    }
  } else if (out.raw_size != payload_size) {
    return Status::InvalidArgument("snapshot: stored blob size mismatch");
  }
  out.payload = in->substr(0, payload_size);
  in->remove_prefix(payload_size);
  return out;
}

/// Reads a blob and materializes its raw bytes: in place for stored blobs,
/// via \p scratch for deflated ones.
Result<std::string_view> ReadBlob(std::string_view* in, std::string* scratch) {
  VPBN_ASSIGN_OR_RETURN(BlobView blob, GetBlob(in));
  if (!blob.deflated) return blob.payload;
  VPBN_RETURN_NOT_OK(
      common::Inflate(blob.payload, blob.raw_size, scratch));
  return std::string_view(*scratch);
}

/// @}

void PutString(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s);
}

/// \name STATS section codec
///
/// Per covered type, the precomputed ColumnStats. Doubles store as fixed64
/// bit patterns (not decimal round trips), so restored statistics are
/// bit-identical to the computed ones and the restore-equals-build
/// invariants keep holding exactly.
/// @{

Result<uint64_t> GetFixed64Checked(std::string_view* in) {
  if (in->size() < 8) {
    return Status::InvalidArgument("snapshot: truncated fixed64");
  }
  uint64_t v = GetFixed64(in->data());
  in->remove_prefix(8);
  return v;
}

void PutDoubleBits(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(out, bits);
}

Result<double> GetDoubleBits(std::string_view* in) {
  VPBN_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64Checked(in));
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void PutColumnStats(std::string* out, const idx::ColumnStats& s) {
  PutVarint64(out, s.row_count);
  PutVarint64(out, s.numeric_count);
  PutVarint64(out, s.distinct_terms);
  PutVarint64(out, s.max_term_rows);
  PutDoubleBits(out, s.min_value);
  PutDoubleBits(out, s.max_value);
  PutVarint64(out, s.bucket_max.size());
  for (size_t i = 0; i < s.bucket_max.size(); ++i) {
    PutDoubleBits(out, s.bucket_max[i]);
    PutVarint64(out, s.bucket_rows[i]);
    PutVarint64(out, s.bucket_distinct[i]);
  }
  PutVarint64(out, s.zone_min.size());
  for (size_t i = 0; i < s.zone_min.size(); ++i) {
    PutDoubleBits(out, s.zone_min[i]);
    PutDoubleBits(out, s.zone_max[i]);
    PutVarint32(out, s.zone_term_min[i]);
    PutVarint32(out, s.zone_term_max[i]);
  }
}

Status GetColumnStats(std::string_view* in, idx::ColumnStats* s) {
  VPBN_ASSIGN_OR_RETURN(s->row_count, GetVarint64(in));
  VPBN_ASSIGN_OR_RETURN(s->numeric_count, GetVarint64(in));
  VPBN_ASSIGN_OR_RETURN(s->distinct_terms, GetVarint64(in));
  VPBN_ASSIGN_OR_RETURN(s->max_term_rows, GetVarint64(in));
  VPBN_ASSIGN_OR_RETURN(s->min_value, GetDoubleBits(in));
  VPBN_ASSIGN_OR_RETURN(s->max_value, GetDoubleBits(in));
  VPBN_ASSIGN_OR_RETURN(uint64_t buckets, GetVarint64(in));
  if (buckets > idx::ColumnStats::kMaxBuckets) {
    return Status::InvalidArgument("snapshot: too many histogram buckets");
  }
  s->bucket_max.reserve(buckets);
  s->bucket_rows.reserve(buckets);
  s->bucket_distinct.reserve(buckets);
  for (uint64_t i = 0; i < buckets; ++i) {
    VPBN_ASSIGN_OR_RETURN(double bmax, GetDoubleBits(in));
    VPBN_ASSIGN_OR_RETURN(uint64_t rows, GetVarint64(in));
    VPBN_ASSIGN_OR_RETURN(uint64_t distinct, GetVarint64(in));
    s->bucket_max.push_back(bmax);
    s->bucket_rows.push_back(rows);
    s->bucket_distinct.push_back(distinct);
  }
  VPBN_ASSIGN_OR_RETURN(uint64_t zones, GetVarint64(in));
  // Each zone entry is at least 18 bytes (two fixed64s + two varints), so
  // an attacker-chosen count cannot force an oversized allocation.
  if (zones > in->size() / 18) {
    return Status::InvalidArgument("snapshot: truncated stats zones");
  }
  s->zone_min.reserve(zones);
  s->zone_max.reserve(zones);
  s->zone_term_min.reserve(zones);
  s->zone_term_max.reserve(zones);
  for (uint64_t i = 0; i < zones; ++i) {
    VPBN_ASSIGN_OR_RETURN(double zmin, GetDoubleBits(in));
    VPBN_ASSIGN_OR_RETURN(double zmax, GetDoubleBits(in));
    VPBN_ASSIGN_OR_RETURN(uint32_t tmin, GetVarint32(in));
    VPBN_ASSIGN_OR_RETURN(uint32_t tmax, GetVarint32(in));
    s->zone_min.push_back(zmin);
    s->zone_max.push_back(zmax);
    s->zone_term_min.push_back(tmin);
    s->zone_term_max.push_back(tmax);
  }
  return Status::OK();
}

/// @}

Result<std::string_view> GetString(std::string_view* in) {
  VPBN_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(in));
  if (len > in->size()) {
    return Status::InvalidArgument("snapshot: truncated string");
  }
  std::string_view s = in->substr(0, len);
  in->remove_prefix(len);
  return s;
}

// Consumes the canonical ordered encoding of component \p v at \p p: one
// length byte holding the minimal payload width (1..4), then that many
// big-endian payload bytes (pbn/codec.cc). Returns the bytes consumed, or
// 0 when the bytes there encode anything else — including a padded
// (non-minimal) encoding of the same value, which memcmp document order
// cannot tolerate.
size_t MatchOrderedComponent(const char* p, size_t avail, uint32_t v) {
  size_t nbytes = v > 0xFFFFFF ? 4 : v > 0xFFFF ? 3 : v > 0xFF ? 2 : 1;
  if (avail < 1 + nbytes) return 0;
  if (static_cast<uint8_t>(p[0]) != nbytes) return 0;
  for (size_t i = 0; i < nbytes; ++i) {
    if (static_cast<uint8_t>(p[1 + i]) !=
        static_cast<uint8_t>(v >> (8 * (nbytes - 1 - i)))) {
      return 0;
    }
  }
  return 1 + nbytes;
}

// Verifies that the packed per-type lists hold exactly the canonical
// numbering of \p doc: a root's number is one component, its 1-based
// forest index; a child's is its parent's bytes (terminator dropped) plus
// the canonical encoding of its 1-based child ordinal plus the
// terminator. Every node is either a root or a child of exactly one
// parent, so the two loops together check every number — uniqueness,
// agreement with the tree, and document order of each list (FromArena
// already enforced strict byte order) all follow. The per-parent checks
// are independent, so they fan out on the pool.
Status ValidateCanonicalNumbers(
    const xml::Document& doc, const dg::DataGuide& guide,
    const std::vector<dg::TypeId>& node_types,
    const std::vector<uint32_t>& node_rows,
    const std::vector<num::PackedPbnList>& packed,
    common::ThreadPool* pool) {
  auto ref_of = [&](xml::NodeId id) {
    return packed[node_types[id]][node_rows[id]];
  };
  const std::vector<xml::NodeId>& roots = doc.roots();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (guide.parent(node_types[roots[i]]) != dg::kNullType) {
      return Status::InvalidArgument(
          "snapshot: root node carries a non-root type");
    }
    num::PackedPbnRef ref = ref_of(roots[i]);
    size_t used = MatchOrderedComponent(ref.data(), ref.size_bytes(),
                                        static_cast<uint32_t>(i + 1));
    if (ref.length() != 1 || used == 0 ||
        used + 1 != ref.size_bytes() || ref.data()[used] != '\0') {
      return Status::InvalidArgument(
          "snapshot: root number is not canonical");
    }
  }
  std::mutex mu;
  Status first_error;
  common::ParallelFor(
      pool, doc.num_nodes(), 2048, [&](size_t lo, size_t hi) {
        for (size_t id = lo; id < hi; ++id) {
          num::PackedPbnRef parent = ref_of(static_cast<xml::NodeId>(id));
          const size_t ps = parent.size_bytes();
          uint32_t ordinal = 0;
          for (xml::NodeId c :
               xml::ChildRange(doc, static_cast<xml::NodeId>(id))) {
            ++ordinal;
            num::PackedPbnRef child = ref_of(c);
            bool ok =
                guide.parent(node_types[c]) == node_types[id] &&
                child.length() == parent.length() + 1 &&
                child.size_bytes() > ps &&
                std::memcmp(child.data(), parent.data(), ps - 1) == 0;
            if (ok) {
              size_t used = MatchOrderedComponent(
                  child.data() + ps - 1, child.size_bytes() - (ps - 1),
                  ordinal);
              ok = used != 0 && ps - 1 + used + 1 == child.size_bytes() &&
                   child.data()[child.size_bytes() - 1] == '\0';
            }
            if (!ok) {
              std::lock_guard<std::mutex> lock(mu);
              if (first_error.ok()) {
                first_error = Status::InvalidArgument(
                    "snapshot: child number is not canonical");
              }
              return;
            }
          }
        }
      });
  return first_error;
}

}  // namespace

std::string Snapshot::Write(const StoredDocument& sd, uint32_t version,
                            bool stats_section) {
  if (version == 1) return WriteV1(sd);
  if (version == 2) return WriteV2(sd, stats_section);
  return {};
}

void Snapshot::WriteValues(const StoredDocument& sd, std::string* outp) {
  std::string& out = *outp;
  const dg::DataGuide& guide = sd.guide_;
  // Value index: dictionary terms in term-id order, then per-type covered
  // columns, then per-type attribute columns (sorted by name, so the bytes
  // are deterministic regardless of hash-map iteration order).
  const idx::ValueIndex& vi = sd.value_index_;
  const idx::Dictionary& dict = vi.dict();
  PutVarint64(&out, dict.size());
  for (uint32_t i = 0; i < dict.size(); ++i) PutString(&out, dict.term(i));
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    const idx::TypeColumn* col = vi.Column(t);
    out.push_back(col != nullptr ? 1 : 0);
    if (col != nullptr) {
      for (uint32_t id : col->term_ids) PutVarint32(&out, id);
    }
  }
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    const auto& by_name = vi.attrs_[t];
    std::vector<const std::string*> names;
    names.reserve(by_name.size());
    for (const auto& [name, col] : by_name) names.push_back(&name);
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    PutVarint64(&out, names.size());
    for (const std::string* name : names) {
      PutString(&out, *name);
      // 0 encodes an absent cell (kNoTerm); real ids shift up by one.
      for (uint32_t id : by_name.at(*name).term_ids) {
        PutVarint32(&out, id == idx::kNoTerm ? 0 : id + 1);
      }
    }
  }
}

std::string Snapshot::WriteV1(const StoredDocument& sd) {
  sd.EnsureAllPacked();
  std::string out;
  out.append(kMagic);
  PutVarint32(&out, 1);

  // Document section: the existing binary Document codec, length-prefixed
  // so corrupt inner bytes cannot desynchronize the outer stream.
  PutString(&out, xml::WriteBinary(sd.doc()));

  // Stored text + per-node byte ranges.
  PutString(&out, sd.text_);
  for (const auto& [start, end] : sd.ranges_) {
    PutVarint64(&out, start);
    PutVarint64(&out, end - start);
  }

  // DataGuide: (label, parent) per type in TypeId order. Load replays them
  // through AddType, which reproduces paths, type PBNs and child lists.
  const dg::DataGuide& guide = sd.guide_;
  PutVarint64(&out, guide.num_types());
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    PutString(&out, guide.label(t));
    dg::TypeId parent = guide.parent(t);
    PutVarint32(&out, parent == dg::kNullType ? 0 : parent + 1);
  }

  // Per-type instance lists + packed arenas. The NodeId lists carry the
  // node-type column and the node-row column implicitly (a node's type is
  // the list it appears in; its row is its position), so neither is stored
  // and Load skips the document-order derive pass entirely. Offsets,
  // lengths and sort keys are re-derived from the codec framing on load.
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    const num::PackedPbnList& list = sd.packed_type_index_[t];
    PutVarint64(&out, list.size());
    for (xml::NodeId id : sd.type_node_index_[t]) PutVarint32(&out, id);
    PutString(&out, std::string_view(list.arena_data(), list.arena_bytes()));
  }

  WriteValues(sd, &out);
  return out;
}

std::string Snapshot::WriteV2(const StoredDocument& sd, bool stats_section) {
  sd.EnsureAllPacked();
  const dg::DataGuide& guide = sd.guide_;

  // Section payloads first; the directory needs their sizes. Only the
  // document, the blocked arenas and the value index are stored — text,
  // ranges, guide and the node-type/row columns are re-derived on load by
  // Build's own deterministic phases.
  std::string doc_sec;
  PutBlob(&doc_sec, xml::WriteBinary(sd.doc()));

  std::string arena_sec;
  PutVarint64(&arena_sec, guide.num_types());
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    const num::PackedPbnList& list = sd.packed_type_index_[t];
    PutVarint64(&arena_sec, list.size());
    PutBlob(&arena_sec, num::EncodeBlocked(list));
  }

  std::string values_raw;
  WriteValues(sd, &values_raw);
  std::string values_sec;
  PutBlob(&values_sec, values_raw);

  // Optional STATS section: the precomputed per-column statistics, so a
  // load can move them in instead of recomputing. Layout mirrors the
  // values section's coverage flags: per type a u8 flag, then the stats.
  std::string stats_sec;
  if (stats_section) {
    std::string stats_raw;
    PutVarint64(&stats_raw, guide.num_types());
    for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
      const idx::TypeColumn* col = sd.value_index_.Column(t);
      stats_raw.push_back(col != nullptr ? 1 : 0);
      if (col != nullptr) PutColumnStats(&stats_raw, col->stats);
    }
    PutBlob(&stats_sec, stats_raw);
  }

  // Optional PARTS section: the subtree-partition metadata (cuts, per-type
  // row offsets, spine rows). The loader recomputes the same metadata from
  // the tree anyway — the section exists so the load can cross-check its
  // derivation against what the writer saw, pinning the partition layout
  // (and thus partition-wise execution) across writer/loader versions.
  std::string parts_sec;
  if (sd.partitions_.count() > 0) {
    std::string parts_raw;
    sd.partitions_.Encode(&parts_raw);
    PutBlob(&parts_sec, parts_raw);
  }

  std::string out;
  out.append(kMagic);
  PutVarint32(&out, 2);
  const size_t checksum_pos = out.size();
  out.append(8, '\0');  // patched below

  // Directory: u8 count, then (u8 kind, u64 offset, u64 size) per section.
  // Offsets are absolute and page-aligned so a mapped load can hand out
  // naturally aligned section views.
  std::vector<const std::string*> payloads = {&doc_sec, &arena_sec,
                                              &values_sec};
  std::vector<uint8_t> kinds = {kSectionDoc, kSectionArenas, kSectionValues};
  if (stats_section) {
    payloads.push_back(&stats_sec);
    kinds.push_back(kSectionStats);
  }
  if (!parts_sec.empty()) {
    payloads.push_back(&parts_sec);
    kinds.push_back(kSectionParts);
  }
  const size_t n_sections = payloads.size();
  out.push_back(static_cast<char>(n_sections));
  size_t off = out.size() + n_sections * 17;
  std::vector<uint64_t> offsets(n_sections);
  for (size_t i = 0; i < n_sections; ++i) {
    off = (off + kPageSize - 1) / kPageSize * kPageSize;
    offsets[i] = off;
    out.push_back(static_cast<char>(kinds[i]));
    PutFixed64(&out, offsets[i]);
    PutFixed64(&out, payloads[i]->size());
    off += payloads[i]->size();
  }
  for (size_t i = 0; i < n_sections; ++i) {
    out.resize(offsets[i], '\0');
    out.append(*payloads[i]);
  }

  const uint64_t checksum =
      common::Hash64(std::string_view(out).substr(checksum_pos + 8));
  std::string sum;
  PutFixed64(&sum, checksum);
  out.replace(checksum_pos, 8, sum);
  return out;
}

Result<StoredDocument> Snapshot::Load(std::string_view data,
                                      common::ThreadPool* pool) {
  return LoadOwned(data, pool, nullptr, nullptr);
}

Result<StoredDocument> Snapshot::LoadOwned(
    std::string_view full, common::ThreadPool* pool,
    std::shared_ptr<common::MappedFile> mapping,
    std::unique_ptr<std::string> buffer) {
  if (full.substr(0, kMagic.size()) != kMagic) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  std::string_view body = full.substr(kMagic.size());
  VPBN_ASSIGN_OR_RETURN(uint32_t version, GetVarint32(&body));
  if (version == 1) {
    // A v1 load copies everything out; the mapping/buffer (if any) is
    // dropped, but the on-disk size is still worth reporting.
    auto loaded = LoadV1(body, pool);
    if (loaded.ok()) loaded->snapshot_bytes_ = full.size();
    return loaded;
  }
  if (version == 2) {
    if (mapping == nullptr && buffer == nullptr) {
      // The lazy arena views must outlive the caller's buffer, so an
      // in-memory v2 load retains its own copy of the bytes.
      buffer = std::make_unique<std::string>(full);
      std::string_view owned = *buffer;
      return LoadV2(owned, owned.substr(full.size() - body.size()), pool,
                    nullptr, std::move(buffer));
    }
    return LoadV2(full, body, pool, std::move(mapping), std::move(buffer));
  }
  return Status::InvalidArgument("snapshot: unsupported version " +
                                 std::to_string(version));
}

Result<StoredDocument> Snapshot::LoadV1(std::string_view data,
                                        common::ThreadPool* pool) {
  auto load_start = std::chrono::steady_clock::now();

  // Document.
  VPBN_ASSIGN_OR_RETURN(std::string_view doc_blob, GetString(&data));
  Result<xml::Document> doc_r = xml::ReadBinary(doc_blob);
  if (!doc_r.ok()) {
    // ReadBinary distinguishes Internal (id drift); from the snapshot
    // reader's point of view every inner failure is just corrupt input.
    return Status::InvalidArgument("snapshot: document section: " +
                                   doc_r.status().message());
  }
  StoredDocument out;
  out.owned_doc_ =
      std::make_unique<xml::Document>(std::move(doc_r).ValueUnsafe());
  out.doc_ = out.owned_doc_.get();
  const xml::Document& doc = *out.doc_;
  const size_t n = doc.num_nodes();

  // Stored text + ranges.
  VPBN_ASSIGN_OR_RETURN(std::string_view text, GetString(&data));
  out.text_.assign(text);
  out.ranges_.reserve(n);
  for (size_t id = 0; id < n; ++id) {
    VPBN_ASSIGN_OR_RETURN(uint64_t start, GetVarint64(&data));
    VPBN_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(&data));
    if (start > out.text_.size() || len > out.text_.size() - start) {
      return Status::InvalidArgument("snapshot: node range out of bounds");
    }
    out.ranges_.emplace_back(start, start + len);
  }

  // DataGuide replay. AddType must mint exactly the recorded id: a
  // duplicate (parent, label) pair would dedupe to an earlier type and
  // shift every id after it.
  VPBN_ASSIGN_OR_RETURN(uint64_t num_types64, GetVarint64(&data));
  if (num_types64 > data.size()) {
    return Status::InvalidArgument("snapshot: type count exceeds input");
  }
  const size_t num_types = static_cast<size_t>(num_types64);
  for (size_t t = 0; t < num_types; ++t) {
    VPBN_ASSIGN_OR_RETURN(std::string_view label, GetString(&data));
    VPBN_ASSIGN_OR_RETURN(uint32_t parent_plus1, GetVarint32(&data));
    dg::TypeId parent =
        parent_plus1 == 0 ? dg::kNullType : parent_plus1 - 1;
    if (parent != dg::kNullType && parent >= t) {
      return Status::InvalidArgument(
          "snapshot: type parent appears after child");
    }
    if (out.guide_.AddType(label, parent) != t) {
      return Status::InvalidArgument("snapshot: duplicate dataguide type");
    }
  }

  // Per-type instance lists (which carry the node-type and node-row
  // columns: a node's type is the list it appears in, its row its
  // position) followed by the packed arena for each type.
  out.node_types_.assign(n, dg::kNullType);
  out.node_rows_.assign(n, 0);
  out.type_node_index_.assign(num_types, {});
  std::vector<std::string_view> arenas(num_types);
  size_t assigned = 0;
  for (size_t t = 0; t < num_types; ++t) {
    VPBN_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&data));
    if (count > n - assigned) {
      return Status::InvalidArgument(
          "snapshot: type instance counts exceed node count");
    }
    std::vector<xml::NodeId>& ids = out.type_node_index_[t];
    ids.reserve(count);
    for (uint64_t row = 0; row < count; ++row) {
      VPBN_ASSIGN_OR_RETURN(uint32_t id, GetVarint32(&data));
      if (id >= n) {
        return Status::InvalidArgument("snapshot: node id out of range");
      }
      if (out.node_types_[id] != dg::kNullType) {
        return Status::InvalidArgument(
            "snapshot: node appears in two type lists");
      }
      if (doc.IsText(id) != out.guide_.IsTextType(t)) {
        return Status::InvalidArgument(
            "snapshot: node kind does not match its type");
      }
      out.node_types_[id] = static_cast<dg::TypeId>(t);
      out.node_rows_[id] = static_cast<uint32_t>(row);
      ids.push_back(id);
    }
    assigned += count;
    VPBN_ASSIGN_OR_RETURN(arenas[t], GetString(&data));
  }
  if (assigned != n) {
    return Status::InvalidArgument(
        "snapshot: type lists do not cover every node");
  }

  // Packed arenas: framing and sortedness re-validated per type,
  // independently, so they fan out on the pool.
  out.packed_type_index_.assign(num_types, {});
  std::vector<Status> type_status(num_types);
  common::ParallelFor(pool, num_types, 1, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      Result<num::PackedPbnList> list = num::PackedPbnList::FromArena(
          std::string(arenas[t]), out.type_node_index_[t].size());
      if (!list.ok()) {
        type_status[t] = list.status();
        continue;
      }
      out.packed_type_index_[t] = std::move(list).ValueUnsafe();
    }
  });
  for (const Status& st : type_status) VPBN_RETURN_NOT_OK(st);

  // Structural validation: the numbering is the *canonical* numbering of
  // the tree — a root's number is its 1-based forest index, a child's is
  // its parent's plus one component holding its 1-based child ordinal. So
  // instead of materializing every Pbn and rebuilding the reverse hash to
  // check uniqueness (the old, weaker check), verify the packed bytes
  // against the tree directly: prefix-of-parent plus the canonical
  // encoding of the ordinal. This also pins the list order to document
  // order and rejects non-canonical (padded) component encodings, and it
  // is per-node independent, so it fans out on the pool. The numbering_
  // member stays unhydrated; StoredDocument materializes it lazily on
  // first use.
  VPBN_RETURN_NOT_OK(ValidateCanonicalNumbers(doc, out.guide_,
                                              out.node_types_, out.node_rows_,
                                              out.packed_type_index_, pool));
  out.numbering_ready_.store(false, std::memory_order_relaxed);

  // Partition metadata for partition-wise execution. v1 never stored it;
  // re-derive it with the same pass Build uses. Validation above pinned the
  // loaded lists to canonical document order, so the recomputed rows and
  // lists are identical to the loaded ones (the pass just re-fills them).
  out.partitions_ = BuildTypeRows(doc, out.node_types_, num_types, pool,
                                  &out.node_rows_, &out.type_node_index_);

  // Value index: dictionary replayed in term-id order, then the covered
  // columns' postings and numeric rows rebuilt per type on the pool.
  VPBN_RETURN_NOT_OK(LoadValues(&data, &out, pool));
  if (!data.empty()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }

  out.type_cache_.resize(num_types);
  out.from_snapshot_ = true;
  out.ingest_ms_ =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - load_start)
          .count();
  return out;
}

Status Snapshot::LoadValues(
    std::string_view* datap, StoredDocument* outp, common::ThreadPool* pool,
    std::vector<std::unique_ptr<idx::ColumnStats>>* stats) {
  std::string_view& data = *datap;
  StoredDocument& out = *outp;
  const size_t num_types = out.guide_.num_types();
  VPBN_ASSIGN_OR_RETURN(uint64_t term_count, GetVarint64(&data));
  if (term_count > data.size()) {
    return Status::InvalidArgument("snapshot: term count exceeds input");
  }
  idx::Dictionary* dict = out.value_index_.dict_.get();
  for (uint64_t i = 0; i < term_count; ++i) {
    VPBN_ASSIGN_OR_RETURN(std::string_view term, GetString(&data));
    if (dict->Intern(term) != i) {
      return Status::InvalidArgument("snapshot: duplicate dictionary term");
    }
  }
  out.value_index_.columns_.resize(num_types);
  out.value_index_.attrs_.resize(num_types);
  std::vector<std::unique_ptr<std::vector<uint32_t>>> col_ids(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    if (data.empty()) {
      return Status::InvalidArgument("snapshot: truncated covered flag");
    }
    uint8_t flag = static_cast<uint8_t>(data[0]);
    data.remove_prefix(1);
    if (flag > 1) {
      return Status::InvalidArgument("snapshot: bad covered flag");
    }
    bool covered = idx::ValueIndex::GuideCovers(out.guide_, t);
    if ((flag != 0) != covered) {
      // Coverage is a function of the guide; a mismatched flag means the
      // column layout cannot line up with what the query layer expects.
      return Status::InvalidArgument("snapshot: coverage flag mismatch");
    }
    if (!covered) continue;
    size_t rows = out.type_node_index_[t].size();
    auto ids = std::make_unique<std::vector<uint32_t>>();
    ids->reserve(rows);
    for (size_t row = 0; row < rows; ++row) {
      VPBN_ASSIGN_OR_RETURN(uint32_t id, GetVarint32(&data));
      ids->push_back(id);
    }
    col_ids[t] = std::move(ids);
  }
  std::vector<Status> col_status(num_types);
  common::ParallelFor(pool, num_types, 1, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      if (col_ids[t] == nullptr) continue;
      idx::ColumnStats* pre =
          stats != nullptr && t < stats->size() ? (*stats)[t].get() : nullptr;
      Result<idx::TypeColumn> col = idx::ValueIndex::ColumnFromTermIds(
          std::move(*col_ids[t]), dict, pre);
      if (!col.ok()) {
        col_status[t] = col.status();
        continue;
      }
      out.value_index_.columns_[t] =
          std::make_unique<idx::TypeColumn>(std::move(col).ValueUnsafe());
    }
  });
  for (const Status& st : col_status) VPBN_RETURN_NOT_OK(st);
  for (size_t t = 0; t < num_types; ++t) {
    VPBN_ASSIGN_OR_RETURN(uint64_t attr_count, GetVarint64(&data));
    if (attr_count > data.size()) {
      return Status::InvalidArgument("snapshot: attr count exceeds input");
    }
    size_t rows = out.type_node_index_[t].size();
    for (uint64_t a = 0; a < attr_count; ++a) {
      VPBN_ASSIGN_OR_RETURN(std::string_view name, GetString(&data));
      idx::AttrColumn col;
      col.term_ids.reserve(rows);
      for (size_t row = 0; row < rows; ++row) {
        VPBN_ASSIGN_OR_RETURN(uint32_t v, GetVarint32(&data));
        if (v == 0) {
          col.term_ids.push_back(idx::kNoTerm);
        } else if (v - 1 >= dict->size()) {
          return Status::InvalidArgument(
              "snapshot: attribute term id out of range");
        } else {
          col.term_ids.push_back(v - 1);
        }
      }
      if (!out.value_index_.attrs_[t]
               .emplace(std::string(name), std::move(col))
               .second) {
        return Status::InvalidArgument(
            "snapshot: duplicate attribute column");
      }
    }
  }
  return Status::OK();
}

Result<StoredDocument> Snapshot::LoadV2(
    std::string_view full, std::string_view data, common::ThreadPool* pool,
    std::shared_ptr<common::MappedFile> mapping,
    std::unique_ptr<std::string> buffer) {
  auto load_start = std::chrono::steady_clock::now();

  // Integrity first: the whole-file checksum is what lets the v2 path skip
  // v1's per-node canonical-numbering walk and defer arena decoding.
  if (data.size() < 8) {
    return Status::InvalidArgument("snapshot: truncated checksum");
  }
  const uint64_t checksum = GetFixed64(data.data());
  data.remove_prefix(8);
  if (common::Hash64(data) != checksum) {
    return Status::InvalidArgument("snapshot: checksum mismatch");
  }

  // Section directory.
  if (data.empty()) {
    return Status::InvalidArgument("snapshot: missing section directory");
  }
  const size_t n_sections = static_cast<uint8_t>(data[0]);
  data.remove_prefix(1);
  if (n_sections < 3 || n_sections > 8 || data.size() < n_sections * 17) {
    return Status::InvalidArgument("snapshot: bad section directory");
  }
  std::string_view sections[kMaxSectionKind + 1];
  bool seen[kMaxSectionKind + 1] = {};
  for (size_t i = 0; i < n_sections; ++i) {
    const uint8_t kind = static_cast<uint8_t>(data[0]);
    const uint64_t off = GetFixed64(data.data() + 1);
    const uint64_t size = GetFixed64(data.data() + 9);
    data.remove_prefix(17);
    if (kind < kSectionDoc || kind > kMaxSectionKind || seen[kind]) {
      return Status::InvalidArgument("snapshot: bad section kind");
    }
    if (off > full.size() || size > full.size() - off) {
      return Status::InvalidArgument("snapshot: section out of bounds");
    }
    seen[kind] = true;
    sections[kind] = full.substr(off, size);
  }
  if (!seen[kSectionDoc] || !seen[kSectionArenas] || !seen[kSectionValues]) {
    return Status::InvalidArgument("snapshot: missing section");
  }

  // Document.
  std::string_view doc_view = sections[kSectionDoc];
  std::string doc_scratch;
  VPBN_ASSIGN_OR_RETURN(std::string_view doc_blob,
                        ReadBlob(&doc_view, &doc_scratch));
  if (!doc_view.empty()) {
    return Status::InvalidArgument("snapshot: trailing document bytes");
  }
  Result<xml::Document> doc_r = xml::ReadBinary(doc_blob);
  if (!doc_r.ok()) {
    return Status::InvalidArgument("snapshot: document section: " +
                                   doc_r.status().message());
  }
  StoredDocument out;
  out.owned_doc_ =
      std::make_unique<xml::Document>(std::move(doc_r).ValueUnsafe());
  out.doc_ = out.owned_doc_.get();
  const xml::Document& doc = *out.doc_;
  const size_t n = doc.num_nodes();

  // Re-derive what v1 stored: the stored text and node ranges, the
  // DataGuide and the node-type column — Build's own phase 1, minus the
  // numbering pass (the arenas carry every number). With a pool the guide
  // build runs alongside the serializer, exactly as in Build.
  out.ranges_.assign(n, {0, 0});
  if (pool != nullptr && pool->num_threads() > 1 &&
      !common::ThreadPool::InWorker()) {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 1;
    std::exception_ptr error;
    pool->Submit([&] {
      std::exception_ptr e;
      try {
        out.guide_ = dg::DataGuide::Build(doc, &out.node_types_);
      } catch (...) {
        e = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (e && !error) error = e;
      --pending;
      cv.notify_one();
    });
    xml::SerializeForestWithRanges(doc, pool, &out.text_, &out.ranges_);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
    if (error) std::rethrow_exception(error);
  } else {
    out.guide_ = dg::DataGuide::Build(doc, &out.node_types_);
    xml::SerializeForestWithRanges(doc, nullptr, &out.text_, &out.ranges_);
  }
  const size_t num_types = out.guide_.num_types();

  // Phase 2 of Build: rows within each type's instance list, chunk-parallel
  // (storage/partitions.h) — the same deterministic pass Build runs, which
  // also yields the partition metadata partition-wise execution needs.
  out.partitions_ = BuildTypeRows(doc, out.node_types_, num_types, pool,
                                  &out.node_rows_, &out.type_node_index_);

  // Optional PARTS section: the metadata is a pure function of the tree, so
  // a well-formed snapshot's copy must equal the recomputation verbatim; a
  // mismatch means writer/loader partitioning drifted (or the bytes lie).
  if (seen[kSectionParts]) {
    std::string_view parts_view = sections[kSectionParts];
    std::string parts_scratch;
    VPBN_ASSIGN_OR_RETURN(std::string_view parts_raw,
                          ReadBlob(&parts_view, &parts_scratch));
    if (!parts_view.empty()) {
      return Status::InvalidArgument("snapshot: trailing partition bytes");
    }
    VPBN_ASSIGN_OR_RETURN(
        DocumentPartitions stored_parts,
        DocumentPartitions::Decode(parts_raw, num_types, n));
    if (stored_parts != out.partitions_) {
      return Status::InvalidArgument(
          "snapshot: partition metadata does not match the document");
    }
  }

  // Arena directory: per-type instance counts are validated against the
  // derived lists now; the blob bytes stay in the backing store and decode
  // on first touch (stored_document.cc DecodeLazyArena).
  std::string_view ar = sections[kSectionArenas];
  VPBN_ASSIGN_OR_RETURN(uint64_t arena_types, GetVarint64(&ar));
  if (arena_types != num_types) {
    return Status::InvalidArgument("snapshot: arena type count mismatch");
  }
  out.lazy_arenas_.resize(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    VPBN_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&ar));
    if (count != out.type_node_index_[t].size()) {
      return Status::InvalidArgument(
          "snapshot: arena instance count mismatch");
    }
    VPBN_ASSIGN_OR_RETURN(BlobView blob, GetBlob(&ar));
    out.lazy_arenas_[t] =
        StoredDocument::LazyArena{blob.payload, blob.raw_size, blob.deflated};
  }
  if (!ar.empty()) {
    return Status::InvalidArgument("snapshot: trailing arena bytes");
  }
  out.packed_type_index_.assign(num_types, {});
  out.packed_ready_ =
      std::make_unique<std::atomic<uint8_t>[]>(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    out.packed_ready_[t].store(0, std::memory_order_relaxed);
  }
  out.numbering_ready_.store(false, std::memory_order_relaxed);

  // Optional STATS section: parse before the values so the column restore
  // can move the statistics in instead of recomputing them. Coverage flags
  // must agree with the guide, exactly as the values section's must.
  std::vector<std::unique_ptr<idx::ColumnStats>> stats;
  if (seen[kSectionStats]) {
    std::string_view stats_view = sections[kSectionStats];
    std::string stats_scratch;
    VPBN_ASSIGN_OR_RETURN(std::string_view stats_raw,
                          ReadBlob(&stats_view, &stats_scratch));
    if (!stats_view.empty()) {
      return Status::InvalidArgument("snapshot: trailing stats bytes");
    }
    std::string_view cursor = stats_raw;
    VPBN_ASSIGN_OR_RETURN(uint64_t stats_types, GetVarint64(&cursor));
    if (stats_types != num_types) {
      return Status::InvalidArgument("snapshot: stats type count mismatch");
    }
    stats.resize(num_types);
    for (size_t t = 0; t < num_types; ++t) {
      if (cursor.empty()) {
        return Status::InvalidArgument("snapshot: truncated stats flag");
      }
      const uint8_t flag = static_cast<uint8_t>(cursor[0]);
      cursor.remove_prefix(1);
      if (flag > 1) {
        return Status::InvalidArgument("snapshot: bad stats flag");
      }
      const bool covered = idx::ValueIndex::GuideCovers(out.guide_, t);
      if ((flag != 0) != covered) {
        return Status::InvalidArgument("snapshot: stats coverage mismatch");
      }
      if (!covered) continue;
      auto s = std::make_unique<idx::ColumnStats>();
      VPBN_RETURN_NOT_OK(GetColumnStats(&cursor, s.get()));
      stats[t] = std::move(s);
    }
    if (!cursor.empty()) {
      return Status::InvalidArgument("snapshot: trailing stats bytes");
    }
  }

  // Values.
  std::string_view values_view = sections[kSectionValues];
  std::string values_scratch;
  VPBN_ASSIGN_OR_RETURN(std::string_view values_raw,
                        ReadBlob(&values_view, &values_scratch));
  if (!values_view.empty()) {
    return Status::InvalidArgument("snapshot: trailing value bytes");
  }
  std::string_view values_cursor = values_raw;
  VPBN_RETURN_NOT_OK(LoadValues(&values_cursor, &out, pool,
                                seen[kSectionStats] ? &stats : nullptr));
  if (!values_cursor.empty()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }

  out.type_cache_.resize(num_types);
  out.mapping_ = std::move(mapping);
  out.snapshot_buffer_ = std::move(buffer);
  out.snapshot_bytes_ = full.size();
  out.mapped_bytes_ = out.mapping_ != nullptr ? full.size() : 0;
  out.from_snapshot_ = true;
  out.ingest_ms_ =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - load_start)
          .count();
  return out;
}

Status Snapshot::WriteFile(const StoredDocument& sd, const std::string& path,
                           uint32_t version) {
  std::string bytes = Write(sd, version);
  if (bytes.empty()) {
    return Status::InvalidArgument("snapshot: unsupported write version " +
                                   std::to_string(version));
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return Status::InvalidArgument("snapshot: cannot open " + path +
                                   " for writing");
  }
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.close();
  if (!f) {
    return Status::InvalidArgument("snapshot: write to " + path + " failed");
  }
  return Status::OK();
}

Result<StoredDocument> Snapshot::LoadFile(const std::string& path,
                                          common::ThreadPool* pool,
                                          bool use_mmap) {
  if (use_mmap) {
    auto mapped = common::MappedFile::Open(path);
    if (!mapped.ok()) return mapped.status();
    std::shared_ptr<common::MappedFile> mf = std::move(mapped).ValueUnsafe();
    std::string_view full = mf->bytes();
    // A v2 document keeps the mapping alive and decodes arenas straight
    // out of it; a v1 load copies everything and drops the mapping on
    // return.
    return LoadOwned(full, pool, std::move(mf), nullptr);
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status::InvalidArgument("snapshot: cannot open " + path);
  }
  auto bytes = std::make_unique<std::string>(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  if (f.bad()) {
    return Status::InvalidArgument("snapshot: read from " + path + " failed");
  }
  std::string_view full = *bytes;
  return LoadOwned(full, pool, nullptr, std::move(bytes));
}

}  // namespace vpbn::storage
