/// \file stored_document.h
/// \brief The paper's storage model (§6): the document as one long string
/// plus a value index from PBN numbers to character ranges.
///
/// "Suppose that an XML DBMS stores the source XML data as a long string.
///  Then the value of each kind of node is a specific substring. ... A
///  critical component in the implementation of an XML DBMS that uses PBN is
///  a value index to quickly find the value of a node given its PBN number."
///
/// A StoredDocument bundles:
///   * the canonical serialized string of the document,
///   * per-node headers (PBN number + Type ID, §6's header information),
///   * the value index PBN -> [start, end) byte range,
///   * a type index TypeId -> PBN numbers in document order (the usual
///     "find all the <author> elements" index, §4.3).

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mmap_file.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "dataguide/dataguide.h"
#include "index/value_index.h"
#include "pbn/numbering.h"
#include "pbn/packed.h"
#include "pbn/pbn.h"
#include "storage/partitions.h"
#include "xml/document.h"

namespace vpbn::storage {

/// \brief Per-node header, mirroring the paper's on-disk node header
/// ("the header information has a PBN number and a Type ID").
struct NodeHeader {
  num::Pbn pbn;
  dg::TypeId type = dg::kNullType;
};

/// \brief A document in stored-string form with its numbering and indexes.
class StoredDocument {
 public:
  StoredDocument() = default;

  /// Movable (the materialization-cache mutex is not moved — a moved
  /// document starts with a fresh lock). Moving while other threads query
  /// is undefined, as usual.
  StoredDocument(StoredDocument&& other) noexcept;
  StoredDocument& operator=(StoredDocument&& other) noexcept;

  /// Builds the stored form of \p doc: serializes it, numbers it, builds its
  /// DataGuide and both indexes. The Document remains owned by the caller
  /// and must outlive the StoredDocument.
  ///
  /// The build runs in explicit phases — serialize / number / DataGuide +
  /// type-of-node, then per-type packed lists and per-type value columns —
  /// and with a pool the embarrassingly parallel phases fan out on it. The
  /// result is byte-identical to the single-threaded build for any thread
  /// count.
  static StoredDocument Build(const xml::Document& doc,
                              common::ThreadPool* pool = nullptr);

  /// Owning overload: the StoredDocument takes the Document in, removing
  /// the keep-alive burden from the caller (and the dangling-pointer
  /// footgun when the caller's Document goes out of scope first).
  static StoredDocument Build(xml::Document&& doc,
                              common::ThreadPool* pool = nullptr);

  const xml::Document& doc() const { return *doc_; }

  /// \name Ingest metadata
  /// Wall-clock cost of Build (or of Snapshot::Load for snapshot-restored
  /// documents) and how this document came to be — surfaced by the query
  /// engine's ExecStats.
  /// @{
  double ingest_ms() const { return ingest_ms_; }
  bool from_snapshot() const { return from_snapshot_; }

  /// On-disk size of the snapshot this document was restored from (0 for
  /// built documents) and how many of those bytes are memory-mapped rather
  /// than copied. Surfaced by ExecStats / the server STATS verb.
  size_t snapshot_bytes() const { return snapshot_bytes_; }
  size_t mapped_bytes() const { return mapped_bytes_; }
  /// @}

  /// The NodeId <-> Pbn map. Build constructs it eagerly (numbering *is*
  /// part of the build); a snapshot-loaded document hydrates it from the
  /// packed per-type arenas on first call — the packed columns already hold
  /// every number, so queries that stay on the packed hot paths never pay
  /// for the heap Pbns or the reverse hash. Thread-safe.
  const num::Numbering& numbering() const {
    if (!numbering_ready_.load(std::memory_order_acquire)) {
      HydrateNumbering();
    }
    return numbering_;
  }
  const dg::DataGuide& dataguide() const { return guide_; }

  /// Type of a node (typeOf against the DataGuide).
  dg::TypeId TypeOfNode(xml::NodeId id) const { return node_types_[id]; }

  /// The full stored string.
  const std::string& stored_string() const { return text_; }

  /// \name Value index (§6)
  /// @{

  /// XML value of the node with number \p pbn: the substring of the stored
  /// string from its start tag to its end tag (or the escaped text for text
  /// nodes). NotFound if no node has that number.
  Result<std::string_view> Value(const num::Pbn& pbn) const;

  /// Byte range [start, end) of the node's value in the stored string.
  Result<std::pair<uint64_t, uint64_t>> ValueRange(const num::Pbn& pbn) const;

  /// The dictionary-encoded value index (term columns, postings, numeric
  /// rows) the query layer pushes value predicates into. Built with the
  /// document; immutable afterwards.
  const idx::ValueIndex& value_index() const { return value_index_; }
  /// @}

  /// Header for the node with number \p pbn.
  Result<NodeHeader> Header(const num::Pbn& pbn) const;

  /// \name Type index
  ///
  /// The stored substrate is columnar: per type, one contiguous arena of
  /// order-preserving encoded numbers (pbn/packed.h). The packed accessors
  /// are the hot path — joins and axis scans stream over the arena with
  /// memcmp decisions. The vector accessors materialize heap Pbns lazily
  /// (once per type, thread-safe) for API compatibility.
  /// @{

  /// Packed numbers of all nodes of type \p t, in document order. Empty
  /// list for types with no instances.
  const num::PackedPbnList& PackedNodesOfType(dg::TypeId t) const;

  /// PBN numbers of all nodes of type \p t, in document order. Empty vector
  /// for types with no instances (cannot happen for Build-derived guides).
  /// Materialized lazily from the packed arena on first call.
  const std::vector<num::Pbn>& NodesOfType(dg::TypeId t) const;

  /// NodeIds of all nodes of type \p t, aligned index-for-index with
  /// NodesOfType(t). Lets callers avoid the PBN -> NodeId hash lookup.
  const std::vector<xml::NodeId>& NodeIdsOfType(dg::TypeId t) const;

  /// Row of node \p id within its type's instance list: NodesOfType /
  /// NodeIdsOfType / the value index's columns all align on it. O(1).
  uint32_t RowOfNode(xml::NodeId id) const { return node_rows_[id]; }

  /// Index range [first, last) into PackedNodesOfType(t)/NodeIdsOfType(t)
  /// of the instances that are descendants-or-self of \p scope, found by
  /// memcmp binary search on the packed ordered index (a containment range
  /// scan).
  std::pair<size_t, size_t> TypeRangeWithin(dg::TypeId t,
                                            const num::Pbn& scope) const;

  /// Same range scan with an already-encoded scope (the fully packed hot
  /// path — no per-call encoding).
  std::pair<size_t, size_t> TypeRangeWithin(
      dg::TypeId t, const num::PackedPbnRef& scope) const;

  /// Nodes of type \p t restricted to descendants-or-self of \p scope,
  /// materialized from the packed arena.
  std::vector<num::Pbn> NodesOfTypeWithin(dg::TypeId t,
                                          const num::Pbn& scope) const;
  /// @}

  /// \brief Subtree partition metadata (storage/partitions.h): contiguous
  /// document-order chunks with per-type row offsets and spine rows. Built
  /// as a byproduct of the row-assignment phase — a pure function of the
  /// tree, identical for any thread count. `count() <= 1` (tiny documents)
  /// means partition-wise execution has nothing to split and falls back to
  /// the single-arena path.
  const DocumentPartitions& partitions() const { return partitions_; }

  /// Resident bytes of the snapshot mapping actually faulted in (mincore
  /// walk; 0 for built or buffer-backed documents). With lazy arena decode,
  /// queries that touch few types leave most of the mapping cold — the E17
  /// page-cache observability hook.
  size_t resident_mapped_bytes() const;

  /// Drop the snapshot mapping's pages from the page cache (best-effort
  /// madvise; no-op for built or buffer-backed documents). Re-creates the
  /// cold-load state so E17 can measure first-touch cost without remapping.
  void EvictMappedPages() const;

  /// Bytes used by the stored string, headers and indexes (E5 accounting).
  size_t MemoryUsage() const;

 private:
  friend class Snapshot;  // restores every member directly on Load

  /// Materializes numbering_ from the packed arenas (snapshot restore
  /// path); no-op when already hydrated.
  void HydrateNumbering() const;

  /// \name Snapshot v2 lazy arenas
  ///
  /// A v2 load leaves the blocked per-type arena bytes in the snapshot
  /// backing store (the mapped file, or the retained load buffer) and
  /// decodes each type on its first PackedNodesOfType touch — cold start
  /// never pays for types a workload does not read. The snapshot checksum
  /// verified at load time vouches for the bytes, so a decode failure here
  /// is unreachable absent a logic bug; DecodeBlocked still validates
  /// framing and order, and on failure the type presents as empty rather
  /// than anything undefined.
  /// @{

  /// Decodes the still-lazy arena of type \p t (first-touch path of
  /// PackedNodesOfType).
  void DecodeLazyArena(dg::TypeId t) const;

  /// Forces every lazy arena decoded (Snapshot::Write, full hydration).
  void EnsureAllPacked() const;

  struct LazyArena {
    std::string_view blob;   ///< blocked bytes, possibly deflated
    uint64_t raw_bytes = 0;  ///< inflated size (== blob.size() when plain)
    bool deflated = false;
  };
  /// @}

  const xml::Document* doc_ = nullptr;
  std::unique_ptr<xml::Document> owned_doc_;  // set by the owning overload
  double ingest_ms_ = 0;
  bool from_snapshot_ = false;
  std::string text_;
  // Lazily hydrated after Snapshot::Load (see numbering()); double-checked
  // via the atomic flag, first build ordered by the mutex.
  mutable num::Numbering numbering_;
  mutable std::atomic<bool> numbering_ready_{true};
  mutable std::mutex numbering_mu_;
  dg::DataGuide guide_;
  std::vector<dg::TypeId> node_types_;
  std::vector<uint32_t> node_rows_;  // by NodeId: row within its type list
  idx::ValueIndex value_index_;
  DocumentPartitions partitions_;
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;  // by NodeId
  // Mutable for the lazy v2 decode path; immutable once decoded.
  mutable std::vector<num::PackedPbnList> packed_type_index_;  // by TypeId
  std::vector<std::vector<xml::NodeId>> type_node_index_;  // aligned
  // Snapshot v2 backing store: exactly one of mapping_/snapshot_buffer_ is
  // set for a v2-restored document; lazy_arenas_ views point into it.
  // packed_ready_ is a per-type decoded flag (null for built documents and
  // v1 loads — the common case pays one null check); packed_mu_ orders
  // first decode against concurrent readers.
  std::shared_ptr<common::MappedFile> mapping_;
  std::unique_ptr<std::string> snapshot_buffer_;
  std::vector<LazyArena> lazy_arenas_;
  mutable std::unique_ptr<std::atomic<uint8_t>[]> packed_ready_;
  mutable std::mutex packed_mu_;
  size_t snapshot_bytes_ = 0;
  size_t mapped_bytes_ = 0;
  // Lazy per-type Pbn materialization of the packed index (compatibility
  // path). unique_ptr keeps each vector's address stable once built; the
  // mutex orders first-build against concurrent readers.
  mutable std::mutex type_cache_mu_;
  mutable std::vector<std::unique_ptr<std::vector<num::Pbn>>> type_cache_;
};

}  // namespace vpbn::storage
