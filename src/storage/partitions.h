/// \file partitions.h
/// \brief Subtree partitioning of a stored document: B contiguous
/// document-order chunks plus the "spine" of nodes whose subtrees span a
/// chunk boundary.
///
/// Document order *is* PBN order, so a contiguous document-order chunk is a
/// contiguous row range in **every** type's document-ordered instance list
/// — partitioning needs no per-partition arenas at all, only a per-type
/// row-offset matrix. The one complication is nodes whose subtree crosses a
/// cut (a `<regions>` element containing items on both sides): those form
/// the spine. Two properties make the spine cheap and the partitioned
/// evaluator correct:
///
///   * A node spans cut c exactly when it is a proper ancestor of the node
///     *at* position c, so the spine is the union of the ancestor chains of
///     the B-1 cut nodes — at most (B-1) * depth nodes, computed in
///     O(B * depth).
///   * The spine is ancestor-closed: every ancestor of a spine node spans
///     the same cut. A non-spine node's whole subtree (and therefore every
///     step instance on any downward path to it) lies inside one chunk, so
///     evaluating a chunk against `chunk rows + spine rows` sees every
///     ancestor chain it needs.
///
/// The partition count B is a pure function of the node count (never the
/// thread count), so a build — and the snapshot written from it — is
/// byte-identical for any pool size. Query-time parallelism groups the B
/// build chunks into K <= B tasks.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dataguide/dataguide.h"
#include "xml/document.h"

namespace vpbn::storage {

/// \brief Partition metadata over a built document: chunk cuts in
/// document-order positions, per-type row offsets, and per-type spine rows.
/// Pure metadata — the packed arenas stay global, so the unpartitioned
/// paths are untouched and byte-identity is structural.
struct DocumentPartitions {
  /// B+1 document-order positions: chunk b covers positions
  /// [cuts[b], cuts[b+1]); cuts.front() == 0, cuts.back() == node count.
  std::vector<uint64_t> cuts;

  /// Per type, B+1 row offsets into the type's instance list: chunk b of
  /// type t owns rows [type_offsets[t][b], type_offsets[t][b+1]). These are
  /// exactly the prefix sums the partition-parallel row-assignment pass
  /// computes, so they cost nothing extra to keep.
  std::vector<std::vector<uint32_t>> type_offsets;

  /// Per type, the sorted rows of instances whose subtree spans at least
  /// one cut. Ancestor-closed across types (see file comment).
  std::vector<std::vector<uint32_t>> spine_rows;

  /// Number of chunks (0 for an empty/never-partitioned document).
  size_t count() const { return cuts.empty() ? 0 : cuts.size() - 1; }

  /// Row range of type \p t over chunk group [chunk_lo, chunk_hi).
  std::pair<uint32_t, uint32_t> TypeRange(dg::TypeId t, size_t chunk_lo,
                                          size_t chunk_hi) const {
    const std::vector<uint32_t>& off = type_offsets[t];
    return {off[chunk_lo], off[chunk_hi]};
  }

  /// Total spine nodes across all types (observability / tests).
  size_t SpineSize() const {
    size_t n = 0;
    for (const auto& rows : spine_rows) n += rows.size();
    return n;
  }

  /// The target chunk count for an \p n-node document: fine enough that
  /// query-time K-way grouping and pruning have real granularity, capped so
  /// the per-type offset matrix stays negligible. Depends on nothing but n
  /// (determinism across thread counts).
  static size_t TargetChunkCount(size_t n);

  /// Nodes per chunk TargetChunkCount aims for.
  static constexpr size_t kTargetChunkNodes = 1024;
  /// Upper bound on the chunk count.
  static constexpr size_t kMaxChunks = 256;

  /// Serialize into the snapshot v2 PARTS section payload (varints:
  /// chunk count, delta-coded cuts, type count, per-type delta-coded
  /// offsets, per-type spine count + delta-coded rows).
  void Encode(std::string* out) const;

  /// Parse an encoded payload. InvalidArgument on malformed bytes or shape
  /// mismatch against \p num_types / \p num_nodes. (The snapshot loader
  /// additionally verifies the result equals the recomputed partitioning —
  /// the metadata is a pure function of the tree.)
  static Result<DocumentPartitions> Decode(std::string_view data,
                                           size_t num_types,
                                           uint64_t num_nodes);

  bool operator==(const DocumentPartitions&) const = default;
};

/// \brief The partition-parallel row-assignment pass (Build phase 2 and the
/// snapshot loader's row re-derivation): assigns every node its row within
/// its type's document-ordered instance list, fills the per-type NodeId
/// lists, and returns the partition metadata whose offset matrix the pass
/// computed along the way.
///
/// With a pool the per-chunk counting and filling fan out; the result —
/// node_rows, type_node_index and the partitions — is identical for any
/// thread count (each chunk writes a disjoint, prefix-sum-addressed slice).
DocumentPartitions BuildTypeRows(
    const xml::Document& doc, const std::vector<dg::TypeId>& node_types,
    size_t num_types, common::ThreadPool* pool,
    std::vector<uint32_t>* node_rows,
    std::vector<std::vector<xml::NodeId>>* type_node_index);

}  // namespace vpbn::storage
