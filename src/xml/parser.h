/// \file parser.h
/// \brief Parser for a well-formed XML subset into a Document.
///
/// Supported: elements, attributes (single- or double-quoted), text with the
/// five predefined entities and numeric character references, comments,
/// CDATA sections, processing instructions, the XML declaration, and a
/// DOCTYPE without an internal subset. Comments/PIs/DOCTYPE are skipped, not
/// materialized, matching the paper's data model (§4.1).
///
/// Errors carry line/column positions.

#pragma once

#include <string_view>

#include "common/result.h"
#include "xml/document.h"

namespace vpbn::xml {

/// \brief Knobs for parsing.
struct ParseOptions {
  /// Drop text nodes that contain only ASCII whitespace (the data-centric
  /// convention; pretty-printed documents parse to the same tree).
  bool skip_whitespace_text = true;

  /// Maximum element nesting depth, to bound recursion on adversarial input.
  int max_depth = 512;
};

/// \brief Parse \p input into a new Document.
Result<Document> Parse(std::string_view input,
                       const ParseOptions& options = ParseOptions());

}  // namespace vpbn::xml
