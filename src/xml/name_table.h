/// \file name_table.h
/// \brief Interning table for element names.
///
/// Element names repeat heavily in XML data; interning keeps the per-node
/// footprint at one int32 and makes name tests integer comparisons.

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/node.h"

namespace vpbn::xml {

/// \brief Bidirectional map between element names and dense NameIds.
class NameTable {
 public:
  /// Returns the id for \p name, interning it on first sight.
  NameId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    NameId id = static_cast<NameId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for \p name, or kTextName if it was never interned.
  NameId Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kTextName : it->second;
  }

  /// Name for an id; id must come from this table (not kTextName).
  const std::string& name(NameId id) const {
    return names_[static_cast<size_t>(id)];
  }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> ids_;
};

}  // namespace vpbn::xml
