#include "xml/serializer.h"

#include <tuple>

#include "common/parallel.h"
#include "common/str_util.h"

namespace vpbn::xml {

namespace {

void AppendStartTag(const Document& doc, NodeId node, std::string* out,
                    bool self_closing) {
  out->push_back('<');
  out->append(doc.name(node));
  for (const Attribute& a : doc.attributes(node)) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EscapeXmlAttribute(a.value));
    out->push_back('"');
  }
  if (self_closing) out->push_back('/');
  out->push_back('>');
}

void AppendEndTag(const Document& doc, NodeId node, std::string* out) {
  out->append("</");
  out->append(doc.name(node));
  out->push_back('>');
}

void SerializeCompact(const Document& doc, NodeId node, std::string* out) {
  if (doc.IsText(node)) {
    out->append(EscapeXmlText(doc.text(node)));
    return;
  }
  if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
    return;
  }
  AppendStartTag(doc, node, out, /*self_closing=*/false);
  for (NodeId c : ChildRange(doc, node)) SerializeCompact(doc, c, out);
  AppendEndTag(doc, node, out);
}

void SerializeIndented(const Document& doc, NodeId node, int depth,
                       std::string* out) {
  std::string pad(static_cast<size_t>(depth) * 2, ' ');
  if (doc.IsText(node)) {
    out->append(pad);
    out->append(EscapeXmlText(doc.text(node)));
    out->push_back('\n');
    return;
  }
  out->append(pad);
  if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
    out->push_back('\n');
    return;
  }
  // Single text child renders inline: <title>X</title>.
  NodeId only = doc.first_child(node);
  if (doc.next_sibling(only) == kNullNode && doc.IsText(only)) {
    AppendStartTag(doc, node, out, false);
    out->append(EscapeXmlText(doc.text(only)));
    AppendEndTag(doc, node, out);
    out->push_back('\n');
    return;
  }
  AppendStartTag(doc, node, out, false);
  out->push_back('\n');
  for (NodeId c : ChildRange(doc, node)) {
    SerializeIndented(doc, c, depth + 1, out);
  }
  out->append(pad);
  AppendEndTag(doc, node, out);
  out->push_back('\n');
}

/// One unit of the chunked forest serialization. A kSubtree segment covers a
/// whole subtree; kStartTag/kEndTag segments carry the two tag halves of an
/// element whose children were split into their own segments. Segments are
/// kept in document order, so concatenating their buffers reproduces the
/// sequential serialization exactly.
struct Segment {
  enum Kind { kSubtree, kStartTag, kEndTag };
  Kind kind;
  NodeId node;
  uint64_t weight = 0;  // subtree node count (kSubtree only; split heuristic)
  std::string text;
  // Node ranges relative to this segment's buffer (kSubtree only).
  std::vector<std::tuple<NodeId, uint64_t, uint64_t>> local_ranges;
};

/// SerializeWithRanges twin that records ranges as segment-relative triples
/// instead of writing into a forest-sized vector (a per-segment vector of
/// that size would defeat the chunking).
void SerializeWithTriples(
    const Document& doc, NodeId node, std::string* out,
    std::vector<std::tuple<NodeId, uint64_t, uint64_t>>* triples) {
  uint64_t start = out->size();
  if (doc.IsText(node)) {
    out->append(EscapeXmlText(doc.text(node)));
  } else if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
  } else {
    AppendStartTag(doc, node, out, /*self_closing=*/false);
    for (NodeId c : ChildRange(doc, node)) {
      SerializeWithTriples(doc, c, out, triples);
    }
    AppendEndTag(doc, node, out);
  }
  triples->emplace_back(node, start, out->size());
}

}  // namespace

std::string SerializeNode(const Document& doc, NodeId node,
                          const SerializeOptions& options) {
  std::string out;
  if (options.indent) {
    SerializeIndented(doc, node, 0, &out);
  } else {
    SerializeCompact(doc, node, &out);
  }
  return out;
}

std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options) {
  std::string out;
  for (NodeId root : doc.roots()) {
    if (options.indent) {
      SerializeIndented(doc, root, 0, &out);
    } else {
      SerializeCompact(doc, root, &out);
    }
  }
  return out;
}

void SerializeWithRanges(const Document& doc, NodeId node, std::string* out,
                         std::vector<std::pair<uint64_t, uint64_t>>* ranges) {
  uint64_t start = out->size();
  if (doc.IsText(node)) {
    out->append(EscapeXmlText(doc.text(node)));
  } else if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
  } else {
    AppendStartTag(doc, node, out, /*self_closing=*/false);
    for (NodeId c : ChildRange(doc, node)) {
      SerializeWithRanges(doc, c, out, ranges);
    }
    AppendEndTag(doc, node, out);
  }
  (*ranges)[node] = {start, out->size()};
}

void SerializeForestWithRanges(
    const Document& doc, common::ThreadPool* pool, std::string* out,
    std::vector<std::pair<uint64_t, uint64_t>>* ranges) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      common::ThreadPool::InWorker() || doc.num_nodes() < 1024) {
    for (NodeId root : doc.roots()) {
      SerializeWithRanges(doc, root, out, ranges);
    }
    return;
  }

  // Subtree node counts in one reverse-document-order pass (children are
  // visited before their parent), so segment splitting is O(1) per node.
  std::vector<NodeId> order = doc.DocumentOrder();
  std::vector<uint64_t> sizes(doc.num_nodes(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    uint64_t s = 1;
    for (NodeId c : ChildRange(doc, *it)) s += sizes[c];
    sizes[*it] = s;
  }

  std::vector<Segment> segs;
  for (NodeId root : doc.roots()) {
    segs.push_back({Segment::kSubtree, root, sizes[root], {}, {}});
  }

  // Split the heaviest subtree segment into (start tag, child subtrees, end
  // tag) until there are enough units to keep the pool busy. Each split is
  // O(children + segments); the iteration bound keeps degenerate chains
  // (one huge child per level) from scanning forever.
  const size_t target = static_cast<size_t>(pool->num_threads()) * 4;
  for (size_t iter = 0; segs.size() < target && iter < target * 2; ++iter) {
    size_t heaviest = segs.size();
    uint64_t best = 1;  // leaves (weight 1) are unsplittable
    for (size_t i = 0; i < segs.size(); ++i) {
      if (segs[i].kind == Segment::kSubtree && segs[i].weight > best) {
        heaviest = i;
        best = segs[i].weight;
      }
    }
    if (heaviest == segs.size()) break;
    NodeId e = segs[heaviest].node;
    if (doc.IsText(e) || doc.first_child(e) == kNullNode) {
      // Heavy but childless cannot happen (weight > 1 implies children),
      // yet guard so a bad weight never produces wrong output.
      break;
    }
    std::vector<Segment> expansion;
    expansion.push_back({Segment::kStartTag, e, 0, {}, {}});
    for (NodeId c : ChildRange(doc, e)) {
      expansion.push_back({Segment::kSubtree, c, sizes[c], {}, {}});
    }
    expansion.push_back({Segment::kEndTag, e, 0, {}, {}});
    segs.erase(segs.begin() + static_cast<ptrdiff_t>(heaviest));
    segs.insert(segs.begin() + static_cast<ptrdiff_t>(heaviest),
                std::make_move_iterator(expansion.begin()),
                std::make_move_iterator(expansion.end()));
  }

  common::ParallelFor(pool, segs.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Segment& seg = segs[i];
      switch (seg.kind) {
        case Segment::kSubtree:
          seg.local_ranges.reserve(seg.weight);
          SerializeWithTriples(doc, seg.node, &seg.text, &seg.local_ranges);
          break;
        case Segment::kStartTag:
          AppendStartTag(doc, seg.node, &seg.text, /*self_closing=*/false);
          break;
        case Segment::kEndTag:
          AppendEndTag(doc, seg.node, &seg.text);
          break;
      }
    }
  });

  // Stitch: prefix-sum the segment buffers, then rebase every recorded
  // range. Split elements span from their start-tag segment to their
  // end-tag segment; splits nest, so a simple stack pairs them up.
  uint64_t base = out->size();
  std::vector<uint64_t> seg_start(segs.size() + 1, 0);
  seg_start[0] = base;
  for (size_t i = 0; i < segs.size(); ++i) {
    seg_start[i + 1] = seg_start[i] + segs[i].text.size();
  }
  out->reserve(static_cast<size_t>(seg_start.back()));
  std::vector<std::pair<NodeId, uint64_t>> open;  // (element, tag start)
  for (size_t i = 0; i < segs.size(); ++i) {
    const Segment& seg = segs[i];
    out->append(seg.text);
    switch (seg.kind) {
      case Segment::kSubtree:
        for (const auto& [node, s, e] : seg.local_ranges) {
          (*ranges)[node] = {seg_start[i] + s, seg_start[i] + e};
        }
        break;
      case Segment::kStartTag:
        open.emplace_back(seg.node, seg_start[i]);
        break;
      case Segment::kEndTag:
        (*ranges)[seg.node] = {open.back().second,
                               seg_start[i] + seg.text.size()};
        open.pop_back();
        break;
    }
  }
}

}  // namespace vpbn::xml
