#include "xml/serializer.h"

#include "common/str_util.h"

namespace vpbn::xml {

namespace {

void AppendStartTag(const Document& doc, NodeId node, std::string* out,
                    bool self_closing) {
  out->push_back('<');
  out->append(doc.name(node));
  for (const Attribute& a : doc.attributes(node)) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EscapeXmlAttribute(a.value));
    out->push_back('"');
  }
  if (self_closing) out->push_back('/');
  out->push_back('>');
}

void AppendEndTag(const Document& doc, NodeId node, std::string* out) {
  out->append("</");
  out->append(doc.name(node));
  out->push_back('>');
}

void SerializeCompact(const Document& doc, NodeId node, std::string* out) {
  if (doc.IsText(node)) {
    out->append(EscapeXmlText(doc.text(node)));
    return;
  }
  if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
    return;
  }
  AppendStartTag(doc, node, out, /*self_closing=*/false);
  for (NodeId c : ChildRange(doc, node)) SerializeCompact(doc, c, out);
  AppendEndTag(doc, node, out);
}

void SerializeIndented(const Document& doc, NodeId node, int depth,
                       std::string* out) {
  std::string pad(static_cast<size_t>(depth) * 2, ' ');
  if (doc.IsText(node)) {
    out->append(pad);
    out->append(EscapeXmlText(doc.text(node)));
    out->push_back('\n');
    return;
  }
  out->append(pad);
  if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
    out->push_back('\n');
    return;
  }
  // Single text child renders inline: <title>X</title>.
  NodeId only = doc.first_child(node);
  if (doc.next_sibling(only) == kNullNode && doc.IsText(only)) {
    AppendStartTag(doc, node, out, false);
    out->append(EscapeXmlText(doc.text(only)));
    AppendEndTag(doc, node, out);
    out->push_back('\n');
    return;
  }
  AppendStartTag(doc, node, out, false);
  out->push_back('\n');
  for (NodeId c : ChildRange(doc, node)) {
    SerializeIndented(doc, c, depth + 1, out);
  }
  out->append(pad);
  AppendEndTag(doc, node, out);
  out->push_back('\n');
}

}  // namespace

std::string SerializeNode(const Document& doc, NodeId node,
                          const SerializeOptions& options) {
  std::string out;
  if (options.indent) {
    SerializeIndented(doc, node, 0, &out);
  } else {
    SerializeCompact(doc, node, &out);
  }
  return out;
}

std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options) {
  std::string out;
  for (NodeId root : doc.roots()) {
    if (options.indent) {
      SerializeIndented(doc, root, 0, &out);
    } else {
      SerializeCompact(doc, root, &out);
    }
  }
  return out;
}

void SerializeWithRanges(const Document& doc, NodeId node, std::string* out,
                         std::vector<std::pair<uint64_t, uint64_t>>* ranges) {
  uint64_t start = out->size();
  if (doc.IsText(node)) {
    out->append(EscapeXmlText(doc.text(node)));
  } else if (doc.first_child(node) == kNullNode) {
    AppendStartTag(doc, node, out, /*self_closing=*/true);
  } else {
    AppendStartTag(doc, node, out, /*self_closing=*/false);
    for (NodeId c : ChildRange(doc, node)) {
      SerializeWithRanges(doc, c, out, ranges);
    }
    AppendEndTag(doc, node, out);
  }
  (*ranges)[node] = {start, out->size()};
}

}  // namespace vpbn::xml
