/// \file node.h
/// \brief Node identifiers and kinds for the XML data model.
///
/// The data model follows the paper's simplification (§4.1): element and text
/// nodes are first-class, numbered nodes; attributes are properties of
/// elements ("for brevity we ignore other kinds of nodes"). Comments,
/// processing instructions and the XML declaration are recognized by the
/// parser but not materialized.

#pragma once

#include <cstdint>
#include <string>

namespace vpbn::xml {

/// \brief Dense index of a node within its Document. Nodes created by the
/// parser are allocated in document (pre-)order.
using NodeId = uint32_t;

/// \brief Sentinel for "no node" (absent parent/sibling/child).
inline constexpr NodeId kNullNode = UINT32_MAX;

/// \brief Interned element-name identifier (see Document::name_table()).
using NameId = int32_t;

/// \brief Name id used for text nodes, which are unnamed. The paper renders
/// text-node types with the symbol '◦'.
inline constexpr NameId kTextName = -1;

/// \brief Kind of a data-model node.
enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
};

/// \brief One attribute of an element node.
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

}  // namespace vpbn::xml
