/// \file builder.h
/// \brief Fluent programmatic construction of Documents.
///
/// Used by tests and workload generators to build trees without going
/// through text:
/// \code
///   DocumentBuilder b;
///   b.Open("book").Attr("year", "1994")
///      .Open("title").Text("TCP/IP Illustrated").Close()
///    .Close();
///   Document doc = std::move(b).Finish();
/// \endcode

#pragma once

#include <cassert>
#include <string_view>
#include <vector>

#include "xml/document.h"

namespace vpbn::xml {

/// \brief Stack-based builder; Open pushes an element, Close pops it.
class DocumentBuilder {
 public:
  DocumentBuilder() = default;

  /// Open a child element under the current element (or a new root).
  DocumentBuilder& Open(std::string_view name) {
    NodeId parent = stack_.empty() ? kNullNode : stack_.back();
    stack_.push_back(doc_.AddElement(name, parent));
    return *this;
  }

  /// Add an attribute to the currently open element.
  DocumentBuilder& Attr(std::string_view name, std::string_view value) {
    assert(!stack_.empty() && "Attr() with no open element");
    doc_.AddAttribute(stack_.back(), name, value);
    return *this;
  }

  /// Add a text child to the currently open element.
  DocumentBuilder& Text(std::string_view content) {
    assert(!stack_.empty() && "Text() with no open element");
    doc_.AddText(content, stack_.back());
    return *this;
  }

  /// Add an element with a single text child: <name>text</name>.
  DocumentBuilder& Leaf(std::string_view name, std::string_view text) {
    Open(name);
    Text(text);
    return Close();
  }

  /// Close the currently open element.
  DocumentBuilder& Close() {
    assert(!stack_.empty() && "Close() with no open element");
    stack_.pop_back();
    return *this;
  }

  /// NodeId of the currently open element (for callers that need it).
  NodeId Current() const {
    assert(!stack_.empty());
    return stack_.back();
  }

  /// Number of currently open elements.
  size_t OpenDepth() const { return stack_.size(); }

  /// Finalize; all elements must be closed.
  Document Finish() && {
    assert(stack_.empty() && "Finish() with unclosed elements");
    return std::move(doc_);
  }

 private:
  Document doc_;
  std::vector<NodeId> stack_;
};

}  // namespace vpbn::xml
