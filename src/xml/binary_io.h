/// \file binary_io.h
/// \brief Binary snapshot codec for Documents.
///
/// A compact, versioned, varint-based encoding of a Document's node arena —
/// names interned once, structure as parent links (valid because arenas are
/// built parents-first). Loading skips XML lexing/entity work entirely;
/// numbering and indexes are rebuilt by StoredDocument::Build as usual.
///
/// Layout:
///   magic "VPBN" | version varint | name count | names (len+bytes)...
///   node count | per node: kind u8, name-id+1 varint, parent+1 varint,
///     text (len+bytes, text nodes only), attr count + (name,value) pairs
///   root count (consistency check)

#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/document.h"

namespace vpbn::xml {

/// \brief Serialize \p doc into the binary snapshot form.
std::string WriteBinary(const Document& doc);

/// \brief Reconstruct a Document from a snapshot. Fails with
/// InvalidArgument on corrupt or version-incompatible input.
Result<Document> ReadBinary(std::string_view data);

}  // namespace vpbn::xml
