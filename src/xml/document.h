/// \file document.h
/// \brief Arena-backed XML document (a forest of element/text trees).
///
/// A Document owns all of its nodes in a single arena addressed by NodeId.
/// The model is a *forest* to match the paper's data model instances and
/// DataGuides (§4.1), though documents produced by the parser have a single
/// root element.
///
/// Navigation is via parent / first-child / next-sibling links; helpers
/// provide child iteration, subtree size, depth and document-order
/// comparison. Documents are append-only: nodes are never deleted, which is
/// what makes NodeIds stable keys for the numbering and index layers.

#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/name_table.h"
#include "xml/node.h"

namespace vpbn::xml {

/// \brief Mutable (append-only) XML document arena.
class Document {
 public:
  Document() = default;

  // Movable but not copyable: copies of node arenas are almost always a
  // performance bug; use Clone() to be explicit.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Deep copy, preserving NodeIds.
  Document Clone() const;

  /// \name Construction
  /// @{

  /// Appends a new element named \p name as the last child of \p parent
  /// (kNullNode appends a new tree root).
  NodeId AddElement(std::string_view name, NodeId parent);

  /// Deserializer fast path: same as AddElement but with an id already
  /// interned in this document's name_table(), skipping the per-node hash
  /// lookup.
  NodeId AddElement(NameId name, NodeId parent);

  /// Appends a new text node with \p content under \p parent. Text roots are
  /// permitted in the forest model but unusual.
  NodeId AddText(std::string_view content, NodeId parent);

  /// Adds an attribute to element \p element.
  void AddAttribute(NodeId element, std::string_view name,
                    std::string_view value);

  /// Pre-sizes the node arena for \p n nodes (the parser calls this with an
  /// input-size heuristic so large documents avoid repeated arena regrowth).
  void ReserveNodes(size_t n) { nodes_.reserve(n); }
  /// @}

  /// \name Node accessors
  /// @{
  size_t num_nodes() const { return nodes_.size(); }

  NodeKind kind(NodeId id) const { return At(id).kind; }
  bool IsElement(NodeId id) const { return kind(id) == NodeKind::kElement; }
  bool IsText(NodeId id) const { return kind(id) == NodeKind::kText; }

  /// Interned name id (kTextName for text nodes).
  NameId name_id(NodeId id) const { return At(id).name; }

  /// Element name; empty string for text nodes.
  const std::string& name(NodeId id) const;

  /// Text content (text nodes only; empty for elements).
  const std::string& text(NodeId id) const { return At(id).text; }

  /// Attributes of an element (empty for text nodes).
  const std::vector<Attribute>& attributes(NodeId id) const {
    return At(id).attrs;
  }

  /// Value of attribute \p name on \p element, or NotFound.
  Result<std::string> AttributeValue(NodeId element,
                                     std::string_view name) const;

  NodeId parent(NodeId id) const { return At(id).parent; }
  NodeId first_child(NodeId id) const { return At(id).first_child; }
  NodeId last_child(NodeId id) const { return At(id).last_child; }
  NodeId next_sibling(NodeId id) const { return At(id).next_sibling; }
  NodeId prev_sibling(NodeId id) const { return At(id).prev_sibling; }

  /// Root nodes in insertion order.
  const std::vector<NodeId>& roots() const { return roots_; }
  /// @}

  /// \name Derived structure
  /// @{

  /// Children of \p id in sibling order (materializes a vector).
  std::vector<NodeId> Children(NodeId id) const;

  /// Number of children of \p id.
  size_t ChildCount(NodeId id) const;

  /// 1-based ordinal of \p id among its siblings (roots count as siblings of
  /// each other).
  uint32_t SiblingOrdinal(NodeId id) const;

  /// Depth: root nodes are at level 1 (the paper's convention).
  uint32_t Depth(NodeId id) const;

  /// Number of nodes in the subtree rooted at \p id (including \p id).
  size_t SubtreeSize(NodeId id) const;

  /// True iff \p ancestor is a proper ancestor of \p node.
  bool IsAncestor(NodeId ancestor, NodeId node) const;

  /// Pre-order (document-order) traversal of the whole forest.
  std::vector<NodeId> DocumentOrder() const;

  /// Concatenation of all text-node content in the subtree of \p id
  /// (the XPath string-value of an element).
  std::string StringValue(NodeId id) const;
  /// @}

  NameTable& name_table() { return names_; }
  const NameTable& name_table() const { return names_; }

  /// Approximate heap footprint in bytes (used by the space benchmark E5).
  size_t MemoryUsage() const;

 private:
  struct NodeData {
    NodeKind kind = NodeKind::kElement;
    NameId name = kTextName;
    NodeId parent = kNullNode;
    NodeId first_child = kNullNode;
    NodeId last_child = kNullNode;
    NodeId next_sibling = kNullNode;
    NodeId prev_sibling = kNullNode;
    std::string text;
    std::vector<Attribute> attrs;
  };

  const NodeData& At(NodeId id) const {
    assert(id < nodes_.size());
    return nodes_[id];
  }
  NodeData& At(NodeId id) {
    assert(id < nodes_.size());
    return nodes_[id];
  }

  NodeId Append(NodeData data, NodeId parent);

  std::vector<NodeData> nodes_;
  std::vector<NodeId> roots_;
  NameTable names_;
};

/// \brief Iterates the children of a node without materializing a vector.
///
/// \code
///   for (NodeId c : ChildRange(doc, parent)) { ... }
/// \endcode
class ChildRange {
 public:
  ChildRange(const Document& doc, NodeId parent)
      : doc_(&doc), first_(parent == kNullNode ? kNullNode
                                               : doc.first_child(parent)) {}

  class Iterator {
   public:
    Iterator(const Document* doc, NodeId cur) : doc_(doc), cur_(cur) {}
    NodeId operator*() const { return cur_; }
    Iterator& operator++() {
      cur_ = doc_->next_sibling(cur_);
      return *this;
    }
    bool operator!=(const Iterator& o) const { return cur_ != o.cur_; }

   private:
    const Document* doc_;
    NodeId cur_;
  };

  Iterator begin() const { return Iterator(doc_, first_); }
  Iterator end() const { return Iterator(doc_, kNullNode); }

 private:
  const Document* doc_;
  NodeId first_;
};

}  // namespace vpbn::xml
