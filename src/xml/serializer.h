/// \file serializer.h
/// \brief Serialize a Document (or subtree) back to XML text.
///
/// The compact form is canonical: parsing the output reproduces the same
/// tree (tested by the round-trip property tests). The storage layer (§6 of
/// the paper) uses the compact form as the "long string" representation and
/// records per-node byte ranges while serializing.

#pragma once

#include <string>

#include "common/thread_pool.h"
#include "xml/document.h"

namespace vpbn::xml {

/// \brief Serialization knobs.
struct SerializeOptions {
  /// Pretty-print with newlines and two-space indentation. The compact form
  /// (false) is the canonical storage form.
  bool indent = false;
};

/// \brief Serialize the subtree rooted at \p node.
std::string SerializeNode(const Document& doc, NodeId node,
                          const SerializeOptions& options = {});

/// \brief Serialize the whole forest (all roots in order).
std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options = {});

/// \brief Serialize the subtree at \p node, appending to \p out and recording
/// the byte range [start, end) of every visited node into \p ranges, indexed
/// by NodeId (ranges must be pre-sized to doc.num_nodes()).
void SerializeWithRanges(const Document& doc, NodeId node, std::string* out,
                         std::vector<std::pair<uint64_t, uint64_t>>* ranges);

/// \brief Serialize the whole forest in the compact storage form, recording
/// every node's byte range, with the work optionally fanned out on \p pool.
///
/// The forest is cut into document-ordered segments (subtree chunks plus
/// the start/end tags of the elements that were split open); each subtree
/// segment serializes independently into its own buffer and the buffers are
/// stitched with one offset fix-up pass. Output — both the string appended
/// to \p out and the \p ranges entries — is byte-identical to calling
/// SerializeWithRanges over the roots sequentially, for any pool and any
/// thread count. \p ranges must be pre-sized to doc.num_nodes().
void SerializeForestWithRanges(
    const Document& doc, common::ThreadPool* pool, std::string* out,
    std::vector<std::pair<uint64_t, uint64_t>>* ranges);

}  // namespace vpbn::xml
