/// \file serializer.h
/// \brief Serialize a Document (or subtree) back to XML text.
///
/// The compact form is canonical: parsing the output reproduces the same
/// tree (tested by the round-trip property tests). The storage layer (§6 of
/// the paper) uses the compact form as the "long string" representation and
/// records per-node byte ranges while serializing.

#pragma once

#include <string>

#include "xml/document.h"

namespace vpbn::xml {

/// \brief Serialization knobs.
struct SerializeOptions {
  /// Pretty-print with newlines and two-space indentation. The compact form
  /// (false) is the canonical storage form.
  bool indent = false;
};

/// \brief Serialize the subtree rooted at \p node.
std::string SerializeNode(const Document& doc, NodeId node,
                          const SerializeOptions& options = {});

/// \brief Serialize the whole forest (all roots in order).
std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options = {});

/// \brief Serialize the subtree at \p node, appending to \p out and recording
/// the byte range [start, end) of every visited node into \p ranges, indexed
/// by NodeId (ranges must be pre-sized to doc.num_nodes()).
void SerializeWithRanges(const Document& doc, NodeId node, std::string* out,
                         std::vector<std::pair<uint64_t, uint64_t>>* ranges);

}  // namespace vpbn::xml
