#include "xml/parser.h"

#include <string>
#include <vector>

#include "common/str_util.h"

namespace vpbn::xml {

namespace {

/// Recursive-descent parser holding cursor state and position tracking.
class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> Run() {
    Document doc;
    // Compact data-centric XML runs ~25–60 bytes per materialized node
    // (tags plus text, comments and attributes excluded). Reserving at the
    // dense end avoids repeated arena regrowth on multi-hundred-MB inputs
    // while bounding overshoot to the usual vector-doubling slack.
    doc.ReserveNodes(input_.size() / 24 + 8);
    SkipProlog();
    int roots = 0;
    while (!AtEnd()) {
      SkipMisc();
      if (AtEnd()) break;
      if (!LookingAt("<")) {
        return Error("content outside of a root element");
      }
      VPBN_RETURN_NOT_OK(ParseElement(&doc, kNullNode, /*depth=*/1));
      ++roots;
    }
    if (roots == 0) return Error("no root element");
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("xml:" + std::to_string(line_) + ":" +
                              std::to_string(col_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Skip the XML declaration, DOCTYPE, comments and PIs before the root.
  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<!DOCTYPE")) {
        SkipUntil(">");
      } else {
        return;
      }
    }
  }

  /// Skip whitespace, comments and PIs between trees.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<?")) {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    size_t target = (found == std::string_view::npos)
                        ? input_.size()
                        : found + terminator.size();
    Advance(target - pos_);
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    // Accept ':' inside names so namespace-prefixed documents parse; the
    // prefix is kept as part of the name (no namespace processing).
    while (!AtEnd() && (IsNameChar(Peek()) || Peek() == ':')) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  Status ParseAttributes(Document* doc, NodeId element) {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) return Status::OK();
      VPBN_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') return Error("'<' in attribute value");
        Advance();
      }
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value = UnescapeXml(input_.substr(start, pos_ - start));
      Advance();  // closing quote
      for (const Attribute& a : doc->attributes(element)) {
        if (a.name == name) {
          return Error("duplicate attribute '" + name + "'");
        }
      }
      doc->AddAttribute(element, name, value);
    }
  }

  Status ParseElement(Document* doc, NodeId parent, int depth) {
    if (depth > options_.max_depth) {
      return Status::ResourceExhausted(
          "xml: element nesting exceeds max_depth=" +
          std::to_string(options_.max_depth));
    }
    // Caller guarantees we are looking at '<'.
    Advance();
    VPBN_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodeId element = doc->AddElement(name, parent);
    VPBN_RETURN_NOT_OK(ParseAttributes(doc, element));
    if (LookingAt("/>")) {
      Advance(2);
      return Status::OK();
    }
    if (AtEnd() || Peek() != '>') return Error("expected '>'");
    Advance();
    return ParseContent(doc, element, name, depth);
  }

  Status ParseContent(Document* doc, NodeId element,
                      const std::string& element_name, int depth) {
    // One buffer for the whole parse: text is always flushed before
    // recursing into a child element, so nested frames never interleave
    // writes, and the retained capacity makes text accumulation
    // allocation-free after the first large text node.
    std::string& pending_text = text_buf_;
    pending_text.clear();
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!options_.skip_whitespace_text ||
          !TrimWhitespace(pending_text).empty()) {
        doc->AddText(UnescapeXml(pending_text), element);
      }
      pending_text.clear();
    };
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + element_name + ">");
      if (Peek() == '<') {
        if (LookingAt("</")) {
          flush_text();
          Advance(2);
          VPBN_ASSIGN_OR_RETURN(std::string close, ParseName());
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Error("expected '>'");
          Advance();
          if (close != element_name) {
            return Error("mismatched end tag </" + close + ">, expected </" +
                         element_name + ">");
          }
          return Status::OK();
        }
        if (LookingAt("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (LookingAt("<![CDATA[")) {
          Advance(9);
          size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          // CDATA is literal text; append raw (no entity decoding) by
          // escaping nothing — pending_text is unescaped at flush, so
          // re-escape '&' to survive the round trip.
          std::string_view raw = input_.substr(pos_, end - pos_);
          for (char c : raw) {
            if (c == '&') {
              pending_text += "&amp;";
            } else if (c == '<') {
              pending_text += "&lt;";
            } else {
              pending_text.push_back(c);
            }
          }
          Advance(end + 3 - pos_);
          continue;
        }
        if (LookingAt("<?")) {
          SkipUntil("?>");
          continue;
        }
        flush_text();
        VPBN_RETURN_NOT_OK(ParseElement(doc, element, depth + 1));
        continue;
      }
      // Append the whole run up to the next markup character at once
      // instead of byte-at-a-time push_backs.
      size_t next = input_.find('<', pos_);
      if (next == std::string_view::npos) next = input_.size();
      pending_text.append(input_.substr(pos_, next - pos_));
      Advance(next - pos_);
    }
  }

  std::string_view input_;
  const ParseOptions& options_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  std::string text_buf_;  // reused pending-text accumulator (ParseContent)
};

}  // namespace

Result<Document> Parse(std::string_view input, const ParseOptions& options) {
  return ParserImpl(input, options).Run();
}

}  // namespace vpbn::xml
