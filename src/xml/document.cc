#include "xml/document.h"

namespace vpbn::xml {

Document Document::Clone() const {
  Document copy;
  copy.nodes_ = nodes_;
  copy.roots_ = roots_;
  copy.names_ = names_;
  return copy;
}

NodeId Document::Append(NodeData data, NodeId parent) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  data.parent = parent;
  if (parent == kNullNode) {
    if (!roots_.empty()) {
      NodeId prev = roots_.back();
      nodes_[prev].next_sibling = id;
      data.prev_sibling = prev;
    }
    roots_.push_back(id);
  } else {
    NodeData& p = At(parent);
    assert(p.kind == NodeKind::kElement && "text nodes cannot have children");
    if (p.last_child == kNullNode) {
      p.first_child = id;
    } else {
      nodes_[p.last_child].next_sibling = id;
      data.prev_sibling = p.last_child;
    }
    p.last_child = id;
  }
  nodes_.push_back(std::move(data));
  return id;
}

NodeId Document::AddElement(std::string_view name, NodeId parent) {
  NodeData data;
  data.kind = NodeKind::kElement;
  data.name = names_.Intern(name);
  return Append(std::move(data), parent);
}

NodeId Document::AddElement(NameId name, NodeId parent) {
  assert(static_cast<size_t>(name) < names_.size());
  NodeData data;
  data.kind = NodeKind::kElement;
  data.name = name;
  return Append(std::move(data), parent);
}

NodeId Document::AddText(std::string_view content, NodeId parent) {
  NodeData data;
  data.kind = NodeKind::kText;
  data.text.assign(content);
  return Append(std::move(data), parent);
}

void Document::AddAttribute(NodeId element, std::string_view name,
                            std::string_view value) {
  assert(IsElement(element));
  At(element).attrs.push_back(
      Attribute{std::string(name), std::string(value)});
}

const std::string& Document::name(NodeId id) const {
  static const std::string kEmpty;
  NameId nid = At(id).name;
  return nid == kTextName ? kEmpty : names_.name(nid);
}

Result<std::string> Document::AttributeValue(NodeId element,
                                             std::string_view name) const {
  for (const Attribute& a : At(element).attrs) {
    if (a.name == name) return a.value;
  }
  return Status::NotFound("attribute '" + std::string(name) + "' not present");
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = At(id).first_child; c != kNullNode;
       c = At(c).next_sibling) {
    out.push_back(c);
  }
  return out;
}

size_t Document::ChildCount(NodeId id) const {
  size_t n = 0;
  for (NodeId c = At(id).first_child; c != kNullNode;
       c = At(c).next_sibling) {
    ++n;
  }
  return n;
}

uint32_t Document::SiblingOrdinal(NodeId id) const {
  uint32_t ord = 1;
  for (NodeId s = At(id).prev_sibling; s != kNullNode;
       s = At(s).prev_sibling) {
    ++ord;
  }
  return ord;
}

uint32_t Document::Depth(NodeId id) const {
  uint32_t d = 1;
  for (NodeId p = At(id).parent; p != kNullNode; p = At(p).parent) ++d;
  return d;
}

size_t Document::SubtreeSize(NodeId id) const {
  size_t n = 1;
  for (NodeId c = At(id).first_child; c != kNullNode;
       c = At(c).next_sibling) {
    n += SubtreeSize(c);
  }
  return n;
}

bool Document::IsAncestor(NodeId ancestor, NodeId node) const {
  for (NodeId p = At(node).parent; p != kNullNode; p = At(p).parent) {
    if (p == ancestor) return true;
  }
  return false;
}

std::vector<NodeId> Document::DocumentOrder() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  std::vector<NodeId> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    // Push children in reverse so they pop in sibling order.
    std::vector<NodeId> kids = Children(id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::string Document::StringValue(NodeId id) const {
  if (IsText(id)) return At(id).text;
  std::string out;
  for (NodeId c = At(id).first_child; c != kNullNode;
       c = At(c).next_sibling) {
    out += StringValue(c);
  }
  return out;
}

size_t Document::MemoryUsage() const {
  size_t total = nodes_.capacity() * sizeof(NodeData) +
                 roots_.capacity() * sizeof(NodeId);
  for (const NodeData& n : nodes_) {
    total += n.text.capacity();
    total += n.attrs.capacity() * sizeof(Attribute);
    for (const Attribute& a : n.attrs) {
      total += a.name.capacity() + a.value.capacity();
    }
  }
  return total;
}

}  // namespace vpbn::xml
