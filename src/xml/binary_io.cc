#include "xml/binary_io.h"

#include <algorithm>

#include "common/varint.h"

namespace vpbn::xml {

namespace {

constexpr std::string_view kMagic = "VPBN";
constexpr uint32_t kVersion = 1;

void PutString(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string_view> GetString(std::string_view* in) {
  VPBN_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(in));
  if (len > in->size()) {
    return Status::InvalidArgument("binary document: truncated string");
  }
  std::string_view s = in->substr(0, len);
  in->remove_prefix(len);
  return s;
}

}  // namespace

std::string WriteBinary(const Document& doc) {
  std::string out;
  out.append(kMagic);
  PutVarint32(&out, kVersion);

  const NameTable& names = doc.name_table();
  PutVarint64(&out, names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    PutString(&out, names.name(static_cast<NameId>(i)));
  }

  PutVarint64(&out, doc.num_nodes());
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    out.push_back(static_cast<char>(doc.kind(id)));
    PutVarint32(&out, static_cast<uint32_t>(doc.name_id(id) + 1));
    NodeId parent = doc.parent(id);
    PutVarint32(&out, parent == kNullNode ? 0 : parent + 1);
    if (doc.IsText(id)) {
      PutString(&out, doc.text(id));
    }
    const auto& attrs = doc.attributes(id);
    PutVarint64(&out, attrs.size());
    for (const Attribute& a : attrs) {
      PutString(&out, a.name);
      PutString(&out, a.value);
    }
  }
  PutVarint64(&out, doc.roots().size());
  return out;
}

Result<Document> ReadBinary(std::string_view data) {
  if (data.substr(0, kMagic.size()) != kMagic) {
    return Status::InvalidArgument("binary document: bad magic");
  }
  data.remove_prefix(kMagic.size());
  VPBN_ASSIGN_OR_RETURN(uint32_t version, GetVarint32(&data));
  if (version != kVersion) {
    return Status::InvalidArgument("binary document: unsupported version " +
                                   std::to_string(version));
  }

  VPBN_ASSIGN_OR_RETURN(uint64_t name_count, GetVarint64(&data));
  Document doc;
  // Intern the whole name table up front (it is written in NameId order,
  // so interning reproduces the recorded ids) and refer to names by id in
  // the node loop — one hash lookup per distinct name instead of one per
  // element. The reserve is capped by what the input could possibly hold,
  // so a corrupt count cannot force a giant allocation before the
  // per-entry reads run out of bytes.
  std::vector<NameId> name_ids;
  name_ids.reserve(static_cast<size_t>(
      std::min<uint64_t>(name_count, data.size())));
  for (uint64_t i = 0; i < name_count; ++i) {
    VPBN_ASSIGN_OR_RETURN(std::string_view s, GetString(&data));
    name_ids.push_back(doc.name_table().Intern(s));
  }

  VPBN_ASSIGN_OR_RETURN(uint64_t node_count, GetVarint64(&data));
  // Every node costs at least three bytes (kind + two varints), so
  // data.size() / 3 bounds any count a valid stream can carry.
  doc.ReserveNodes(static_cast<size_t>(
      std::min<uint64_t>(node_count, data.size() / 3 + 1)));
  for (uint64_t id = 0; id < node_count; ++id) {
    if (data.empty()) {
      return Status::InvalidArgument("binary document: truncated node");
    }
    auto kind = static_cast<NodeKind>(data[0]);
    data.remove_prefix(1);
    VPBN_ASSIGN_OR_RETURN(uint32_t name_plus1, GetVarint32(&data));
    VPBN_ASSIGN_OR_RETURN(uint32_t parent_plus1, GetVarint32(&data));
    NodeId parent = parent_plus1 == 0 ? kNullNode : parent_plus1 - 1;
    if (parent != kNullNode && parent >= id) {
      return Status::InvalidArgument(
          "binary document: parent appears after child");
    }
    if (parent != kNullNode && !doc.IsElement(parent)) {
      return Status::InvalidArgument(
          "binary document: text node used as a parent");
    }
    NodeId created;
    if (kind == NodeKind::kText) {
      VPBN_ASSIGN_OR_RETURN(std::string_view text, GetString(&data));
      created = doc.AddText(text, parent);
    } else if (kind == NodeKind::kElement) {
      if (name_plus1 == 0 || name_plus1 > name_ids.size()) {
        return Status::InvalidArgument("binary document: bad name id");
      }
      created = doc.AddElement(name_ids[name_plus1 - 1], parent);
    } else {
      return Status::InvalidArgument("binary document: bad node kind");
    }
    VPBN_ASSIGN_OR_RETURN(uint64_t attr_count, GetVarint64(&data));
    if (kind == NodeKind::kText && attr_count != 0) {
      return Status::InvalidArgument(
          "binary document: text node carries attributes");
    }
    for (uint64_t a = 0; a < attr_count; ++a) {
      VPBN_ASSIGN_OR_RETURN(std::string_view aname, GetString(&data));
      VPBN_ASSIGN_OR_RETURN(std::string_view avalue, GetString(&data));
      doc.AddAttribute(created, aname, avalue);
    }
    if (created != id) {
      return Status::Internal("binary document: id drift");
    }
  }
  VPBN_ASSIGN_OR_RETURN(uint64_t root_count, GetVarint64(&data));
  if (root_count != doc.roots().size()) {
    return Status::InvalidArgument("binary document: root count mismatch");
  }
  if (!data.empty()) {
    return Status::InvalidArgument("binary document: trailing bytes");
  }
  return doc;
}

}  // namespace vpbn::xml
