#include "xquery/xq_engine.h"

#include <algorithm>
#include <set>

#include "vpbn/virtual_value.h"
#include "xml/serializer.h"
#include "xquery/xq_parser.h"

namespace vpbn::xq {

Status Engine::RegisterDocument(const std::string& name,
                                const xml::Document* doc) {
  if (doc == nullptr) return Status::InvalidArgument("null document");
  if (sources_.count(name) > 0) {
    return Status::InvalidArgument("document '" + name +
                                   "' already registered");
  }
  Source src;
  src.doc = doc;
  src.stored = std::make_unique<storage::StoredDocument>(
      storage::StoredDocument::Build(*doc));
  sources_.emplace(name, std::move(src));
  return Status::OK();
}

Result<const storage::StoredDocument*> Engine::Stored(
    const std::string& name) const {
  auto it = sources_.find(name);
  if (it == sources_.end()) {
    return Status::NotFound("no document registered as '" + name + "'");
  }
  return it->second.stored.get();
}

Result<virt::VirtualDocument*> Engine::View(const std::string& doc_name,
                                            const std::string& spec) {
  auto it = sources_.find(doc_name);
  if (it == sources_.end()) {
    return Status::NotFound("no document registered as '" + doc_name + "'");
  }
  auto view_it = it->second.views.find(spec);
  if (view_it == it->second.views.end()) {
    VPBN_ASSIGN_OR_RETURN(virt::VirtualDocument view,
                          virt::VirtualDocument::Open(*it->second.stored,
                                                      spec));
    view_it = it->second.views
                  .emplace(spec, std::make_unique<virt::VirtualDocument>(
                                     std::move(view)))
                  .first;
  }
  return view_it->second.get();
}

Result<Sequence> Engine::Run(std::string_view query_text) {
  VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> query,
                        ParseQuery(query_text));
  return Run(*query);
}

Result<Sequence> Engine::Run(const XqExpr& query) {
  Env env;
  return EvalExpr(query, &env);
}

Result<std::string> Engine::RunToXml(std::string_view query_text) {
  VPBN_ASSIGN_OR_RETURN(Sequence seq, Run(query_text));
  std::string out;
  for (const Item& item : seq) out += ItemToXml(item);
  return out;
}

std::string Engine::ItemToXml(const Item& item) const {
  switch (item.kind) {
    case Item::Kind::kNode:
      return xml::SerializeNode(*item.doc, item.node);
    case Item::Kind::kVirtualNode: {
      virt::VirtualValueComputer values(*item.vdoc);
      return values.Value(item.vnode);
    }
    case Item::Kind::kString:
      return item.str;
    case Item::Kind::kNumber:
      if (item.num == static_cast<int64_t>(item.num)) {
        return std::to_string(static_cast<int64_t>(item.num));
      }
      return std::to_string(item.num);
  }
  return "";
}

std::string Engine::ItemStringValue(const Item& item) const {
  switch (item.kind) {
    case Item::Kind::kNode:
      return item.doc->StringValue(item.node);
    case Item::Kind::kVirtualNode:
      return item.vdoc->StringValue(item.vnode);
    case Item::Kind::kString:
      return item.str;
    case Item::Kind::kNumber:
      if (item.num == static_cast<int64_t>(item.num)) {
        return std::to_string(static_cast<int64_t>(item.num));
      }
      return std::to_string(item.num);
  }
  return "";
}

const query::NavAdapter& Engine::NavFor(const xml::Document& doc) {
  auto it = nav_cache_.find(&doc);
  if (it == nav_cache_.end() || it->second.first != doc.num_nodes()) {
    nav_cache_[&doc] = {doc.num_nodes(),
                        std::make_unique<query::NavAdapter>(doc)};
    it = nav_cache_.find(&doc);
  }
  return *it->second.second;
}

namespace {

/// A path ending in `@name` atomizes to attribute values; every other path
/// yields nodes. Returns the number of steps to evaluate as navigation.
bool AttributeTerminal(const query::Path& path, size_t* nav_steps,
                       const std::string** attr_name) {
  if (!path.steps.empty() &&
      path.steps.back().axis == num::Axis::kAttribute) {
    *nav_steps = path.steps.size() - 1;
    *attr_name = &path.steps.back().test.name;
    return true;
  }
  *nav_steps = path.steps.size();
  *attr_name = nullptr;
  return false;
}

}  // namespace

Result<Sequence> Engine::ApplyPathToItem(const query::Path& path,
                                         const Item& item) {
  Sequence out;
  size_t nav_steps = 0;
  const std::string* attr_name = nullptr;
  bool attr_terminal = AttributeTerminal(path, &nav_steps, &attr_name);

  if (item.kind == Item::Kind::kNode) {
    const query::NavAdapter& adapter = NavFor(*item.doc);
    query::PathEvaluator<query::NavAdapter> eval(adapter);
    VPBN_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                          eval.EvalPrefixFrom(path, nav_steps, item.node));
    for (xml::NodeId n : nodes) {
      if (attr_terminal) {
        auto value = adapter.Attribute(n, *attr_name);
        if (!value.ok()) continue;  // absent attribute: contributes nothing
        Item it;
        it.kind = Item::Kind::kString;
        it.str = std::move(value).ValueUnsafe();
        out.push_back(std::move(it));
      } else {
        Item it;
        it.kind = Item::Kind::kNode;
        it.doc = item.doc;
        it.node = n;
        out.push_back(std::move(it));
      }
    }
    return out;
  }
  if (item.kind == Item::Kind::kVirtualNode) {
    query::VirtualAdapter adapter(*item.vdoc);
    query::PathEvaluator<query::VirtualAdapter> eval(adapter);
    VPBN_ASSIGN_OR_RETURN(std::vector<virt::VirtualNode> nodes,
                          eval.EvalPrefixFrom(path, nav_steps, item.vnode));
    for (const virt::VirtualNode& n : nodes) {
      if (attr_terminal) {
        auto value = adapter.Attribute(n, *attr_name);
        if (!value.ok()) continue;
        Item it;
        it.kind = Item::Kind::kString;
        it.str = std::move(value).ValueUnsafe();
        out.push_back(std::move(it));
      } else {
        Item it;
        it.kind = Item::Kind::kVirtualNode;
        it.vdoc = item.vdoc;
        it.vnode = n;
        out.push_back(std::move(it));
      }
    }
    return out;
  }
  return Status::InvalidArgument("cannot navigate from an atomic value");
}

Status Engine::AppendItemCopy(xml::Document* out, xml::NodeId parent,
                              const Item& item) {
  switch (item.kind) {
    case Item::Kind::kNode: {
      // Deep copy of the physical subtree.
      const xml::Document& src = *item.doc;
      struct Frame {
        xml::NodeId src_node;
        xml::NodeId dst_parent;
      };
      std::vector<Frame> stack{{item.node, parent}};
      while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        xml::NodeId copy;
        if (src.IsText(f.src_node)) {
          copy = out->AddText(src.text(f.src_node), f.dst_parent);
        } else {
          copy = out->AddElement(src.name(f.src_node), f.dst_parent);
          for (const xml::Attribute& a : src.attributes(f.src_node)) {
            out->AddAttribute(copy, a.name, a.value);
          }
        }
        ++stats_.materialized_nodes;
        std::vector<xml::NodeId> kids = src.Children(f.src_node);
        for (size_t i = kids.size(); i > 0; --i) {
          stack.push_back({kids[i - 1], copy});
        }
      }
      return Status::OK();
    }
    case Item::Kind::kVirtualNode: {
      // Deep copy of the *virtual* subtree (instantiates the view).
      const virt::VirtualDocument& vdoc = *item.vdoc;
      const xml::Document& src = vdoc.stored().doc();
      struct Frame {
        virt::VirtualNode src_node;
        xml::NodeId dst_parent;
      };
      std::vector<Frame> stack{{item.vnode, parent}};
      while (!stack.empty()) {
        Frame f = stack.back();
        stack.pop_back();
        xml::NodeId copy;
        if (src.IsText(f.src_node.node)) {
          copy = out->AddText(src.text(f.src_node.node), f.dst_parent);
        } else {
          copy = out->AddElement(src.name(f.src_node.node), f.dst_parent);
          for (const xml::Attribute& a : src.attributes(f.src_node.node)) {
            out->AddAttribute(copy, a.name, a.value);
          }
        }
        ++stats_.materialized_nodes;
        std::vector<virt::VirtualNode> kids = vdoc.Children(f.src_node);
        for (size_t i = kids.size(); i > 0; --i) {
          stack.push_back({kids[i - 1], copy});
        }
      }
      return Status::OK();
    }
    case Item::Kind::kString:
      out->AddText(item.str, parent);
      return Status::OK();
    case Item::Kind::kNumber:
      out->AddText(ItemStringValue(item), parent);
      return Status::OK();
  }
  return Status::Internal("unreachable item kind");
}

Result<Item> Engine::ConstructElement(const XqExpr& ctor, Env* env) {
  constructed_.push_back(std::make_unique<xml::Document>());
  ++stats_.constructed_documents;
  xml::Document* doc = constructed_.back().get();
  xml::NodeId root = doc->AddElement(ctor.elem_name, xml::kNullNode);
  for (const auto& [name, value] : ctor.attrs) {
    doc->AddAttribute(root, name, value);
  }
  for (const Content& c : ctor.content) {
    switch (c.kind) {
      case Content::Kind::kText:
        doc->AddText(c.text, root);
        break;
      case Content::Kind::kExpr:
      case Content::Kind::kElement: {
        VPBN_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(*c.expr, env));
        for (const Item& item : seq) {
          VPBN_RETURN_NOT_OK(AppendItemCopy(doc, root, item));
        }
        break;
      }
    }
  }
  Item out;
  out.kind = Item::Kind::kNode;
  out.doc = doc;
  out.node = root;
  return out;
}

Result<bool> Engine::Truthy(const XqExpr& expr, Env* env) {
  VPBN_ASSIGN_OR_RETURN(Sequence seq, EvalExpr(expr, env));
  if (seq.empty()) return false;
  if (seq.size() == 1) {
    const Item& item = seq[0];
    if (item.kind == Item::Kind::kString) return !item.str.empty();
    if (item.kind == Item::Kind::kNumber) return item.num != 0;
  }
  return true;  // non-empty node sequence
}

Result<Sequence> Engine::EvalFlwr(const XqExpr& flwr, Env* env) {
  if (flwr.order_by == nullptr) {
    return EvalFors(flwr, 0, env, /*ordered=*/nullptr);
  }
  std::vector<OrderedChunk> chunks;
  VPBN_ASSIGN_OR_RETURN(Sequence unused, EvalFors(flwr, 0, env, &chunks));
  (void)unused;
  // Numeric-aware, stable sort (XQuery sorts by typed value; our subset
  // compares numerically when both keys parse as numbers, lexicographically
  // otherwise — CompareValues cannot be used here since XPath relational
  // comparison of non-numeric strings is always false).
  std::stable_sort(chunks.begin(), chunks.end(),
                   [&](const OrderedChunk& a, const OrderedChunk& b) {
                     return query::OrderLess(a.key, b.key);
                   });
  if (flwr.order_descending) {
    std::reverse(chunks.begin(), chunks.end());
  }
  Sequence out;
  for (OrderedChunk& c : chunks) {
    for (Item& item : c.result) out.push_back(std::move(item));
  }
  return out;
}

Result<Sequence> Engine::EvalFors(const XqExpr& flwr, size_t idx, Env* env,
                                  std::vector<OrderedChunk>* ordered) {
  if (idx < flwr.fors.size()) {
    const Binding& b = flwr.fors[idx];
    VPBN_ASSIGN_OR_RETURN(Sequence domain, EvalExpr(*b.expr, env));
    Sequence out;
    for (Item& item : domain) {
      (*env)[b.var] = Sequence{item};
      auto inner = EvalFors(flwr, idx + 1, env, ordered);
      if (!inner.ok()) {
        env->erase(b.var);
        return inner.status();
      }
      for (Item& r : *inner) out.push_back(std::move(r));
    }
    env->erase(b.var);
    return out;
  }
  // All fors bound: evaluate lets, where, (order key,) return.
  std::vector<std::string> bound_lets;
  auto cleanup = [&] {
    for (const std::string& v : bound_lets) env->erase(v);
  };
  for (const Binding& b : flwr.lets) {
    auto seq = EvalExpr(*b.expr, env);
    if (!seq.ok()) {
      cleanup();
      return seq.status();
    }
    (*env)[b.var] = std::move(seq).ValueUnsafe();
    bound_lets.push_back(b.var);
  }
  Sequence out;
  bool keep = true;
  if (flwr.where != nullptr) {
    auto t = Truthy(*flwr.where, env);
    if (!t.ok()) {
      cleanup();
      return t.status();
    }
    keep = t.value();
  }
  if (keep) {
    auto r = EvalExpr(*flwr.ret, env);
    if (!r.ok()) {
      cleanup();
      return r.status();
    }
    if (ordered != nullptr) {
      auto key_seq = EvalExpr(*flwr.order_by, env);
      if (!key_seq.ok()) {
        cleanup();
        return key_seq.status();
      }
      OrderedChunk chunk;
      chunk.key =
          key_seq->empty() ? "" : ItemStringValue(key_seq->front());
      chunk.result = std::move(r).ValueUnsafe();
      ordered->push_back(std::move(chunk));
    } else {
      out = std::move(r).ValueUnsafe();
    }
  }
  cleanup();
  return out;
}

Result<Sequence> Engine::EvalExpr(const XqExpr& expr, Env* env) {
  Sequence out;
  switch (expr.kind) {
    case XqExpr::Kind::kFlwr:
      return EvalFlwr(expr, env);
    case XqExpr::Kind::kDoc: {
      auto it = sources_.find(expr.doc_name);
      if (it == sources_.end()) {
        return Status::NotFound("no document registered as '" +
                                expr.doc_name + "'");
      }
      if (!expr.has_path) {
        for (xml::NodeId r : it->second.doc->roots()) {
          Item item;
          item.kind = Item::Kind::kNode;
          item.doc = it->second.doc;
          item.node = r;
          out.push_back(std::move(item));
        }
        return out;
      }
      // Navigate through the PBN indexes of the stored form.
      size_t nav_steps = 0;
      const std::string* attr_name = nullptr;
      bool attr_terminal =
          AttributeTerminal(expr.path, &nav_steps, &attr_name);
      query::IndexedAdapter adapter(*it->second.stored);
      query::PathEvaluator<query::IndexedAdapter> eval(adapter);
      VPBN_ASSIGN_OR_RETURN(std::vector<num::Pbn> pbns,
                            eval.EvalPrefix(expr.path, nav_steps));
      for (const num::Pbn& p : pbns) {
        if (attr_terminal) {
          auto value = adapter.Attribute(p, *attr_name);
          if (!value.ok()) continue;
          Item item;
          item.kind = Item::Kind::kString;
          item.str = std::move(value).ValueUnsafe();
          out.push_back(std::move(item));
        } else {
          Item item;
          item.kind = Item::Kind::kNode;
          item.doc = it->second.doc;
          item.node = it->second.stored->numbering().NodeOf(p).value();
          out.push_back(std::move(item));
        }
      }
      return out;
    }
    case XqExpr::Kind::kVirtualDoc: {
      VPBN_ASSIGN_OR_RETURN(virt::VirtualDocument * view,
                            View(expr.doc_name, expr.vdg_spec));
      std::vector<virt::VirtualNode> nodes;
      bool attr_terminal = false;
      size_t nav_steps = 0;
      const std::string* attr_name = nullptr;
      query::VirtualAdapter adapter(*view);
      if (expr.has_path) {
        attr_terminal = AttributeTerminal(expr.path, &nav_steps, &attr_name);
        query::PathEvaluator<query::VirtualAdapter> eval(adapter);
        VPBN_ASSIGN_OR_RETURN(nodes, eval.EvalPrefix(expr.path, nav_steps));
      } else {
        nodes = view->Roots();
      }
      for (const virt::VirtualNode& n : nodes) {
        if (attr_terminal) {
          auto value = adapter.Attribute(n, *attr_name);
          if (!value.ok()) continue;
          Item item;
          item.kind = Item::Kind::kString;
          item.str = std::move(value).ValueUnsafe();
          out.push_back(std::move(item));
        } else {
          Item item;
          item.kind = Item::Kind::kVirtualNode;
          item.vdoc = view;
          item.vnode = n;
          out.push_back(std::move(item));
        }
      }
      return out;
    }
    case XqExpr::Kind::kVarPath: {
      auto it = env->find(expr.var);
      if (it == env->end()) {
        return Status::NotFound("unbound variable $" + expr.var);
      }
      if (!expr.has_path) return it->second;
      for (const Item& item : it->second) {
        VPBN_ASSIGN_OR_RETURN(Sequence part,
                              ApplyPathToItem(expr.path, item));
        for (Item& r : part) out.push_back(std::move(r));
      }
      return out;
    }
    case XqExpr::Kind::kInnerPath: {
      VPBN_ASSIGN_OR_RETURN(Sequence inner, EvalExpr(*expr.lhs, env));
      if (!expr.has_path) return inner;
      // Materialize the inner sequence into a fresh document — the paper's
      // "two passes over the data" baseline (§2) — then navigate it.
      constructed_.push_back(std::make_unique<xml::Document>());
      ++stats_.constructed_documents;
      xml::Document* doc = constructed_.back().get();
      for (const Item& item : inner) {
        VPBN_RETURN_NOT_OK(AppendItemCopy(doc, xml::kNullNode, item));
      }
      VPBN_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                            query::EvalNav(*doc, expr.path));
      for (xml::NodeId n : nodes) {
        Item item;
        item.kind = Item::Kind::kNode;
        item.doc = doc;
        item.node = n;
        out.push_back(std::move(item));
      }
      return out;
    }
    case XqExpr::Kind::kCount: {
      VPBN_ASSIGN_OR_RETURN(Sequence inner, EvalExpr(*expr.lhs, env));
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = static_cast<double>(inner.size());
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kAggregate: {
      VPBN_ASSIGN_OR_RETURN(Sequence inner, EvalExpr(*expr.lhs, env));
      // Non-numeric values make an aggregate an error (strict, unlike
      // XPath 1.0's NaN propagation — easier to debug).
      std::vector<double> values;
      for (const Item& item : inner) {
        double v = 0;
        std::string s = ItemStringValue(item);
        if (!query::ToNumber(s, &v)) {
          return Status::InvalidArgument("aggregate " + expr.str +
                                         "() over non-numeric value '" + s +
                                         "'");
        }
        values.push_back(v);
      }
      if (values.empty() && expr.str != "sum") {
        return out;  // min/max/avg of an empty sequence is empty
      }
      double result = 0;
      if (expr.str == "sum") {
        for (double v : values) result += v;
      } else if (expr.str == "min") {
        result = *std::min_element(values.begin(), values.end());
      } else if (expr.str == "max") {
        result = *std::max_element(values.begin(), values.end());
      } else {  // avg
        for (double v : values) result += v;
        result /= static_cast<double>(values.size());
      }
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = result;
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kDistinct: {
      VPBN_ASSIGN_OR_RETURN(Sequence inner, EvalExpr(*expr.lhs, env));
      std::set<std::string> seen;
      for (const Item& item : inner) {
        std::string value = ItemStringValue(item);
        if (!seen.insert(value).second) continue;
        Item atom;
        atom.kind = Item::Kind::kString;
        atom.str = std::move(value);
        out.push_back(std::move(atom));
      }
      return out;
    }
    case XqExpr::Kind::kContains: {
      VPBN_ASSIGN_OR_RETURN(Sequence hay, EvalExpr(*expr.lhs, env));
      VPBN_ASSIGN_OR_RETURN(Sequence needle, EvalExpr(*expr.rhs, env));
      std::string needle_str =
          needle.empty() ? "" : ItemStringValue(needle[0]);
      bool hit = false;
      for (const Item& h : hay) {
        if (ItemStringValue(h).find(needle_str) != std::string::npos) {
          hit = true;
        }
      }
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = hit ? 1 : 0;
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kStringFn: {
      VPBN_ASSIGN_OR_RETURN(Sequence inner, EvalExpr(*expr.lhs, env));
      Item item;
      item.kind = Item::Kind::kString;
      item.str = inner.empty() ? "" : ItemStringValue(inner[0]);
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kString: {
      Item item;
      item.kind = Item::Kind::kString;
      item.str = expr.str;
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kNumber: {
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = expr.num;
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kElemCtor: {
      VPBN_ASSIGN_OR_RETURN(Item item, ConstructElement(expr, env));
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kCompare: {
      VPBN_ASSIGN_OR_RETURN(Sequence lhs, EvalExpr(*expr.lhs, env));
      VPBN_ASSIGN_OR_RETURN(Sequence rhs, EvalExpr(*expr.rhs, env));
      bool hit = false;
      // Existential comparison over string values (XPath convention).
      for (const Item& l : lhs) {
        for (const Item& r : rhs) {
          if (query::CompareValues(ItemStringValue(l), expr.op,
                                   ItemStringValue(r))) {
            hit = true;
          }
        }
      }
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = hit ? 1 : 0;
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kAnd:
    case XqExpr::Kind::kOr: {
      VPBN_ASSIGN_OR_RETURN(bool l, Truthy(*expr.lhs, env));
      bool value;
      if (expr.kind == XqExpr::Kind::kAnd) {
        if (!l) {
          value = false;
        } else {
          VPBN_ASSIGN_OR_RETURN(bool r, Truthy(*expr.rhs, env));
          value = r;
        }
      } else {
        if (l) {
          value = true;
        } else {
          VPBN_ASSIGN_OR_RETURN(bool r, Truthy(*expr.rhs, env));
          value = r;
        }
      }
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = value ? 1 : 0;
      out.push_back(std::move(item));
      return out;
    }
    case XqExpr::Kind::kNot: {
      VPBN_ASSIGN_OR_RETURN(bool l, Truthy(*expr.lhs, env));
      Item item;
      item.kind = Item::Kind::kNumber;
      item.num = l ? 0 : 1;
      out.push_back(std::move(item));
      return out;
    }
  }
  return Status::Internal("unreachable xquery expr kind");
}

}  // namespace vpbn::xq
