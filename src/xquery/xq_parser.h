/// \file xq_parser.h
/// \brief Parser for the FLWR subset (grammar in xq_ast.h).

#pragma once

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xquery/xq_ast.h"

namespace vpbn::xq {

/// \brief Parse a query. Errors carry the offending offset.
Result<std::unique_ptr<XqExpr>> ParseQuery(std::string_view text);

}  // namespace vpbn::xq
