/// \file xq_engine.h
/// \brief Interpreter for the FLWR subset, with doc() and the paper's
/// virtualDoc() (§2, Figure 6).
///
/// doc("name") navigates a registered document through its PBN indexes;
/// virtualDoc("name", "spec") navigates the same stored data through a
/// virtual hierarchy with vPBN — no data is transformed. A parenthesized
/// inner query followed by a path — Rhonda's nested query of Figure 4 —
/// *materializes* the inner result into a fresh document, renumbers it and
/// navigates physically: exactly the two-pass baseline the paper measures
/// against.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/eval_indexed.h"
#include "query/eval_nav.h"
#include "query/eval_virtual.h"
#include "storage/stored_document.h"
#include "vpbn/virtual_document.h"
#include "xquery/xq_ast.h"

namespace vpbn::xq {

/// \brief One value in a sequence: a node of some document, a virtual node,
/// or an atomic.
struct Item {
  enum class Kind : uint8_t { kNode, kVirtualNode, kString, kNumber };
  Kind kind = Kind::kString;
  const xml::Document* doc = nullptr;            // kNode
  xml::NodeId node = xml::kNullNode;             // kNode
  const virt::VirtualDocument* vdoc = nullptr;   // kVirtualNode
  virt::VirtualNode vnode;                       // kVirtualNode
  std::string str;                               // kString
  double num = 0;                                // kNumber
};

using Sequence = std::vector<Item>;

/// \brief Execution statistics for the benchmark pipelines.
struct RunStats {
  /// Nodes copied while materializing inner-query results.
  uint64_t materialized_nodes = 0;
  /// Documents constructed (inner materializations + element constructors).
  uint64_t constructed_documents = 0;
};

/// \brief The query processor. Register inputs, then Run queries.
class Engine {
 public:
  Engine() = default;

  /// Registers \p doc as doc("name"). Builds its stored form (serialized
  /// string, numbering, DataGuide, indexes) once. The document must outlive
  /// the engine.
  Status RegisterDocument(const std::string& name, const xml::Document* doc);

  /// Parses and evaluates \p query_text.
  Result<Sequence> Run(std::string_view query_text);

  /// Evaluates a pre-parsed query.
  Result<Sequence> Run(const XqExpr& query);

  /// Runs and serializes the result sequence: nodes as XML, atomics as
  /// text, concatenated.
  Result<std::string> RunToXml(std::string_view query_text);

  /// Serializes one item.
  std::string ItemToXml(const Item& item) const;

  /// The stored form of a registered document (for direct index access).
  Result<const storage::StoredDocument*> Stored(const std::string& name) const;

  const RunStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RunStats{}; }

 private:
  struct Source {
    const xml::Document* doc = nullptr;
    std::unique_ptr<storage::StoredDocument> stored;
    // Cache of virtualDoc views by spec text.
    std::map<std::string, std::unique_ptr<virt::VirtualDocument>> views;
  };

  using Env = std::map<std::string, Sequence>;

  /// One tuple's contribution when `order by` is present.
  struct OrderedChunk {
    std::string key;
    Sequence result;
  };

  Result<Sequence> EvalExpr(const XqExpr& expr, Env* env);
  Result<Sequence> EvalFlwr(const XqExpr& flwr, Env* env);
  Result<Sequence> EvalFors(const XqExpr& flwr, size_t idx, Env* env,
                            std::vector<OrderedChunk>* ordered);
  Result<bool> Truthy(const XqExpr& expr, Env* env);
  Result<Sequence> ApplyPathToItem(const query::Path& path, const Item& item);
  Result<Item> ConstructElement(const XqExpr& ctor, Env* env);
  Status AppendItemCopy(xml::Document* out, xml::NodeId parent,
                        const Item& item);
  std::string ItemStringValue(const Item& item) const;
  Result<virt::VirtualDocument*> View(const std::string& doc_name,
                                      const std::string& spec);

  /// NavAdapter for \p doc, rebuilt if the document grew since caching.
  const query::NavAdapter& NavFor(const xml::Document& doc);

  std::map<std::string, Source> sources_;
  // Arena of constructed documents; Items point into them.
  std::vector<std::unique_ptr<xml::Document>> constructed_;
  // NavAdapter construction is O(document); cache per document so repeated
  // relative-path evaluation (one per FLWR tuple) stays linear overall.
  std::map<const xml::Document*,
           std::pair<size_t, std::unique_ptr<query::NavAdapter>>>
      nav_cache_;
  RunStats stats_;
};

}  // namespace vpbn::xq
