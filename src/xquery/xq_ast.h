/// \file xq_ast.h
/// \brief AST for the FLWR subset with the paper's virtualDoc() extension.
///
/// Supported (enough to express Sam's and Rhonda's queries of §2 verbatim
/// modulo whitespace):
///
///   query    := flwr | expr
///   flwr     := ('for' $v 'in' expr)+ ('let' $v ':=' expr)*
///               ('where' cond)?
///               ('order' 'by' expr ('ascending'|'descending')?)?
///               'return' expr
///   expr     := doc("name") path?
///             | virtualDoc("name", "vdataguide") path?
///             | $v path?
///             | '(' query ')' path?          -- inner query, then navigate
///             | count '(' expr ')'
///             | string-literal | number
///             | element constructor  <n a="v">{expr} text <m/>...</n>
///   cond     := expr (=|!=|<|<=|>|>=) expr | cond and cond | cond or cond
///               | not '(' cond ')' | '(' cond ')' | expr
///
/// Paths reuse the XPath subset of query/path_ast.h.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "query/path_ast.h"

namespace vpbn::xq {

struct XqExpr;

/// \brief One `for $v in e` or `let $v := e` binding.
struct Binding {
  std::string var;  // without the '$'
  std::unique_ptr<XqExpr> expr;
};

/// \brief A piece of element-constructor content.
struct Content {
  enum class Kind : uint8_t { kText, kExpr, kElement };
  Kind kind = Kind::kText;
  std::string text;               // kText
  std::unique_ptr<XqExpr> expr;   // kExpr, kElement (points to a kElemCtor)
};

/// \brief Expression node.
struct XqExpr {
  enum class Kind : uint8_t {
    kFlwr,
    kDoc,         ///< doc("name") [path]
    kVirtualDoc,  ///< virtualDoc("name", "spec") [path]
    kVarPath,     ///< $v [path]
    kInnerPath,   ///< ( query ) [path]
    kCount,       ///< count(expr)
    kAggregate,   ///< sum/min/max/avg (expr) over numeric string values
    kDistinct,    ///< distinct-values(expr): unique atomized strings
    kContains,    ///< contains(expr, expr): substring test
    kStringFn,    ///< string(expr): atomize to one string
    kString,
    kNumber,
    kElemCtor,
    kCompare,
    kAnd,
    kOr,
    kNot,
  };

  Kind kind = Kind::kString;

  // kFlwr
  std::vector<Binding> fors;
  std::vector<Binding> lets;
  std::unique_ptr<XqExpr> where;     // nullable
  std::unique_ptr<XqExpr> order_by;  // nullable
  bool order_descending = false;
  std::unique_ptr<XqExpr> ret;

  // kDoc / kVirtualDoc
  std::string doc_name;
  std::string vdg_spec;  // kVirtualDoc only

  // kVarPath
  std::string var;

  // kDoc / kVirtualDoc / kVarPath / kInnerPath
  bool has_path = false;
  query::Path path;

  // kInnerPath / kCount / kNot / kCompare / kAnd / kOr
  std::unique_ptr<XqExpr> lhs;
  std::unique_ptr<XqExpr> rhs;
  query::CompareOp op = query::CompareOp::kEq;

  // kString / kNumber; kAggregate reuses str for the function name
  std::string str;
  double num = 0;

  // kElemCtor
  std::string elem_name;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<Content> content;
};

}  // namespace vpbn::xq
