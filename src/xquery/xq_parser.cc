#include "xquery/xq_parser.h"

#include <cctype>
#include <charconv>

#include "query/path_parser.h"

namespace vpbn::xq {

namespace {

class XqParser {
 public:
  explicit XqParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<XqExpr>> Run() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> q, ParseQueryExpr());
    SkipWhitespace();
    if (!AtEnd()) return Error("trailing input after query");
    return q;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }
  /// Consumes the keyword \p w only at a word boundary.
  bool ConsumeKeyword(std::string_view w) {
    SkipWhitespace();
    if (text_.substr(pos_, w.size()) != w) return false;
    if (pos_ + w.size() < text_.size() && IsWordChar(text_[pos_ + w.size()])) {
      return false;
    }
    pos_ += w.size();
    return true;
  }
  bool PeekKeyword(std::string_view w) {
    size_t save = pos_;
    bool ok = ConsumeKeyword(w);
    pos_ = save;
    return ok;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("xquery, offset " + std::to_string(pos_) +
                              ": " + msg);
  }

  Result<std::string> ParseStringLiteral() {
    SkipWhitespace();
    if (Peek() != '"' && Peek() != '\'') return Error("expected a string");
    char quote = Peek();
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated string");
    std::string out(text_.substr(start, pos_ - start));
    ++pos_;
    return out;
  }

  Result<std::string> ParseVarName() {
    SkipWhitespace();
    if (!Consume('$')) return Error("expected '$'");
    size_t start = pos_;
    while (!AtEnd() && IsWordChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a variable name after '$'");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Scans a path starting at '/', tracking brackets and quotes, and parses
  /// it with the XPath parser.
  Result<query::Path> ScanPath() {
    size_t start = pos_;
    int brackets = 0;
    int parens = 0;  // text()/node() parens opened by the path itself
    char quote = '\0';
    while (!AtEnd()) {
      char c = Peek();
      if (quote != '\0') {
        if (c == quote) quote = '\0';
        ++pos_;
        continue;
      }
      if (c == '"' || c == '\'') {
        quote = c;
        ++pos_;
        continue;
      }
      if (c == '[') {
        ++brackets;
        ++pos_;
        continue;
      }
      if (c == ']') {
        if (brackets == 0) break;
        --brackets;
        ++pos_;
        continue;
      }
      if (brackets > 0) {
        ++pos_;
        continue;
      }
      // Outside predicates a path token continues through name characters,
      // steps, axes and wildcards.
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '/' ||
          c == '_' || c == '-' || c == '.' || c == ':' || c == '*' ||
          c == '@' || c == '#') {
        ++pos_;
        continue;
      }
      if (c == '(') {
        // '(' only continues text()/node(); otherwise it belongs to the
        // surrounding XQuery syntax.
        std::string_view sofar = text_.substr(start, pos_ - start);
        if (!(sofar.ends_with("text") || sofar.ends_with("node"))) break;
        ++parens;
        ++pos_;
        continue;
      }
      if (c == ')') {
        if (parens == 0) break;  // closes an XQuery group, not ours
        --parens;
        ++pos_;
        continue;
      }
      break;
    }
    std::string_view path_text = text_.substr(start, pos_ - start);
    return query::ParsePath(path_text);
  }

  /// Optional trailing path after a source expression.
  Status MaybePath(XqExpr* expr) {
    // No whitespace skipping: the path must be adjacent, as in $t/../author.
    if (Peek() == '/') {
      VPBN_ASSIGN_OR_RETURN(expr->path, ScanPath());
      expr->has_path = true;
    }
    return Status::OK();
  }

  Result<std::unique_ptr<XqExpr>> ParseQueryExpr() {
    SkipWhitespace();
    if (PeekKeyword("for") || PeekKeyword("let")) return ParseFlwr();
    return ParseOrExpr();
  }

  Result<std::unique_ptr<XqExpr>> ParseFlwr() {
    auto flwr = std::make_unique<XqExpr>();
    flwr->kind = XqExpr::Kind::kFlwr;
    for (;;) {
      if (ConsumeKeyword("for")) {
        for (;;) {
          Binding b;
          VPBN_ASSIGN_OR_RETURN(b.var, ParseVarName());
          if (!ConsumeKeyword("in")) return Error("expected 'in'");
          VPBN_ASSIGN_OR_RETURN(b.expr, ParseOrExpr());
          flwr->fors.push_back(std::move(b));
          SkipWhitespace();
          if (!Consume(',')) break;
        }
        continue;
      }
      if (ConsumeKeyword("let")) {
        for (;;) {
          Binding b;
          VPBN_ASSIGN_OR_RETURN(b.var, ParseVarName());
          SkipWhitespace();
          if (!(Consume(':') && Consume('='))) return Error("expected ':='");
          VPBN_ASSIGN_OR_RETURN(b.expr, ParseOrExpr());
          flwr->lets.push_back(std::move(b));
          SkipWhitespace();
          if (!Consume(',')) break;
        }
        continue;
      }
      break;
    }
    if (flwr->fors.empty() && flwr->lets.empty()) {
      return Error("expected 'for' or 'let'");
    }
    if (ConsumeKeyword("where")) {
      VPBN_ASSIGN_OR_RETURN(flwr->where, ParseOrExpr());
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error("expected 'by' after 'order'");
      VPBN_ASSIGN_OR_RETURN(flwr->order_by, ParseOrExpr());
      if (ConsumeKeyword("descending")) {
        flwr->order_descending = true;
      } else {
        ConsumeKeyword("ascending");  // optional, the default
      }
    }
    if (!ConsumeKeyword("return")) return Error("expected 'return'");
    VPBN_ASSIGN_OR_RETURN(flwr->ret, ParseQueryExpr());
    return flwr;
  }

  Result<std::unique_ptr<XqExpr>> ParseOrExpr() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> lhs, ParseAndExpr());
    while (ConsumeKeyword("or")) {
      VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> rhs, ParseAndExpr());
      auto node = std::make_unique<XqExpr>();
      node->kind = XqExpr::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<XqExpr>> ParseAndExpr() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> lhs, ParseCompare());
    while (ConsumeKeyword("and")) {
      VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> rhs, ParseCompare());
      auto node = std::make_unique<XqExpr>();
      node->kind = XqExpr::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<XqExpr>> ParseCompare() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> lhs, ParsePrimary());
    SkipWhitespace();
    query::CompareOp op;
    if (Peek() == '!' && PeekAt(1) == '=') {
      pos_ += 2;
      op = query::CompareOp::kNe;
    } else if (Peek() == '<' && PeekAt(1) == '=') {
      pos_ += 2;
      op = query::CompareOp::kLe;
    } else if (Peek() == '>' && PeekAt(1) == '=') {
      pos_ += 2;
      op = query::CompareOp::kGe;
    } else if (Peek() == '=') {
      ++pos_;
      op = query::CompareOp::kEq;
    } else if (Peek() == '<' && PeekAt(1) != '/' &&
               !std::isalpha(static_cast<unsigned char>(PeekAt(1)))) {
      // '<' followed by a letter opens an element constructor, not a
      // comparison.
      ++pos_;
      op = query::CompareOp::kLt;
    } else if (Peek() == '>') {
      ++pos_;
      op = query::CompareOp::kGt;
    } else {
      return lhs;
    }
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> rhs, ParsePrimary());
    auto node = std::make_unique<XqExpr>();
    node->kind = XqExpr::Kind::kCompare;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<std::unique_ptr<XqExpr>> ParsePrimary() {
    SkipWhitespace();
    auto node = std::make_unique<XqExpr>();
    if (Peek() == '$') {
      node->kind = XqExpr::Kind::kVarPath;
      VPBN_ASSIGN_OR_RETURN(node->var, ParseVarName());
      VPBN_RETURN_NOT_OK(MaybePath(node.get()));
      return node;
    }
    if (Peek() == '"' || Peek() == '\'') {
      node->kind = XqExpr::Kind::kString;
      VPBN_ASSIGN_OR_RETURN(node->str, ParseStringLiteral());
      return node;
    }
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      size_t start = pos_;
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        ++pos_;
      }
      std::string_view lit = text_.substr(start, pos_ - start);
      double value = 0;
      auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(),
                                     value);
      if (ec != std::errc() || p != lit.data() + lit.size()) {
        return Error("bad number");
      }
      node->kind = XqExpr::Kind::kNumber;
      node->num = value;
      return node;
    }
    if (Peek() == '(') {
      ++pos_;
      VPBN_ASSIGN_OR_RETURN(std::unique_ptr<XqExpr> inner, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      node->kind = XqExpr::Kind::kInnerPath;
      node->lhs = std::move(inner);
      VPBN_RETURN_NOT_OK(MaybePath(node.get()));
      return node;
    }
    if (Peek() == '<') {
      return ParseElemCtor();
    }
    if (ConsumeKeyword("doc")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after doc");
      node->kind = XqExpr::Kind::kDoc;
      VPBN_ASSIGN_OR_RETURN(node->doc_name, ParseStringLiteral());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      VPBN_RETURN_NOT_OK(MaybePath(node.get()));
      return node;
    }
    if (ConsumeKeyword("virtualDoc")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after virtualDoc");
      node->kind = XqExpr::Kind::kVirtualDoc;
      VPBN_ASSIGN_OR_RETURN(node->doc_name, ParseStringLiteral());
      SkipWhitespace();
      if (!Consume(',')) return Error("expected ',' in virtualDoc");
      VPBN_ASSIGN_OR_RETURN(node->vdg_spec, ParseStringLiteral());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      VPBN_RETURN_NOT_OK(MaybePath(node.get()));
      return node;
    }
    if (ConsumeKeyword("count")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after count");
      node->kind = XqExpr::Kind::kCount;
      VPBN_ASSIGN_OR_RETURN(node->lhs, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return node;
    }
    for (const char* fn : {"sum", "min", "max", "avg"}) {
      size_t fn_save = pos_;
      if (ConsumeKeyword(fn)) {
        SkipWhitespace();
        if (!Consume('(')) {
          pos_ = fn_save;
          continue;
        }
        node->kind = XqExpr::Kind::kAggregate;
        node->str = fn;
        VPBN_ASSIGN_OR_RETURN(node->lhs, ParseQueryExpr());
        SkipWhitespace();
        if (!Consume(')')) {
          return Error(std::string("expected ')' after ") + fn + "(");
        }
        return node;
      }
    }
    if (ConsumeKeyword("distinct-values")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after distinct-values");
      node->kind = XqExpr::Kind::kDistinct;
      VPBN_ASSIGN_OR_RETURN(node->lhs, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return node;
    }
    if (ConsumeKeyword("contains")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after contains");
      node->kind = XqExpr::Kind::kContains;
      VPBN_ASSIGN_OR_RETURN(node->lhs, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(',')) return Error("expected ',' in contains");
      VPBN_ASSIGN_OR_RETURN(node->rhs, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return node;
    }
    if (ConsumeKeyword("string")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after string");
      node->kind = XqExpr::Kind::kStringFn;
      VPBN_ASSIGN_OR_RETURN(node->lhs, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return node;
    }
    if (ConsumeKeyword("not")) {
      SkipWhitespace();
      if (!Consume('(')) return Error("expected '(' after not");
      node->kind = XqExpr::Kind::kNot;
      VPBN_ASSIGN_OR_RETURN(node->lhs, ParseQueryExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return node;
    }
    return Error("expected an expression");
  }

  Result<std::unique_ptr<XqExpr>> ParseElemCtor() {
    // At '<'.
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && (IsWordChar(Peek()) || Peek() == '-' || Peek() == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected element name after '<'");
    auto node = std::make_unique<XqExpr>();
    node->kind = XqExpr::Kind::kElemCtor;
    node->elem_name = std::string(text_.substr(start, pos_ - start));
    // Attributes (static values only).
    for (;;) {
      SkipWhitespace();
      if (Peek() == '/' && PeekAt(1) == '>') {
        pos_ += 2;
        return node;
      }
      if (Consume('>')) break;
      size_t astart = pos_;
      while (!AtEnd() && (IsWordChar(Peek()) || Peek() == '-')) ++pos_;
      if (pos_ == astart) return Error("expected attribute or '>'");
      std::string aname(text_.substr(astart, pos_ - astart));
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' in attribute");
      VPBN_ASSIGN_OR_RETURN(std::string avalue, ParseStringLiteral());
      node->attrs.emplace_back(std::move(aname), std::move(avalue));
    }
    // Content until the matching close tag.
    std::string pending;
    auto flush = [&]() {
      // Whitespace-only runs between constructs are formatting, not data.
      bool only_ws = true;
      for (char c : pending) {
        if (!std::isspace(static_cast<unsigned char>(c))) only_ws = false;
      }
      if (!pending.empty() && !only_ws) {
        Content c;
        c.kind = Content::Kind::kText;
        c.text = std::move(pending);
        node->content.push_back(std::move(c));
      }
      pending.clear();
    };
    for (;;) {
      if (AtEnd()) return Error("unterminated element constructor");
      if (Peek() == '{') {
        flush();
        ++pos_;
        Content c;
        c.kind = Content::Kind::kExpr;
        VPBN_ASSIGN_OR_RETURN(c.expr, ParseQueryExpr());
        SkipWhitespace();
        if (!Consume('}')) return Error("expected '}'");
        node->content.push_back(std::move(c));
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '/') {
        flush();
        pos_ += 2;
        size_t cstart = pos_;
        while (!AtEnd() &&
               (IsWordChar(Peek()) || Peek() == '-' || Peek() == ':')) {
          ++pos_;
        }
        std::string cname(text_.substr(cstart, pos_ - cstart));
        SkipWhitespace();
        if (!Consume('>')) return Error("expected '>'");
        if (cname != node->elem_name) {
          return Error("mismatched </" + cname + ">, expected </" +
                       node->elem_name + ">");
        }
        return node;
      }
      if (Peek() == '<') {
        flush();
        Content c;
        c.kind = Content::Kind::kElement;
        VPBN_ASSIGN_OR_RETURN(c.expr, ParseElemCtor());
        node->content.push_back(std::move(c));
        continue;
      }
      pending.push_back(Peek());
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XqExpr>> ParseQuery(std::string_view text) {
  return XqParser(text).Run();
}

}  // namespace vpbn::xq
