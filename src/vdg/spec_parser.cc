#include <cctype>

#include "vdg/spec_ast.h"

namespace vpbn::vdg {

namespace {

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == '#' || c == ':';
}

class SpecParser {
 public:
  explicit SpecParser(std::string_view text) : text_(text) {}

  Result<Spec> Run() {
    Spec spec;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) break;
      VPBN_ASSIGN_OR_RETURN(SpecNode node, ParseItem(/*depth=*/0));
      if (node.kind != SpecNode::Kind::kLabel) {
        return Error("'*' and '**' need an enclosing label");
      }
      spec.roots.push_back(std::move(node));
    }
    if (spec.roots.empty()) return Error("empty vDataGuide specification");
    return spec;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("vdataguide spec, offset " +
                              std::to_string(pos_) + ": " + msg);
  }

  Result<SpecNode> ParseItem(int depth) {
    if (depth > 128) {
      return Status::ResourceExhausted("vdataguide spec nests too deeply");
    }
    if (Peek() == '*') {
      ++pos_;
      bool twice = !AtEnd() && Peek() == '*';
      if (twice) ++pos_;
      SkipWhitespace();
      if (!AtEnd() && Peek() == '{') {
        return Error("'*' and '**' cannot have child blocks");
      }
      return twice ? SpecNode::StarStar() : SpecNode::Star();
    }
    if (!IsLabelChar(Peek()) || Peek() == '.') {
      return Error(std::string("unexpected character '") + Peek() + "'");
    }
    size_t start = pos_;
    while (!AtEnd() && IsLabelChar(Peek())) ++pos_;
    SpecNode node;
    node.kind = SpecNode::Kind::kLabel;
    node.label = std::string(text_.substr(start, pos_ - start));
    if (node.label.back() == '.' || node.label.find("..") != std::string::npos) {
      return Error("malformed label '" + node.label + "'");
    }
    SkipWhitespace();
    if (!AtEnd() && Peek() == '{') {
      ++pos_;
      for (;;) {
        SkipWhitespace();
        if (AtEnd()) return Error("unterminated '{'");
        if (Peek() == '}') {
          ++pos_;
          break;
        }
        VPBN_ASSIGN_OR_RETURN(SpecNode child, ParseItem(depth + 1));
        node.children.push_back(std::move(child));
      }
    }
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void NodeToString(const SpecNode& node, std::string* out) {
  switch (node.kind) {
    case SpecNode::Kind::kStar:
      out->append("*");
      return;
    case SpecNode::Kind::kStarStar:
      out->append("**");
      return;
    case SpecNode::Kind::kLabel:
      out->append(node.label);
      if (!node.children.empty()) {
        out->append(" {");
        for (const SpecNode& c : node.children) {
          out->push_back(' ');
          NodeToString(c, out);
        }
        out->append(" }");
      }
  }
}

}  // namespace

std::string Spec::ToString() const {
  std::string out;
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out.push_back(' ');
    NodeToString(roots[i], &out);
  }
  return out;
}

Result<Spec> ParseSpec(std::string_view text) { return SpecParser(text).Run(); }

}  // namespace vpbn::vdg
