#include "vdg/vdataguide.h"

#include <map>
#include <unordered_set>

namespace vpbn::vdg {

namespace {

Status AmbiguousError(const dg::DataGuide& orig, const std::string& label,
                      const std::vector<dg::TypeId>& candidates) {
  std::string alts;
  for (dg::TypeId t : candidates) {
    if (!alts.empty()) alts += ", ";
    alts += orig.path(t);
  }
  return Status::InvalidArgument("vdataguide: label '" + label +
                                 "' is ambiguous; qualify it (candidates: " +
                                 alts + ")");
}

/// Resolves a label, narrowing global ambiguity with the enclosing label's
/// original type: among the suffix matches, prefer (1) descendants of the
/// parent's original, then (2) its ancestors, then (3) types sharing a
/// tree with it. A bare `name` under `person` thus resolves to the
/// person's name even when other name types exist elsewhere.
Result<dg::TypeId> ResolveLabel(const dg::DataGuide& orig,
                                const std::string& label,
                                dg::TypeId parent_orig) {
  std::vector<dg::TypeId> candidates = orig.FindBySuffix(label);
  if (candidates.empty()) {
    return Status::NotFound("vdataguide: label '" + label +
                            "' matches no type in the DataGuide");
  }
  if (candidates.size() == 1) return candidates[0];
  if (parent_orig == dg::kNullType) {
    return AmbiguousError(orig, label, candidates);
  }
  auto narrow = [&](auto&& keep) -> std::vector<dg::TypeId> {
    std::vector<dg::TypeId> out;
    for (dg::TypeId t : candidates) {
      if (keep(t)) out.push_back(t);
    }
    return out;
  };
  for (auto& filtered :
       {narrow([&](dg::TypeId t) { return orig.IsAncestorType(parent_orig, t); }),
        narrow([&](dg::TypeId t) { return orig.IsAncestorType(t, parent_orig); }),
        narrow([&](dg::TypeId t) {
          return orig.LcaType(t, parent_orig) != dg::kNullType;
        })}) {
    if (filtered.size() == 1) return filtered[0];
    if (filtered.size() > 1) return AmbiguousError(orig, label, filtered);
  }
  return AmbiguousError(orig, label, candidates);
}

/// Resolves every explicit label in the spec (context-sensitively) and
/// collects the mentioned set for the `*`/`**` rules (§4.1).
Status ResolveSpec(const SpecNode& node, const dg::DataGuide& orig,
                   dg::TypeId parent_orig,
                   std::map<const SpecNode*, dg::TypeId>* resolved,
                   std::unordered_set<dg::TypeId>* mentioned) {
  if (node.kind != SpecNode::Kind::kLabel) return Status::OK();
  VPBN_ASSIGN_OR_RETURN(dg::TypeId t,
                        ResolveLabel(orig, node.label, parent_orig));
  (*resolved)[&node] = t;
  mentioned->insert(t);
  for (const SpecNode& c : node.children) {
    VPBN_RETURN_NOT_OK(ResolveSpec(c, orig, t, resolved, mentioned));
  }
  return Status::OK();
}

}  // namespace

VTypeId VDataGuide::AddVType(dg::TypeId original, VTypeId parent) {
  VTypeId id = static_cast<VTypeId>(originals_.size());
  originals_.push_back(original);
  parents_.push_back(parent);
  children_.emplace_back();
  const std::string& lbl = original_guide_->label(original);
  if (parent == kNullVType) {
    vpaths_.push_back(lbl);
    pbn_.push_back(num::Pbn{static_cast<uint32_t>(roots_.size() + 1)});
    roots_.push_back(id);
  } else {
    vpaths_.push_back(vpaths_[parent] + "." + lbl);
    pbn_.push_back(pbn_[parent].Child(
        static_cast<uint32_t>(children_[parent].size() + 1)));
    children_[parent].push_back(id);
  }
  preorder_.push_back(0);  // filled in after expansion
  return id;
}

Result<VDataGuide> VDataGuide::Create(std::string_view spec_text,
                                      const dg::DataGuide& original,
                                      const ExpandLimits& limits) {
  VPBN_ASSIGN_OR_RETURN(Spec spec, ParseSpec(spec_text));
  return Create(spec, original, limits);
}

Result<VDataGuide> VDataGuide::Create(const Spec& spec,
                                      const dg::DataGuide& original,
                                      const ExpandLimits& limits) {
  VDataGuide out;
  out.original_guide_ = &original;

  std::map<const SpecNode*, dg::TypeId> resolved;
  std::unordered_set<dg::TypeId> mentioned;
  for (const SpecNode& root : spec.roots) {
    VPBN_RETURN_NOT_OK(
        ResolveSpec(root, original, dg::kNullType, &resolved, &mentioned));
  }

  // Adds the implicit text child of `vt` if its original type has one.
  auto add_implicit_text = [&](VTypeId vt) {
    dg::TypeId orig_t = out.originals_[vt];
    auto text_child = original.ChildByLabel(orig_t, dg::kTextLabel);
    if (text_child.ok()) out.AddVType(text_child.value(), vt);
  };

  // Copies the full original subtree below `orig_t` under `vt`, skipping
  // mentioned types (the `**` rule).
  auto expand_descendants = [&](VTypeId vt, dg::TypeId orig_t,
                                auto&& self) -> Status {
    for (dg::TypeId c : original.children(orig_t)) {
      if (mentioned.count(c) > 0) continue;
      if (out.originals_.size() >= limits.max_vtypes) {
        return Status::ResourceExhausted(
            "vdataguide: expansion exceeds max_vtypes");
      }
      VTypeId cv = out.AddVType(c, vt);
      VPBN_RETURN_NOT_OK(self(cv, c, self));
    }
    return Status::OK();
  };

  // Expands one spec node under virtual parent `parent` (kNullVType for
  // roots); `parent_orig` is the parent's original type.
  auto expand = [&](const SpecNode& node, VTypeId parent,
                    dg::TypeId parent_orig, auto&& self) -> Status {
    if (out.originals_.size() >= limits.max_vtypes) {
      return Status::ResourceExhausted(
          "vdataguide: expansion exceeds max_vtypes");
    }
    switch (node.kind) {
      case SpecNode::Kind::kLabel: {
        // ResolveSpec already validated and resolved this node.
        dg::TypeId orig_t = resolved.at(&node);
        VTypeId vt = out.AddVType(orig_t, parent);
        if (!original.IsTextType(orig_t)) add_implicit_text(vt);
        for (const SpecNode& c : node.children) {
          VPBN_RETURN_NOT_OK(self(c, vt, orig_t, self));
        }
        return Status::OK();
      }
      case SpecNode::Kind::kStar: {
        for (dg::TypeId c : original.children(parent_orig)) {
          if (mentioned.count(c) > 0) continue;
          if (original.IsTextType(c)) continue;  // implicit text already added
          VTypeId cv = out.AddVType(c, parent);
          add_implicit_text(cv);
        }
        return Status::OK();
      }
      case SpecNode::Kind::kStarStar: {
        // The implicit text child added for the parent label must not be
        // duplicated: skip the text child type if already present.
        for (dg::TypeId c : original.children(parent_orig)) {
          if (mentioned.count(c) > 0) continue;
          if (original.IsTextType(c)) {
            bool present = false;
            for (VTypeId existing : out.children_[parent]) {
              if (out.originals_[existing] == c) present = true;
            }
            if (present) continue;
          }
          VTypeId cv = out.AddVType(c, parent);
          VPBN_RETURN_NOT_OK(expand_descendants(cv, c, expand_descendants));
        }
        return Status::OK();
      }
    }
    return Status::Internal("vdataguide: unreachable spec node kind");
  };

  for (const SpecNode& root : spec.roots) {
    VPBN_RETURN_NOT_OK(expand(root, kNullVType, dg::kNullType, expand));
  }

  // Assign pre-order indexes for virtual-document-order tie-breaking.
  std::vector<VTypeId> order = out.PreOrder();
  for (uint32_t i = 0; i < order.size(); ++i) {
    out.preorder_[order[i]] = i;
  }
  return out;
}

const std::string& VDataGuide::label(VTypeId t) const {
  return original_guide_->label(originals_[t]);
}

std::vector<VTypeId> VDataGuide::FindByLabel(std::string_view label) const {
  std::vector<VTypeId> out;
  for (VTypeId t = 0; t < originals_.size(); ++t) {
    if (this->label(t) == label) out.push_back(t);
  }
  return out;
}

Result<VTypeId> VDataGuide::FindByVPath(std::string_view vpath) const {
  for (VTypeId t = 0; t < vpaths_.size(); ++t) {
    if (vpaths_[t] == vpath) return t;
  }
  return Status::NotFound("no virtual type at path '" + std::string(vpath) +
                          "'");
}

std::vector<VTypeId> VDataGuide::PreOrder() const {
  std::vector<VTypeId> out;
  std::vector<VTypeId> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    VTypeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (auto it = children_[cur].rbegin(); it != children_[cur].rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

bool VDataGuide::HasDuplicatedOriginals() const {
  std::unordered_set<dg::TypeId> seen;
  for (dg::TypeId t : originals_) {
    if (!seen.insert(t).second) return true;
  }
  return false;
}

size_t VDataGuide::MemoryUsage() const {
  size_t total = originals_.capacity() * sizeof(dg::TypeId) +
                 parents_.capacity() * sizeof(VTypeId) +
                 preorder_.capacity() * sizeof(uint32_t) +
                 roots_.capacity() * sizeof(VTypeId);
  for (const auto& v : children_) total += v.capacity() * sizeof(VTypeId);
  for (const auto& s : vpaths_) total += s.capacity();
  for (const auto& p : pbn_) total += p.MemoryUsage();
  return total;
}

}  // namespace vpbn::vdg
