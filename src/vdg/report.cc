#include "vdg/report.h"

#include <unordered_map>

namespace vpbn::vdg {

const char* EdgeCaseToString(EdgeCase c) {
  switch (c) {
    case EdgeCase::kRoot:
      return "root";
    case EdgeCase::kDescendant:
      return "case1-descendant";
    case EdgeCase::kAncestor:
      return "case2-ancestor";
    case EdgeCase::kLca:
      return "case3-lca";
  }
  return "unknown";
}

EdgeCase ClassifyEdge(const VDataGuide& guide, VTypeId t) {
  if (guide.parent(t) == kNullVType) return EdgeCase::kRoot;
  const dg::DataGuide& orig = guide.original_guide();
  dg::TypeId child_orig = guide.original(t);
  dg::TypeId parent_orig = guide.original(guide.parent(t));
  if (orig.IsAncestorOrSelfType(parent_orig, child_orig)) {
    return EdgeCase::kDescendant;
  }
  if (orig.IsAncestorOrSelfType(child_orig, parent_orig)) {
    return EdgeCase::kAncestor;
  }
  return EdgeCase::kLca;
}

ViewReport AnalyzeView(const VDataGuide& guide) {
  const dg::DataGuide& orig = guide.original_guide();
  ViewReport report;

  std::unordered_map<dg::TypeId, int> uses;
  for (VTypeId t = 0; t < guide.num_vtypes(); ++t) {
    ++uses[guide.original(t)];
    EdgeCase c = ClassifyEdge(guide, t);
    ++report.case_counts[static_cast<size_t>(c)];
  }
  for (dg::TypeId ot = 0; ot < orig.num_types(); ++ot) {
    auto it = uses.find(ot);
    if (it == uses.end()) {
      report.dropped.push_back(ot);
    } else if (it->second > 1) {
      report.duplicated.push_back(ot);
    }
  }
  report.coverage =
      orig.num_types() == 0
          ? 1.0
          : 1.0 - static_cast<double>(report.dropped.size()) /
                      static_cast<double>(orig.num_types());

  // A virtual type can be orphaned unless every edge up to its root
  // guarantees the parent instance exists (parent original is an
  // ancestor-or-self of the child original).
  std::vector<bool> guaranteed(guide.num_vtypes(), false);
  for (VTypeId t : guide.PreOrder()) {
    if (guide.parent(t) == kNullVType) {
      guaranteed[t] = true;
    } else {
      guaranteed[t] = guaranteed[guide.parent(t)] &&
                      orig.IsAncestorOrSelfType(
                          guide.original(guide.parent(t)),
                          guide.original(t));
    }
    if (!guaranteed[t]) report.possibly_orphaned.push_back(t);
  }
  return report;
}

std::string ViewReport::ToString(const VDataGuide& guide) const {
  const dg::DataGuide& orig = guide.original_guide();
  std::string out;
  out += "coverage: " + std::to_string(static_cast<int>(coverage * 100)) +
         "% of original types\n";
  out += "edges: ";
  for (int c = 1; c <= 3; ++c) {
    if (c > 1) out += ", ";
    out += std::string(EdgeCaseToString(static_cast<EdgeCase>(c))) + "=" +
           std::to_string(case_counts[c]);
  }
  out += "\n";
  if (!dropped.empty()) {
    out += "dropped:";
    for (dg::TypeId t : dropped) out += " " + orig.path(t);
    out += "\n";
  }
  if (!duplicated.empty()) {
    out += "duplicated:";
    for (dg::TypeId t : duplicated) out += " " + orig.path(t);
    out += "\n";
  }
  if (!possibly_orphaned.empty()) {
    out += "possibly orphaned:";
    for (VTypeId t : possibly_orphaned) out += " " + guide.vpath(t);
    out += "\n";
  }
  return out;
}

}  // namespace vpbn::vdg
