/// \file report.h
/// \brief Coverage/shape report for a vDataGuide.
///
/// The paper defers "reasoning about potential information loss" to the
/// transformation-language literature (§4.1); this report gives users the
/// practical half of that: which original types a view drops, which it
/// duplicates, and how each retained edge is classified under the three
/// level-array cases of §5.2. The per-case counts drive experiment E7 and
/// make surprising views (an accidental `*` that dropped a subtree)
/// visible before querying.

#pragma once

#include <string>
#include <vector>

#include "vdg/vdataguide.h"

namespace vpbn::vdg {

/// \brief Classification of a (virtual parent, virtual child) edge.
enum class EdgeCase : uint8_t {
  kRoot = 0,        ///< virtual roots have no incoming edge
  kDescendant = 1,  ///< Case 1: original descendant becomes a child
  kAncestor = 2,    ///< Case 2: original ancestor becomes a child
  kLca = 3,         ///< Case 3: related through a least common ancestor
};

const char* EdgeCaseToString(EdgeCase c);

/// \brief Classify the incoming edge of virtual type \p t.
EdgeCase ClassifyEdge(const VDataGuide& guide, VTypeId t);

/// \brief The full report.
struct ViewReport {
  /// Original types not displayed by any virtual type.
  std::vector<dg::TypeId> dropped;
  /// Original types displayed by more than one virtual type (their
  /// instances can appear at several virtual locations).
  std::vector<dg::TypeId> duplicated;
  /// Virtual types whose instances may be orphaned (a parent instance is
  /// not structurally guaranteed to exist: Case 2 upward or Case 3 edges
  /// somewhere on the path to the root).
  std::vector<VTypeId> possibly_orphaned;
  /// Edge counts by case, indexed by EdgeCase.
  size_t case_counts[4] = {0, 0, 0, 0};
  /// Fraction of original types retained (0..1).
  double coverage = 0;

  /// Human-readable multi-line summary.
  std::string ToString(const VDataGuide& guide) const;
};

/// \brief Analyze \p guide against its original DataGuide.
ViewReport AnalyzeView(const VDataGuide& guide);

}  // namespace vpbn::vdg
