/// \file vdataguide.h
/// \brief vDataGuide: the expanded description of a virtual hierarchy.
///
/// A VDataGuide is produced by resolving a specification (vdg/spec_ast.h)
/// against the original DataGuide of a document. Each node — a *virtual
/// type* (VTypeId) — remembers the original type it displays
/// (originalTypeOf, §4.1), its virtual level, and its position in the
/// virtual type forest. The virtual type forest is itself PBN-numbered so
/// type-level axis checks are prefix tests, as §5 assumes.
///
/// Expansion rules (the paper's `*`/`**`, §4.1, plus two documented
/// conventions the paper's examples imply but do not spell out):
///   * An element label implicitly carries its text-node child type, if the
///     original type has one: in Figure 7(b), `title { author { name } }`
///     yields title and name with ◦ children even though ◦ is never written.
///     The implicit text child is placed before explicit children, matching
///     the output order of Figure 3.
///   * `*` expands to the child types of the enclosing label's original type
///     that are not mentioned elsewhere in the specification, one level deep
///     (each expanded child again carries its implicit text child).
///   * `**` expands to the full descendant subtree, skipping any descendant
///     type that is explicitly mentioned elsewhere in the specification
///     (so `data { ** }` is the identity transformation).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dataguide/dataguide.h"
#include "pbn/pbn.h"
#include "vdg/spec_ast.h"

namespace vpbn::vdg {

/// \brief Dense identifier of a virtual type within one VDataGuide.
using VTypeId = uint32_t;

/// \brief Sentinel for "no virtual type".
inline constexpr VTypeId kNullVType = UINT32_MAX;

/// \brief Limits applied during expansion.
struct ExpandLimits {
  /// Maximum number of virtual types the expansion may produce.
  size_t max_vtypes = 1u << 20;
};

/// \brief The expanded virtual hierarchy description.
class VDataGuide {
 public:
  /// Parse \p spec_text and expand it against \p original. The DataGuide
  /// must outlive the VDataGuide.
  static Result<VDataGuide> Create(std::string_view spec_text,
                                   const dg::DataGuide& original,
                                   const ExpandLimits& limits = {});

  /// Expand an already parsed \p spec.
  static Result<VDataGuide> Create(const Spec& spec,
                                   const dg::DataGuide& original,
                                   const ExpandLimits& limits = {});

  /// \name Virtual type accessors
  /// @{
  size_t num_vtypes() const { return originals_.size(); }

  /// Display label (the original type's last step, "#text" for text types).
  const std::string& label(VTypeId t) const;

  /// Dotted path in the *virtual* hierarchy, e.g. "title.author.name".
  const std::string& vpath(VTypeId t) const { return vpaths_[t]; }

  /// The original type this virtual type displays (originalTypeOf).
  dg::TypeId original(VTypeId t) const { return originals_[t]; }

  VTypeId parent(VTypeId t) const { return parents_[t]; }
  const std::vector<VTypeId>& children(VTypeId t) const {
    return children_[t];
  }
  const std::vector<VTypeId>& roots() const { return roots_; }

  /// Virtual level; roots are level 1 (the paper's convention).
  uint32_t level(VTypeId t) const {
    return static_cast<uint32_t>(pbn_[t].length());
  }

  bool IsTextVType(VTypeId t) const {
    return original_guide_->IsTextType(originals_[t]);
  }

  /// PBN of the virtual type in the virtual type forest.
  const num::Pbn& pbn(VTypeId t) const { return pbn_[t]; }

  /// Index of \p t in the pre-order traversal of the virtual type forest;
  /// this is the tie-break order used by virtual document order when number
  /// comparison alone cannot decide (sibling types under one parent).
  uint32_t preorder_index(VTypeId t) const { return preorder_[t]; }
  /// @}

  /// \name Type-forest relationships (used by the virtual axis predicates)
  /// @{
  bool IsAncestorVType(VTypeId a, VTypeId d) const {
    return pbn_[a].IsStrictPrefixOf(pbn_[d]);
  }
  bool IsChildVType(VTypeId c, VTypeId p) const {
    return parents_[c] == p;
  }
  bool SameParentVType(VTypeId a, VTypeId b) const {
    return parents_[a] == parents_[b];
  }
  bool SameTreeVType(VTypeId a, VTypeId b) const {
    return pbn_[a].at1(1) == pbn_[b].at1(1);
  }
  /// @}

  /// \name Lookup (used by query name tests)
  /// @{

  /// All virtual types with display label \p label.
  std::vector<VTypeId> FindByLabel(std::string_view label) const;

  /// The virtual type at exactly this virtual path, or NotFound.
  Result<VTypeId> FindByVPath(std::string_view vpath) const;
  /// @}

  const dg::DataGuide& original_guide() const { return *original_guide_; }

  /// Pre-order traversal of the virtual type forest.
  std::vector<VTypeId> PreOrder() const;

  /// True if some original type is displayed by more than one virtual type
  /// (a node can then appear at several places in the virtual hierarchy).
  bool HasDuplicatedOriginals() const;

  /// Approximate heap footprint (benchmark accounting).
  size_t MemoryUsage() const;

 private:
  VTypeId AddVType(dg::TypeId original, VTypeId parent);

  const dg::DataGuide* original_guide_ = nullptr;
  std::vector<dg::TypeId> originals_;
  std::vector<VTypeId> parents_;
  std::vector<std::vector<VTypeId>> children_;
  std::vector<std::string> vpaths_;
  std::vector<num::Pbn> pbn_;
  std::vector<uint32_t> preorder_;
  std::vector<VTypeId> roots_;
};

}  // namespace vpbn::vdg
