/// \file spec_ast.h
/// \brief AST for the vDataGuide specification grammar (§4.1).
///
/// The paper's grammar:
///     S ← label P
///     P ← { L } | ε
///     L ← D L | ε
///     D ← * | ** | label P
///
/// `label` is a name or (dot-)qualified type of the original DataGuide;
/// `*` expands to the children of the enclosing label that are not mentioned
/// elsewhere in the vDataGuide; `**` expands to its descendants.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace vpbn::vdg {

/// \brief One node of the parsed specification.
struct SpecNode {
  enum class Kind : uint8_t {
    kLabel,     ///< a (possibly qualified) label, with optional children
    kStar,      ///< `*`  — unmentioned children of the enclosing label
    kStarStar,  ///< `**` — descendants of the enclosing label
  };

  Kind kind = Kind::kLabel;
  std::string label;                // only for kLabel
  std::vector<SpecNode> children;   // only for kLabel

  static SpecNode Star() { return SpecNode{Kind::kStar, "", {}}; }
  static SpecNode StarStar() { return SpecNode{Kind::kStarStar, "", {}}; }
};

/// \brief A parsed specification: one or more top-level labelled trees.
struct Spec {
  std::vector<SpecNode> roots;

  /// Render back to the grammar's concrete syntax (normalized whitespace).
  std::string ToString() const;
};

/// \brief Parse the concrete syntax. Errors carry the offending position.
Result<Spec> ParseSpec(std::string_view text);

}  // namespace vpbn::vdg
