/// \file treebank.h
/// \brief Treebank-style generator: deeply recursive parse trees.
///
/// The Penn Treebank XML conversion is the standard deep-recursion stress
/// case in the XML indexing literature: sentence structures nest the same
/// element names dozens of levels deep, so a path-based DataGuide grows one
/// type per recursion level (§4.1: "each level of recursion is a different
/// (actual) type"). Deep PBN numbers and long level arrays stress exactly
/// the O(c) factors of the paper's analysis.

#pragma once

#include <cstdint>

#include "xml/document.h"

namespace vpbn::workload {

struct TreebankOptions {
  uint64_t seed = 42;
  /// Number of <S> sentence trees under the corpus root.
  int num_sentences = 50;
  /// Maximum recursion depth of a sentence's phrase structure.
  int max_depth = 16;
  /// Expected branching of non-terminal phrases.
  double branch_mean = 1.8;
};

/// \brief Generate <treebank> with <S> sentences of nested NP/VP/PP/ADJP
/// phrases ending in word leaves.
xml::Document GenerateTreebank(const TreebankOptions& options);

}  // namespace vpbn::workload
