/// \file auctions.h
/// \brief XMark-style auction-site generator.
///
/// The XMark benchmark (Schmidt et al., VLDB 2002) is the standard XML
/// benchmark family the paper's community evaluates against; this generator
/// reproduces its auction-site shape at configurable scale: regions with
/// items, people, and open auctions with bidders referencing both. The
/// multi-branch schema gives virtual transformations plenty of LCA (Case 3)
/// structure: e.g. re-hierarchize auctions under the people who bid.

#pragma once

#include <cstdint>

#include "xml/document.h"

namespace vpbn::workload {

/// \brief Scale parameters. XMark's scale factor 0.1 is roughly items=2000.
struct AuctionsOptions {
  uint64_t seed = 7;
  int num_items = 200;
  int num_people = 100;
  int num_auctions = 150;
  /// Bidders per auction: 1 + Zipf(max_extra_bidders, 1.0).
  int max_extra_bidders = 4;
};

/// \brief Generate a <site> document:
///   site/regions/<region>/item/{name, description, quantity}
///   site/people/person/{name, city}
///   site/open_auctions/auction/{itemref, bidder/{personref, price}...}
xml::Document GenerateAuctions(const AuctionsOptions& options);

}  // namespace vpbn::workload
