/// \file auctions.h
/// \brief XMark-style auction-site generator.
///
/// The XMark benchmark (Schmidt et al., VLDB 2002) is the standard XML
/// benchmark family the paper's community evaluates against; this generator
/// reproduces its auction-site shape at configurable scale: regions with
/// items, people, and open auctions with bidders referencing both. The
/// multi-branch schema gives virtual transformations plenty of LCA (Case 3)
/// structure: e.g. re-hierarchize auctions under the people who bid.
///
/// Two entry points share one record-at-a-time core (AuctionsStream):
/// GenerateAuctions materializes the whole document in one call, and the
/// stream / GenerateAuctionsChunked forms emit the same tree in bounded
/// slices so multi-million-node corpora (E17) can report progress and
/// interleave with other work. For equal options all forms produce
/// byte-identical documents.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "xml/builder.h"
#include "xml/document.h"

namespace vpbn::workload {

/// \brief Scale parameters. XMark's scale factor 0.1 is roughly items=2000.
struct AuctionsOptions {
  uint64_t seed = 7;
  int num_items = 200;
  int num_people = 100;
  int num_auctions = 150;
  /// Bidders per auction: 1 + Zipf(max_extra_bidders, 1.0).
  int max_extra_bidders = 4;
};

/// \brief Map an XMark-style scale factor to record counts, keeping the
/// default 4:2:3 item:person:auction ratio (factor 0.01 = the defaults,
/// factor 10 is on the order of ten million nodes).
AuctionsOptions ScaledAuctions(double scale_factor, uint64_t seed = 7);

/// \brief Incremental generator: emits the auction site record by record
/// into a caller-supplied builder.
///
/// \code
///   xml::DocumentBuilder b;
///   AuctionsStream stream(options);
///   while (stream.Next(&b, 10000)) { /* report progress */ }
///   xml::Document doc = std::move(b).Finish();
/// \endcode
///
/// The stream owns all generator state (PRNG, region assignment, section
/// cursors); the builder only ever holds the partially built document, so
/// callers control batching without affecting the bytes produced.
class AuctionsStream {
 public:
  explicit AuctionsStream(const AuctionsOptions& options);

  /// Emit up to \p max_records top-level records (items, then people, then
  /// auctions) into \p b, opening and closing section wrappers as they are
  /// reached. \p max_records <= 0 emits everything remaining. Returns true
  /// while the document is incomplete; once it returns false the builder
  /// holds the finished <site> tree (all elements closed).
  bool Next(xml::DocumentBuilder* b, int max_records);

  /// Records emitted so far / in total (items + people + auctions).
  uint64_t records_emitted() const { return emitted_; }
  uint64_t records_total() const;

 private:
  enum class Phase { kRegions, kPeople, kAuctions, kDone };

  void EmitItem(xml::DocumentBuilder* b, int i);
  void EmitPerson(xml::DocumentBuilder* b, int p);
  void EmitAuction(xml::DocumentBuilder* b, int a);

  AuctionsOptions options_;
  Rng rng_;
  std::vector<std::vector<int>> items_by_region_;
  Phase phase_ = Phase::kRegions;
  bool started_ = false;
  int region_ = 0;
  size_t region_idx_ = 0;
  int person_ = 0;
  int auction_ = 0;
  uint64_t emitted_ = 0;
};

/// \brief Generate a <site> document:
///   site/regions/<region>/item/{name, description, quantity}
///   site/people/person/{name, city}
///   site/open_auctions/auction/{itemref, bidder/{personref, price}...}
xml::Document GenerateAuctions(const AuctionsOptions& options);

/// \brief GenerateAuctions in slices of \p records_per_chunk records,
/// invoking \p on_chunk (may be empty) after each slice with cumulative
/// progress. Byte-identical to GenerateAuctions for equal \p options.
xml::Document GenerateAuctionsChunked(
    const AuctionsOptions& options, int records_per_chunk,
    const std::function<void(uint64_t done, uint64_t total)>& on_chunk = {});

}  // namespace vpbn::workload
