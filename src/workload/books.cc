#include "workload/books.h"

#include "common/random.h"
#include "xml/builder.h"

namespace vpbn::workload {

namespace {

const char* const kFirstNames[] = {"Ada",  "Edgar", "Grace", "Alan",
                                   "Barb", "Curt",  "Donna", "Ed"};
const char* const kLastNames[] = {"Codd",   "Dijkstra", "Hopper", "Turing",
                                  "Liskov", "Knuth",    "Gray",   "Stone"};
const char* const kCities[] = {"Boston", "Berlin", "Tokyo",    "Logan",
                               "Sydney", "Mumbai", "Sao Paulo"};
const char* const kTopics[] = {"Databases", "Compilers", "Networks",
                               "Graphics",  "Logic",     "Algorithms"};

}  // namespace

xml::Document GenerateBooks(const BooksOptions& options) {
  Rng rng(options.seed);
  xml::DocumentBuilder b;
  b.Open("data");
  for (int i = 0; i < options.num_books; ++i) {
    b.Open("book");
    if (options.with_attributes) {
      b.Attr("id", "b" + std::to_string(i));
      b.Attr("year", std::to_string(1960 + rng.Uniform(65)));
    }
    if (rng.Bernoulli(options.title_prob)) {
      std::string title = std::string(kTopics[rng.Uniform(6)]) + " Vol. " +
                          std::to_string(i);
      b.Leaf("title", title);
    }
    int n_authors =
        1 + static_cast<int>(rng.Zipf(
                static_cast<uint64_t>(options.max_extra_authors) + 1,
                options.zipf_s));
    for (int a = 0; a < n_authors; ++a) {
      b.Open("author");
      std::string name = std::string(kFirstNames[rng.Uniform(8)]) + " " +
                         kLastNames[rng.Uniform(8)];
      b.Leaf("name", name);
      b.Close();
    }
    if (rng.Bernoulli(options.publisher_prob)) {
      b.Open("publisher");
      b.Leaf("location", kCities[rng.Uniform(7)]);
      b.Close();
    }
    b.Close();
  }
  b.Close();
  return std::move(b).Finish();
}

}  // namespace vpbn::workload
