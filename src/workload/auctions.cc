#include "workload/auctions.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace vpbn::workload {

namespace {

constexpr int kNumRegions = 6;
const char* const kRegions[] = {"africa", "asia", "australia", "europe",
                                "namerica", "samerica"};
const char* const kNouns[] = {"clock",  "lamp",   "vase",  "chair",
                              "mirror", "carpet", "piano", "radio"};
const char* const kCities[] = {"Amsterdam", "Cairo", "Lima", "Oslo", "Pune"};

}  // namespace

AuctionsOptions ScaledAuctions(double scale_factor, uint64_t seed) {
  AuctionsOptions options;
  options.seed = seed;
  double f = std::max(scale_factor, 0.0);
  auto scale = [f](int base) {
    double n = std::round(static_cast<double>(base) * f / 0.01);
    return std::max(1, static_cast<int>(n));
  };
  options.num_items = scale(200);
  options.num_people = scale(100);
  options.num_auctions = scale(150);
  return options;
}

AuctionsStream::AuctionsStream(const AuctionsOptions& options)
    : options_(options), rng_(options.seed), items_by_region_(kNumRegions) {
  // Distribute items round-robin-ish over regions so every region exists.
  // Drawn up front (before any item content) so emission order per region
  // does not perturb the PRNG stream.
  for (int i = 0; i < options_.num_items; ++i) {
    items_by_region_[rng_.Uniform(kNumRegions)].push_back(i);
  }
}

uint64_t AuctionsStream::records_total() const {
  return static_cast<uint64_t>(std::max(options_.num_items, 0)) +
         static_cast<uint64_t>(std::max(options_.num_people, 0)) +
         static_cast<uint64_t>(std::max(options_.num_auctions, 0));
}

void AuctionsStream::EmitItem(xml::DocumentBuilder* b, int i) {
  b->Open("item");
  b->Attr("id", "item" + std::to_string(i));
  b->Leaf("name",
          std::string(kNouns[rng_.Uniform(8)]) + " #" + std::to_string(i));
  b->Leaf("description",
          "A fine " + std::string(kNouns[rng_.Uniform(8)]) + ".");
  b->Leaf("quantity", std::to_string(1 + rng_.Uniform(5)));
  b->Close();
}

void AuctionsStream::EmitPerson(xml::DocumentBuilder* b, int p) {
  b->Open("person");
  b->Attr("id", "person" + std::to_string(p));
  b->Leaf("name", "P" + std::to_string(p) + " " + rng_.Identifier(4, 8));
  b->Leaf("city", kCities[rng_.Uniform(5)]);
  b->Close();
}

void AuctionsStream::EmitAuction(xml::DocumentBuilder* b, int a) {
  b->Open("auction");
  b->Attr("id", "auction" + std::to_string(a));
  b->Leaf("itemref",
          "item" +
              std::to_string(rng_.Uniform(std::max(options_.num_items, 1))));
  int n_bidders =
      1 + static_cast<int>(rng_.Zipf(
              static_cast<uint64_t>(options_.max_extra_bidders) + 1, 1.0));
  int price = 10 + static_cast<int>(rng_.Uniform(90));
  for (int bd = 0; bd < n_bidders; ++bd) {
    b->Open("bidder");
    b->Leaf("personref",
            "person" + std::to_string(
                           rng_.Uniform(std::max(options_.num_people, 1))));
    price += static_cast<int>(rng_.Uniform(25));
    b->Leaf("price", std::to_string(price));
    b->Close();
  }
  b->Close();
}

bool AuctionsStream::Next(xml::DocumentBuilder* b, int max_records) {
  if (!started_) {
    b->Open("site");
    b->Open("regions");
    b->Open(kRegions[0]);
    started_ = true;
  }
  int batch = 0;
  while (phase_ != Phase::kDone &&
         (max_records <= 0 || batch < max_records)) {
    switch (phase_) {
      case Phase::kRegions:
        if (region_idx_ < items_by_region_[region_].size()) {
          EmitItem(b, items_by_region_[region_][region_idx_++]);
          ++batch;
          ++emitted_;
        } else {
          b->Close();  // region
          ++region_;
          region_idx_ = 0;
          if (region_ < kNumRegions) {
            b->Open(kRegions[region_]);
          } else {
            b->Close();  // regions
            b->Open("people");
            phase_ = Phase::kPeople;
          }
        }
        break;
      case Phase::kPeople:
        if (person_ < options_.num_people) {
          EmitPerson(b, person_++);
          ++batch;
          ++emitted_;
        } else {
          b->Close();  // people
          b->Open("open_auctions");
          phase_ = Phase::kAuctions;
        }
        break;
      case Phase::kAuctions:
        if (auction_ < options_.num_auctions) {
          EmitAuction(b, auction_++);
          ++batch;
          ++emitted_;
        } else {
          b->Close();  // open_auctions
          b->Close();  // site
          phase_ = Phase::kDone;
        }
        break;
      case Phase::kDone:
        break;
    }
  }
  return phase_ != Phase::kDone;
}

xml::Document GenerateAuctions(const AuctionsOptions& options) {
  xml::DocumentBuilder b;
  AuctionsStream stream(options);
  while (stream.Next(&b, 0)) {
  }
  return std::move(b).Finish();
}

xml::Document GenerateAuctionsChunked(
    const AuctionsOptions& options, int records_per_chunk,
    const std::function<void(uint64_t done, uint64_t total)>& on_chunk) {
  xml::DocumentBuilder b;
  AuctionsStream stream(options);
  const uint64_t total = stream.records_total();
  bool more = true;
  while (more) {
    more = stream.Next(&b, std::max(records_per_chunk, 1));
    if (on_chunk) on_chunk(stream.records_emitted(), total);
  }
  return std::move(b).Finish();
}

}  // namespace vpbn::workload
