#include "workload/auctions.h"

#include "common/random.h"
#include "xml/builder.h"

namespace vpbn::workload {

namespace {

const char* const kRegions[] = {"africa", "asia", "australia", "europe",
                                "namerica", "samerica"};
const char* const kNouns[] = {"clock",  "lamp",   "vase",  "chair",
                              "mirror", "carpet", "piano", "radio"};
const char* const kCities[] = {"Amsterdam", "Cairo", "Lima", "Oslo", "Pune"};

}  // namespace

xml::Document GenerateAuctions(const AuctionsOptions& options) {
  Rng rng(options.seed);
  xml::DocumentBuilder b;
  b.Open("site");

  b.Open("regions");
  // Distribute items round-robin-ish over regions so every region exists.
  int n_regions = 6;
  std::vector<std::vector<int>> items_by_region(n_regions);
  for (int i = 0; i < options.num_items; ++i) {
    items_by_region[rng.Uniform(n_regions)].push_back(i);
  }
  for (int r = 0; r < n_regions; ++r) {
    b.Open(kRegions[r]);
    for (int i : items_by_region[r]) {
      b.Open("item");
      b.Attr("id", "item" + std::to_string(i));
      b.Leaf("name", std::string(kNouns[rng.Uniform(8)]) + " #" +
                         std::to_string(i));
      b.Leaf("description",
             "A fine " + std::string(kNouns[rng.Uniform(8)]) + ".");
      b.Leaf("quantity", std::to_string(1 + rng.Uniform(5)));
      b.Close();
    }
    b.Close();
  }
  b.Close();  // regions

  b.Open("people");
  for (int p = 0; p < options.num_people; ++p) {
    b.Open("person");
    b.Attr("id", "person" + std::to_string(p));
    b.Leaf("name", "P" + std::to_string(p) + " " + rng.Identifier(4, 8));
    b.Leaf("city", kCities[rng.Uniform(5)]);
    b.Close();
  }
  b.Close();  // people

  b.Open("open_auctions");
  for (int a = 0; a < options.num_auctions; ++a) {
    b.Open("auction");
    b.Attr("id", "auction" + std::to_string(a));
    b.Leaf("itemref",
           "item" + std::to_string(rng.Uniform(
                        std::max(options.num_items, 1))));
    int n_bidders =
        1 + static_cast<int>(rng.Zipf(
                static_cast<uint64_t>(options.max_extra_bidders) + 1, 1.0));
    int price = 10 + static_cast<int>(rng.Uniform(90));
    for (int bd = 0; bd < n_bidders; ++bd) {
      b.Open("bidder");
      b.Leaf("personref",
             "person" + std::to_string(rng.Uniform(
                            std::max(options.num_people, 1))));
      price += static_cast<int>(rng.Uniform(25));
      b.Leaf("price", std::to_string(price));
      b.Close();
    }
    b.Close();
  }
  b.Close();  // open_auctions

  b.Close();  // site
  return std::move(b).Finish();
}

}  // namespace vpbn::workload
