/// \file books.h
/// \brief Generator for the paper's running example schema (§2, Figure 2):
/// a catalog of books with titles, authors and publishers. All benchmark
/// experiments on Sam's/Rhonda's queries run over instances of this schema.

#pragma once

#include <cstdint>

#include "xml/document.h"

namespace vpbn::workload {

/// \brief Shape parameters for the catalog.
struct BooksOptions {
  uint64_t seed = 1;
  /// Number of <book> elements.
  int num_books = 100;
  /// Authors per book are 1 + Zipf(max_extra_authors, zipf_s).
  int max_extra_authors = 3;
  double zipf_s = 1.1;
  /// Probability that a book carries a <publisher><location>.
  double publisher_prob = 0.8;
  /// Probability that a book has a <title> (orphaned authors exercise the
  /// no-parent path of virtual navigation when < 1).
  double title_prob = 1.0;
  /// Add year/id attributes to books.
  bool with_attributes = true;
};

/// \brief Generate <data> with `num_books` <book> children.
xml::Document GenerateBooks(const BooksOptions& options);

}  // namespace vpbn::workload
