#include "workload/treebank.h"

#include "common/random.h"
#include "xml/builder.h"

namespace vpbn::workload {

namespace {

const char* const kPhrases[] = {"NP", "VP", "PP", "ADJP"};
const char* const kWords[] = {"the",  "cat",   "sat",  "on",  "a",
                              "mat",  "quick", "brown", "fox", "jumps"};

void GrowPhrase(xml::DocumentBuilder* b, Rng* rng, int depth, int max_depth,
                double branch_mean) {
  if (depth >= max_depth || rng->Bernoulli(0.35)) {
    b->Leaf("word", kWords[rng->Uniform(10)]);
    return;
  }
  b->Open(kPhrases[rng->Uniform(4)]);
  int kids = 1;
  while (rng->Bernoulli(branch_mean / (branch_mean + 1.0)) && kids < 4) {
    ++kids;
  }
  for (int i = 0; i < kids; ++i) {
    GrowPhrase(b, rng, depth + 1, max_depth, branch_mean);
  }
  b->Close();
}

}  // namespace

xml::Document GenerateTreebank(const TreebankOptions& options) {
  Rng rng(options.seed);
  xml::DocumentBuilder b;
  b.Open("treebank");
  for (int s = 0; s < options.num_sentences; ++s) {
    b.Open("S");
    GrowPhrase(&b, &rng, 2, options.max_depth, options.branch_mean);
    GrowPhrase(&b, &rng, 2, options.max_depth, options.branch_mean);
    b.Close();
  }
  b.Close();
  return std::move(b).Finish();
}

}  // namespace vpbn::workload
