/// \file bibliography.h
/// \brief DBLP-style bibliography generator: publications with shared
/// author pools. The classic inversion workload — re-hierarchize by author
/// instead of by publication (Case 2 heavy).

#pragma once

#include <cstdint>

#include "xml/document.h"

namespace vpbn::workload {

struct BibliographyOptions {
  uint64_t seed = 13;
  int num_publications = 200;
  /// Size of the author pool names are drawn from (smaller pool = more
  /// sharing, more fan-out in the inverted hierarchy).
  int author_pool = 50;
  /// Authors per publication: 1 + Zipf(max_extra_authors, 1.2).
  int max_extra_authors = 4;
};

/// \brief Generate <bib> with <article>/<inproceedings> children, each with
/// <title>, <author>+ (text names drawn from a shared pool), <year>, and
/// <journal> or <booktitle>.
xml::Document GenerateBibliography(const BibliographyOptions& options);

}  // namespace vpbn::workload
