#include "workload/random_trees.h"

#include <vector>

namespace vpbn::workload {

xml::Document GenerateRandomTree(const RandomTreeOptions& options) {
  Rng rng(options.seed);
  xml::Document doc;
  struct Open {
    xml::NodeId id;
    int depth;
  };
  std::vector<Open> elements;
  xml::NodeId root = doc.AddElement("r0", xml::kNullNode);
  elements.push_back({root, 1});
  while (static_cast<int>(doc.num_nodes()) < options.num_nodes) {
    // Copy: push_back below may reallocate the vector.
    const Open parent = rng.Bernoulli(options.depth_bias)
                            ? elements.back()
                            : elements[rng.Uniform(elements.size())];
    if (rng.Bernoulli(options.text_prob)) {
      doc.AddText("t" + std::to_string(rng.Uniform(50)), parent.id);
      continue;
    }
    std::string label = "e" + std::to_string(rng.Uniform(options.num_labels));
    xml::NodeId child = doc.AddElement(label, parent.id);
    if (parent.depth + 1 < options.max_depth) {
      elements.push_back({child, parent.depth + 1});
    }
  }
  return doc;
}

std::string GenerateRandomSpec(const dg::DataGuide& guide,
                               const RandomSpecOptions& options) {
  Rng rng(options.seed);
  std::vector<dg::TypeId> element_types;
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    if (!guide.IsTextType(t)) element_types.push_back(t);
  }
  if (element_types.empty()) return "";

  int n = std::min<int>(options.num_types,
                        static_cast<int>(element_types.size()));
  // Choose n distinct types.
  std::vector<dg::TypeId> chosen;
  std::vector<bool> used(element_types.size(), false);
  while (static_cast<int>(chosen.size()) < n) {
    size_t i = rng.Uniform(element_types.size());
    if (used[i]) continue;
    used[i] = true;
    chosen.push_back(element_types[i]);
  }

  // Arrange into a random tree: node i attaches under a previous node (or
  // the previous node, with chain_prob) or becomes a new root.
  struct SpecNode {
    dg::TypeId type;
    std::vector<int> children;
  };
  std::vector<SpecNode> nodes;
  std::vector<int> roots;
  for (int i = 0; i < n; ++i) {
    nodes.push_back({chosen[i], {}});
    if (i == 0 || rng.Bernoulli(0.2)) {
      roots.push_back(i);
    } else if (rng.Bernoulli(options.chain_prob)) {
      nodes[i - 1].children.push_back(i);
    } else {
      nodes[rng.Uniform(i)].children.push_back(i);
    }
  }

  // Render with fully qualified labels (always unambiguous).
  std::string out;
  auto render = [&](int i, auto&& self) -> void {
    out += guide.path(nodes[i].type);
    bool star = rng.Bernoulli(options.star_prob);
    bool star_star = rng.Bernoulli(options.star_prob / 2);
    if (!nodes[i].children.empty() || star || star_star) {
      out += " { ";
      for (int c : nodes[i].children) {
        self(c, self);
        out += " ";
      }
      if (star) out += "* ";
      if (star_star) out += "** ";
      out += "}";
    }
  };
  for (size_t r = 0; r < roots.size(); ++r) {
    if (r > 0) out += " ";
    render(roots[r], render);
  }
  return out;
}

}  // namespace vpbn::workload
