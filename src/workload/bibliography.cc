#include "workload/bibliography.h"

#include <vector>

#include "common/random.h"
#include "xml/builder.h"

namespace vpbn::workload {

xml::Document GenerateBibliography(const BibliographyOptions& options) {
  Rng rng(options.seed);
  std::vector<std::string> pool;
  pool.reserve(options.author_pool);
  for (int i = 0; i < options.author_pool; ++i) {
    pool.push_back("Author" + std::to_string(i));
  }
  const char* const kVenues[] = {"SIGMOD", "VLDB", "ICDE", "EDBT", "TODS"};

  xml::DocumentBuilder b;
  b.Open("bib");
  for (int p = 0; p < options.num_publications; ++p) {
    bool article = rng.Bernoulli(0.5);
    b.Open(article ? "article" : "inproceedings");
    b.Attr("key", "pub" + std::to_string(p));
    b.Leaf("title", "On Topic " + std::to_string(p));
    int n_authors =
        1 + static_cast<int>(rng.Zipf(
                static_cast<uint64_t>(options.max_extra_authors) + 1, 1.2));
    // Distinct authors per publication.
    std::vector<int> chosen;
    while (static_cast<int>(chosen.size()) < n_authors &&
           static_cast<int>(chosen.size()) < options.author_pool) {
      int a = static_cast<int>(rng.Zipf(pool.size(), 0.8));
      bool dup = false;
      for (int c : chosen) dup = dup || c == a;
      if (!dup) chosen.push_back(a);
    }
    for (int a : chosen) b.Leaf("author", pool[a]);
    b.Leaf("year", std::to_string(1990 + rng.Uniform(35)));
    if (article) {
      b.Leaf("journal", kVenues[rng.Uniform(5)]);
    } else {
      b.Leaf("booktitle", kVenues[rng.Uniform(5)]);
    }
    b.Close();
  }
  b.Close();
  return std::move(b).Finish();
}

}  // namespace vpbn::workload
