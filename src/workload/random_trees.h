/// \file random_trees.h
/// \brief Seeded random documents and random vDataGuide specifications,
/// used by property tests and the E1/E7 benchmarks.

#pragma once

#include <cstdint>
#include <string>

#include "common/random.h"
#include "dataguide/dataguide.h"
#include "xml/document.h"

namespace vpbn::workload {

/// \brief Shape of a random document.
struct RandomTreeOptions {
  uint64_t seed = 1;
  int num_nodes = 100;
  /// Distinct element labels; reuse across levels creates recursive types.
  int num_labels = 6;
  /// Probability a new node is a text leaf.
  double text_prob = 0.2;
  /// Bias toward deeper trees: a new node attaches to the most recently
  /// added element with this probability, else to a uniform element.
  double depth_bias = 0.3;
  /// Hard cap on depth.
  int max_depth = 24;
};

/// \brief Generate a random forest.
xml::Document GenerateRandomTree(const RandomTreeOptions& options);

/// \brief Shape of a random vDataGuide specification.
struct RandomSpecOptions {
  uint64_t seed = 1;
  /// Number of original types to pull into the virtual hierarchy.
  int num_types = 5;
  /// Probability a chosen type nests under the previous one rather than a
  /// random earlier one.
  double chain_prob = 0.5;
  /// Probability a non-root node additionally receives a `*` child, and
  /// (independently, halved) a `**` child — exercising star expansion in
  /// property tests.
  double star_prob = 0.0;
};

/// \brief Build a random (always valid) vDataGuide spec over \p guide's
/// types: picks element types, arranges them into a random tree, labels
/// them with their fully qualified paths so resolution is unambiguous.
/// Returns an empty string if the guide has no element types.
std::string GenerateRandomSpec(const dg::DataGuide& guide,
                               const RandomSpecOptions& options);

}  // namespace vpbn::workload
