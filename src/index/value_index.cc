#include "index/value_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"

namespace vpbn::idx {

uint32_t Dictionary::Intern(std::string_view value) {
  auto it = map_.find(value);
  if (it != map_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(value);
  double num = 0;
  bool ok = ParseNumber(terms_.back(), &num);
  numbers_.push_back(ok ? num : 0);
  numeric_.push_back(ok ? 1 : 0);
  map_.emplace(std::string_view(terms_.back()), id);
  return id;
}

uint32_t Dictionary::Find(std::string_view value) const {
  auto it = map_.find(value);
  return it == map_.end() ? kNoTerm : it->second;
}

size_t Dictionary::MemoryUsage() const {
  size_t total = numbers_.capacity() * sizeof(double) + numeric_.capacity();
  for (const std::string& t : terms_) total += t.capacity() + sizeof(t);
  // Bucket + node overhead of the hash map, approximated per entry.
  total += map_.size() * (sizeof(std::string_view) + sizeof(uint32_t) + 16);
  return total;
}

size_t TypeColumn::MemoryUsage() const {
  size_t total = term_ids.capacity() * sizeof(uint32_t) +
                 numeric_rows.capacity() * sizeof(uint32_t) +
                 stats.MemoryUsage();
  for (const auto& [term, rows] : postings) {
    total += rows.capacity() * sizeof(uint32_t) + 16;
  }
  return total;
}

double ColumnStats::EstimateRowsBelow(double v, bool inclusive) const {
  if (numeric_count == 0) return 0;
  double below = 0;
  if (v <= min_value) {
    below = 0;
  } else if (v > max_value) {
    below = static_cast<double>(numeric_count);
  } else {
    double lo = min_value;
    for (size_t i = 0; i < bucket_max.size(); ++i) {
      double hi = bucket_max[i];
      if (v > hi) {
        below += static_cast<double>(bucket_rows[i]);
        lo = hi;
        continue;
      }
      // v lies inside bucket i: linear interpolation over its value span.
      double span = hi - lo;
      double frac = span > 0 ? (v - lo) / span : 0.0;
      below += frac * static_cast<double>(bucket_rows[i]);
      break;
    }
  }
  if (inclusive) below += EstimateEqRows(v);
  return std::min(below, static_cast<double>(numeric_count));
}

double ColumnStats::EstimateEqRows(double v) const {
  if (numeric_count == 0 || std::isnan(v) || v < min_value || v > max_value) {
    return 0;
  }
  for (size_t i = 0; i < bucket_max.size(); ++i) {
    if (v <= bucket_max[i]) {
      uint64_t d = bucket_distinct[i] != 0 ? bucket_distinct[i] : 1;
      return static_cast<double>(bucket_rows[i]) / static_cast<double>(d);
    }
  }
  return 0;
}

ColumnStats ValueIndex::ComputeStats(const TypeColumn& col) {
  ColumnStats s;
  const Dictionary& dict = *col.dict;
  const size_t n = col.term_ids.size();
  s.row_count = n;
  s.numeric_count = col.numeric_rows.size();
  s.distinct_terms = col.postings.size();
  for (const auto& [term, rows] : col.postings) {
    s.max_term_rows = std::max<uint64_t>(s.max_term_rows, rows.size());
  }
  // Zone maps over the row-order column. Term bounds cover every row; value
  // bounds cover only the numeric rows, so a block of pure strings keeps
  // the (+inf, -inf) empty interval and every numeric range skips it.
  const size_t blocks =
      (n + ColumnStats::kZoneBlockRows - 1) / ColumnStats::kZoneBlockRows;
  s.zone_min.assign(blocks, std::numeric_limits<double>::infinity());
  s.zone_max.assign(blocks, -std::numeric_limits<double>::infinity());
  s.zone_term_min.assign(blocks, kNoTerm);
  s.zone_term_max.assign(blocks, 0);
  for (size_t row = 0; row < n; ++row) {
    uint32_t term = col.term_ids[row];
    size_t b = row / ColumnStats::kZoneBlockRows;
    s.zone_term_min[b] = std::min(s.zone_term_min[b], term);
    s.zone_term_max[b] = std::max(s.zone_term_max[b], term);
    if (dict.numeric(term) && !std::isnan(dict.number(term))) {
      double v = dict.number(term);
      s.zone_min[b] = std::min(s.zone_min[b], v);
      s.zone_max[b] = std::max(s.zone_max[b], v);
    }
  }
  // Equi-depth histogram over the value-sorted numeric rows. Bucket ends
  // extend past equal-value runs so one value never straddles buckets; the
  // per-bucket distinct count falls out of the same walk.
  const std::vector<uint32_t>& nr = col.numeric_rows;
  if (!nr.empty()) {
    auto value_at = [&](size_t i) {
      return dict.number(col.term_ids[nr[i]]);
    };
    s.min_value = value_at(0);
    s.max_value = value_at(nr.size() - 1);
    size_t buckets = std::min<size_t>(ColumnStats::kMaxBuckets, nr.size());
    size_t depth = (nr.size() + buckets - 1) / buckets;
    size_t i = 0;
    while (i < nr.size()) {
      size_t end = std::min(nr.size(), i + depth);
      while (end < nr.size() && value_at(end) == value_at(end - 1)) ++end;
      uint64_t distinct = 1;
      for (size_t j = i + 1; j < end; ++j) {
        distinct += value_at(j) != value_at(j - 1) ? 1 : 0;
      }
      s.bucket_max.push_back(value_at(end - 1));
      s.bucket_rows.push_back(end - i);
      s.bucket_distinct.push_back(distinct);
      i = end;
    }
  }
  return s;
}

bool ValueIndex::GuideCovers(const dg::DataGuide& guide, dg::TypeId t) {
  if (guide.IsTextType(t)) return true;
  for (dg::TypeId c : guide.children(t)) {
    if (!guide.IsTextType(c)) return false;
  }
  return true;
}

TypeColumn ValueIndex::BuildColumn(
    size_t n, const std::function<std::string(size_t)>& value_of,
    Dictionary* dict) {
  TypeColumn col;
  col.dict = dict;
  col.term_ids.reserve(n);
  for (size_t row = 0; row < n; ++row) {
    uint32_t term = dict->Intern(value_of(row));
    col.term_ids.push_back(term);
    col.postings[term].push_back(static_cast<uint32_t>(row));
    // NaN terms ("nan" parses) stay out of the sorted column: they would
    // break the sort's strict weak ordering, and no relational or equality
    // slice can match them anyway (IEEE comparisons with NaN are false,
    // which is also what the scan path computes).
    if (dict->numeric(term) && !std::isnan(dict->number(term))) {
      col.numeric_rows.push_back(static_cast<uint32_t>(row));
    }
  }
  // Postings rows come out ascending (row-order intern loop); only the
  // numeric rows need the by-value reorder. stable_sort keeps equal values
  // in row order, so equality slices are document-ordered.
  std::stable_sort(col.numeric_rows.begin(), col.numeric_rows.end(),
                   [&](uint32_t a, uint32_t b) {
                     return dict->number(col.term_ids[a]) <
                            dict->number(col.term_ids[b]);
                   });
  col.stats = ComputeStats(col);
  return col;
}

ValueIndex ValueIndex::Build(
    const xml::Document& doc, const dg::DataGuide& guide,
    const std::vector<std::vector<xml::NodeId>>& nodes_by_type,
    common::ThreadPool* pool) {
  ValueIndex out;
  out.columns_.resize(guide.num_types());
  out.attrs_.resize(guide.num_types());
  // Phase 1 (parallel): materialize the string-values of every covered
  // type's rows — the subtree walks that dominate build time, and the only
  // per-row work with no ordering constraint. Each type writes its own
  // slot, so types fan out on the pool.
  std::vector<dg::TypeId> covered;
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    if (GuideCovers(guide, t)) covered.push_back(t);
  }
  std::vector<std::vector<std::string>> values(guide.num_types());
  common::ParallelFor(pool, covered.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      dg::TypeId t = covered[k];
      const std::vector<xml::NodeId>& ids = nodes_by_type[t];
      values[t].reserve(ids.size());
      for (xml::NodeId id : ids) values[t].push_back(doc.StringValue(id));
    }
  });
  // Phase 2 (sequential): intern in canonical order — covered column first,
  // then attribute columns, type by type — so term ids match the
  // single-threaded build exactly.
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    const std::vector<xml::NodeId>& ids = nodes_by_type[t];
    if (GuideCovers(guide, t)) {
      std::vector<std::string>& vals = values[t];
      out.columns_[t] = std::make_unique<TypeColumn>(BuildColumn(
          ids.size(),
          [&](size_t row) { return std::move(vals[row]); },
          out.dict_.get()));
      vals.clear();
      vals.shrink_to_fit();
    }
    if (guide.IsTextType(t)) continue;
    // Attribute columns: one per attribute name seen on any instance,
    // created on first sight with kNoTerm backfill for earlier rows.
    std::unordered_map<std::string, AttrColumn>& cols = out.attrs_[t];
    for (size_t row = 0; row < ids.size(); ++row) {
      for (const xml::Attribute& a : doc.attributes(ids[row])) {
        AttrColumn& col = cols[a.name];
        col.term_ids.resize(ids.size(), kNoTerm);
        col.term_ids[row] = out.dict_->Intern(a.value);
      }
    }
  }
  return out;
}

Result<TypeColumn> ValueIndex::ColumnFromTermIds(
    std::vector<uint32_t> term_ids, const Dictionary* dict,
    ColumnStats* precomputed) {
  TypeColumn col;
  col.dict = dict;
  col.term_ids = std::move(term_ids);
  // Counting pass first: with exact sizes known, the postings map and its
  // row vectors allocate once instead of rehashing and regrowing under
  // insertion (the snapshot-restore hot path rebuilds every column).
  std::vector<uint32_t> counts(dict->size(), 0);
  size_t numeric_count = 0;
  for (uint32_t term : col.term_ids) {
    if (term >= dict->size()) {
      return Status::InvalidArgument("value column term id out of range");
    }
    ++counts[term];
    if (dict->numeric(term) && !std::isnan(dict->number(term))) {
      ++numeric_count;
    }
  }
  size_t distinct = 0;
  for (uint32_t c : counts) distinct += c != 0;
  col.postings.reserve(distinct);
  col.numeric_rows.reserve(numeric_count);
  for (size_t row = 0; row < col.term_ids.size(); ++row) {
    uint32_t term = col.term_ids[row];
    std::vector<uint32_t>& rows = col.postings[term];
    if (rows.empty()) rows.reserve(counts[term]);
    rows.push_back(static_cast<uint32_t>(row));
    if (dict->numeric(term) && !std::isnan(dict->number(term))) {
      col.numeric_rows.push_back(static_cast<uint32_t>(row));
    }
  }
  std::stable_sort(col.numeric_rows.begin(), col.numeric_rows.end(),
                   [&](uint32_t a, uint32_t b) {
                     return dict->number(col.term_ids[a]) <
                            dict->number(col.term_ids[b]);
                   });
  if (precomputed != nullptr) {
    // Persisted statistics must have exactly the shape ComputeStats would
    // produce for this column; the bucket/zone *contents* only steer cost
    // estimates, never results, so they are trusted once the shapes match.
    const ColumnStats& s = *precomputed;
    const size_t blocks =
        (col.term_ids.size() + ColumnStats::kZoneBlockRows - 1) /
        ColumnStats::kZoneBlockRows;
    const bool shape_ok =
        s.row_count == col.term_ids.size() &&
        s.numeric_count == col.numeric_rows.size() &&
        s.distinct_terms == col.postings.size() &&
        s.bucket_max.size() == s.bucket_rows.size() &&
        s.bucket_max.size() == s.bucket_distinct.size() &&
        s.bucket_max.size() <= ColumnStats::kMaxBuckets &&
        s.bucket_max.empty() == (s.numeric_count == 0) &&
        s.zone_min.size() == blocks && s.zone_max.size() == blocks &&
        s.zone_term_min.size() == blocks && s.zone_term_max.size() == blocks;
    if (!shape_ok) {
      return Status::InvalidArgument(
          "value column stats do not match column shape");
    }
    col.stats = std::move(*precomputed);
  } else {
    col.stats = ComputeStats(col);
  }
  return col;
}

const AttrColumn* ValueIndex::Attr(dg::TypeId t,
                                   const std::string& name) const {
  if (t >= attrs_.size()) return nullptr;
  auto it = attrs_[t].find(name);
  return it == attrs_[t].end() ? nullptr : &it->second;
}

size_t ValueIndex::MemoryUsage() const {
  size_t total = dict_->MemoryUsage();
  for (const auto& col : columns_) {
    if (col != nullptr) total += col->MemoryUsage();
  }
  for (const auto& by_name : attrs_) {
    for (const auto& [name, col] : by_name) {
      total += name.capacity() + col.MemoryUsage();
    }
  }
  return total;
}

}  // namespace vpbn::idx
