#include "index/value_index.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace vpbn::idx {

uint32_t Dictionary::Intern(std::string_view value) {
  auto it = map_.find(value);
  if (it != map_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(value);
  double num = 0;
  bool ok = ParseNumber(terms_.back(), &num);
  numbers_.push_back(ok ? num : 0);
  numeric_.push_back(ok ? 1 : 0);
  map_.emplace(std::string_view(terms_.back()), id);
  return id;
}

uint32_t Dictionary::Find(std::string_view value) const {
  auto it = map_.find(value);
  return it == map_.end() ? kNoTerm : it->second;
}

size_t Dictionary::MemoryUsage() const {
  size_t total = numbers_.capacity() * sizeof(double) + numeric_.capacity();
  for (const std::string& t : terms_) total += t.capacity() + sizeof(t);
  // Bucket + node overhead of the hash map, approximated per entry.
  total += map_.size() * (sizeof(std::string_view) + sizeof(uint32_t) + 16);
  return total;
}

size_t TypeColumn::MemoryUsage() const {
  size_t total = term_ids.capacity() * sizeof(uint32_t) +
                 numeric_rows.capacity() * sizeof(uint32_t);
  for (const auto& [term, rows] : postings) {
    total += rows.capacity() * sizeof(uint32_t) + 16;
  }
  return total;
}

bool ValueIndex::GuideCovers(const dg::DataGuide& guide, dg::TypeId t) {
  if (guide.IsTextType(t)) return true;
  for (dg::TypeId c : guide.children(t)) {
    if (!guide.IsTextType(c)) return false;
  }
  return true;
}

TypeColumn ValueIndex::BuildColumn(
    size_t n, const std::function<std::string(size_t)>& value_of,
    Dictionary* dict) {
  TypeColumn col;
  col.dict = dict;
  col.term_ids.reserve(n);
  for (size_t row = 0; row < n; ++row) {
    uint32_t term = dict->Intern(value_of(row));
    col.term_ids.push_back(term);
    col.postings[term].push_back(static_cast<uint32_t>(row));
    // NaN terms ("nan" parses) stay out of the sorted column: they would
    // break the sort's strict weak ordering, and no relational or equality
    // slice can match them anyway (IEEE comparisons with NaN are false,
    // which is also what the scan path computes).
    if (dict->numeric(term) && !std::isnan(dict->number(term))) {
      col.numeric_rows.push_back(static_cast<uint32_t>(row));
    }
  }
  // Postings rows come out ascending (row-order intern loop); only the
  // numeric rows need the by-value reorder. stable_sort keeps equal values
  // in row order, so equality slices are document-ordered.
  std::stable_sort(col.numeric_rows.begin(), col.numeric_rows.end(),
                   [&](uint32_t a, uint32_t b) {
                     return dict->number(col.term_ids[a]) <
                            dict->number(col.term_ids[b]);
                   });
  return col;
}

ValueIndex ValueIndex::Build(
    const xml::Document& doc, const dg::DataGuide& guide,
    const std::vector<std::vector<xml::NodeId>>& nodes_by_type,
    common::ThreadPool* pool) {
  ValueIndex out;
  out.columns_.resize(guide.num_types());
  out.attrs_.resize(guide.num_types());
  // Phase 1 (parallel): materialize the string-values of every covered
  // type's rows — the subtree walks that dominate build time, and the only
  // per-row work with no ordering constraint. Each type writes its own
  // slot, so types fan out on the pool.
  std::vector<dg::TypeId> covered;
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    if (GuideCovers(guide, t)) covered.push_back(t);
  }
  std::vector<std::vector<std::string>> values(guide.num_types());
  common::ParallelFor(pool, covered.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      dg::TypeId t = covered[k];
      const std::vector<xml::NodeId>& ids = nodes_by_type[t];
      values[t].reserve(ids.size());
      for (xml::NodeId id : ids) values[t].push_back(doc.StringValue(id));
    }
  });
  // Phase 2 (sequential): intern in canonical order — covered column first,
  // then attribute columns, type by type — so term ids match the
  // single-threaded build exactly.
  for (dg::TypeId t = 0; t < guide.num_types(); ++t) {
    const std::vector<xml::NodeId>& ids = nodes_by_type[t];
    if (GuideCovers(guide, t)) {
      std::vector<std::string>& vals = values[t];
      out.columns_[t] = std::make_unique<TypeColumn>(BuildColumn(
          ids.size(),
          [&](size_t row) { return std::move(vals[row]); },
          out.dict_.get()));
      vals.clear();
      vals.shrink_to_fit();
    }
    if (guide.IsTextType(t)) continue;
    // Attribute columns: one per attribute name seen on any instance,
    // created on first sight with kNoTerm backfill for earlier rows.
    std::unordered_map<std::string, AttrColumn>& cols = out.attrs_[t];
    for (size_t row = 0; row < ids.size(); ++row) {
      for (const xml::Attribute& a : doc.attributes(ids[row])) {
        AttrColumn& col = cols[a.name];
        col.term_ids.resize(ids.size(), kNoTerm);
        col.term_ids[row] = out.dict_->Intern(a.value);
      }
    }
  }
  return out;
}

Result<TypeColumn> ValueIndex::ColumnFromTermIds(
    std::vector<uint32_t> term_ids, const Dictionary* dict) {
  TypeColumn col;
  col.dict = dict;
  col.term_ids = std::move(term_ids);
  // Counting pass first: with exact sizes known, the postings map and its
  // row vectors allocate once instead of rehashing and regrowing under
  // insertion (the snapshot-restore hot path rebuilds every column).
  std::vector<uint32_t> counts(dict->size(), 0);
  size_t numeric_count = 0;
  for (uint32_t term : col.term_ids) {
    if (term >= dict->size()) {
      return Status::InvalidArgument("value column term id out of range");
    }
    ++counts[term];
    if (dict->numeric(term) && !std::isnan(dict->number(term))) {
      ++numeric_count;
    }
  }
  size_t distinct = 0;
  for (uint32_t c : counts) distinct += c != 0;
  col.postings.reserve(distinct);
  col.numeric_rows.reserve(numeric_count);
  for (size_t row = 0; row < col.term_ids.size(); ++row) {
    uint32_t term = col.term_ids[row];
    std::vector<uint32_t>& rows = col.postings[term];
    if (rows.empty()) rows.reserve(counts[term]);
    rows.push_back(static_cast<uint32_t>(row));
    if (dict->numeric(term) && !std::isnan(dict->number(term))) {
      col.numeric_rows.push_back(static_cast<uint32_t>(row));
    }
  }
  std::stable_sort(col.numeric_rows.begin(), col.numeric_rows.end(),
                   [&](uint32_t a, uint32_t b) {
                     return dict->number(col.term_ids[a]) <
                            dict->number(col.term_ids[b]);
                   });
  return col;
}

const AttrColumn* ValueIndex::Attr(dg::TypeId t,
                                   const std::string& name) const {
  if (t >= attrs_.size()) return nullptr;
  auto it = attrs_[t].find(name);
  return it == attrs_[t].end() ? nullptr : &it->second;
}

size_t ValueIndex::MemoryUsage() const {
  size_t total = dict_->MemoryUsage();
  for (const auto& col : columns_) {
    if (col != nullptr) total += col->MemoryUsage();
  }
  for (const auto& by_name : attrs_) {
    for (const auto& [name, col] : by_name) {
      total += name.capacity() + col.MemoryUsage();
    }
  }
  return total;
}

}  // namespace vpbn::idx
