/// \file value_index.h
/// \brief Dictionary-encoded value index: per-type term columns, postings
/// and sorted numeric rows for predicate pushdown.
///
/// The paper's §6 value index maps a PBN to its character range in the
/// stored string — enough to *fetch* a value, but a value predicate
/// (`[author="X"]`, `[price > 50]`) still materializes and compares one
/// string per candidate. This index flips that around, the standard move in
/// PBN-family systems (dictionary-encoded value columns a la Pathfinder,
/// element+term postings of XML IR engines):
///
///   * a Dictionary interns each distinct string value once and records its
///     numeric interpretation (parsed as a double where possible);
///   * per covered type, a TypeColumn holds one term id per instance row —
///     row r is the r-th entry of the type's document-ordered instance list
///     (StoredDocument::PackedNodesOfType / NodeIdsOfType), so a row *is* a
///     reference into the parallel PBN column and postings convert to
///     packed PBN lists without re-encoding;
///   * per (term, type), sorted postings rows answer equality lookups;
///   * per type, the numeric rows sorted by value answer `< <= > >=` with
///     two binary searches.
///
/// A type is *covered* when its string-value is flat: text types, and
/// element types whose DataGuide children are all text types (leaf
/// elements). For those, the interned term is byte-identical to the XPath
/// string-value the evaluators would have assembled, which is what makes
/// pushdown results byte-identical to the scan path. Attribute values are
/// interned into the same dictionary, one column per (element type,
/// attribute name).
///
/// The query layer decides which lookups to run (query/value_pushdown.h);
/// this layer only stores columns, which keeps it below vpbn_storage in the
/// link graph (StoredDocument owns a ValueIndex, VirtualDocument builds
/// per-vtype columns lazily through BuildColumn).

#pragma once

#include <charconv>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dataguide/dataguide.h"
#include "xml/document.h"

namespace vpbn::storage {
class Snapshot;
}

namespace vpbn::idx {

/// \brief Sentinel term id: "no value" (absent attribute).
inline constexpr uint32_t kNoTerm = 0xFFFFFFFFu;

/// \brief The canonical numeric interpretation of a value: whitespace
/// trimmed, then std::from_chars over the full remainder. Every layer that
/// compares values numerically (query/evaluator.h ToNumber, the dictionary
/// at intern time) must agree on this parse, or pushdown and scan results
/// diverge.
inline bool ParseNumber(std::string_view s, double* out) {
  const char* b = s.data();
  const char* e = s.data() + s.size();
  while (b < e && (*b == ' ' || *b == '\t' || *b == '\n')) ++b;
  while (e > b && (e[-1] == ' ' || e[-1] == '\t' || e[-1] == '\n')) --e;
  if (b == e) return false;
  auto [ptr, ec] = std::from_chars(b, e, *out);
  return ec == std::errc() && ptr == e;
}

/// \brief Interned distinct values with precomputed numeric
/// interpretations. Term strings live in a deque so their views stay valid
/// as the dictionary grows.
class Dictionary {
 public:
  /// Returns the term id of \p value, interning it on first sight.
  uint32_t Intern(std::string_view value);

  /// Term id of \p value, or kNoTerm if it was never interned.
  uint32_t Find(std::string_view value) const;

  std::string_view term(uint32_t id) const { return terms_[id]; }
  /// Whether term \p id parses as a number (ParseNumber).
  bool numeric(uint32_t id) const { return numeric_[id] != 0; }
  /// The parsed value; meaningful only when numeric(id).
  double number(uint32_t id) const { return numbers_[id]; }

  size_t size() const { return terms_.size(); }
  size_t MemoryUsage() const;

 private:
  std::deque<std::string> terms_;
  std::vector<double> numbers_;
  std::vector<uint8_t> numeric_;
  std::unordered_map<std::string_view, uint32_t> map_;
};

/// \brief Per-column statistics: term-frequency aggregates, an equi-depth
/// histogram over the numeric rows, and per-block zone maps over the
/// row-order term/value columns.
///
/// The histogram feeds the cost model's selectivity estimates
/// (query/cardinality.h); the zone maps feed data skipping: block b covers
/// rows [b*kZoneBlockRows, (b+1)*kZoneBlockRows) of the column, and a range
/// predicate whose interval misses [zone_min[b], zone_max[b]] — or an
/// equality probe whose term id misses [zone_term_min[b], zone_term_max[b]]
/// — cannot match any row of the block, so scans skip it wholesale.
///
/// Stats are recomputed by ComputeStats in both build paths (BuildColumn and
/// the snapshot-restore ColumnFromTermIds), so a restored column carries
/// bit-identical statistics to a freshly built one; snapshot v2 can also
/// persist them (storage/snapshot.cc, optional STATS section) to skip the
/// recompute on load.
struct TypeColumn;
struct ColumnStats {
  /// Rows per zone-map block. Matches num::kPbnBlockEntries so a value-column
  /// block aligns with one packed-PBN block of the type's instance list.
  static constexpr size_t kZoneBlockRows = 256;
  /// Equi-depth histogram resolution cap.
  static constexpr size_t kMaxBuckets = 64;

  uint64_t row_count = 0;       ///< rows in the column
  uint64_t numeric_count = 0;   ///< rows with a (non-NaN) numeric value
  uint64_t distinct_terms = 0;  ///< distinct terms in the column
  uint64_t max_term_rows = 0;   ///< size of the largest postings list
  double min_value = 0;         ///< smallest numeric value (iff numeric_count)
  double max_value = 0;         ///< largest numeric value (iff numeric_count)

  /// Equi-depth histogram over the value-sorted numeric rows. bucket_max[i]
  /// is the largest value in bucket i; bucket_rows[i] its row count;
  /// bucket_distinct[i] its distinct-value count. Bucket boundaries are
  /// extended past equal-value runs, so one value never straddles buckets
  /// and bucket_rows / bucket_distinct is an unbiased per-value row count.
  std::vector<double> bucket_max;
  std::vector<uint64_t> bucket_rows;
  std::vector<uint64_t> bucket_distinct;

  /// Zone maps over row-order blocks: numeric value bounds (+inf/-inf when
  /// the block holds no numeric row) and term-id bounds per block.
  std::vector<double> zone_min;
  std::vector<double> zone_max;
  std::vector<uint32_t> zone_term_min;
  std::vector<uint32_t> zone_term_max;

  /// Estimated count of numeric rows with value < v (value <= v when
  /// \p inclusive): cumulative buckets plus linear interpolation inside the
  /// partial bucket.
  double EstimateRowsBelow(double v, bool inclusive) const;
  /// Estimated count of numeric rows with value == v (bucket rows over
  /// bucket distinct values).
  double EstimateEqRows(double v) const;

  size_t MemoryUsage() const {
    return bucket_max.capacity() * sizeof(double) +
           bucket_rows.capacity() * sizeof(uint64_t) +
           bucket_distinct.capacity() * sizeof(uint64_t) +
           (zone_min.capacity() + zone_max.capacity()) * sizeof(double) +
           (zone_term_min.capacity() + zone_term_max.capacity()) *
               sizeof(uint32_t);
  }
};

/// \brief Value column of one covered type. Rows align index-for-index with
/// the type's document-ordered instance list.
struct TypeColumn {
  /// The dictionary term_ids resolve in (the owning index's dictionary; a
  /// VirtualDocument's assembled columns point at its own).
  const Dictionary* dict = nullptr;
  /// One interned term per instance row.
  std::vector<uint32_t> term_ids;
  /// Rows whose value is numeric, sorted by (value, row). Equal values stay
  /// in row (= document) order, so an equality slice is already sorted.
  std::vector<uint32_t> numeric_rows;
  /// term id -> ascending instance rows whose value equals the term.
  std::unordered_map<uint32_t, std::vector<uint32_t>> postings;
  /// Histogram + zone maps, computed by ValueIndex::ComputeStats in every
  /// build path (so built and restored columns agree bit-for-bit).
  ColumnStats stats;

  size_t MemoryUsage() const;
};

/// \brief Attribute value column: one term per instance row of the element
/// type, kNoTerm where the attribute is absent.
struct AttrColumn {
  std::vector<uint32_t> term_ids;

  size_t MemoryUsage() const {
    return term_ids.capacity() * sizeof(uint32_t);
  }
};

/// \brief The per-document value index, built once at StoredDocument build
/// time. Immutable afterwards; safe for concurrent reads.
class ValueIndex {
 public:
  ValueIndex() = default;

  /// Builds columns for every covered type of \p guide and attribute
  /// columns for every attribute name that occurs on an element type.
  /// \p nodes_by_type[t] lists the instances of type t in document order
  /// (StoredDocument's type_node_index). With a pool, the per-row
  /// string-values (the subtree walks that dominate build time) are
  /// computed in parallel per type; interning stays sequential in type
  /// order so term ids — and therefore the whole index — are byte-identical
  /// to the single-threaded build.
  static ValueIndex Build(
      const xml::Document& doc, const dg::DataGuide& guide,
      const std::vector<std::vector<xml::NodeId>>& nodes_by_type,
      common::ThreadPool* pool = nullptr);

  /// Whether \p t is covered per the guide: a text type, or an element type
  /// whose guide children are all text types.
  static bool GuideCovers(const dg::DataGuide& guide, dg::TypeId t);

  /// The value column of \p t, or nullptr when the type is not covered.
  const TypeColumn* Column(dg::TypeId t) const {
    return t < columns_.size() ? columns_[t].get() : nullptr;
  }

  /// The attribute column of (\p t, \p name), or nullptr when no instance
  /// of \p t carries the attribute.
  const AttrColumn* Attr(dg::TypeId t, const std::string& name) const;

  const Dictionary& dict() const { return *dict_; }
  size_t MemoryUsage() const;

  /// Builds one column over \p n rows whose values \p value_of supplies,
  /// interning into \p dict. Shared by Build and by VirtualDocument's lazy
  /// per-vtype columns (assembled virtual values).
  static TypeColumn BuildColumn(
      size_t n, const std::function<std::string(size_t)>& value_of,
      Dictionary* dict);

  /// Rebuilds a column from its stored term-id row (the snapshot restore
  /// path): postings and the sorted numeric rows are re-derived rather than
  /// persisted. InvalidArgument if any id is out of range for \p dict.
  /// With \p precomputed (snapshot v2 STATS section), the statistics are
  /// moved in instead of recomputed, after validating that their counts and
  /// array shapes match the rebuilt column — mismatches are
  /// InvalidArgument, so a corrupt stats section can never seed the cost
  /// model with statistics of the wrong shape.
  static Result<TypeColumn> ColumnFromTermIds(std::vector<uint32_t> term_ids,
                                              const Dictionary* dict,
                                              ColumnStats* precomputed =
                                                  nullptr);

  /// Computes the histogram + zone-map statistics of \p col (which must
  /// have its term_ids, numeric_rows and postings populated). Deterministic
  /// in the column contents alone, so both build paths produce identical
  /// stats.
  static ColumnStats ComputeStats(const TypeColumn& col);

 private:
  friend class vpbn::storage::Snapshot;  // restore-path access to members

  // Heap-held so the address every TypeColumn::dict records stays valid
  // when the index (inside its StoredDocument) is moved.
  std::unique_ptr<Dictionary> dict_ = std::make_unique<Dictionary>();
  std::vector<std::unique_ptr<TypeColumn>> columns_;  // by TypeId
  // by TypeId; attribute name -> column.
  std::vector<std::unordered_map<std::string, AttrColumn>> attrs_;
};

}  // namespace vpbn::idx
