/// \file dataguide.h
/// \brief DataGuide: a structural summary of an XML document (§4.1).
///
/// A DataGuide S = (T, E) is a forest of *types*. The type of a node is the
/// concatenation of element names on the path from its root, e.g.
/// "data.book.title"; text-node types are labelled "#text" (the paper's ◦).
/// Each distinct path occurring in the document is one type, so a DataGuide
/// is usually far smaller than its document.
///
/// The paper's helper functions map as follows:
///   roots(S)            -> DataGuide::roots()
///   name(S, v)          -> DataGuide::label(t)
///   typeOf(S, v)        -> DataGuide::Build's node_types output
///   lcaTypeOf(S, v, w)  -> DataGuide::LcaType(t1, t2)
///   length(S, v)        -> DataGuide::length(t)
///
/// Types are themselves PBN-numbered (§5: "We assume that PBN is used to
/// number the types in a DataGuide and quickly determine relationships in
/// the DataGuide"), giving O(depth) LCA and O(1) prefix tests.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "pbn/pbn.h"
#include "xml/document.h"

namespace vpbn::dg {

/// \brief Dense identifier of a type within one DataGuide.
using TypeId = uint32_t;

/// \brief Sentinel for "no type".
inline constexpr TypeId kNullType = UINT32_MAX;

/// \brief Label used for text-node types (rendered ◦ in the paper).
inline constexpr std::string_view kTextLabel = "#text";

/// \brief Structural summary over element/text types.
class DataGuide {
 public:
  DataGuide() = default;

  /// Build the DataGuide of \p doc. If \p node_types is non-null it receives
  /// the type of every node, indexed by NodeId (the typeOf function).
  static DataGuide Build(const xml::Document& doc,
                         std::vector<TypeId>* node_types = nullptr);

  /// \name Type accessors
  /// @{
  size_t num_types() const { return labels_.size(); }

  /// Label of the type's last path step ("title", or "#text").
  const std::string& label(TypeId t) const { return labels_[t]; }

  /// Full dotted path, e.g. "data.book.title".
  const std::string& path(TypeId t) const { return paths_[t]; }

  /// Number of names on the path (the paper's length(S, v)). Roots have
  /// length 1.
  uint32_t length(TypeId t) const {
    return static_cast<uint32_t>(pbn_[t].length());
  }

  TypeId parent(TypeId t) const { return parents_[t]; }
  const std::vector<TypeId>& children(TypeId t) const { return children_[t]; }
  const std::vector<TypeId>& roots() const { return roots_; }

  bool IsTextType(TypeId t) const { return labels_[t] == kTextLabel; }

  /// PBN number of the type within the type forest.
  const num::Pbn& pbn(TypeId t) const { return pbn_[t]; }
  /// @}

  /// \name Queries
  /// @{

  /// The type with exactly this dotted path, or NotFound.
  Result<TypeId> FindByPath(std::string_view path) const;

  /// All types whose dotted path *ends with* \p suffix (at a step boundary).
  /// A bare label like "title" matches every title type; "x.y" matches only
  /// y-types whose parent step is x. Used to resolve vDataGuide labels.
  std::vector<TypeId> FindBySuffix(std::string_view suffix) const;

  /// Child of \p t labelled \p label, or NotFound.
  Result<TypeId> ChildByLabel(TypeId t, std::string_view label) const;

  /// Lowest common ancestor type, or kNullType when the types are in
  /// different trees of the forest (the paper's lcaTypeOf null case).
  TypeId LcaType(TypeId a, TypeId b) const;

  /// True iff \p a is a proper ancestor type of \p d.
  bool IsAncestorType(TypeId a, TypeId d) const {
    return pbn_[a].IsStrictPrefixOf(pbn_[d]);
  }

  /// True iff \p a is \p d or a proper ancestor of it.
  bool IsAncestorOrSelfType(TypeId a, TypeId d) const {
    return pbn_[a].IsPrefixOf(pbn_[d]);
  }

  /// All descendant types of \p t (excluding \p t), pre-order.
  std::vector<TypeId> DescendantTypes(TypeId t) const;

  /// All types, pre-order across the forest.
  std::vector<TypeId> PreOrder() const;
  /// @}

  /// Adds a type explicitly (used by tests and by the vDataGuide expander
  /// when constructing transformed DataGuides). Duplicate (parent, label)
  /// pairs return the existing type.
  TypeId AddType(std::string_view label, TypeId parent);

  /// Approximate heap footprint (benchmark accounting).
  size_t MemoryUsage() const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::string> paths_;
  std::vector<TypeId> parents_;
  std::vector<std::vector<TypeId>> children_;
  std::vector<num::Pbn> pbn_;
  std::vector<TypeId> roots_;
};

}  // namespace vpbn::dg
