#include "dataguide/dataguide.h"

#include <cassert>

#include "common/str_util.h"

namespace vpbn::dg {

TypeId DataGuide::AddType(std::string_view label, TypeId parent) {
  // Dedupe against existing children of the parent.
  const std::vector<TypeId>& siblings =
      parent == kNullType ? roots_ : children_[parent];
  for (TypeId s : siblings) {
    if (labels_[s] == label) return s;
  }
  TypeId id = static_cast<TypeId>(labels_.size());
  labels_.emplace_back(label);
  if (parent == kNullType) {
    paths_.emplace_back(label);
    pbn_.push_back(num::Pbn{static_cast<uint32_t>(roots_.size() + 1)});
    roots_.push_back(id);
  } else {
    paths_.push_back(paths_[parent] + "." + std::string(label));
    pbn_.push_back(pbn_[parent].Child(
        static_cast<uint32_t>(children_[parent].size() + 1)));
    children_[parent].push_back(id);
  }
  parents_.push_back(parent);
  children_.emplace_back();
  return id;
}

DataGuide DataGuide::Build(const xml::Document& doc,
                           std::vector<TypeId>* node_types) {
  DataGuide guide;
  if (node_types != nullptr) {
    node_types->assign(doc.num_nodes(), kNullType);
  }
  struct Frame {
    xml::NodeId node;
    TypeId parent_type;
  };
  std::vector<Frame> stack;
  const auto& roots = doc.roots();
  for (size_t i = roots.size(); i > 0; --i) {
    stack.push_back({roots[i - 1], kNullType});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    std::string_view label =
        doc.IsText(f.node) ? kTextLabel : std::string_view(doc.name(f.node));
    TypeId t = guide.AddType(label, f.parent_type);
    if (node_types != nullptr) (*node_types)[f.node] = t;
    std::vector<xml::NodeId> kids = doc.Children(f.node);
    for (size_t i = kids.size(); i > 0; --i) {
      stack.push_back({kids[i - 1], t});
    }
  }
  return guide;
}

Result<TypeId> DataGuide::FindByPath(std::string_view path) const {
  for (TypeId t = 0; t < paths_.size(); ++t) {
    if (paths_[t] == path) return t;
  }
  return Status::NotFound("no type with path '" + std::string(path) + "'");
}

std::vector<TypeId> DataGuide::FindBySuffix(std::string_view suffix) const {
  std::vector<TypeId> out;
  for (TypeId t = 0; t < paths_.size(); ++t) {
    const std::string& p = paths_[t];
    if (p.size() == suffix.size() && p == suffix) {
      out.push_back(t);
    } else if (p.size() > suffix.size() && EndsWith(p, suffix) &&
               p[p.size() - suffix.size() - 1] == '.') {
      out.push_back(t);
    }
  }
  return out;
}

Result<TypeId> DataGuide::ChildByLabel(TypeId t, std::string_view label) const {
  for (TypeId c : children_[t]) {
    if (labels_[c] == label) return c;
  }
  return Status::NotFound("type '" + paths_[t] + "' has no child '" +
                          std::string(label) + "'");
}

TypeId DataGuide::LcaType(TypeId a, TypeId b) const {
  // Shared PBN prefix length = depth of the LCA (the paper's O(c) method).
  size_t k = pbn_[a].CommonPrefixLength(pbn_[b]);
  if (k == 0) return kNullType;  // different trees of the forest
  TypeId t = a;
  while (pbn_[t].length() > k) t = parents_[t];
  return t;
}

std::vector<TypeId> DataGuide::DescendantTypes(TypeId t) const {
  std::vector<TypeId> out;
  std::vector<TypeId> stack(children_[t].rbegin(), children_[t].rend());
  while (!stack.empty()) {
    TypeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (auto it = children_[cur].rbegin(); it != children_[cur].rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<TypeId> DataGuide::PreOrder() const {
  std::vector<TypeId> out;
  std::vector<TypeId> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    TypeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (auto it = children_[cur].rbegin(); it != children_[cur].rend();
         ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

size_t DataGuide::MemoryUsage() const {
  size_t total = 0;
  for (const auto& s : labels_) total += s.capacity();
  for (const auto& s : paths_) total += s.capacity();
  total += parents_.capacity() * sizeof(TypeId);
  for (const auto& v : children_) total += v.capacity() * sizeof(TypeId);
  for (const auto& p : pbn_) total += p.MemoryUsage();
  total += roots_.capacity() * sizeof(TypeId);
  return total;
}

}  // namespace vpbn::dg
