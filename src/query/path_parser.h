/// \file path_parser.h
/// \brief Parser for the XPath subset (see path_ast.h for the grammar).

#pragma once

#include <string_view>

#include "common/result.h"
#include "query/path_ast.h"

namespace vpbn::query {

/// \brief Parse an absolute path such as
///   //book/title
///   /data/book[author/name = "C"]/title
///   //book[@year = 1994][count(author) > 1]//name/text()
Result<Path> ParsePath(std::string_view text);

}  // namespace vpbn::query
