/// \file exec_context.h
/// \brief Per-execution state threaded through the evaluators: the thread
/// pool to fan work out on, and the counters behind ExecStats.
///
/// An ExecContext is owned by one QueryEngine::Execute call (query/engine.h)
/// and shared by every evaluator frame of that execution, across threads —
/// counters are atomic, step records are mutex-guarded. A null ExecContext
/// (the default everywhere) means sequential execution and no accounting,
/// which keeps the pre-engine call sites zero-cost.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"

namespace vpbn::query {

/// \brief Accounting for one top-level path step (ExecStats::steps).
struct StepStats {
  std::string label;        ///< "child::book[2 predicates]" and the like
  uint64_t nodes_out = 0;   ///< context size after the step
  double wall_ms = 0;       ///< wall time of the step, predicates included
};

/// \brief What one Execute call did. Returned inside QueryResult.
struct ExecStats {
  uint64_t nodes_scanned = 0;      ///< nodes produced by axis/index scans
  uint64_t join_pairs = 0;         ///< structural-join pairs emitted
  uint64_t pbn_comparisons = 0;    ///< packed axis/order decisions made
  uint64_t bytes_compared = 0;     ///< encoded arena bytes those touched
  uint64_t vjoin_pairs = 0;        ///< virtual merge-join pairs emitted
  uint64_t decoded_batches = 0;    ///< arenas batch-decoded into columns
  uint64_t block_skips = 0;        ///< whole key blocks skipped by joins
  uint64_t value_index_lookups = 0;   ///< dictionary / numeric-slice probes
  uint64_t value_index_postings = 0;  ///< postings rows consumed by pushdown
  uint64_t value_scan_fallbacks = 0;  ///< value predicates scanned per node
  uint64_t zone_map_skips = 0;     ///< value/postings blocks skipped on bounds
  uint64_t partition_skips = 0;    ///< partition groups pruned before eval
  uint64_t partitions_used = 0;    ///< partition groups actually evaluated
  uint64_t est_rows = 0;           ///< planner's estimated result cardinality
  uint64_t plan_cache_hits = 0;    ///< engine-lifetime prepared-plan hits
  uint64_t plan_cache_misses = 0;  ///< engine-lifetime prepared-plan misses
  uint64_t result_cache_hits = 0;    ///< server result-cache hits (vpbnd)
  uint64_t result_cache_misses = 0;  ///< server result-cache misses (vpbnd)
  uint64_t result_nodes = 0;       ///< size of the result node list
  double wall_ms = 0;              ///< end-to-end wall time
  double ingest_ms = 0;            ///< build (or snapshot-load) cost of the
                                   ///< stored substrate, when one is attached
  bool snapshot_load = false;      ///< stored substrate came from a snapshot
  uint64_t snapshot_bytes = 0;     ///< on-disk size of that snapshot
  uint64_t mapped_bytes = 0;       ///< bytes of it memory-mapped, not copied
  int threads = 1;                 ///< thread budget the execution ran with
  std::string plan;                ///< "nav" | "indexed" | "bulk" | "virtual"
  std::string chosen_plan;         ///< "cost:bulk" / "rule:indexed" — how the
                                   ///< plan was picked (stored substrate only)
  std::vector<StepStats> steps;    ///< per-step timings (top-level path only)

  std::string ToString() const;

  /// The one JSON serialization of these counters, shared by `vpbnq --json`,
  /// the vpbnd STATS verb and the E14 driver. One compact object on a single
  /// line (the vpbnd protocol is newline-delimited), every field above plus
  /// the steps array.
  std::string ToJson() const;

  /// Field-wise sum (wall/ingest add, plan/threads/snapshot keep the last
  /// non-default value) — the server's cumulative-counters accumulator.
  void Accumulate(const ExecStats& other);
};

/// \brief Mutable execution state. Pointer-identity shared, never copied.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(common::ThreadPool* pool, bool collect_stats)
      : pool_(pool), collect_stats_(collect_stats) {}

  common::ThreadPool* pool() const { return pool_; }
  bool collect_stats() const { return collect_stats_; }

  /// \name Virtual merge-join knobs (query/eval_virtual.h)
  ///
  /// `virtual_join` gates the vtype-partitioned merge path (ExecOptions
  /// exposes it so benchmarks can pin the per-candidate baseline);
  /// `vjoin_min_context` is the context size below which the child /
  /// parent / ancestor axes keep their sublinear per-node range scans
  /// (tests set 1 to force merging on tiny documents).
  /// @{
  bool virtual_join() const { return virtual_join_; }
  void set_virtual_join(bool on) { virtual_join_ = on; }
  size_t vjoin_min_context() const { return vjoin_min_context_; }
  void set_vjoin_min_context(size_t n) { vjoin_min_context_ = n; }
  static constexpr size_t kDefaultVJoinMinContext = 16;
  /// @}

  /// Value-index knob (ExecOptions::use_value_index): when off, value
  /// predicates run the per-node scan path everywhere — the benchmark and
  /// property-test baseline the pushdown must match byte-for-byte.
  bool use_value_index() const { return use_value_index_; }
  void set_use_value_index(bool on) { use_value_index_ = on; }

  /// Cost-model knob (ExecOptions::use_cost_model): when on, the evaluators
  /// replace their fixed-threshold decisions (pushdown strategy, merge vs
  /// walk, predicate ordering) with costed choices from query/cost_model.h,
  /// including zone-map data skipping. Results are byte-identical either
  /// way; off is the fixed-heuristics baseline.
  bool use_cost_model() const { return use_cost_model_; }
  void set_use_cost_model(bool on) { use_cost_model_ = on; }

  /// Per-query cache of uint32 lists keyed by an adapter-chosen string:
  /// node-test -> matching-vtype lists (so repeated steps and every context
  /// group of a batch step do not rescan the whole type forest), and
  /// value-pushdown (predicate, type) -> matching-row lists. \p build fills
  /// the list on the first miss. Entries are shared_ptr so a caller can
  /// keep reading while other threads insert.
  template <typename Build>
  std::shared_ptr<const std::vector<uint32_t>> CachedVTypes(
      const std::string& key, Build&& build) {
    {
      std::lock_guard<std::mutex> lock(vtypes_mu_);
      auto it = vtypes_cache_.find(key);
      if (it != vtypes_cache_.end()) return it->second;
    }
    auto made = std::make_shared<const std::vector<uint32_t>>(build());
    std::lock_guard<std::mutex> lock(vtypes_mu_);
    auto [it, inserted] = vtypes_cache_.emplace(key, std::move(made));
    return it->second;
  }

  /// Per-query cache of term bitmaps: one byte per dictionary term, 1 where
  /// the term satisfies a contains()/starts-with() needle. Built once per
  /// (needle, dictionary) key, so such predicates test each distinct term
  /// once instead of each node once.
  template <typename Build>
  std::shared_ptr<const std::vector<uint8_t>> CachedTermBitmap(
      const std::string& key, Build&& build) {
    {
      std::lock_guard<std::mutex> lock(bitmaps_mu_);
      auto it = bitmaps_cache_.find(key);
      if (it != bitmaps_cache_.end()) return it->second;
    }
    auto made = std::make_shared<const std::vector<uint8_t>>(build());
    std::lock_guard<std::mutex> lock(bitmaps_mu_);
    auto [it, inserted] = bitmaps_cache_.emplace(key, std::move(made));
    return it->second;
  }

  void CountNodes(uint64_t n) {
    nodes_scanned_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountJoinPairs(uint64_t n) {
    join_pairs_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountComparisons(uint64_t comparisons, uint64_t bytes) {
    pbn_comparisons_.fetch_add(comparisons, std::memory_order_relaxed);
    bytes_compared_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void CountVJoinPairs(uint64_t n) {
    vjoin_pairs_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountDecodedBatches(uint64_t n) {
    decoded_batches_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountBlockSkips(uint64_t n) {
    block_skips_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountValueIndexLookups(uint64_t n) {
    value_index_lookups_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountValueIndexPostings(uint64_t n) {
    value_index_postings_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountValueScanFallbacks(uint64_t n) {
    value_scan_fallbacks_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountZoneMapSkips(uint64_t n) {
    zone_map_skips_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountPartitionSkips(uint64_t n) {
    partition_skips_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountPartitionsUsed(uint64_t n) {
    partitions_used_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordStep(StepStats step) {
    std::lock_guard<std::mutex> lock(steps_mu_);
    steps_.push_back(std::move(step));
  }

  uint64_t nodes_scanned() const {
    return nodes_scanned_.load(std::memory_order_relaxed);
  }
  uint64_t join_pairs() const {
    return join_pairs_.load(std::memory_order_relaxed);
  }
  uint64_t pbn_comparisons() const {
    return pbn_comparisons_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_compared() const {
    return bytes_compared_.load(std::memory_order_relaxed);
  }
  uint64_t vjoin_pairs() const {
    return vjoin_pairs_.load(std::memory_order_relaxed);
  }
  uint64_t decoded_batches() const {
    return decoded_batches_.load(std::memory_order_relaxed);
  }
  uint64_t block_skips() const {
    return block_skips_.load(std::memory_order_relaxed);
  }
  uint64_t value_index_lookups() const {
    return value_index_lookups_.load(std::memory_order_relaxed);
  }
  uint64_t value_index_postings() const {
    return value_index_postings_.load(std::memory_order_relaxed);
  }
  uint64_t value_scan_fallbacks() const {
    return value_scan_fallbacks_.load(std::memory_order_relaxed);
  }
  uint64_t zone_map_skips() const {
    return zone_map_skips_.load(std::memory_order_relaxed);
  }
  uint64_t partition_skips() const {
    return partition_skips_.load(std::memory_order_relaxed);
  }
  uint64_t partitions_used() const {
    return partitions_used_.load(std::memory_order_relaxed);
  }
  std::vector<StepStats> TakeSteps() {
    std::lock_guard<std::mutex> lock(steps_mu_);
    return std::move(steps_);
  }

 private:
  common::ThreadPool* pool_ = nullptr;
  bool collect_stats_ = false;
  bool virtual_join_ = true;
  bool use_value_index_ = true;
  bool use_cost_model_ = true;
  size_t vjoin_min_context_ = kDefaultVJoinMinContext;
  std::atomic<uint64_t> nodes_scanned_{0};
  std::atomic<uint64_t> join_pairs_{0};
  std::atomic<uint64_t> pbn_comparisons_{0};
  std::atomic<uint64_t> bytes_compared_{0};
  std::atomic<uint64_t> vjoin_pairs_{0};
  std::atomic<uint64_t> decoded_batches_{0};
  std::atomic<uint64_t> block_skips_{0};
  std::atomic<uint64_t> value_index_lookups_{0};
  std::atomic<uint64_t> value_index_postings_{0};
  std::atomic<uint64_t> value_scan_fallbacks_{0};
  std::atomic<uint64_t> zone_map_skips_{0};
  std::atomic<uint64_t> partition_skips_{0};
  std::atomic<uint64_t> partitions_used_{0};
  std::mutex steps_mu_;
  std::vector<StepStats> steps_;
  std::mutex vtypes_mu_;
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<uint32_t>>>
      vtypes_cache_;
  std::mutex bitmaps_mu_;
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<uint8_t>>>
      bitmaps_cache_;
};

}  // namespace vpbn::query
