/// \file cardinality.h
/// \brief Cardinality estimation over a StoredDocument: exact DataGuide type
/// counts joined with the value index's per-column statistics
/// (idx::ColumnStats — equi-depth histograms, term frequencies, zone maps).
///
/// The estimates feed the cost model (query/cost_model.h). Two sources:
///
///   * **Type counts are exact.** The DataGuide's per-type instance lists
///     are materialized, so structural cardinalities (how many `book`
///     nodes, how many `price` nodes under them) carry no estimation error
///     at all — the PBN-family advantage Wellenzohn et al.'s
///     content-and-structure framing builds on.
///   * **Value selectivities are histogram estimates.** A predicate
///     `[path op literal]` resolves (exactly, via the type-frontier walk of
///     value_pushdown.h) to a set of terminal types; each terminal type's
///     ColumnStats answers "what fraction of its rows match" from the
///     equi-depth histogram (relational, numeric equality) or the exact
///     dictionary postings size (string equality — O(1), cheaper and
///     sharper than any histogram).
///
/// Path + value selectivity compose per step: a step's frontier estimate is
/// the exact structural count scaled by the survival probability of its
/// predicates, where a predicate's survival for a context type t with
/// terminal type tt is 1 - (1 - sel(tt))^(count(tt)/count(t)) — the
/// per-context-subtree existential semantics, not a naive per-row AND.
///
/// The property test (tests/cost_model_test.cc) bounds the error of these
/// estimates against true counts on randomized documents.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dataguide/dataguide.h"
#include "index/value_index.h"
#include "query/path_ast.h"
#include "query/value_pushdown.h"
#include "storage/stored_document.h"

namespace vpbn::query {

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const storage::StoredDocument& stored)
      : stored_(&stored) {}

  /// Exact instance count of type \p t.
  double TypeCount(dg::TypeId t) const {
    return static_cast<double>(stored_->NodeIdsOfType(t).size());
  }

  /// Estimated fraction of \p col's rows whose value satisfies
  /// `value op lit`, in [0, 1]. Mirrors TermMatches' semantics: numeric
  /// comparison when both sides are numeric, string equality otherwise,
  /// relational ops never match non-numbers.
  static double ColumnSelectivity(const idx::TypeColumn& col, CompareOp op,
                                  const ValueLiteral& lit);

  /// Estimated matching rows of terminal type \p tt (selectivity times its
  /// row count). Falls back to a fixed default selectivity when the type
  /// carries no value column (uncovered nested structure).
  double EstimateMatchingRows(dg::TypeId tt, CompareOp op,
                              const ValueLiteral& lit) const;

  /// Estimated probability that one instance of \p context survives
  /// predicate \p pred (existential semantics over its subtree).
  double PredSurvival(dg::TypeId context, const Expr& pred) const;

  /// \brief Per-step estimate of a path's evaluation, mirroring the bulk
  /// evaluator's type-frontier walk.
  struct StepEstimate {
    /// Estimated surviving instances per frontier type after the step's
    /// node test, structural join, and predicates.
    std::vector<std::pair<dg::TypeId, double>> frontier;
    double rows = 0;            ///< total over the frontier
    double candidate_rows = 0;  ///< instances of all candidate types examined
    size_t candidate_types = 0; ///< candidate (type-level) join edges
    size_t predicates = 0;      ///< predicates the step applies
  };

  /// Estimates the whole path step by step. Structural counts are exact
  /// until the first predicate; predicates scale by PredSurvival.
  std::vector<StepEstimate> EstimatePath(const Path& path) const;

  /// Estimated result cardinality: the last step's frontier total (0 for an
  /// empty path).
  double EstimateResultRows(const Path& path) const;

  /// Default selectivity for predicates the statistics cannot see through
  /// (uncovered columns, contains()/starts-with(), general boolean
  /// expressions).
  static constexpr double kDefaultSelectivity = 0.33;

 private:
  const storage::StoredDocument* stored_;
};

}  // namespace vpbn::query
