#include "query/eval_indexed.h"

#include <algorithm>
#include <string>

#include "pbn/codec.h"
#include "pbn/packed.h"
#include "query/cost_model.h"

namespace vpbn::query {

using num::Pbn;

bool IndexedAdapter::TypeMatches(dg::TypeId t, const NodeTest& test) const {
  const dg::DataGuide& g = stored_->dataguide();
  return test.Matches(!g.IsTextType(t), g.label(t));
}

std::vector<dg::TypeId> IndexedAdapter::MatchingTypes(
    const NodeTest& test) const {
  const dg::DataGuide& g = stored_->dataguide();
  std::vector<dg::TypeId> out;
  for (dg::TypeId t = 0; t < g.num_types(); ++t) {
    if (TypeMatches(t, test)) out.push_back(t);
  }
  return out;
}

dg::TypeId IndexedAdapter::TypeOf(const Pbn& n) const {
  return stored_->TypeOfNode(stored_->numbering().NodeOf(n).value());
}

std::vector<Pbn> IndexedAdapter::DocumentRoots(const NodeTest& test) const {
  std::vector<Pbn> out;
  const dg::DataGuide& g = stored_->dataguide();
  for (dg::TypeId rt : g.roots()) {
    if (!TypeMatches(rt, test)) continue;
    const auto& nodes = stored_->NodesOfType(rt);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  return out;
}

std::vector<Pbn> IndexedAdapter::AllNodes(const NodeTest& test) const {
  std::vector<Pbn> out;
  for (dg::TypeId t : MatchingTypes(test)) {
    const auto& nodes = stored_->NodesOfType(t);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  return out;
}

std::vector<Pbn> IndexedAdapter::Axis(const Pbn& n, num::Axis axis,
                                      const NodeTest& test) const {
  using num::Axis;
  const dg::DataGuide& g = stored_->dataguide();
  dg::TypeId nt = TypeOf(n);
  std::vector<Pbn> out;
  switch (axis) {
    case Axis::kSelf:
      if (TypeMatches(nt, test)) out.push_back(n);
      break;
    case Axis::kChild:
      // Candidate types are the DataGuide children; every instance inside
      // the subtree is a child (its depth is ours + 1).
      for (dg::TypeId ct : g.children(nt)) {
        if (!TypeMatches(ct, test)) continue;
        for (Pbn& p : stored_->NodesOfTypeWithin(ct, n)) {
          out.push_back(std::move(p));
        }
      }
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf && TypeMatches(nt, test)) {
        out.push_back(n);
      }
      for (dg::TypeId dt : g.DescendantTypes(nt)) {
        if (!TypeMatches(dt, test)) continue;
        for (Pbn& p : stored_->NodesOfTypeWithin(dt, n)) {
          out.push_back(std::move(p));
        }
      }
      break;
    }
    case Axis::kParent:
      if (n.length() > 1) {
        Pbn parent = n.Parent();
        if (TypeMatches(g.parent(nt), test)) out.push_back(std::move(parent));
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf && TypeMatches(nt, test)) {
        out.push_back(n);
      }
      dg::TypeId t = g.parent(nt);
      for (size_t len = n.length() - 1; len >= 1; --len) {
        if (TypeMatches(t, test)) out.push_back(n.Prefix(len));
        t = g.parent(t);
      }
      break;
    }
    case Axis::kFollowing:
    case Axis::kPreceding:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Number-comparison scan over the packed arenas of matching types:
      // the context number is encoded once and every axis decision is a
      // memcmp against arena bytes; only hits materialize a Pbn.
      std::string encoded;
      num::EncodeOrdered(n, &encoded);
      num::PackedPbnRef nref(encoded.data(),
                             static_cast<uint32_t>(encoded.size()),
                             static_cast<uint32_t>(n.length()));
      for (dg::TypeId t : MatchingTypes(test)) {
        const num::PackedPbnList& all = stored_->PackedNodesOfType(t);
        for (size_t i = 0; i < all.size(); ++i) {
          if (num::PackedCheckAxis(axis, all[i], nref)) {
            out.push_back(all.Materialize(i));
          }
        }
      }
      break;
    }
    case Axis::kAttribute:
      break;
  }
  return out;
}

void IndexedAdapter::SortUnique(std::vector<Pbn>* nodes) const {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

std::string IndexedAdapter::StringValue(const Pbn& n) const {
  return stored_->doc().StringValue(stored_->numbering().NodeOf(n).value());
}

std::optional<std::string_view> IndexedAdapter::FastStringValue(
    const Pbn& n) const {
  if (ctx_ != nullptr && !ctx_->use_value_index()) return std::nullopt;
  xml::NodeId id = stored_->numbering().NodeOf(n).value();
  const idx::TypeColumn* col =
      stored_->value_index().Column(stored_->TypeOfNode(id));
  if (col == nullptr) return std::nullopt;
  if (ctx_ != nullptr) ctx_->CountValueIndexLookups(1);
  return col->dict->term(col->term_ids[stored_->RowOfNode(id)]);
}

/// One context-type slice of a BatchPredicate call: the indexes into the
/// context list whose nodes have this type, with their scopes pre-encoded
/// for the packed range scans.
struct IndexedAdapter::BatchGroup {
  dg::TypeId type = dg::kNullType;
  std::vector<size_t> indexes;          // into the context node list
  std::vector<xml::NodeId> ids;         // aligned with indexes
  std::vector<num::PackedPbnRef> refs;  // aligned; views into `encodings`
  std::vector<std::string> encodings;
};

bool IndexedAdapter::CanPushPredicate(
    const Expr& e, const std::vector<dg::TypeId>& context_types) const {
  switch (e.kind) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      return CanPushPredicate(*e.lhs, context_types) &&
             CanPushPredicate(*e.rhs, context_types);
    case Expr::Kind::kNot:
      return CanPushPredicate(*e.lhs, context_types);
    case Expr::Kind::kPath:
      // Existence of a predicate-free chain: answered by packed subtree
      // ranges alone, no value column needed.
      return IsPredicateFreeChain(e.path);
    default: {
      ValuePred vp;
      if (!RecognizeValuePred(e, &vp)) return false;
      if (vp.kind == ValuePred::Kind::kAttrCompare ||
          vp.kind == ValuePred::Kind::kAttrString) {
        return true;
      }
      // Path-valued: every terminal type must carry a value column, or the
      // per-node scan is the only exact answer.
      const dg::DataGuide& g = stored_->dataguide();
      for (dg::TypeId t : context_types) {
        for (dg::TypeId tt : ResolveChainTypes(g, t, *vp.path)) {
          if (stored_->value_index().Column(tt) == nullptr) return false;
        }
      }
      return true;
    }
  }
}

void IndexedAdapter::EvalBatchPredicate(const Expr& e,
                                        const std::vector<BatchGroup>& groups,
                                        std::vector<char>* keep) const {
  switch (e.kind) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      EvalBatchPredicate(*e.lhs, groups, keep);
      std::vector<char> rhs(keep->size(), 0);
      EvalBatchPredicate(*e.rhs, groups, &rhs);
      for (size_t i = 0; i < keep->size(); ++i) {
        (*keep)[i] = e.kind == Expr::Kind::kAnd ? ((*keep)[i] && rhs[i])
                                                : ((*keep)[i] || rhs[i]);
      }
      return;
    }
    case Expr::Kind::kNot: {
      EvalBatchPredicate(*e.lhs, groups, keep);
      for (size_t i = 0; i < keep->size(); ++i) (*keep)[i] = !(*keep)[i];
      return;
    }
    case Expr::Kind::kPath: {
      const dg::DataGuide& g = stored_->dataguide();
      for (const BatchGroup& group : groups) {
        auto tts = ChainTypes(g, &e.path, group.type, ctx_);
        for (size_t k = 0; k < group.indexes.size(); ++k) {
          for (dg::TypeId tt : *tts) {
            auto [first, last] = stored_->TypeRangeWithin(tt, group.refs[k]);
            if (first < last) {
              (*keep)[group.indexes[k]] = 1;
              break;
            }
          }
        }
      }
      return;
    }
    default:
      break;
  }

  ValuePred vp;
  RecognizeValuePred(e, &vp);  // CanPushPredicate vetted the shape
  const idx::ValueIndex& vi = stored_->value_index();
  const dg::DataGuide& g = stored_->dataguide();
  switch (vp.kind) {
    case ValuePred::Kind::kAttrCompare: {
      const idx::Dictionary& dict = vi.dict();
      for (const BatchGroup& group : groups) {
        const idx::AttrColumn* col = vi.Attr(group.type, vp.attr);
        for (size_t k = 0; k < group.indexes.size(); ++k) {
          uint32_t term =
              col != nullptr
                  ? col->term_ids[stored_->RowOfNode(group.ids[k])]
                  : idx::kNoTerm;
          (*keep)[group.indexes[k]] =
              TermMatches(dict, term, vp.op, vp.lit) ? 1 : 0;
        }
        if (ctx_ != nullptr) {
          ctx_->CountValueIndexLookups(group.indexes.size());
        }
      }
      return;
    }
    case ValuePred::Kind::kAttrString: {
      const idx::Dictionary& dict = vi.dict();
      auto bitmap = TermBitmap(dict, vp.str_fn, vp.lit.text, ctx_);
      for (const BatchGroup& group : groups) {
        const idx::AttrColumn* col = vi.Attr(group.type, vp.attr);
        for (size_t k = 0; k < group.indexes.size(); ++k) {
          uint32_t term =
              col != nullptr
                  ? col->term_ids[stored_->RowOfNode(group.ids[k])]
                  : idx::kNoTerm;
          // A missing attribute coerces to "", which satisfies both string
          // functions exactly when the needle is empty.
          (*keep)[group.indexes[k]] = term == idx::kNoTerm
                                          ? (vp.lit.text.empty() ? 1 : 0)
                                          : (*bitmap)[term];
        }
        if (ctx_ != nullptr) {
          ctx_->CountValueIndexLookups(group.indexes.size());
        }
      }
      return;
    }
    case ValuePred::Kind::kPathCompare: {
      for (const BatchGroup& group : groups) {
        auto tts = ChainTypes(g, vp.path, group.type, ctx_);
        // Costed choice between probing materialized matching-rows lists
        // (the fixed behavior, wins at low selectivity) and scanning each
        // context's terminal-row range directly with zone-map block
        // skipping (wins at high selectivity — no materialization, early
        // exit on the first hit). Byte-identical either way.
        if (ctx_ != nullptr && ctx_->use_cost_model() && !tts->empty()) {
          CostModel cm(*stored_);
          PredPlan plan = cm.ChoosePredStrategy(
              group.type, group.indexes.size(), *tts, vp.op, vp.lit);
          if (plan.strategy == PredStrategy::kScanProbe) {
            const idx::Dictionary& dict = vi.dict();
            const bool string_eq =
                vp.op == CompareOp::kEq && !vp.lit.numeric;
            const uint32_t eq_term =
                string_eq ? dict.Find(vp.lit.text) : idx::kNoTerm;
            uint64_t skips = 0;
            uint64_t tested = 0;
            for (size_t k = 0; k < group.indexes.size(); ++k) {
              bool hit = false;
              for (size_t j = 0; j < tts->size() && !hit; ++j) {
                if (string_eq && eq_term == idx::kNoTerm) break;
                const idx::TypeColumn* col = vi.Column((*tts)[j]);
                auto [first, last] =
                    stored_->TypeRangeWithin((*tts)[j], group.refs[k]);
                size_t row = first;
                while (row < last && !hit) {
                  const size_t b = row / idx::ColumnStats::kZoneBlockRows;
                  const size_t block_end = std::min(
                      last, (b + 1) * idx::ColumnStats::kZoneBlockRows);
                  if (!ZoneBlockCanMatch(col->stats, b, vp.op, vp.lit,
                                         eq_term)) {
                    ++skips;
                    row = block_end;
                    continue;
                  }
                  for (; row < block_end; ++row) {
                    ++tested;
                    if (TermMatches(dict, col->term_ids[row], vp.op,
                                    vp.lit)) {
                      hit = true;
                      break;
                    }
                  }
                }
              }
              (*keep)[group.indexes[k]] = hit ? 1 : 0;
            }
            ctx_->CountValueIndexLookups(group.indexes.size() * tts->size());
            ctx_->CountValueIndexPostings(tested);
            ctx_->CountZoneMapSkips(skips);
            continue;
          }
        }
        std::vector<std::shared_ptr<const std::vector<uint32_t>>> rows_by_tt;
        rows_by_tt.reserve(tts->size());
        for (dg::TypeId tt : *tts) {
          rows_by_tt.push_back(
              MatchingRows(*vi.Column(tt), &e, tt, vp.op, vp.lit, ctx_));
        }
        for (size_t k = 0; k < group.indexes.size(); ++k) {
          bool hit = false;
          for (size_t j = 0; j < tts->size() && !hit; ++j) {
            auto [first, last] =
                stored_->TypeRangeWithin((*tts)[j], group.refs[k]);
            if (first >= last) continue;
            const std::vector<uint32_t>& rows = *rows_by_tt[j];
            auto it = std::lower_bound(rows.begin(), rows.end(),
                                       static_cast<uint32_t>(first));
            hit = it != rows.end() && *it < last;
          }
          (*keep)[group.indexes[k]] = hit ? 1 : 0;
        }
      }
      return;
    }
    case ValuePred::Kind::kPathString: {
      // contains()/starts-with() coerce the node set to its *first* node's
      // string value, so each context node tests the document-order-minimal
      // terminal instance in its subtree (or "" when there is none).
      auto bitmap = TermBitmap(vi.dict(), vp.str_fn, vp.lit.text, ctx_);
      for (const BatchGroup& group : groups) {
        auto tts = ChainTypes(g, vp.path, group.type, ctx_);
        for (size_t k = 0; k < group.indexes.size(); ++k) {
          const idx::TypeColumn* best_col = nullptr;
          size_t best_row = 0;
          bool have = false;
          num::PackedPbnRef best{nullptr, 0, 0};
          for (dg::TypeId tt : *tts) {
            auto [first, last] = stored_->TypeRangeWithin(tt, group.refs[k]);
            if (first >= last) continue;
            num::PackedPbnRef candidate = stored_->PackedNodesOfType(tt)[first];
            if (!have || candidate < best) {
              have = true;
              best = candidate;
              best_col = vi.Column(tt);
              best_row = first;
            }
          }
          (*keep)[group.indexes[k]] =
              !have ? (vp.lit.text.empty() ? 1 : 0)
                    : (*bitmap)[best_col->term_ids[best_row]];
        }
        if (ctx_ != nullptr) {
          ctx_->CountValueIndexLookups(group.indexes.size());
        }
      }
      return;
    }
  }
}

bool IndexedAdapter::BatchPredicate(const Expr& pred,
                                    const std::vector<Pbn>& nodes,
                                    std::vector<char>* keep) const {
  if (ctx_ == nullptr || !ctx_->use_value_index()) return false;
  if (nodes.empty()) return false;

  std::vector<xml::NodeId> ids(nodes.size());
  std::vector<dg::TypeId> types(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    ids[i] = stored_->numbering().NodeOf(nodes[i]).value();
    types[i] = stored_->TypeOfNode(ids[i]);
  }
  std::vector<dg::TypeId> distinct = types;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (!CanPushPredicate(pred, distinct)) return false;

  std::vector<BatchGroup> groups(distinct.size());
  for (size_t g = 0; g < distinct.size(); ++g) groups[g].type = distinct[g];
  for (size_t i = 0; i < nodes.size(); ++i) {
    size_t g = std::lower_bound(distinct.begin(), distinct.end(), types[i]) -
               distinct.begin();
    groups[g].indexes.push_back(i);
    groups[g].ids.push_back(ids[i]);
  }
  // Encode every scope once; refs are views into the encodings, which must
  // not reallocate afterwards.
  for (BatchGroup& group : groups) {
    group.encodings.resize(group.indexes.size());
    group.refs.reserve(group.indexes.size());
    for (size_t k = 0; k < group.indexes.size(); ++k) {
      const Pbn& n = nodes[group.indexes[k]];
      num::EncodeOrdered(n, &group.encodings[k]);
      group.refs.emplace_back(group.encodings[k].data(),
                              static_cast<uint32_t>(group.encodings[k].size()),
                              static_cast<uint32_t>(n.length()));
    }
  }

  keep->assign(nodes.size(), 0);
  EvalBatchPredicate(pred, groups, keep);
  return true;
}

Result<std::string> IndexedAdapter::Attribute(const Pbn& n,
                                              const std::string& name) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, stored_->numbering().NodeOf(n));
  if (!stored_->doc().IsElement(id)) {
    return Status::NotFound("text node has no attributes");
  }
  return stored_->doc().AttributeValue(id, name);
}

Result<std::vector<Pbn>> EvalIndexed(const storage::StoredDocument& stored,
                                     std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalIndexed(stored, path);
}

Result<std::vector<Pbn>> EvalIndexed(const storage::StoredDocument& stored,
                                     const Path& path, ExecContext* ctx) {
  IndexedAdapter adapter(stored, ctx);
  PathEvaluator<IndexedAdapter> evaluator(adapter, ctx);
  return evaluator.Eval(path);
}

}  // namespace vpbn::query
