#include "query/eval_indexed.h"

#include <algorithm>
#include <string>

#include "pbn/codec.h"
#include "pbn/packed.h"

namespace vpbn::query {

using num::Pbn;

bool IndexedAdapter::TypeMatches(dg::TypeId t, const NodeTest& test) const {
  const dg::DataGuide& g = stored_->dataguide();
  return test.Matches(!g.IsTextType(t), g.label(t));
}

std::vector<dg::TypeId> IndexedAdapter::MatchingTypes(
    const NodeTest& test) const {
  const dg::DataGuide& g = stored_->dataguide();
  std::vector<dg::TypeId> out;
  for (dg::TypeId t = 0; t < g.num_types(); ++t) {
    if (TypeMatches(t, test)) out.push_back(t);
  }
  return out;
}

dg::TypeId IndexedAdapter::TypeOf(const Pbn& n) const {
  return stored_->TypeOfNode(stored_->numbering().NodeOf(n).value());
}

std::vector<Pbn> IndexedAdapter::DocumentRoots(const NodeTest& test) const {
  std::vector<Pbn> out;
  const dg::DataGuide& g = stored_->dataguide();
  for (dg::TypeId rt : g.roots()) {
    if (!TypeMatches(rt, test)) continue;
    const auto& nodes = stored_->NodesOfType(rt);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  return out;
}

std::vector<Pbn> IndexedAdapter::AllNodes(const NodeTest& test) const {
  std::vector<Pbn> out;
  for (dg::TypeId t : MatchingTypes(test)) {
    const auto& nodes = stored_->NodesOfType(t);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  return out;
}

std::vector<Pbn> IndexedAdapter::Axis(const Pbn& n, num::Axis axis,
                                      const NodeTest& test) const {
  using num::Axis;
  const dg::DataGuide& g = stored_->dataguide();
  dg::TypeId nt = TypeOf(n);
  std::vector<Pbn> out;
  switch (axis) {
    case Axis::kSelf:
      if (TypeMatches(nt, test)) out.push_back(n);
      break;
    case Axis::kChild:
      // Candidate types are the DataGuide children; every instance inside
      // the subtree is a child (its depth is ours + 1).
      for (dg::TypeId ct : g.children(nt)) {
        if (!TypeMatches(ct, test)) continue;
        for (Pbn& p : stored_->NodesOfTypeWithin(ct, n)) {
          out.push_back(std::move(p));
        }
      }
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf && TypeMatches(nt, test)) {
        out.push_back(n);
      }
      for (dg::TypeId dt : g.DescendantTypes(nt)) {
        if (!TypeMatches(dt, test)) continue;
        for (Pbn& p : stored_->NodesOfTypeWithin(dt, n)) {
          out.push_back(std::move(p));
        }
      }
      break;
    }
    case Axis::kParent:
      if (n.length() > 1) {
        Pbn parent = n.Parent();
        if (TypeMatches(g.parent(nt), test)) out.push_back(std::move(parent));
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf && TypeMatches(nt, test)) {
        out.push_back(n);
      }
      dg::TypeId t = g.parent(nt);
      for (size_t len = n.length() - 1; len >= 1; --len) {
        if (TypeMatches(t, test)) out.push_back(n.Prefix(len));
        t = g.parent(t);
      }
      break;
    }
    case Axis::kFollowing:
    case Axis::kPreceding:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Number-comparison scan over the packed arenas of matching types:
      // the context number is encoded once and every axis decision is a
      // memcmp against arena bytes; only hits materialize a Pbn.
      std::string encoded;
      num::EncodeOrdered(n, &encoded);
      num::PackedPbnRef nref(encoded.data(),
                             static_cast<uint32_t>(encoded.size()),
                             static_cast<uint32_t>(n.length()));
      for (dg::TypeId t : MatchingTypes(test)) {
        const num::PackedPbnList& all = stored_->PackedNodesOfType(t);
        for (size_t i = 0; i < all.size(); ++i) {
          if (num::PackedCheckAxis(axis, all[i], nref)) {
            out.push_back(all.Materialize(i));
          }
        }
      }
      break;
    }
    case Axis::kAttribute:
      break;
  }
  return out;
}

void IndexedAdapter::SortUnique(std::vector<Pbn>* nodes) const {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

std::string IndexedAdapter::StringValue(const Pbn& n) const {
  return stored_->doc().StringValue(stored_->numbering().NodeOf(n).value());
}

Result<std::string> IndexedAdapter::Attribute(const Pbn& n,
                                              const std::string& name) const {
  VPBN_ASSIGN_OR_RETURN(xml::NodeId id, stored_->numbering().NodeOf(n));
  if (!stored_->doc().IsElement(id)) {
    return Status::NotFound("text node has no attributes");
  }
  return stored_->doc().AttributeValue(id, name);
}

Result<std::vector<Pbn>> EvalIndexed(const storage::StoredDocument& stored,
                                     std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalIndexed(stored, path);
}

Result<std::vector<Pbn>> EvalIndexed(const storage::StoredDocument& stored,
                                     const Path& path, ExecContext* ctx) {
  IndexedAdapter adapter(stored);
  PathEvaluator<IndexedAdapter> evaluator(adapter, ctx);
  return evaluator.Eval(path);
}

}  // namespace vpbn::query
