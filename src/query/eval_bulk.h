/// \file eval_bulk.h
/// \brief Set-at-a-time path evaluation over the type index using
/// stack-tree structural joins (pbn/structural_join.h).
///
/// The per-node evaluators (eval_indexed.h) process one context node at a
/// time; the classic PBN-era alternative evaluates whole steps as joins
/// between sorted instance lists. With a DataGuide, a pure name-test chain
/// resolves to result *types* directly (one index lookup); joins are needed
/// exactly where predicates filter instances, which is where this evaluator
/// earns its keep:
///
///     //book[author/name]/title
///       1. types(book) instances      — index lookup
///       2. semi-join against types(book/author/name) instances (retain
///          books with a matching descendant)
///       3. parent-child join with types(title) under the retained books
///
/// Supported fragment: absolute paths of child/descendant steps with
/// name/wildcard/text tests and *existence* predicates that are themselves
/// such paths. Everything else returns NotImplemented — callers fall back
/// to EvalIndexed (which EvalBulkOrIndexed automates).

#pragma once

#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/exec_context.h"
#include "query/path_parser.h"
#include "storage/stored_document.h"

namespace vpbn::query {

/// \brief True iff \p path lies in the bulk-join fragment (child/descendant
/// chains, name-ish tests, existence predicates that are such chains).
/// Exposed so planners (query/engine.h) can pick the strategy once at
/// Prepare time instead of probing with a NotImplemented round trip.
bool InBulkFragment(const Path& path);

/// \brief Evaluate \p path set-at-a-time. NotImplemented if the path uses
/// features outside the join fragment. \p ctx (optional) supplies a thread
/// pool — structural joins are chunk-partitioned and predicate semi-joins
/// fan out per surviving type — and collects ExecStats.
Result<std::vector<num::Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                       const Path& path,
                                       ExecContext* ctx = nullptr);

/// \brief Parse and evaluate.
Result<std::vector<num::Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                       std::string_view path_text);

/// \brief Partition-wise EvalBulk: groups the stored document's subtree
/// partitions (storage/partitions.h) into \p partitions balanced tasks,
/// prunes groups the partition metadata proves empty
/// (query/partition_pruner.h, counted as ExecStats::partition_skips), and
/// evaluates the rest concurrently on \p ctx's pool. Results are
/// byte-identical to EvalBulk for every K and thread count. Falls back to
/// EvalBulk when \p partitions <= 1 or the document has at most one
/// partition chunk. Same fragment, same NotImplemented contract.
Result<std::vector<num::Pbn>> EvalBulkPartitioned(
    const storage::StoredDocument& stored, const Path& path, int partitions,
    ExecContext* ctx = nullptr);

/// \brief EvalBulk when the fragment allows, else EvalIndexed.
Result<std::vector<num::Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, const Path& path,
    ExecContext* ctx = nullptr);

/// \brief Parse, then EvalBulk when the fragment allows, else EvalIndexed.
Result<std::vector<num::Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, std::string_view path_text);

}  // namespace vpbn::query
