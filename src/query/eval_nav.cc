#include "query/eval_nav.h"

#include <algorithm>

namespace vpbn::query {

using xml::NodeId;

NavAdapter::NavAdapter(const xml::Document& doc) : doc_(&doc) {
  order_pos_.resize(doc.num_nodes());
  std::vector<NodeId> order = doc.DocumentOrder();
  for (size_t i = 0; i < order.size(); ++i) order_pos_[order[i]] = i;
}

bool NavAdapter::Matches(Node n, const NodeTest& test) const {
  return test.Matches(doc_->IsElement(n), doc_->name(n));
}

std::vector<NodeId> NavAdapter::DocumentRoots(const NodeTest& test) const {
  std::vector<NodeId> out;
  for (NodeId r : doc_->roots()) {
    if (Matches(r, test)) out.push_back(r);
  }
  return out;
}

std::vector<NodeId> NavAdapter::AllNodes(const NodeTest& test) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < doc_->num_nodes(); ++n) {
    if (Matches(n, test)) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> NavAdapter::Axis(const Node& n, num::Axis axis,
                                     const NodeTest& test) const {
  using num::Axis;
  std::vector<NodeId> out;
  auto take = [&](NodeId c) {
    if (Matches(c, test)) out.push_back(c);
  };
  auto take_subtree = [&](NodeId top, bool include_top, auto&& self) -> void {
    if (include_top) take(top);
    for (NodeId c : xml::ChildRange(*doc_, top)) {
      self(c, true, self);
    }
  };
  switch (axis) {
    case Axis::kSelf:
      take(n);
      break;
    case Axis::kChild:
      for (NodeId c : xml::ChildRange(*doc_, n)) take(c);
      break;
    case Axis::kParent:
      if (doc_->parent(n) != xml::kNullNode) take(doc_->parent(n));
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf) take(n);
      for (NodeId p = doc_->parent(n); p != xml::kNullNode;
           p = doc_->parent(p)) {
        take(p);
      }
      break;
    }
    case Axis::kDescendant:
      take_subtree(n, false, take_subtree);
      break;
    case Axis::kDescendantOrSelf:
      take_subtree(n, true, take_subtree);
      break;
    case Axis::kFollowingSibling:
      for (NodeId s = doc_->next_sibling(n); s != xml::kNullNode;
           s = doc_->next_sibling(s)) {
        take(s);
      }
      break;
    case Axis::kPrecedingSibling:
      for (NodeId s = doc_->prev_sibling(n); s != xml::kNullNode;
           s = doc_->prev_sibling(s)) {
        take(s);
      }
      break;
    case Axis::kFollowing: {
      for (NodeId c = 0; c < doc_->num_nodes(); ++c) {
        if (order_pos_[c] > order_pos_[n] && !doc_->IsAncestor(n, c)) take(c);
      }
      break;
    }
    case Axis::kPreceding: {
      for (NodeId c = 0; c < doc_->num_nodes(); ++c) {
        if (order_pos_[c] < order_pos_[n] && !doc_->IsAncestor(c, n)) take(c);
      }
      break;
    }
    case Axis::kAttribute:
      break;
  }
  return out;
}

void NavAdapter::SortUnique(std::vector<NodeId>* nodes) const {
  std::sort(nodes->begin(), nodes->end(),
            [&](NodeId a, NodeId b) { return order_pos_[a] < order_pos_[b]; });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

std::string NavAdapter::StringValue(const Node& n) const {
  return doc_->StringValue(n);
}

Result<std::string> NavAdapter::Attribute(const Node& n,
                                          const std::string& name) const {
  if (!doc_->IsElement(n)) return Status::NotFound("text node has no attributes");
  return doc_->AttributeValue(n, name);
}

Result<std::vector<NodeId>> EvalNav(const xml::Document& doc,
                                    std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalNav(doc, path);
}

Result<std::vector<NodeId>> EvalNav(const xml::Document& doc,
                                    const Path& path, ExecContext* ctx) {
  NavAdapter adapter(doc);
  PathEvaluator<NavAdapter> evaluator(adapter, ctx);
  return evaluator.Eval(path);
}

}  // namespace vpbn::query
