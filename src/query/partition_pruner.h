/// \file partition_pruner.h
/// \brief Partition-group admissibility: decides, before a partition-wise
/// evaluation task launches, whether a chunk group can possibly contribute
/// a result row — from partition metadata and value-index zone maps alone.
///
/// The check mirrors eval_bulk's type-frontier walk at the *type* level: a
/// type survives a step only if the group's candidate set (its contiguous
/// row range plus the spine rows every group sees) is non-empty, and a
/// step predicate can kill a frontier type when the group's slice of the
/// value index provably rules it out. Everything here is conservative —
/// "true" means "cannot prove empty" — so pruning never changes results,
/// only skips work, which ExecStats reports as `partition_skips`.

#pragma once

#include "query/exec_context.h"
#include "query/path_ast.h"
#include "storage/stored_document.h"

namespace vpbn::query {

/// \brief True when chunk group [chunk_lo, chunk_hi) of \p stored's
/// partitions may contribute at least one result row of \p path.
/// Conservative: a false return is a proof of emptiness; a true return
/// promises nothing. Requires `stored.partitions().count() > 0` and \p path
/// inside the bulk fragment (the partition-wise evaluator's precondition).
bool PartitionGroupCanMatch(const storage::StoredDocument& stored,
                            const Path& path, size_t chunk_lo,
                            size_t chunk_hi, ExecContext* ctx);

}  // namespace vpbn::query
