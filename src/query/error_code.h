/// \file error_code.h
/// \brief The stable wire-facing error taxonomy.
///
/// The library's StatusCode (common/status.h) is fine-grained and may grow;
/// clients of the query API — the vpbnd line protocol above all — need a
/// small closed set of codes that never changes meaning. Every Status an
/// engine or server error path can produce maps onto exactly one ErrorCode,
/// and the protocol writes the numeric value verbatim onto the wire, so the
/// mapping here IS the wire contract (docs/server.md lists it).

#pragma once

#include "common/status.h"

namespace vpbn::query {

/// \brief Wire-stable failure category. Numeric values are part of the
/// vpbnd protocol; never renumber.
enum class ErrorCode : int {
  kOk = 0,        ///< success
  kParse = 1,     ///< malformed request: bad path, bad spec, bad arguments
  kNotFound = 2,  ///< unknown document, view, or node
  kOverload = 3,  ///< admission control shed the request; retry later
  kInternal = 4,  ///< engine invariant violated or unsupported operation
};

/// \brief Stable lower-case token for an ErrorCode ("ok", "parse",
/// "not_found", "overload", "internal").
const char* ErrorCodeToString(ErrorCode code);

/// \brief Collapse a Status onto the wire taxonomy. Total: every StatusCode
/// maps somewhere (parse/invalid-argument -> kParse, not-found -> kNotFound,
/// resource-exhausted -> kOverload, everything else non-OK -> kInternal).
ErrorCode ErrorCodeFromStatus(const Status& status);

}  // namespace vpbn::query
