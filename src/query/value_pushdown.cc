#include "query/value_pushdown.h"

#include <algorithm>
#include <cstdio>

#include "query/evaluator.h"

namespace vpbn::query {

namespace {

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

bool IsLiteral(const Expr& e) {
  return e.kind == Expr::Kind::kString || e.kind == Expr::Kind::kNumber;
}

}  // namespace

ValueLiteral MakeLiteral(const Expr& literal) {
  ValueLiteral out;
  if (literal.kind == Expr::Kind::kString) {
    out.text = literal.str;
  } else {
    // Same rendering as evaluator.h's number-to-string coercion; comparing
    // against anything else would diverge from the scan path.
    if (literal.num == static_cast<int64_t>(literal.num)) {
      out.text = std::to_string(static_cast<int64_t>(literal.num));
    } else {
      out.text = std::to_string(literal.num);
    }
  }
  out.numeric = ToNumber(out.text, &out.num);
  return out;
}

bool RecognizeValuePred(const Expr& e, ValuePred* out) {
  switch (e.kind) {
    case Expr::Kind::kCompare: {
      const Expr* side = nullptr;
      const Expr* lit = nullptr;
      CompareOp op = e.op;
      if (IsLiteral(*e.rhs)) {
        side = e.lhs.get();
        lit = e.rhs.get();
      } else if (IsLiteral(*e.lhs)) {
        // literal op path: existential semantics make this `path mirror(op)
        // literal`.
        side = e.rhs.get();
        lit = e.lhs.get();
        op = MirrorOp(e.op);
      } else {
        return false;
      }
      if (side->kind == Expr::Kind::kPath) {
        if (!IsPredicateFreeChain(side->path)) return false;
        out->kind = ValuePred::Kind::kPathCompare;
        out->path = &side->path;
      } else if (side->kind == Expr::Kind::kAttribute) {
        out->kind = ValuePred::Kind::kAttrCompare;
        out->attr = side->str;
      } else {
        return false;
      }
      out->op = op;
      out->lit = MakeLiteral(*lit);
      return true;
    }
    case Expr::Kind::kContains:
    case Expr::Kind::kStartsWith: {
      if (!IsLiteral(*e.rhs)) return false;
      if (e.lhs->kind == Expr::Kind::kPath) {
        if (!IsPredicateFreeChain(e.lhs->path)) return false;
        out->kind = ValuePred::Kind::kPathString;
        out->path = &e.lhs->path;
      } else if (e.lhs->kind == Expr::Kind::kAttribute) {
        out->kind = ValuePred::Kind::kAttrString;
        out->attr = e.lhs->str;
      } else {
        return false;
      }
      out->str_fn = e.kind;
      out->lit = MakeLiteral(*e.rhs);
      return true;
    }
    default:
      return false;
  }
}

bool TermMatches(const idx::Dictionary& dict, uint32_t term, CompareOp op,
                 const ValueLiteral& lit) {
  if (term == idx::kNoTerm) return false;
  if (dict.numeric(term) && lit.numeric) {
    return CompareNumbers(dict.number(term), op, lit.num);
  }
  switch (op) {
    case CompareOp::kEq:
      return dict.term(term) == lit.text;
    case CompareOp::kNe:
      return dict.term(term) != lit.text;
    default:
      return false;  // relational with a non-numeric side never matches
  }
}

std::vector<uint32_t> CollectMatchingRows(const idx::TypeColumn& col,
                                          CompareOp op,
                                          const ValueLiteral& lit,
                                          ExecContext* ctx) {
  const idx::Dictionary& dict = *col.dict;
  const std::vector<uint32_t>& nr = col.numeric_rows;
  auto num_of = [&](uint32_t row) { return dict.number(col.term_ids[row]); };
  auto lower = [&](double v) {
    return std::lower_bound(
        nr.begin(), nr.end(), v,
        [&](uint32_t r, double x) { return num_of(r) < x; });
  };
  auto upper = [&](double v) {
    return std::upper_bound(
        nr.begin(), nr.end(), v,
        [&](double x, uint32_t r) { return x < num_of(r); });
  };

  std::vector<uint32_t> rows;
  uint64_t lookups = 1;
  switch (op) {
    case CompareOp::kEq:
      if (lit.numeric) {
        // (value, row)-sorted, so the equal-value slice is row-ascending.
        // A string that equals a numeric term byte-for-byte parses too, so
        // the slice covers every match the string fallback could add.
        rows.assign(lower(lit.num), upper(lit.num));
        lookups = 2;
      } else {
        uint32_t term = dict.Find(lit.text);
        if (term != idx::kNoTerm) {
          auto it = col.postings.find(term);
          if (it != col.postings.end()) rows = it->second;
        }
      }
      break;
    case CompareOp::kNe:
      // No sublinear shape; scan the term column — one O(1) interned test
      // per row, no string assembly.
      for (uint32_t row = 0; row < col.term_ids.size(); ++row) {
        if (TermMatches(dict, col.term_ids[row], op, lit)) rows.push_back(row);
      }
      break;
    default: {
      if (!lit.numeric) break;  // relational vs non-number: empty
      auto b = nr.begin();
      auto e = nr.end();
      switch (op) {
        case CompareOp::kLt:
          e = lower(lit.num);
          break;
        case CompareOp::kLe:
          e = upper(lit.num);
          break;
        case CompareOp::kGt:
          b = upper(lit.num);
          break;
        default:  // kGe
          b = lower(lit.num);
          break;
      }
      rows.assign(b, e);
      std::sort(rows.begin(), rows.end());
      lookups = 2;
      break;
    }
  }
  if (ctx != nullptr) {
    ctx->CountValueIndexLookups(lookups);
    ctx->CountValueIndexPostings(rows.size());
  }
  return rows;
}

std::shared_ptr<const std::vector<uint32_t>> MatchingRows(
    const idx::TypeColumn& col, const Expr* pred, dg::TypeId t, CompareOp op,
    const ValueLiteral& lit, ExecContext* ctx) {
  if (ctx == nullptr) {
    return std::make_shared<const std::vector<uint32_t>>(
        CollectMatchingRows(col, op, lit, nullptr));
  }
  char key[64];
  std::snprintf(key, sizeof(key), "vp:%p:%u", static_cast<const void*>(pred),
                t);
  return ctx->CachedVTypes(
      key, [&] { return CollectMatchingRows(col, op, lit, ctx); });
}

std::vector<dg::TypeId> ResolveChainTypes(const dg::DataGuide& g,
                                          dg::TypeId context,
                                          const Path& path) {
  std::vector<dg::TypeId> frontier{context};
  std::vector<char> seen;
  for (const Step& step : path.steps) {
    seen.assign(g.num_types(), 0);
    std::vector<dg::TypeId> next;
    auto add = [&](dg::TypeId t) {
      if (!seen[t]) {
        seen[t] = 1;
        next.push_back(t);
      }
    };
    for (dg::TypeId t : frontier) {
      switch (step.axis) {
        case num::Axis::kChild:
          for (dg::TypeId c : g.children(t)) {
            if (step.test.Matches(!g.IsTextType(c), g.label(c))) add(c);
          }
          break;
        case num::Axis::kDescendant:
          for (dg::TypeId d : g.DescendantTypes(t)) {
            if (step.test.Matches(!g.IsTextType(d), g.label(d))) add(d);
          }
          break;
        case num::Axis::kDescendantOrSelf:
          // IsPredicateFreeChain admits only the anonymous '//' form, which
          // matches every node: expand the frontier in place. The grammar
          // cannot end a path with '//', so self never survives to the
          // terminal set.
          add(t);
          for (dg::TypeId d : g.DescendantTypes(t)) add(d);
          break;
        default:
          break;  // unreachable: IsPredicateFreeChain screens axes
      }
    }
    frontier = std::move(next);
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

std::shared_ptr<const std::vector<dg::TypeId>> ChainTypes(
    const dg::DataGuide& g, const Path* path, dg::TypeId context,
    ExecContext* ctx) {
  if (ctx == nullptr) {
    return std::make_shared<const std::vector<dg::TypeId>>(
        ResolveChainTypes(g, context, *path));
  }
  char key[64];
  std::snprintf(key, sizeof(key), "vct:%p:%u",
                static_cast<const void*>(path), context);
  return ctx->CachedVTypes(
      key, [&] { return ResolveChainTypes(g, context, *path); });
}

std::shared_ptr<const std::vector<uint8_t>> TermBitmap(
    const idx::Dictionary& dict, Expr::Kind fn, std::string_view needle,
    ExecContext* ctx) {
  auto build = [&] {
    std::vector<uint8_t> bits(dict.size(), 0);
    for (uint32_t t = 0; t < dict.size(); ++t) {
      bits[t] = TermMatchesString(dict.term(t), fn, needle) ? 1 : 0;
    }
    return bits;
  };
  if (ctx == nullptr) {
    return std::make_shared<const std::vector<uint8_t>>(build());
  }
  std::string key = "tb:";
  char ptr[32];
  std::snprintf(ptr, sizeof(ptr), "%p:%d:", static_cast<const void*>(&dict),
                static_cast<int>(fn));
  key += ptr;
  key += needle;
  return ctx->CachedTermBitmap(key, build);
}

}  // namespace vpbn::query
