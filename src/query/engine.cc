#include "query/engine.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "common/str_util.h"
#include "query/cost_model.h"
#include "query/eval_bulk.h"
#include "query/eval_indexed.h"
#include "query/eval_nav.h"
#include "query/eval_virtual.h"
#include "vpbn/virtual_value.h"

namespace vpbn::query {

const char* PlanKindToString(PlanKind plan) {
  switch (plan) {
    case PlanKind::kNav:
      return "nav";
    case PlanKind::kBulk:
      return "bulk";
    case PlanKind::kIndexed:
      return "indexed";
    case PlanKind::kVirtual:
      return "virtual";
  }
  return "?";
}

std::string ExecStats::ToString() const {
  std::string out = "plan=" + std::string(plan) +
                    " threads=" + std::to_string(threads) +
                    " wall_ms=" + std::to_string(wall_ms) +
                    " ingest_ms=" + std::to_string(ingest_ms) +
                    " snapshot_load=" + (snapshot_load ? "1" : "0") +
                    " snapshot_bytes=" + std::to_string(snapshot_bytes) +
                    " mapped_bytes=" + std::to_string(mapped_bytes) +
                    " result_nodes=" + std::to_string(result_nodes) +
                    " nodes_scanned=" + std::to_string(nodes_scanned) +
                    " join_pairs=" + std::to_string(join_pairs) +
                    " pbn_comparisons=" + std::to_string(pbn_comparisons) +
                    " bytes_compared=" + std::to_string(bytes_compared) +
                    " vjoin_pairs=" + std::to_string(vjoin_pairs) +
                    " decoded_batches=" + std::to_string(decoded_batches) +
                    " block_skips=" + std::to_string(block_skips) +
                    " value_index_lookups=" + std::to_string(value_index_lookups) +
                    " value_index_postings=" + std::to_string(value_index_postings) +
                    " value_scan_fallbacks=" + std::to_string(value_scan_fallbacks) +
                    " zone_map_skips=" + std::to_string(zone_map_skips) +
                    " partition_skips=" + std::to_string(partition_skips) +
                    " partitions_used=" + std::to_string(partitions_used) +
                    " est_rows=" + std::to_string(est_rows) +
                    (chosen_plan.empty() ? std::string()
                                         : " chosen_plan=" + chosen_plan) +
                    " plan_cache=" + std::to_string(plan_cache_hits) + "h/" +
                    std::to_string(plan_cache_misses) + "m" +
                    " result_cache=" + std::to_string(result_cache_hits) +
                    "h/" + std::to_string(result_cache_misses) + "m\n";
  for (const StepStats& s : steps) {
    out += "  step " + s.label + ": nodes_out=" + std::to_string(s.nodes_out) +
           " wall_ms=" + std::to_string(s.wall_ms) + "\n";
  }
  return out;
}

std::string ExecStats::ToJson() const {
  char buf[256];
  std::string out = "{";
  auto add_u64 = [&](const char* key, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 ",", key, v);
    out += buf;
  };
  out += "\"plan\":\"" + JsonEscape(plan) + "\",";
  std::snprintf(buf, sizeof(buf), "\"threads\":%d,", threads);
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"wall_ms\":%.6f,", wall_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"ingest_ms\":%.6f,", ingest_ms);
  out += buf;
  out += std::string("\"snapshot_load\":") +
         (snapshot_load ? "true," : "false,");
  add_u64("snapshot_bytes", snapshot_bytes);
  add_u64("mapped_bytes", mapped_bytes);
  add_u64("result_nodes", result_nodes);
  add_u64("nodes_scanned", nodes_scanned);
  add_u64("join_pairs", join_pairs);
  add_u64("pbn_comparisons", pbn_comparisons);
  add_u64("bytes_compared", bytes_compared);
  add_u64("vjoin_pairs", vjoin_pairs);
  add_u64("decoded_batches", decoded_batches);
  add_u64("block_skips", block_skips);
  add_u64("value_index_lookups", value_index_lookups);
  add_u64("value_index_postings", value_index_postings);
  add_u64("value_scan_fallbacks", value_scan_fallbacks);
  add_u64("zone_map_skips", zone_map_skips);
  add_u64("partition_skips", partition_skips);
  add_u64("partitions_used", partitions_used);
  add_u64("est_rows", est_rows);
  out += "\"chosen_plan\":\"" + JsonEscape(chosen_plan) + "\",";
  add_u64("plan_cache_hits", plan_cache_hits);
  add_u64("plan_cache_misses", plan_cache_misses);
  add_u64("result_cache_hits", result_cache_hits);
  add_u64("result_cache_misses", result_cache_misses);
  out += "\"steps\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepStats& s = steps[i];
    if (i != 0) out += ',';
    out += "{\"label\":\"" + JsonEscape(s.label) + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"nodes_out\":%" PRIu64 ",\"wall_ms\":%.6f}", s.nodes_out,
                  s.wall_ms);
    out += buf;
  }
  out += "]}";
  return out;
}

void ExecStats::Accumulate(const ExecStats& other) {
  nodes_scanned += other.nodes_scanned;
  join_pairs += other.join_pairs;
  pbn_comparisons += other.pbn_comparisons;
  bytes_compared += other.bytes_compared;
  vjoin_pairs += other.vjoin_pairs;
  decoded_batches += other.decoded_batches;
  block_skips += other.block_skips;
  value_index_lookups += other.value_index_lookups;
  value_index_postings += other.value_index_postings;
  value_scan_fallbacks += other.value_scan_fallbacks;
  zone_map_skips += other.zone_map_skips;
  partition_skips += other.partition_skips;
  partitions_used += other.partitions_used;
  // Per-query planner detail: keep the latest observation.
  est_rows = other.est_rows;
  if (!other.chosen_plan.empty()) chosen_plan = other.chosen_plan;
  // Engine-lifetime counters: keep the latest observation, not a sum of
  // snapshots.
  plan_cache_hits = other.plan_cache_hits;
  plan_cache_misses = other.plan_cache_misses;
  result_cache_hits += other.result_cache_hits;
  result_cache_misses += other.result_cache_misses;
  result_nodes += other.result_nodes;
  wall_ms += other.wall_ms;
  ingest_ms = other.ingest_ms;
  snapshot_load = other.snapshot_load;
  snapshot_bytes = other.snapshot_bytes;
  mapped_bytes = other.mapped_bytes;
  threads = other.threads;
  if (!other.plan.empty()) plan = other.plan;
  // Per-step records are per-query detail; a cumulative object drops them.
}

size_t QueryResult::size() const {
  return std::visit([](const auto& nodes) { return nodes.size(); }, nodes_);
}

QueryEngine::~QueryEngine() = default;

uint64_t QueryEngine::NextEngineId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

void QueryEngine::SetDefaultOptions(const ExecOptions& options) {
  std::lock_guard<std::mutex> lock(defaults_mu_);
  defaults_ = options;
}

ExecOptions QueryEngine::default_options() const {
  std::lock_guard<std::mutex> lock(defaults_mu_);
  return defaults_;
}

ExecOptions QueryEngine::EffectiveOptions(
    const ExecOverrides& overrides) const {
  ExecOptions effective = default_options();
  if (overrides.threads) effective.threads = *overrides.threads;
  if (overrides.collect_stats) {
    effective.collect_stats = *overrides.collect_stats;
  }
  if (overrides.virtual_join) {
    effective.virtual_join = *overrides.virtual_join;
  }
  if (overrides.use_value_index) {
    effective.use_value_index = *overrides.use_value_index;
  }
  if (overrides.use_cost_model) {
    effective.use_cost_model = *overrides.use_cost_model;
  }
  if (overrides.partitions) effective.partitions = *overrides.partitions;
  return effective;
}

void QueryEngine::SetEpoch(uint64_t epoch) {
  if (epoch_.exchange(epoch, std::memory_order_relaxed) == epoch) return;
  // Every cached plan carries the old stamp; drop them so Prepare re-stamps
  // instead of serving a plan Execute would reject.
  std::lock_guard<std::mutex> lock(cache_mu_);
  lru_.clear();
  cache_index_.clear();
}

void QueryEngine::SetStatsEpoch(uint64_t stats_epoch) {
  if (stats_epoch_.exchange(stats_epoch, std::memory_order_relaxed) ==
      stats_epoch) {
    return;
  }
  // Cached plans were costed under the previous statistics; drop them so
  // Prepare re-plans against the rebuilt histograms and zone maps.
  std::lock_guard<std::mutex> lock(cache_mu_);
  lru_.clear();
  cache_index_.clear();
}

Result<PreparedQuery> QueryEngine::Prepare(std::string_view path_text) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_index_.find(std::string(path_text));
    if (it != cache_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  PreparedQuery q;
  q.text_ = std::string(path_text);
  q.path_ = std::make_shared<const Path>(std::move(path));
  q.engine_id_ = engine_id_;
  q.epoch_ = epoch_.load(std::memory_order_relaxed);
  q.stats_epoch_ = stats_epoch_.load(std::memory_order_relaxed);
  if (doc_ != nullptr) {
    q.plan_ = PlanKind::kNav;
    q.cost_plan_ = q.plan_;
  } else if (stored_ != nullptr) {
    // Fragment rule: set-at-a-time joins where the fragment allows; the
    // per-node indexed evaluator handles everything else.
    const bool in_fragment = InBulkFragment(q.path());
    q.plan_ = in_fragment ? PlanKind::kBulk : PlanKind::kIndexed;
    // Costed choice: within the fragment, compare the two plans on the
    // cardinality estimates (outside it there is no decision to make).
    // Execute picks cost_plan_ or plan_ by ExecOptions::use_cost_model.
    CostModel cm(*stored_);
    q.cost_plan_ = in_fragment
                       ? (cm.BulkBeatsIndexed(q.path()) ? PlanKind::kBulk
                                                        : PlanKind::kIndexed)
                       : PlanKind::kIndexed;
    double est = cm.EstimateResultRows(q.path());
    q.est_rows_ = est > 0 ? static_cast<uint64_t>(est + 0.5) : 0;
  } else {
    q.plan_ = PlanKind::kVirtual;
    q.cost_plan_ = q.plan_;
  }

  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_capacity_ > 0 && cache_index_.find(q.text_) == cache_index_.end()) {
    lru_.emplace_front(q.text_, q);
    cache_index_.emplace(q.text_, lru_.begin());
    while (lru_.size() > cache_capacity_) {
      cache_index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  return q;
}

void QueryEngine::SetPlanCacheCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_capacity_ = capacity;
  while (lru_.size() > cache_capacity_) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t QueryEngine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return lru_.size();
}

common::ThreadPool* QueryEngine::PoolFor(int threads) const {
  if (threads == 0) {
    threads =
        std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr || pool_->num_threads() != threads) {
    pool_ = std::make_unique<common::ThreadPool>(threads);
  }
  return pool_.get();
}

Result<QueryResult> QueryEngine::Execute(const PreparedQuery& query,
                                         const ExecOverrides& overrides) const {
  return ExecuteResolved(query, EffectiveOptions(overrides));
}

Result<QueryResult> QueryEngine::ExecuteResolved(
    const PreparedQuery& query, const ExecOptions& options) const {
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const uint64_t stats_epoch = stats_epoch_.load(std::memory_order_relaxed);
  if (query.engine_id_ != engine_id_ || query.epoch_ != epoch ||
      query.stats_epoch_ != stats_epoch) {
    return Status::Internal(
        "stale PreparedQuery: prepared against engine#" +
        std::to_string(query.engine_id_) + " epoch " +
        std::to_string(query.epoch_) + " stats_epoch " +
        std::to_string(query.stats_epoch_) + ", executing on engine#" +
        std::to_string(engine_id_) + " epoch " + std::to_string(epoch) +
        " stats_epoch " + std::to_string(stats_epoch));
  }
  common::ThreadPool* pool = PoolFor(options.threads);
  ExecContext ctx(pool, options.collect_stats);
  ctx.set_virtual_join(options.virtual_join);
  ctx.set_use_value_index(options.use_value_index);
  ctx.set_use_cost_model(options.use_cost_model);
  // The costed bulk-vs-indexed choice only exists on the stored substrate;
  // everywhere else both plans coincide.
  const PlanKind effective_plan =
      options.use_cost_model ? query.cost_plan() : query.plan();
  auto t0 = std::chrono::steady_clock::now();

  QueryResult result;
  switch (effective_plan) {
    case PlanKind::kNav: {
      VPBN_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                            EvalNav(*doc_, query.path(), &ctx));
      result.nodes_ = std::move(nodes);
      break;
    }
    case PlanKind::kBulk: {
      // Partition-wise execution when asked for and the document actually
      // has multiple partitions; byte-identical either way.
      const bool partition_wise =
          options.partitions > 1 && stored_->partitions().count() > 1;
      VPBN_ASSIGN_OR_RETURN(
          std::vector<num::Pbn> nodes,
          partition_wise
              ? EvalBulkPartitioned(*stored_, query.path(),
                                    options.partitions, &ctx)
              : EvalBulk(*stored_, query.path(), &ctx));
      result.nodes_ = std::move(nodes);
      break;
    }
    case PlanKind::kIndexed: {
      VPBN_ASSIGN_OR_RETURN(std::vector<num::Pbn> nodes,
                            EvalIndexed(*stored_, query.path(), &ctx));
      result.nodes_ = std::move(nodes);
      break;
    }
    case PlanKind::kVirtual: {
      VPBN_ASSIGN_OR_RETURN(std::vector<virt::VirtualNode> nodes,
                            EvalVirtual(*vdoc_, query.path(), &ctx));
      result.nodes_ = std::move(nodes);
      break;
    }
  }

  ExecStats& stats = result.stats_;
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  stats.threads = pool != nullptr ? pool->num_threads() : 1;
  stats.plan = PlanKindToString(effective_plan);
  if (stored_ != nullptr) {
    stats.chosen_plan =
        std::string(options.use_cost_model ? "cost:" : "rule:") +
        PlanKindToString(effective_plan);
    stats.est_rows = query.est_rows();
  }
  stats.result_nodes = result.size();
  if (stored_ != nullptr) {
    stats.ingest_ms = stored_->ingest_ms();
    stats.snapshot_load = stored_->from_snapshot();
    stats.snapshot_bytes = stored_->snapshot_bytes();
    stats.mapped_bytes = stored_->mapped_bytes();
  }
  stats.plan_cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.plan_cache_misses = cache_misses_.load(std::memory_order_relaxed);
  if (options.collect_stats) {
    stats.nodes_scanned = ctx.nodes_scanned();
    stats.join_pairs = ctx.join_pairs();
    stats.pbn_comparisons = ctx.pbn_comparisons();
    stats.bytes_compared = ctx.bytes_compared();
    stats.vjoin_pairs = ctx.vjoin_pairs();
    stats.decoded_batches = ctx.decoded_batches();
    stats.block_skips = ctx.block_skips();
    stats.value_index_lookups = ctx.value_index_lookups();
    stats.value_index_postings = ctx.value_index_postings();
    stats.value_scan_fallbacks = ctx.value_scan_fallbacks();
    stats.zone_map_skips = ctx.zone_map_skips();
    stats.partition_skips = ctx.partition_skips();
    stats.partitions_used = ctx.partitions_used();
    stats.steps = ctx.TakeSteps();
  }
  return result;
}

Result<QueryResult> QueryEngine::Execute(std::string_view path_text,
                                         const ExecOverrides& overrides) const {
  VPBN_ASSIGN_OR_RETURN(PreparedQuery query, Prepare(path_text));
  return Execute(query, overrides);
}

std::vector<std::string> QueryEngine::StringValues(
    const QueryResult& result) const {
  std::deque<std::string> owned;
  std::vector<std::string_view> views = StringValueViews(result, &owned);
  std::vector<std::string> out;
  out.reserve(views.size());
  for (std::string_view v : views) out.emplace_back(v);
  return out;
}

std::vector<std::string_view> QueryEngine::StringValueViews(
    const QueryResult& result, std::deque<std::string>* owned) const {
  std::vector<std::string_view> out;
  out.reserve(result.size());
  if (doc_ != nullptr) {
    for (xml::NodeId id : result.nav_nodes()) {
      out.push_back(owned->emplace_back(doc_->StringValue(id)));
    }
  } else if (stored_ != nullptr) {
    for (const num::Pbn& p : result.pbn_nodes()) {
      auto value = stored_->Value(p);
      if (value.ok()) {
        out.push_back(*value);
      } else {
        out.push_back(std::string_view());
      }
    }
  } else {
    virt::VirtualValueComputer values(*vdoc_);
    for (const virt::VirtualNode& n : result.virtual_nodes()) {
      std::string_view view;
      if (values.ValueView(n, &view)) {
        out.push_back(view);
      } else {
        out.push_back(owned->emplace_back(values.Value(n)));
      }
    }
  }
  return out;
}

}  // namespace vpbn::query
