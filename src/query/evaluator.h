/// \file evaluator.h
/// \brief Generic path evaluator, parameterized by a node-source adapter.
///
/// The same evaluation logic runs over three substrates:
///   * NavAdapter      — tree walking on a Document (query/eval_nav.h)
///   * IndexedAdapter  — PBN type-index structural joins on a
///                       StoredDocument (query/eval_indexed.h)
///   * VirtualAdapter  — vPBN joins on a VirtualDocument
///                       (query/eval_virtual.h)
///
/// An Adapter provides:
///   using Node = ...;                     // copyable node handle
///   std::vector<Node> DocumentRoots(const NodeTest&) const;
///   std::vector<Node> AllNodes(const NodeTest&) const;
///   std::vector<Node> Axis(const Node&, num::Axis, const NodeTest&) const;
///   void SortUnique(std::vector<Node>*) const;   // document order + dedupe
///   std::string StringValue(const Node&) const;
///   Result<std::string> Attribute(const Node&, const std::string&) const;
///
/// Evaluation starts at the document node (the invisible parent of the
/// roots), so '/data' selects root elements named data and '//book' selects
/// books at any depth.

#pragma once

#include <chrono>
#include <cmath>
#include <concepts>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "index/value_index.h"
#include "query/exec_context.h"
#include "query/path_ast.h"

namespace vpbn::query {

/// \brief Minimum context size before a step fans out per-context-node work
/// onto the ExecContext's pool; below this the task overhead dominates.
inline constexpr size_t kParallelFanoutCutoff = 16;

/// \brief Whether an adapter declares its const interface safe for
/// concurrent use (static constexpr bool kParallelSafe). Adapters without
/// the marker are conservatively evaluated sequentially.
template <typename Adapter>
constexpr bool AdapterParallelSafe() {
  if constexpr (requires { Adapter::kParallelSafe; }) {
    return Adapter::kParallelSafe;
  } else {
    return false;
  }
}

/// \brief Whether an adapter offers a whole-context axis evaluation:
///
///   bool BatchAxis(const std::vector<Node>& context, num::Axis axis,
///                  const NodeTest& test,
///                  std::vector<std::vector<Node>>* slots) const;
///
/// A true return means slots[i] holds exactly what Axis(context[i], ...)
/// would have produced (as a set — per-slot SortUnique still runs); false
/// means the adapter declined (axis or shape not covered) and the evaluator
/// falls back to per-node Axis calls. This is how the virtual substrate
/// replaces |context| x |candidates| predicate scans with one merge join
/// per (context-vtype, result-vtype) pair while preserving XPath's
/// per-context-node predicate semantics byte-for-byte.
template <typename Adapter>
constexpr bool AdapterHasBatchAxis() {
  return requires(const Adapter& a,
                  const std::vector<typename Adapter::Node>& context,
                  num::Axis axis, const NodeTest& test,
                  std::vector<std::vector<typename Adapter::Node>>* slots) {
    { a.BatchAxis(context, axis, test, slots) } -> std::convertible_to<bool>;
  };
}

/// \brief Whether an adapter also offers the flattened batch form,
///
///   bool BatchAxisFlat(const std::vector<Node>& context, num::Axis axis,
///                      const NodeTest& test, std::vector<Node>* out);
///
/// appending every context node's (duplicate-free) axis result directly to
/// \p out in unspecified order. Usable only for steps without predicates:
/// nothing there consumes per-slot positions, and the step's final
/// SortUnique restores document order, so the result and the node counts
/// match per-slot evaluation exactly while skipping one vector per context
/// node.
template <typename Adapter>
constexpr bool AdapterHasBatchAxisFlat() {
  return requires(const Adapter& a,
                  const std::vector<typename Adapter::Node>& context,
                  num::Axis axis, const NodeTest& test,
                  std::vector<typename Adapter::Node>* out) {
    { a.BatchAxisFlat(context, axis, test, out) } -> std::convertible_to<bool>;
  };
}

/// \brief Whether an adapter offers a whole-list predicate evaluation:
///
///   bool BatchPredicate(const Expr& pred, const std::vector<Node>& nodes,
///                       std::vector<char>* keep) const;
///
/// A true return means keep->at(i) records exactly the truth value the
/// per-node EvalExpr walk would have produced for nodes[i]; false means the
/// adapter declined (predicate shape not covered, value index disabled or
/// type not covered) and the evaluator falls back to per-node evaluation.
/// This is how the indexed substrate turns value predicates into dictionary
/// postings lookups + subtree-range intersections instead of per-candidate
/// string materialization.
template <typename Adapter>
constexpr bool AdapterHasBatchPredicate() {
  return requires(const Adapter& a, const Expr& pred,
                  const std::vector<typename Adapter::Node>& nodes,
                  std::vector<char>* keep) {
    { a.BatchPredicate(pred, nodes, keep) } -> std::convertible_to<bool>;
  };
}

/// \brief Whether an adapter can serve a node's XPath string-value as a
/// view into interned index storage:
///
///   std::optional<std::string_view> FastStringValue(const Node& n) const;
///
/// An engaged return must be byte-identical to StringValue(n); nullopt
/// means the node's type is not covered (or the value index is disabled)
/// and the caller assembles the value as before. This removes the
/// per-candidate subtree walk from value comparisons — the win that makes
/// the virtual substrate's non-pushable predicates cheap (assembled-value
/// columns are built once per vtype, then every compare is a term lookup).
template <typename Adapter>
constexpr bool AdapterHasFastStringValue() {
  return requires(const Adapter& a, const typename Adapter::Node& n) {
    {
      a.FastStringValue(n)
    } -> std::convertible_to<std::optional<std::string_view>>;
  };
}

/// \brief Attempts to interpret \p s as an XPath number. Delegates to the
/// value index's canonical parse so the dictionary's precomputed numeric
/// interpretations agree with every comparison made here.
inline bool ToNumber(std::string_view s, double* out) {
  return idx::ParseNumber(s, out);
}

/// \brief Applies \p op to an already-numeric pair.
inline bool CompareNumbers(double ln, CompareOp op, double rn) {
  switch (op) {
    case CompareOp::kEq:
      return ln == rn;
    case CompareOp::kNe:
      return ln != rn;
    case CompareOp::kLt:
      return ln < rn;
    case CompareOp::kLe:
      return ln <= rn;
    case CompareOp::kGt:
      return ln > rn;
    case CompareOp::kGe:
      return ln >= rn;
  }
  return false;
}

/// \brief Compares two values under an operator, with XPath 1.0 numeric
/// semantics: when both sides parse as numbers the comparison is numeric.
/// Otherwise `=` and `!=` compare the strings, while the relational
/// operators (`< <= > >=`) are strictly numeric — a side that is not a
/// number never satisfies them ([price > 50] must not match "n/a").
inline bool CompareValues(std::string_view lhs, CompareOp op,
                          std::string_view rhs) {
  double ln, rn;
  if (ToNumber(lhs, &ln) && ToNumber(rhs, &rn)) {
    return CompareNumbers(ln, op, rn);
  }
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      return false;
  }
  return false;
}

/// \brief Strict weak order over strings for sorting (XQuery order-by):
/// numeric when both sides parse as numbers, else lexicographic. This is
/// deliberately *not* CompareValues with kLt — relational comparison
/// returns false for non-numeric pairs, which is not an order.
inline bool OrderLess(std::string_view lhs, std::string_view rhs) {
  double ln, rn;
  if (ToNumber(lhs, &ln) && ToNumber(rhs, &rn)) return ln < rn;
  return lhs < rhs;
}

template <typename Adapter>
class PathEvaluator {
 public:
  using Node = typename Adapter::Node;

  /// \p ctx (optional) supplies the thread pool for per-context-node
  /// fan-out and receives execution statistics; it must outlive the
  /// evaluator. With a null ctx evaluation is sequential, as before.
  explicit PathEvaluator(const Adapter& adapter, ExecContext* ctx = nullptr)
      : adapter_(&adapter), ctx_(ctx) {}

  /// Evaluates an absolute path from the document node.
  Result<std::vector<Node>> Eval(const Path& path) {
    return EvalSteps(path, 0, path.steps.size(), {},
                     /*has_document_node=*/true, /*record_stats=*/true);
  }

  /// Evaluates a (relative) path from an explicit context node.
  Result<std::vector<Node>> EvalFrom(const Path& path, const Node& context) {
    return EvalSteps(path, 0, path.steps.size(), {context},
                     /*has_document_node=*/false, /*record_stats=*/true);
  }

  /// Evaluates only the first \p n_steps of the path (used by callers that
  /// handle a trailing attribute step themselves).
  Result<std::vector<Node>> EvalPrefix(const Path& path, size_t n_steps) {
    return EvalSteps(path, 0, n_steps, {}, /*has_document_node=*/true,
                     /*record_stats=*/true);
  }
  Result<std::vector<Node>> EvalPrefixFrom(const Path& path, size_t n_steps,
                                           const Node& context) {
    return EvalSteps(path, 0, n_steps, {context},
                     /*has_document_node=*/false, /*record_stats=*/true);
  }

 private:
  /// The value of a predicate expression in one context node.
  struct Value {
    enum class Kind { kBool, kNumber, kString, kNodeSet, kMissing } kind;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Node> nodes;

    bool Truthy() const {
      switch (kind) {
        case Kind::kBool:
          return b;
        case Kind::kNumber:
          return num != 0 && !std::isnan(num);
        case Kind::kString:
          return !str.empty();
        case Kind::kNodeSet:
          return !nodes.empty();
        case Kind::kMissing:
          return false;
      }
      return false;
    }
  };

  Result<std::vector<Node>> EvalSteps(const Path& path, size_t idx,
                                      size_t end, std::vector<Node> context,
                                      bool has_document_node,
                                      bool record_stats) {
    if (idx == end) {
      adapter_->SortUnique(&context);
      return context;
    }
    const Step& step = path.steps[idx];
    if (step.axis == num::Axis::kAttribute) {
      return Status::InvalidArgument(
          "attribute steps are only supported inside predicates");
    }
    bool timing = ctx_ != nullptr && ctx_->collect_stats() && record_stats;
    std::chrono::steady_clock::time_point t0;
    if (timing) t0 = std::chrono::steady_clock::now();
    std::vector<Node> next;
    bool next_has_document_node = false;
    if (has_document_node) {
      // Steps from the invisible document node.
      std::vector<Node> from_doc;
      switch (step.axis) {
        case num::Axis::kChild:
          from_doc = adapter_->DocumentRoots(step.test);
          break;
        case num::Axis::kDescendant:
          from_doc = adapter_->AllNodes(step.test);
          break;
        case num::Axis::kDescendantOrSelf:
          from_doc = adapter_->AllNodes(step.test);
          if (step.test.kind == NodeTest::Kind::kAnyNode) {
            next_has_document_node = true;
          }
          break;
        case num::Axis::kSelf:
          if (step.test.kind == NodeTest::Kind::kAnyNode) {
            next_has_document_node = true;
          }
          break;
        default:
          break;  // no ancestors/siblings of the document node
      }
      adapter_->SortUnique(&from_doc);
      if (ctx_) ctx_->CountNodes(from_doc.size());
      VPBN_ASSIGN_OR_RETURN(from_doc, ApplyPredicates(step, std::move(from_doc)));
      Append(&next, std::move(from_doc));
    }
    VPBN_RETURN_NOT_OK(EvalStepOverContext(step, context, &next));
    adapter_->SortUnique(&next);
    if (timing) {
      StepStats s;
      s.label = StepLabel(step);
      s.nodes_out = next.size();
      s.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      ctx_->RecordStep(std::move(s));
    }
    return EvalSteps(path, idx + 1, end, std::move(next),
                     next_has_document_node, record_stats);
  }

  /// Expands \p step from every node of \p context into \p next. XPath
  /// applies predicates within each context node's axis result — positions
  /// are relative to that list, so each node filters before merging, which
  /// is also what makes the fan-out embarrassingly parallel: each context
  /// node's (axis scan + predicate filter) is independent, and the caller's
  /// final SortUnique restores document order regardless of completion
  /// order. Parallel only when the adapter declares its const interface
  /// thread-safe and the context is large enough to pay for the tasks.
  Status EvalStepOverContext(const Step& step, const std::vector<Node>& context,
                             std::vector<Node>* next) {
    if constexpr (AdapterHasBatchAxisFlat<Adapter>()) {
      if (step.predicates.empty()) {
        const size_t before = next->size();
        if (adapter_->BatchAxisFlat(context, step.axis, step.test, next)) {
          if (ctx_) ctx_->CountNodes(next->size() - before);
          return Status::OK();
        }
        // Declined: fall through to the slotted / per-node paths.
      }
    }
    if constexpr (AdapterHasBatchAxis<Adapter>()) {
      std::vector<std::vector<Node>> slots;
      if (adapter_->BatchAxis(context, step.axis, step.test, &slots)) {
        return FinishBatchedStep(step, std::move(slots), next);
      }
    }
    common::ThreadPool* pool = ctx_ != nullptr ? ctx_->pool() : nullptr;
    if (AdapterParallelSafe<Adapter>() && pool != nullptr &&
        pool->num_threads() > 1 && context.size() >= kParallelFanoutCutoff &&
        !common::ThreadPool::InWorker()) {
      std::vector<std::vector<Node>> slots(context.size());
      std::mutex error_mu;
      Status error = Status::OK();
      common::ParallelFor(
          pool, context.size(), /*grain=*/4, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
              std::vector<Node> axis_result =
                  adapter_->Axis(context[i], step.axis, step.test);
              adapter_->SortUnique(&axis_result);
              ctx_->CountNodes(axis_result.size());
              auto filtered = ApplyPredicates(step, std::move(axis_result));
              if (!filtered.ok()) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (error.ok()) error = filtered.status();
                return;
              }
              slots[i] = std::move(filtered).ValueUnsafe();
            }
          });
      if (!error.ok()) return error;
      for (std::vector<Node>& s : slots) Append(next, std::move(s));
      return Status::OK();
    }
    for (const Node& n : context) {
      std::vector<Node> axis_result = adapter_->Axis(n, step.axis, step.test);
      adapter_->SortUnique(&axis_result);
      if (ctx_) ctx_->CountNodes(axis_result.size());
      VPBN_ASSIGN_OR_RETURN(axis_result,
                            ApplyPredicates(step, std::move(axis_result)));
      Append(next, std::move(axis_result));
    }
    return Status::OK();
  }

  /// Second half of a batched step: per-slot ordering, accounting and
  /// predicate filtering, then append in context order — the same per-node
  /// pipeline the fallback runs after Axis, so batched and per-node
  /// evaluation are byte-identical. Predicates still see one context
  /// node's list at a time (positional semantics). Slots fan out on the
  /// pool exactly like per-node evaluation does.
  Status FinishBatchedStep(const Step& step,
                           std::vector<std::vector<Node>> slots,
                           std::vector<Node>* next) {
    common::ThreadPool* pool = ctx_ != nullptr ? ctx_->pool() : nullptr;
    if (AdapterParallelSafe<Adapter>() && pool != nullptr &&
        pool->num_threads() > 1 && slots.size() >= kParallelFanoutCutoff &&
        !common::ThreadPool::InWorker()) {
      std::mutex error_mu;
      Status error = Status::OK();
      common::ParallelFor(
          pool, slots.size(), /*grain=*/4, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
              adapter_->SortUnique(&slots[i]);
              ctx_->CountNodes(slots[i].size());
              auto filtered = ApplyPredicates(step, std::move(slots[i]));
              if (!filtered.ok()) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (error.ok()) error = filtered.status();
                return;
              }
              slots[i] = std::move(filtered).ValueUnsafe();
            }
          });
      if (!error.ok()) return error;
      for (std::vector<Node>& s : slots) Append(next, std::move(s));
      return Status::OK();
    }
    for (std::vector<Node>& slot : slots) {
      adapter_->SortUnique(&slot);
      if (ctx_) ctx_->CountNodes(slot.size());
      VPBN_ASSIGN_OR_RETURN(slot, ApplyPredicates(step, std::move(slot)));
      Append(next, std::move(slot));
    }
    return Status::OK();
  }

  static std::string StepLabel(const Step& step) {
    std::string label = num::AxisToString(step.axis);
    label += "::";
    switch (step.test.kind) {
      case NodeTest::Kind::kName:
        label += step.test.name;
        break;
      case NodeTest::Kind::kAnyElement:
        label += "*";
        break;
      case NodeTest::Kind::kText:
        label += "text()";
        break;
      case NodeTest::Kind::kAnyNode:
        label += "node()";
        break;
    }
    if (!step.predicates.empty()) {
      label += "[" + std::to_string(step.predicates.size()) + " pred]";
    }
    return label;
  }

  static void Append(std::vector<Node>* out, std::vector<Node> in) {
    out->insert(out->end(), std::make_move_iterator(in.begin()),
                std::make_move_iterator(in.end()));
  }

  /// Applies a step's predicates to one context node's axis result. A bare
  /// number predicate is positional ([2] keeps the second node of the
  /// list), matching XPath; the paper's §5.1 notes such ordinals are not
  /// stored in vPBN and must be "computed dynamically" — which this is.
  Result<std::vector<Node>> ApplyPredicates(const Step& step,
                                            std::vector<Node> nodes) {
    for (const auto& pred : step.predicates) {
      std::vector<Node> kept;
      if (pred->kind == Expr::Kind::kNumber) {
        // XPath: [n] keeps the node whose position equals n exactly. A
        // non-integral number ([2.5]) equals no position and selects
        // nothing — truncating would wrongly select node 2.
        auto position = static_cast<int64_t>(pred->num);
        if (static_cast<double>(position) == pred->num && position >= 1 &&
            static_cast<size_t>(position) <= nodes.size()) {
          kept.push_back(nodes[position - 1]);
        }
      } else {
        bool batched = false;
        if constexpr (AdapterHasBatchPredicate<Adapter>()) {
          std::vector<char> keep;
          if (adapter_->BatchPredicate(*pred, nodes, &keep)) {
            for (size_t i = 0; i < nodes.size(); ++i) {
              if (keep[i]) kept.push_back(nodes[i]);
            }
            batched = true;
          }
        }
        if (!batched) {
          for (const Node& n : nodes) {
            VPBN_ASSIGN_OR_RETURN(Value v, EvalExpr(*pred, n));
            if (v.Truthy()) kept.push_back(n);
          }
        }
      }
      nodes = std::move(kept);
    }
    return nodes;
  }

  /// Relative path evaluation inside a predicate: never records step
  /// timings (only the top-level path's steps belong in ExecStats).
  Result<std::vector<Node>> EvalRelative(const Path& path,
                                         const Node& context) {
    return EvalSteps(path, 0, path.steps.size(), {context},
                     /*has_document_node=*/false, /*record_stats=*/false);
  }

  Result<Value> EvalExpr(const Expr& expr, const Node& context) {
    Value v;
    switch (expr.kind) {
      case Expr::Kind::kPath: {
        VPBN_ASSIGN_OR_RETURN(std::vector<Node> nodes,
                              EvalRelative(expr.path, context));
        v.kind = Value::Kind::kNodeSet;
        v.nodes = std::move(nodes);
        return v;
      }
      case Expr::Kind::kString:
        v.kind = Value::Kind::kString;
        v.str = expr.str;
        return v;
      case Expr::Kind::kNumber:
        v.kind = Value::Kind::kNumber;
        v.num = expr.num;
        return v;
      case Expr::Kind::kAttribute: {
        auto attr = adapter_->Attribute(context, expr.str);
        if (attr.ok()) {
          v.kind = Value::Kind::kString;
          v.str = std::move(attr).ValueUnsafe();
        } else {
          v.kind = Value::Kind::kMissing;
        }
        return v;
      }
      case Expr::Kind::kCount: {
        VPBN_ASSIGN_OR_RETURN(std::vector<Node> nodes,
                              EvalRelative(expr.path, context));
        v.kind = Value::Kind::kNumber;
        v.num = static_cast<double>(nodes.size());
        return v;
      }
      case Expr::Kind::kContains:
      case Expr::Kind::kStartsWith: {
        VPBN_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, context));
        VPBN_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, context));
        std::string hay = ToStringValue(lhs);
        std::string needle = ToStringValue(rhs);
        v.kind = Value::Kind::kBool;
        v.b = expr.kind == Expr::Kind::kContains
                  ? hay.find(needle) != std::string::npos
                  : hay.compare(0, needle.size(), needle) == 0;
        return v;
      }
      case Expr::Kind::kCompare: {
        VPBN_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, context));
        VPBN_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, context));
        v.kind = Value::Kind::kBool;
        v.b = Compare(lhs, expr.op, rhs);
        return v;
      }
      case Expr::Kind::kAnd: {
        VPBN_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, context));
        if (!lhs.Truthy()) {
          v.kind = Value::Kind::kBool;
          v.b = false;
          return v;
        }
        VPBN_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, context));
        v.kind = Value::Kind::kBool;
        v.b = rhs.Truthy();
        return v;
      }
      case Expr::Kind::kOr: {
        VPBN_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, context));
        if (lhs.Truthy()) {
          v.kind = Value::Kind::kBool;
          v.b = true;
          return v;
        }
        VPBN_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, context));
        v.kind = Value::Kind::kBool;
        v.b = rhs.Truthy();
        return v;
      }
      case Expr::Kind::kNot: {
        VPBN_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, context));
        v.kind = Value::Kind::kBool;
        v.b = !lhs.Truthy();
        return v;
      }
    }
    return Status::Internal("unreachable expr kind");
  }

  /// A node's XPath string-value, served from the value index's interned
  /// term where the adapter can (byte-identical by contract), assembled
  /// otherwise.
  std::string NodeStringValue(const Node& n) {
    if constexpr (AdapterHasFastStringValue<Adapter>()) {
      if (std::optional<std::string_view> v = adapter_->FastStringValue(n)) {
        return std::string(*v);
      }
    }
    return adapter_->StringValue(n);
  }

  /// XPath string() coercion: first node's string value for node sets.
  std::string ToStringValue(const Value& v) {
    switch (v.kind) {
      case Value::Kind::kNodeSet:
        return v.nodes.empty() ? std::string()
                               : NodeStringValue(v.nodes.front());
      case Value::Kind::kString:
        return v.str;
      case Value::Kind::kNumber:
        if (v.num == static_cast<int64_t>(v.num)) {
          return std::to_string(static_cast<int64_t>(v.num));
        }
        return std::to_string(v.num);
      case Value::Kind::kBool:
        return v.b ? "true" : "false";
      case Value::Kind::kMissing:
        return "";
    }
    return "";
  }

  /// XPath comparison: node sets compare existentially over string values.
  bool Compare(const Value& lhs, CompareOp op, const Value& rhs) {
    if (lhs.kind == Value::Kind::kMissing ||
        rhs.kind == Value::Kind::kMissing) {
      return false;
    }
    if (lhs.kind == Value::Kind::kNodeSet) {
      for (const Node& n : lhs.nodes) {
        Value lv;
        lv.kind = Value::Kind::kString;
        lv.str = NodeStringValue(n);
        if (Compare(lv, op, rhs)) return true;
      }
      return false;
    }
    if (rhs.kind == Value::Kind::kNodeSet) {
      for (const Node& n : rhs.nodes) {
        Value rv;
        rv.kind = Value::Kind::kString;
        rv.str = NodeStringValue(n);
        if (Compare(lhs, op, rv)) return true;
      }
      return false;
    }
    auto to_string = [](const Value& v) {
      if (v.kind == Value::Kind::kNumber) {
        // Render integers without a trailing ".0" for string comparisons.
        if (v.num == static_cast<int64_t>(v.num)) {
          return std::to_string(static_cast<int64_t>(v.num));
        }
        return std::to_string(v.num);
      }
      if (v.kind == Value::Kind::kBool) {
        return std::string(v.b ? "true" : "false");
      }
      return v.str;
    };
    return CompareValues(to_string(lhs), op, to_string(rhs));
  }

  const Adapter* adapter_;
  ExecContext* ctx_;
};

}  // namespace vpbn::query
