#include "query/cost_model.h"

#include <algorithm>
#include <cmath>

namespace vpbn::query {

double CostModel::Log2(size_t n) {
  return std::log2(static_cast<double>(n < 2 ? 2 : n));
}

bool ZoneBlockCanMatch(const idx::ColumnStats& s, size_t b, CompareOp op,
                       const ValueLiteral& lit, uint32_t eq_term) {
  if (op == CompareOp::kNe) return true;
  if (op == CompareOp::kEq && !lit.numeric) {
    return eq_term != idx::kNoTerm && s.zone_term_min[b] <= eq_term &&
           eq_term <= s.zone_term_max[b];
  }
  if (!lit.numeric || std::isnan(lit.num)) return false;
  const double lo = s.zone_min[b];
  const double hi = s.zone_max[b];
  if (lo > hi) return false;  // no numeric row in the block
  switch (op) {
    case CompareOp::kEq:
      return lo <= lit.num && lit.num <= hi;
    case CompareOp::kLt:
      return lo < lit.num;
    case CompareOp::kLe:
      return lo <= lit.num;
    case CompareOp::kGt:
      return hi > lit.num;
    default:  // kGe
      return hi >= lit.num;
  }
}

double CostModel::ZoneSurvivorFraction(const idx::TypeColumn& col,
                                       CompareOp op,
                                       const ValueLiteral& lit) {
  const idx::ColumnStats& s = col.stats;
  const size_t blocks = s.zone_min.size();
  if (blocks == 0) return 0;
  if (op == CompareOp::kNe) return 1.0;  // != never skips
  const uint32_t eq_term = op == CompareOp::kEq && !lit.numeric
                               ? col.dict->Find(lit.text)
                               : idx::kNoTerm;
  size_t survivors = 0;
  for (size_t b = 0; b < blocks; ++b) {
    if (ZoneBlockCanMatch(s, b, op, lit, eq_term)) ++survivors;
  }
  return static_cast<double>(survivors) / static_cast<double>(blocks);
}

PredPlan CostModel::ChoosePredStrategy(
    dg::TypeId context_type, size_t n_context,
    const std::vector<dg::TypeId>& terminal_types, CompareOp op,
    const ValueLiteral& lit) const {
  PredPlan plan;
  const double n_ctx = static_cast<double>(n_context);
  const double ctx_count = std::max(1.0, card_.TypeCount(context_type));

  double witness = w_.setup;
  double rows_probe = w_.setup;
  double scan_probe = w_.setup;
  double total_rows = 0;

  for (dg::TypeId tt : terminal_types) {
    const double n_tt = card_.TypeCount(tt);
    if (n_tt == 0) continue;
    const idx::TypeColumn* col = stored_->value_index().Column(tt);
    const double m = card_.EstimateMatchingRows(tt, op, lit);
    const double sel = std::clamp(m / n_tt, 0.0, 1.0);
    total_rows += m;

    // Materializing the matching-rows list (CollectMatchingRows), charged
    // to both strategies that consume it. Memoized per predicate, so this
    // is a once-per-query cost, not per context group — but the strategies
    // compete within one group, so charging it keeps the comparison fair
    // for the common single-group case.
    double mat;
    switch (op) {
      case CompareOp::kEq:
        mat = 2 * w_.probe * Log2(static_cast<size_t>(n_tt)) + m * w_.row;
        break;
      case CompareOp::kNe:
        mat = n_tt * w_.row;  // full term-column scan
        break;
      default:
        // Slice assign plus the explicit row-order sort.
        mat = 2 * w_.probe * Log2(static_cast<size_t>(n_tt)) + m * w_.row +
              m * Log2(static_cast<size_t>(m)) * w_.row;
        break;
    }
    witness += mat + m * w_.materialize;  // packed witness appends
    rows_probe += mat;

    // Per-context costs. Both probe strategies pay TypeRangeWithin (two
    // binary searches over the packed type list) per context instance.
    const double range_cost = 2 * w_.probe * Log2(static_cast<size_t>(n_tt));
    rows_probe +=
        n_ctx * (range_cost + w_.probe * Log2(static_cast<size_t>(m)));

    // Scan probe: term tests over the context's row range, skipping blocks
    // the zone maps rule out, stopping at the first hit.
    const double avg_range = n_tt / ctx_count;
    const double zsf =
        col != nullptr ? ZoneSurvivorFraction(*col, op, lit) : 1.0;
    double expected_scan = avg_range * zsf;
    if (sel > 0) expected_scan = std::min(expected_scan, 1.0 / sel);
    const double zone_checks =
        avg_range / static_cast<double>(idx::ColumnStats::kZoneBlockRows);
    scan_probe += n_ctx * (range_cost + zone_checks * w_.row +
                           expected_scan * w_.row);
  }

  // Witness-global costs: SortUnique over all witnesses, then the
  // semi-join merge against the context list.
  witness += total_rows * Log2(static_cast<size_t>(total_rows)) * w_.row +
             (n_ctx + total_rows) * w_.row;

  plan.est_rows = total_rows;
  plan.strategy = PredStrategy::kWitness;
  double best = witness;
  if (rows_probe < best) {
    best = rows_probe;
    plan.strategy = PredStrategy::kRowsProbe;
  }
  if (scan_probe < best) {
    plan.strategy = PredStrategy::kScanProbe;
  }
  return plan;
}

bool CostModel::BulkBeatsIndexed(const Path& path) const {
  std::vector<CardinalityEstimator::StepEstimate> steps =
      card_.EstimatePath(path);
  double bulk = w_.setup;
  double indexed = w_.setup;
  double prev_rows = 1;  // the document node
  for (const CardinalityEstimator::StepEstimate& est : steps) {
    // Bulk streams every candidate type's full instance list through the
    // packed merge joins against the per-type context lists, then appends
    // the survivors packed.
    bulk += (est.candidate_rows + prev_rows + est.rows) * w_.row;
    // Indexed runs per context node: per candidate type, a packed subtree
    // range scan (two binary searches), then materializes each surviving
    // node as a heap Pbn and sort-uniques the step output.
    const double types = static_cast<double>(
        est.candidate_types == 0 ? 1 : est.candidate_types);
    const double avg_rows =
        est.candidate_rows / (types > 0 ? types : 1.0);
    indexed += prev_rows * types * 2 * w_.probe *
                   Log2(static_cast<size_t>(avg_rows)) +
               est.rows * w_.materialize +
               est.rows * Log2(static_cast<size_t>(est.rows)) * w_.row;
    // Indexed evaluates each step predicate once per node-test survivor
    // (a value-index probe or subtree materialization per node), where
    // bulk answers the same predicate set-at-a-time through the semi-join
    // already charged by the streaming term above.
    indexed += est.candidate_rows * w_.probe *
               static_cast<double>(est.predicates);
    prev_rows = std::max(1.0, est.rows);
  }
  return bulk <= indexed;
}

}  // namespace vpbn::query
