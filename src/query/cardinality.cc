#include "query/cardinality.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace vpbn::query {

double CardinalityEstimator::ColumnSelectivity(const idx::TypeColumn& col,
                                               CompareOp op,
                                               const ValueLiteral& lit) {
  const idx::ColumnStats& s = col.stats;
  if (s.row_count == 0) return 0;
  const double n = static_cast<double>(s.row_count);
  switch (op) {
    case CompareOp::kEq:
      if (lit.numeric) {
        // The numeric-rows slice covers every match (a string that equals a
        // numeric term byte-for-byte parses too — see CollectMatchingRows).
        return std::min(1.0, s.EstimateEqRows(lit.num) / n);
      } else {
        // String equality: the postings size is exact and O(1).
        uint32_t term = col.dict->Find(lit.text);
        if (term == idx::kNoTerm) return 0;
        auto it = col.postings.find(term);
        if (it == col.postings.end()) return 0;
        return std::min(1.0, static_cast<double>(it->second.size()) / n);
      }
    case CompareOp::kNe:
      return 1.0 - ColumnSelectivity(col, CompareOp::kEq, lit);
    default:
      break;
  }
  // Relational: numeric rows only; a non-numeric literal matches nothing.
  if (!lit.numeric || std::isnan(lit.num)) return 0;
  const double numeric = static_cast<double>(s.numeric_count);
  double rows = 0;
  switch (op) {
    case CompareOp::kLt:
      rows = s.EstimateRowsBelow(lit.num, /*inclusive=*/false);
      break;
    case CompareOp::kLe:
      rows = s.EstimateRowsBelow(lit.num, /*inclusive=*/true);
      break;
    case CompareOp::kGt:
      rows = numeric - s.EstimateRowsBelow(lit.num, /*inclusive=*/true);
      break;
    default:  // kGe
      rows = numeric - s.EstimateRowsBelow(lit.num, /*inclusive=*/false);
      break;
  }
  return std::clamp(rows / n, 0.0, 1.0);
}

double CardinalityEstimator::EstimateMatchingRows(dg::TypeId tt, CompareOp op,
                                                  const ValueLiteral& lit)
    const {
  const double count = TypeCount(tt);
  const idx::TypeColumn* col = stored_->value_index().Column(tt);
  if (col == nullptr) return count * kDefaultSelectivity;
  return count * ColumnSelectivity(*col, op, lit);
}

double CardinalityEstimator::PredSurvival(dg::TypeId context,
                                          const Expr& pred) const {
  const dg::DataGuide& g = stored_->dataguide();
  const double n_ctx = std::max(1.0, TypeCount(context));
  switch (pred.kind) {
    case Expr::Kind::kAnd:
      return PredSurvival(context, *pred.lhs) *
             PredSurvival(context, *pred.rhs);
    case Expr::Kind::kOr: {
      double a = PredSurvival(context, *pred.lhs);
      double b = PredSurvival(context, *pred.rhs);
      return a + b - a * b;
    }
    case Expr::Kind::kNot:
      return 1.0 - PredSurvival(context, *pred.lhs);
    case Expr::Kind::kPath: {
      // Existence chain: a context instance survives iff its subtree holds
      // at least one terminal instance. With avg = terminals per context,
      // min(1, avg) is the (independence-free) upper-bound estimate.
      double terminals = 0;
      for (dg::TypeId tt : ResolveChainTypes(g, context, pred.path)) {
        terminals += TypeCount(tt);
      }
      return std::min(1.0, terminals / n_ctx);
    }
    default:
      break;
  }
  ValuePred vp;
  if (!RecognizeValuePred(pred, &vp)) return kDefaultSelectivity;
  switch (vp.kind) {
    case ValuePred::Kind::kPathCompare: {
      // Survive iff any terminal instance in the subtree matches:
      // 1 - prod_tt (1 - sel_tt)^(count(tt)/count(t)).
      double fail_all = 1.0;
      for (dg::TypeId tt : ResolveChainTypes(g, context, *vp.path)) {
        const idx::TypeColumn* col = stored_->value_index().Column(tt);
        double sel = col != nullptr
                         ? ColumnSelectivity(*col, vp.op, vp.lit)
                         : kDefaultSelectivity;
        double avg = TypeCount(tt) / n_ctx;
        fail_all *= std::pow(std::clamp(1.0 - sel, 0.0, 1.0), avg);
      }
      return std::clamp(1.0 - fail_all, 0.0, 1.0);
    }
    case ValuePred::Kind::kAttrCompare:
      // Attribute columns carry no statistics; shape-based defaults.
      switch (vp.op) {
        case CompareOp::kEq:
          return 0.1;
        case CompareOp::kNe:
          return 0.9;
        default:
          return kDefaultSelectivity;
      }
    case ValuePred::Kind::kPathString:
    case ValuePred::Kind::kAttrString:
      return kDefaultSelectivity;
  }
  return kDefaultSelectivity;
}

std::vector<CardinalityEstimator::StepEstimate>
CardinalityEstimator::EstimatePath(const Path& path) const {
  const dg::DataGuide& g = stored_->dataguide();
  std::vector<StepEstimate> out;
  out.reserve(path.steps.size());
  // Estimated surviving instances per frontier type; starts at the
  // document node.
  std::map<dg::TypeId, double> frontier;
  bool doc_node = true;

  auto fraction_of = [&](dg::TypeId t, double est) {
    double count = TypeCount(t);
    return count > 0 ? std::min(1.0, est / count) : 0.0;
  };

  for (const Step& step : path.steps) {
    StepEstimate est;
    if (step.axis == num::Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode &&
        step.predicates.empty()) {
      // The '//' anonymous step: extend every frontier type with its
      // descendants, scaled by the surviving fraction of the context type
      // (mirrors the bulk evaluator's type-frontier fold).
      std::map<dg::TypeId, double> next = frontier;
      if (doc_node) {
        next.clear();
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          next[t] = TypeCount(t);
        }
        doc_node = false;
      } else {
        for (const auto& [t, c] : frontier) {
          double frac = fraction_of(t, c);
          for (dg::TypeId dt : g.DescendantTypes(t)) {
            double add = TypeCount(dt) * frac;
            double& slot = next[dt];
            slot = std::min(TypeCount(dt), slot + add);
          }
        }
      }
      frontier = std::move(next);
      for (const auto& [t, c] : frontier) {
        est.frontier.emplace_back(t, c);
        est.rows += c;
      }
      out.push_back(std::move(est));
      continue;
    }

    std::map<dg::TypeId, double> next;
    auto add = [&](dg::TypeId nt, double c) {
      est.candidate_rows += TypeCount(nt);
      ++est.candidate_types;
      double& slot = next[nt];
      slot = std::min(TypeCount(nt), slot + c);
    };
    if (doc_node) {
      if (step.axis == num::Axis::kChild) {
        for (dg::TypeId rt : g.roots()) {
          if (step.test.Matches(!g.IsTextType(rt), g.label(rt))) {
            add(rt, TypeCount(rt));
          }
        }
      } else {
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          if (step.test.Matches(!g.IsTextType(t), g.label(t))) {
            add(t, TypeCount(t));
          }
        }
      }
      doc_node = false;
    } else {
      for (const auto& [t, c] : frontier) {
        double frac = fraction_of(t, c);
        std::vector<dg::TypeId> candidates = step.axis == num::Axis::kChild
                                                 ? g.children(t)
                                                 : g.DescendantTypes(t);
        for (dg::TypeId nt : candidates) {
          if (!step.test.Matches(!g.IsTextType(nt), g.label(nt))) continue;
          add(nt, TypeCount(nt) * frac);
        }
      }
    }
    est.predicates = step.predicates.size();
    for (const auto& pred : step.predicates) {
      for (auto& [nt, c] : next) {
        c *= PredSurvival(nt, *pred);
      }
    }
    frontier = std::move(next);
    for (const auto& [t, c] : frontier) {
      est.frontier.emplace_back(t, c);
      est.rows += c;
    }
    out.push_back(std::move(est));
  }
  return out;
}

double CardinalityEstimator::EstimateResultRows(const Path& path) const {
  std::vector<StepEstimate> steps = EstimatePath(path);
  return steps.empty() ? 0 : steps.back().rows;
}

}  // namespace vpbn::query
