#include "query/eval_virtual.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/parallel.h"
#include "pbn/packed.h"
#include "pbn/structural_join.h"
#include "query/cost_model.h"

namespace vpbn::query {

using virt::VirtualNode;
using virt::Vpbn;

namespace {

/// Cache key for ExecContext::CachedVTypes: the test kind byte plus the
/// name (only kName tests have one, the others collapse per kind).
std::string TestCacheKey(const NodeTest& test) {
  std::string key(1, static_cast<char>('0' + static_cast<int>(test.kind)));
  key += test.name;
  return key;
}

}  // namespace

/// One vtype's slice of the context: which context positions it occupies
/// and their PBNs as a flat column. Within one vtype the context
/// subsequence is already in document order, and equal-typed instances
/// have equal-length numbers, so the column is lexicographically sorted —
/// exactly what MergeCompatiblePairs requires of its inputs.
struct VirtualAdapter::ContextGroup {
  vdg::VTypeId vtype = vdg::kNullVType;
  std::vector<uint32_t> slots;  ///< context indexes, ascending
  num::DecodedPbnColumn col;    ///< context numbers, same order
};

/// One unit of batched axis work: merge the group's context column against
/// one result vtype's instance column (target != kNullVType), or run the
/// exact per-node chain expansion for every type the merges could not
/// cover (target == kNullVType). Tasks are independent — they are the
/// parallel grain — and their hit lists are appended in task order, so
/// results are identical for any thread count.
struct VirtualAdapter::JoinTask {
  const ContextGroup* group = nullptr;
  vdg::VTypeId target = vdg::kNullVType;
  bool reach_filter = false;  ///< drop candidates the bitmap marks orphaned
};

bool VirtualAdapter::VTypeMatches(vdg::VTypeId t, const NodeTest& test) const {
  const vdg::VDataGuide& vg = vdoc_->vguide();
  return test.Matches(!vg.IsTextVType(t), vg.label(t));
}

std::shared_ptr<const std::vector<vdg::VTypeId>> VirtualAdapter::MatchingVTypes(
    const NodeTest& test) const {
  auto build = [this, &test] {
    const vdg::VDataGuide& vg = vdoc_->vguide();
    std::vector<vdg::VTypeId> out;
    for (vdg::VTypeId t = 0; t < vg.num_vtypes(); ++t) {
      if (VTypeMatches(t, test)) out.push_back(t);
    }
    return out;
  };
  if (ctx_ != nullptr) return ctx_->CachedVTypes(TestCacheKey(test), build);
  return std::make_shared<const std::vector<vdg::VTypeId>>(build());
}

std::vector<VirtualNode> VirtualAdapter::DocumentRoots(
    const NodeTest& test) const {
  const vdg::VDataGuide& vg = vdoc_->vguide();
  std::vector<VirtualNode> out;
  for (vdg::VTypeId rt : vg.roots()) {
    if (!VTypeMatches(rt, test)) continue;
    const std::vector<xml::NodeId>& ids =
        vdoc_->stored().NodeIdsOfType(vg.original(rt));
    out.reserve(out.size() + ids.size());
    for (xml::NodeId id : ids) out.push_back(VirtualNode{id, rt});
  }
  return out;
}

std::vector<VirtualNode> VirtualAdapter::AllNodes(const NodeTest& test) const {
  const vdg::VDataGuide& vg = vdoc_->vguide();
  std::vector<VirtualNode> out;
  const auto types = MatchingVTypes(test);  // keep the cache entry alive
  for (vdg::VTypeId t : *types) {
    const std::vector<xml::NodeId>& ids =
        vdoc_->stored().NodeIdsOfType(vg.original(t));
    // Orphans (instances with no virtual-parent chain) are not part of
    // the virtual document; the memoized bitmap answers per index.
    const std::vector<uint8_t>* bm = vdoc_->ReachableBitmap(t);
    out.reserve(out.size() + ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (bm == nullptr || (*bm)[i] != 0) {
        out.push_back(VirtualNode{ids[i], t});
      }
    }
  }
  return out;
}

bool VirtualAdapter::ChainSafe(vdg::VTypeId top, vdg::VTypeId bottom) const {
  // The pure-number descendant join is exact when every intermediate
  // virtual type strictly between `top` and `bottom` has an original type
  // that is an ancestor-or-self of `bottom`'s original: the intermediate
  // instance is then a prefix of the candidate's number, so it exists and
  // is compatible with both endpoints. Otherwise a predicate hit could
  // rely on an intermediate instance that does not exist, and the
  // evaluator must expand actual chains instead.
  const vdg::VDataGuide& vg = vdoc_->vguide();
  const dg::DataGuide& orig = vg.original_guide();
  for (vdg::VTypeId i = vg.parent(bottom); i != top; i = vg.parent(i)) {
    if (i == vdg::kNullVType) return false;  // bottom not under top
    if (!orig.IsAncestorOrSelfType(vg.original(i), vg.original(bottom))) {
      return false;
    }
  }
  return true;
}

void VirtualAdapter::DescendantWalkUnsafe(const VirtualNode& n,
                                          const NodeTest& test,
                                          std::vector<VirtualNode>* out) const {
  // Exact expansion through actual virtual children; safe types are the
  // merge joins' (or Axis's own joins') responsibility and are skipped.
  std::vector<VirtualNode> frontier = vdoc_->Children(n);
  while (!frontier.empty()) {
    std::vector<VirtualNode> next;
    for (const VirtualNode& c : frontier) {
      if (VTypeMatches(c.vtype, test) && !ChainSafe(n.vtype, c.vtype)) {
        out->push_back(c);
      }
      std::vector<VirtualNode> down = vdoc_->Children(c);
      next.insert(next.end(), down.begin(), down.end());
    }
    vdoc_->SortVirtualOrder(&next);
    frontier = std::move(next);
  }
}

void VirtualAdapter::AncestorWalkUnsafe(const VirtualNode& n,
                                        const NodeTest& test,
                                        std::vector<VirtualNode>* out) const {
  // Mirror of VirtualDocument::AxisNodes(kAncestor): climb actual
  // (reachable) parent chains, but emit only types the merges do not
  // cover. ChainSafe types are excluded even when their merge was skipped
  // for an impassable link — the climb cannot reach them anyway.
  std::vector<VirtualNode> frontier;
  for (const VirtualNode& p : vdoc_->Parents(n)) {
    if (vdoc_->IsReachable(p)) frontier.push_back(p);
  }
  while (!frontier.empty()) {
    std::vector<VirtualNode> next;
    for (const VirtualNode& p : frontier) {
      if (VTypeMatches(p.vtype, test) && !ChainSafe(p.vtype, n.vtype)) {
        out->push_back(p);
      }
      for (const VirtualNode& gp : vdoc_->Parents(p)) {
        if (vdoc_->IsReachable(gp)) next.push_back(gp);
      }
    }
    vdoc_->SortVirtualOrder(&next);
    frontier = std::move(next);
  }
}

void VirtualAdapter::RunJoinTask(
    const JoinTask& task, const std::vector<VirtualNode>& context,
    num::Axis axis, const NodeTest& test,
    std::vector<std::pair<uint32_t, VirtualNode>>* hits,
    num::JoinCounters* counters) const {
  const ContextGroup& g = *task.group;
  if (task.target == vdg::kNullVType) {
    // Fallback: exact chain expansion per context node of the group.
    const bool desc = axis == num::Axis::kDescendant ||
                      axis == num::Axis::kDescendantOrSelf;
    std::vector<VirtualNode> out;
    for (uint32_t slot : g.slots) {
      out.clear();
      if (desc) {
        DescendantWalkUnsafe(context[slot], test, &out);
      } else {
        AncestorWalkUnsafe(context[slot], test, &out);
      }
      // A node reachable through two placement chains is walked twice;
      // dedup here so every task's hit list — and with it each slot — is
      // duplicate-free (the BatchAxis contract).
      vdoc_->SortVirtualOrder(&out);
      for (const VirtualNode& n : out) hits->emplace_back(slot, n);
    }
    return;
  }
  const vdg::VDataGuide& vg = vdoc_->vguide();
  const dg::DataGuide& orig = vg.original_guide();
  const dg::TypeId ot = vg.original(task.target);
  bool built = false;
  const num::DecodedPbnColumn& cand = vdoc_->DecodedNodesOfType(ot, &built);
  if (built) counters->decoded_batches += 1;
  const std::vector<xml::NodeId>& ids = vdoc_->stored().NodeIdsOfType(ot);
  const virt::VPairMergePlan plan = vdoc_->space().PlanPairMerge(
      g.vtype, task.target, orig.length(vg.original(g.vtype)),
      orig.length(ot));
  const std::vector<uint8_t>* bm =
      task.reach_filter ? vdoc_->ReachableBitmap(task.target) : nullptr;
  virt::MergeCompatiblePairs(
      plan, g.col, cand, counters, [&](size_t xi, size_t yi) {
        if (bm != nullptr && (*bm)[yi] == 0) return;
        hits->emplace_back(g.slots[xi], VirtualNode{ids[yi], task.target});
      });
}

bool VirtualAdapter::BatchAxis(const std::vector<VirtualNode>& context,
                               num::Axis axis, const NodeTest& test,
                               std::vector<std::vector<VirtualNode>>* slots)
    const {
  return BatchAxisImpl(context, axis, test, slots, nullptr);
}

bool VirtualAdapter::BatchAxisFlat(const std::vector<VirtualNode>& context,
                                   num::Axis axis, const NodeTest& test,
                                   std::vector<VirtualNode>* out) const {
  return BatchAxisImpl(context, axis, test, nullptr, out);
}

bool VirtualAdapter::BatchAxisImpl(const std::vector<VirtualNode>& context,
                                   num::Axis axis, const NodeTest& test,
                                   std::vector<std::vector<VirtualNode>>* slots,
                                   std::vector<VirtualNode>* flat) const {
  using num::Axis;
  if (context.empty()) return false;
  if (ctx_ != nullptr && !ctx_->virtual_join()) return false;
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  if (!desc && !anc && axis != Axis::kChild && axis != Axis::kParent) {
    return false;
  }
  // The descendant family already scans whole candidate lists per context
  // node, so merging wins at any context size. Child / parent / ancestor
  // trade sublinear per-node range scans for full-list merges — only worth
  // it once the context is large enough to amortize a pass. With the cost
  // model on, that trade is costed against the actual candidate volume
  // (CostModel::MergeBeatsWalk); an explicitly set vjoin_min_context (tests
  // pin it to 1 to force merging on tiny documents) still wins.
  const size_t min_context = ctx_ != nullptr
                                 ? ctx_->vjoin_min_context()
                                 : ExecContext::kDefaultVJoinMinContext;
  if (!desc) {
    if (ctx_ != nullptr && ctx_->use_cost_model() &&
        min_context == ExecContext::kDefaultVJoinMinContext) {
      const vdg::VDataGuide& cvg = vdoc_->vguide();
      const auto types = MatchingVTypes(test);  // keep the cache entry alive
      size_t candidates = 0;
      for (vdg::VTypeId t : *types) {
        candidates += vdoc_->stored().NodeIdsOfType(cvg.original(t)).size();
      }
      CostModel cm(vdoc_->stored());
      if (!cm.MergeBeatsWalk(context.size(), candidates)) return false;
    } else if (context.size() < min_context) {
      return false;
    }
  }

  const vdg::VDataGuide& vg = vdoc_->vguide();
  const dg::DataGuide& orig = vg.original_guide();

  if (slots != nullptr) slots->assign(context.size(), {});
  if (axis == Axis::kDescendantOrSelf || axis == Axis::kAncestorOrSelf) {
    for (size_t i = 0; i < context.size(); ++i) {
      if (VTypeMatches(context[i].vtype, test)) {
        if (slots != nullptr) {
          (*slots)[i].push_back(context[i]);
        } else {
          flat->push_back(context[i]);
        }
      }
    }
  }

  // Partition the context by vtype, preserving order (see ContextGroup).
  std::vector<std::unique_ptr<ContextGroup>> groups;
  {
    std::unordered_map<uint32_t, ContextGroup*> index;
    for (size_t i = 0; i < context.size(); ++i) {
      auto [it, inserted] = index.emplace(context[i].vtype, nullptr);
      if (inserted) {
        groups.push_back(std::make_unique<ContextGroup>());
        groups.back()->vtype = context[i].vtype;
        it->second = groups.back().get();
      }
      ContextGroup& g = *it->second;
      g.slots.push_back(static_cast<uint32_t>(i));
      const num::Pbn& p = vdoc_->stored().numbering().OfNode(context[i].node);
      g.col.Append(p.components().data(), static_cast<uint32_t>(p.length()));
    }
  }

  // One task per (context vtype, result vtype) pair the type forest can
  // produce, in deterministic enumeration order. Divergences between the
  // number predicates and actual placement are resolved here, pair by
  // pair, so merge results equal the per-candidate path exactly:
  //   * a null original LCA makes the child/parent placement relation
  //     empty while the number predicate is vacuously true — skip;
  //   * an ancestor chain with a null-LCA link is impassable for the
  //     parent-chain walk — stop enumerating at the break;
  //   * a not-ChainSafe pair may rely on intermediate instances that do
  //     not exist — leave it to the exact walk fallback.
  std::vector<JoinTask> tasks;
  for (const std::unique_ptr<ContextGroup>& gp : groups) {
    const ContextGroup& g = *gp;
    const vdg::VTypeId ct = g.vtype;
    const dg::TypeId cot = vg.original(ct);
    switch (axis) {
      case Axis::kChild:
        for (vdg::VTypeId t : vg.children(ct)) {
          if (!VTypeMatches(t, test)) continue;
          if (orig.LcaType(cot, vg.original(t)) == dg::kNullType) continue;
          tasks.push_back({&g, t, false});
        }
        break;
      case Axis::kParent: {
        const vdg::VTypeId pt = vg.parent(ct);
        if (pt != vdg::kNullVType && VTypeMatches(pt, test) &&
            orig.LcaType(cot, vg.original(pt)) != dg::kNullType) {
          tasks.push_back({&g, pt, !vdoc_->IsGuaranteedReachable(pt)});
        }
        break;
      }
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        bool need_walk = false;
        std::vector<vdg::VTypeId> stack(vg.children(ct).rbegin(),
                                        vg.children(ct).rend());
        while (!stack.empty()) {
          const vdg::VTypeId dt = stack.back();
          stack.pop_back();
          for (auto it = vg.children(dt).rbegin();
               it != vg.children(dt).rend(); ++it) {
            stack.push_back(*it);
          }
          if (!VTypeMatches(dt, test)) continue;
          if (ChainSafe(ct, dt)) {
            tasks.push_back({&g, dt, false});
          } else {
            need_walk = true;
          }
        }
        if (need_walk) tasks.push_back({&g, vdg::kNullVType, false});
        break;
      }
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        bool need_walk = false;
        vdg::VTypeId prev = ct;
        for (vdg::VTypeId at = vg.parent(ct); at != vdg::kNullVType;
             prev = at, at = vg.parent(at)) {
          if (orig.LcaType(vg.original(at), vg.original(prev)) ==
              dg::kNullType) {
            break;  // impassable link: nothing at or above is an ancestor
          }
          if (!VTypeMatches(at, test)) continue;
          if (ChainSafe(at, ct)) {
            tasks.push_back({&g, at, !vdoc_->IsGuaranteedReachable(at)});
          } else {
            need_walk = true;
          }
        }
        if (need_walk) tasks.push_back({&g, vdg::kNullVType, false});
        break;
      }
      default:
        break;
    }
  }
  if (tasks.empty()) return true;  // slots may still hold -or-self seeds

  std::vector<std::vector<std::pair<uint32_t, VirtualNode>>> hit_lists(
      tasks.size());
  std::vector<num::JoinCounters> task_counters(tasks.size());
  common::ThreadPool* pool = ctx_ != nullptr ? ctx_->pool() : nullptr;
  // ParallelFor runs inline when there is no usable pool or too few tasks;
  // hit lists are per-task, so no synchronization is needed either way.
  common::ParallelFor(pool, tasks.size(), /*grain=*/1,
                      [&](size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) {
                          RunJoinTask(tasks[i], context, axis, test,
                                      &hit_lists[i], &task_counters[i]);
                        }
                      });

  if (ctx_ != nullptr) {
    num::JoinCounters total;
    for (const num::JoinCounters& c : task_counters) total.Add(c);
    ctx_->CountComparisons(total.comparisons, total.bytes_compared);
    ctx_->CountVJoinPairs(total.vjoin_pairs);
    ctx_->CountDecodedBatches(total.decoded_batches);
    ctx_->CountBlockSkips(total.block_skips);
  }

  // Task order is deterministic and the caller sorts downstream (per slot
  // or over the flattened list), so the result is identical for any thread
  // count.
  if (slots != nullptr) {
    for (const auto& hits : hit_lists) {
      for (const auto& [slot, node] : hits) {
        (*slots)[slot].push_back(node);
      }
    }
  } else {
    size_t total = flat->size();
    for (const auto& hits : hit_lists) total += hits.size();
    flat->reserve(total);
    for (const auto& hits : hit_lists) {
      for (const auto& [slot, node] : hits) flat->push_back(node);
    }
  }
  return true;
}

std::vector<VirtualNode> VirtualAdapter::Axis(const VirtualNode& n,
                                              num::Axis axis,
                                              const NodeTest& test) const {
  using num::Axis;
  const vdg::VDataGuide& vg = vdoc_->vguide();
  const virt::VpbnSpace& space = vdoc_->space();
  std::vector<VirtualNode> out;
  Vpbn vn = vdoc_->VpbnOf(n);
  virt::VpbnView vview(vn);
  switch (axis) {
    case Axis::kSelf:
      if (VTypeMatches(n.vtype, test)) out.push_back(n);
      break;
    case Axis::kChild:
      // The placement relation enumerates exactly the virtual children of
      // each child virtual type (containment scans / prefix lookups).
      for (vdg::VTypeId ct : vg.children(n.vtype)) {
        if (!VTypeMatches(ct, test)) continue;
        std::vector<VirtualNode> related = vdoc_->RelatedInstances(n.node, ct);
        out.insert(out.end(), related.begin(), related.end());
      }
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf && VTypeMatches(n.vtype, test)) {
        out.push_back(n);
      }
      // vPBN structural join per descendant type (Theorem 1) when the
      // intermediate chain provably exists; otherwise fall back to actual
      // chain expansion for the unsafe types.
      bool need_bfs = false;
      std::vector<vdg::VTypeId> stack(vg.children(n.vtype).rbegin(),
                                      vg.children(n.vtype).rend());
      while (!stack.empty()) {
        vdg::VTypeId dt = stack.back();
        stack.pop_back();
        for (auto it = vg.children(dt).rbegin(); it != vg.children(dt).rend();
             ++it) {
          stack.push_back(*it);
        }
        if (!VTypeMatches(dt, test)) continue;
        if (!ChainSafe(n.vtype, dt)) {
          need_bfs = true;
          continue;
        }
        // Stream the packed arena of the type's instances (aligned with
        // the NodeId column): each candidate is decoded once into the
        // reused buffer and tested without materializing a Pbn.
        const storage::StoredDocument& sd = vdoc_->stored();
        const num::PackedPbnList& packed =
            sd.PackedNodesOfType(vg.original(dt));
        const std::vector<xml::NodeId>& ids =
            sd.NodeIdsOfType(vg.original(dt));
        std::vector<uint32_t> buf;
        for (size_t i = 0; i < packed.size(); ++i) {
          virt::VpbnView cv = virt::DecodeView(packed[i], dt, &buf);
          if (space.VDescendant(cv, vview)) {
            out.push_back(VirtualNode{ids[i], dt});
          }
        }
      }
      if (need_bfs) {
        DescendantWalkUnsafe(n, test, &out);
      }
      break;
    }
    case Axis::kParent: {
      // AxisNodes filters out orphaned parent instances.
      for (const VirtualNode& p : vdoc_->AxisNodes(n, Axis::kParent)) {
        if (VTypeMatches(p.vtype, test)) out.push_back(p);
      }
      break;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Exact: walk actual parent chains (an instance of an ancestor type
      // is only an ancestor if a chain of placements connects it).
      for (const VirtualNode& a : vdoc_->AxisNodes(n, axis)) {
        if (VTypeMatches(a.vtype, test)) out.push_back(a);
      }
      break;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      const storage::StoredDocument& sd = vdoc_->stored();
      std::vector<uint32_t> buf;
      const auto types = MatchingVTypes(test);  // keep the cache entry alive
      for (vdg::VTypeId t : *types) {
        const num::PackedPbnList& packed =
            sd.PackedNodesOfType(vg.original(t));
        const std::vector<xml::NodeId>& ids = sd.NodeIdsOfType(vg.original(t));
        for (size_t i = 0; i < packed.size(); ++i) {
          virt::VpbnView cv = virt::DecodeView(packed[i], t, &buf);
          bool hit = axis == Axis::kFollowing ? space.VFollowing(cv, vview)
                                              : space.VPreceding(cv, vview);
          if (!hit) continue;
          VirtualNode cand{ids[i], t};
          if (vdoc_->IsReachable(cand)) out.push_back(cand);
        }
      }
      break;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Exact: siblings are children of the node's actual parents.
      for (const VirtualNode& s : vdoc_->AxisNodes(n, axis)) {
        if (VTypeMatches(s.vtype, test)) out.push_back(s);
      }
      break;
    }
    case Axis::kAttribute:
      break;
  }
  return out;
}

void VirtualAdapter::SortUnique(std::vector<VirtualNode>* nodes) const {
  vdoc_->SortVirtualOrder(nodes);
}

std::string VirtualAdapter::StringValue(const VirtualNode& n) const {
  return vdoc_->StringValue(n);
}

std::optional<std::string_view> VirtualAdapter::FastStringValue(
    const VirtualNode& n) const {
  if (ctx_ != nullptr && !ctx_->use_value_index()) return std::nullopt;
  const idx::TypeColumn* col = vdoc_->ValueColumn(n.vtype);
  if (col == nullptr) return std::nullopt;
  if (ctx_ != nullptr) ctx_->CountValueIndexLookups(1);
  return col->dict->term(
      col->term_ids[vdoc_->stored().RowOfNode(n.node)]);
}

Result<std::string> VirtualAdapter::Attribute(const VirtualNode& n,
                                              const std::string& name) const {
  const xml::Document& doc = vdoc_->stored().doc();
  if (!doc.IsElement(n.node)) {
    return Status::NotFound("text node has no attributes");
  }
  return doc.AttributeValue(n.node, name);
}

Result<std::vector<VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalVirtual(vdoc, path);
}

Result<std::vector<VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, const Path& path, ExecContext* ctx) {
  VirtualAdapter adapter(vdoc, ctx);
  PathEvaluator<VirtualAdapter> evaluator(adapter, ctx);
  return evaluator.Eval(path);
}

}  // namespace vpbn::query
