#include "query/eval_virtual.h"

#include <algorithm>

namespace vpbn::query {

using virt::VirtualNode;
using virt::Vpbn;

bool VirtualAdapter::VTypeMatches(vdg::VTypeId t, const NodeTest& test) const {
  const vdg::VDataGuide& vg = vdoc_->vguide();
  return test.Matches(!vg.IsTextVType(t), vg.label(t));
}

std::vector<vdg::VTypeId> VirtualAdapter::MatchingVTypes(
    const NodeTest& test) const {
  const vdg::VDataGuide& vg = vdoc_->vguide();
  std::vector<vdg::VTypeId> out;
  for (vdg::VTypeId t = 0; t < vg.num_vtypes(); ++t) {
    if (VTypeMatches(t, test)) out.push_back(t);
  }
  return out;
}

std::vector<VirtualNode> VirtualAdapter::DocumentRoots(
    const NodeTest& test) const {
  std::vector<VirtualNode> out;
  for (vdg::VTypeId rt : vdoc_->vguide().roots()) {
    if (!VTypeMatches(rt, test)) continue;
    std::vector<VirtualNode> nodes = vdoc_->NodesOfVType(rt);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  return out;
}

std::vector<VirtualNode> VirtualAdapter::AllNodes(const NodeTest& test) const {
  std::vector<VirtualNode> out;
  for (vdg::VTypeId t : MatchingVTypes(test)) {
    for (const VirtualNode& n : vdoc_->NodesOfVType(t)) {
      // Orphans (instances with no virtual-parent chain) are not part of
      // the virtual document.
      if (vdoc_->IsReachable(n)) out.push_back(n);
    }
  }
  return out;
}

bool VirtualAdapter::ChainSafe(vdg::VTypeId top, vdg::VTypeId bottom) const {
  // The pure-number descendant join is exact when every intermediate
  // virtual type strictly between `top` and `bottom` has an original type
  // that is an ancestor-or-self of `bottom`'s original: the intermediate
  // instance is then a prefix of the candidate's number, so it exists and
  // is compatible with both endpoints. Otherwise a predicate hit could
  // rely on an intermediate instance that does not exist, and the
  // evaluator must expand actual chains instead.
  const vdg::VDataGuide& vg = vdoc_->vguide();
  const dg::DataGuide& orig = vg.original_guide();
  for (vdg::VTypeId i = vg.parent(bottom); i != top; i = vg.parent(i)) {
    if (i == vdg::kNullVType) return false;  // bottom not under top
    if (!orig.IsAncestorOrSelfType(vg.original(i), vg.original(bottom))) {
      return false;
    }
  }
  return true;
}

std::vector<VirtualNode> VirtualAdapter::Axis(const VirtualNode& n,
                                              num::Axis axis,
                                              const NodeTest& test) const {
  using num::Axis;
  const vdg::VDataGuide& vg = vdoc_->vguide();
  const virt::VpbnSpace& space = vdoc_->space();
  std::vector<VirtualNode> out;
  Vpbn vn = vdoc_->VpbnOf(n);
  virt::VpbnView vview(vn);
  switch (axis) {
    case Axis::kSelf:
      if (VTypeMatches(n.vtype, test)) out.push_back(n);
      break;
    case Axis::kChild:
      // The placement relation enumerates exactly the virtual children of
      // each child virtual type (containment scans / prefix lookups).
      for (vdg::VTypeId ct : vg.children(n.vtype)) {
        if (!VTypeMatches(ct, test)) continue;
        std::vector<VirtualNode> related = vdoc_->RelatedInstances(n.node, ct);
        out.insert(out.end(), related.begin(), related.end());
      }
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf && VTypeMatches(n.vtype, test)) {
        out.push_back(n);
      }
      // vPBN structural join per descendant type (Theorem 1) when the
      // intermediate chain provably exists; otherwise fall back to actual
      // chain expansion for the unsafe types.
      bool need_bfs = false;
      std::vector<vdg::VTypeId> stack(vg.children(n.vtype).rbegin(),
                                      vg.children(n.vtype).rend());
      while (!stack.empty()) {
        vdg::VTypeId dt = stack.back();
        stack.pop_back();
        for (auto it = vg.children(dt).rbegin(); it != vg.children(dt).rend();
             ++it) {
          stack.push_back(*it);
        }
        if (!VTypeMatches(dt, test)) continue;
        if (!ChainSafe(n.vtype, dt)) {
          need_bfs = true;
          continue;
        }
        // Stream the packed arena of the type's instances (aligned with
        // the NodeId column): each candidate is decoded once into the
        // reused buffer and tested without materializing a Pbn.
        const storage::StoredDocument& sd = vdoc_->stored();
        const num::PackedPbnList& packed =
            sd.PackedNodesOfType(vg.original(dt));
        const std::vector<xml::NodeId>& ids =
            sd.NodeIdsOfType(vg.original(dt));
        std::vector<uint32_t> buf;
        for (size_t i = 0; i < packed.size(); ++i) {
          virt::VpbnView cv = virt::DecodeView(packed[i], dt, &buf);
          if (space.VDescendant(cv, vview)) {
            out.push_back(VirtualNode{ids[i], dt});
          }
        }
      }
      if (need_bfs) {
        // Exact expansion through actual virtual children.
        std::vector<VirtualNode> frontier = vdoc_->Children(n);
        while (!frontier.empty()) {
          std::vector<VirtualNode> next;
          for (const VirtualNode& c : frontier) {
            if (VTypeMatches(c.vtype, test) &&
                !ChainSafe(n.vtype, c.vtype)) {
              out.push_back(c);  // safe types were already joined above
            }
            std::vector<VirtualNode> down = vdoc_->Children(c);
            next.insert(next.end(), down.begin(), down.end());
          }
          vdoc_->SortVirtualOrder(&next);
          frontier = std::move(next);
        }
      }
      break;
    }
    case Axis::kParent: {
      // AxisNodes filters out orphaned parent instances.
      for (const VirtualNode& p : vdoc_->AxisNodes(n, Axis::kParent)) {
        if (VTypeMatches(p.vtype, test)) out.push_back(p);
      }
      break;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Exact: walk actual parent chains (an instance of an ancestor type
      // is only an ancestor if a chain of placements connects it).
      for (const VirtualNode& a : vdoc_->AxisNodes(n, axis)) {
        if (VTypeMatches(a.vtype, test)) out.push_back(a);
      }
      break;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      const storage::StoredDocument& sd = vdoc_->stored();
      std::vector<uint32_t> buf;
      for (vdg::VTypeId t : MatchingVTypes(test)) {
        const num::PackedPbnList& packed =
            sd.PackedNodesOfType(vg.original(t));
        const std::vector<xml::NodeId>& ids = sd.NodeIdsOfType(vg.original(t));
        for (size_t i = 0; i < packed.size(); ++i) {
          virt::VpbnView cv = virt::DecodeView(packed[i], t, &buf);
          bool hit = axis == Axis::kFollowing ? space.VFollowing(cv, vview)
                                              : space.VPreceding(cv, vview);
          if (!hit) continue;
          VirtualNode cand{ids[i], t};
          if (vdoc_->IsReachable(cand)) out.push_back(cand);
        }
      }
      break;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Exact: siblings are children of the node's actual parents.
      for (const VirtualNode& s : vdoc_->AxisNodes(n, axis)) {
        if (VTypeMatches(s.vtype, test)) out.push_back(s);
      }
      break;
    }
    case Axis::kAttribute:
      break;
  }
  return out;
}

void VirtualAdapter::SortUnique(std::vector<VirtualNode>* nodes) const {
  vdoc_->SortVirtualOrder(nodes);
}

std::string VirtualAdapter::StringValue(const VirtualNode& n) const {
  return vdoc_->StringValue(n);
}

Result<std::string> VirtualAdapter::Attribute(const VirtualNode& n,
                                              const std::string& name) const {
  const xml::Document& doc = vdoc_->stored().doc();
  if (!doc.IsElement(n.node)) {
    return Status::NotFound("text node has no attributes");
  }
  return doc.AttributeValue(n.node, name);
}

Result<std::vector<VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalVirtual(vdoc, path);
}

Result<std::vector<VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, const Path& path, ExecContext* ctx) {
  VirtualAdapter adapter(vdoc);
  PathEvaluator<VirtualAdapter> evaluator(adapter, ctx);
  return evaluator.Eval(path);
}

}  // namespace vpbn::query
