#include "query/partition_pruner.h"

#include <vector>

#include "query/cost_model.h"
#include "query/value_pushdown.h"

namespace vpbn::query {

namespace {

/// A type participates in a group's evaluation when the group's candidate
/// set for it is non-empty: its contiguous row range over the group's
/// chunks, plus the spine rows every group task sees (spine nodes are the
/// shared ancestors chunk-local results hang off).
bool TypePresent(const storage::DocumentPartitions& parts, dg::TypeId t,
                 size_t chunk_lo, size_t chunk_hi) {
  auto [lo, hi] = parts.TypeRange(t, chunk_lo, chunk_hi);
  return lo < hi || !parts.spine_rows[t].empty();
}

bool TypeMatches(const dg::DataGuide& g, dg::TypeId t, const NodeTest& test) {
  return test.Matches(!g.IsTextType(t), g.label(t));
}

/// Proves one step predicate false for *every* candidate context of type
/// \p t the group evaluates — the admissible type-kill. Only possible when
/// the type has no spine instances: then every candidate context lies
/// wholly inside one of the group's chunks, so every instance its
/// predicate chain can reach has a row inside the group's range of the
/// chain's terminal types, and emptiness / zone-map bounds over those
/// ranges are a proof. A spine context's subtree escapes the group, so a
/// type with spine instances is never killed.
bool PredDisprovedForGroup(const storage::StoredDocument& stored,
                           const storage::DocumentPartitions& parts,
                           dg::TypeId t, const Expr& pred, size_t chunk_lo,
                           size_t chunk_hi) {
  if (!parts.spine_rows[t].empty()) return false;
  const dg::DataGuide& g = stored.dataguide();

  if (pred.kind == Expr::Kind::kPath) {
    // Existence chain: a witness for an in-group context must sit in the
    // group's row range of some terminal type.
    for (dg::TypeId tt : ResolveChainTypes(g, t, pred.path)) {
      auto [lo, hi] = parts.TypeRange(tt, chunk_lo, chunk_hi);
      if (lo < hi) return false;
    }
    return true;
  }

  ValuePred vp;
  if (!RecognizeValuePred(pred, &vp)) return false;
  // Attribute predicates have no per-row column ordering to bound, and the
  // string functions have no zone representation — neither is prunable.
  if (vp.kind != ValuePred::Kind::kPathCompare) return false;

  const idx::ValueIndex& vi = stored.value_index();
  const idx::Dictionary& dict = vi.dict();
  const bool string_eq = vp.op == CompareOp::kEq && !vp.lit.numeric;
  const uint32_t eq_term = string_eq ? dict.Find(vp.lit.text) : idx::kNoTerm;
  // A string-equality literal that was never interned matches no row of
  // any column — the one kill that needs no per-group bounds at all.
  if (string_eq && eq_term == idx::kNoTerm) return true;
  if (vp.op == CompareOp::kNe) return false;  // zone maps never disprove !=

  for (dg::TypeId tt : ResolveChainTypes(g, t, *vp.path)) {
    auto [lo, hi] = parts.TypeRange(tt, chunk_lo, chunk_hi);
    if (lo >= hi) continue;  // no in-group instances of this terminal type
    const idx::TypeColumn* col = vi.Column(tt);
    if (col == nullptr) return false;  // uncovered type: nothing to bound
    const idx::ColumnStats& s = col->stats;
    const size_t first_b = lo / idx::ColumnStats::kZoneBlockRows;
    const size_t last_b = (hi - 1) / idx::ColumnStats::kZoneBlockRows;
    const size_t nblocks =
        string_eq ? s.zone_term_min.size() : s.zone_min.size();
    if (last_b >= nblocks) return false;  // stats lack zones: no proof
    for (size_t b = first_b; b <= last_b; ++b) {
      if (ZoneBlockCanMatch(s, b, vp.op, vp.lit, eq_term)) return false;
    }
  }
  return true;
}

}  // namespace

bool PartitionGroupCanMatch(const storage::StoredDocument& stored,
                            const Path& path, size_t chunk_lo,
                            size_t chunk_hi, ExecContext* /*ctx*/) {
  const dg::DataGuide& g = stored.dataguide();
  const storage::DocumentPartitions& parts = stored.partitions();
  const size_t num_types = g.num_types();
  std::vector<bool> frontier(num_types, false);
  bool doc_node = true;

  for (const Step& step : path.steps) {
    if (step.axis == num::Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode) {
      // '//' anonymous step: the evaluator folds it into the next step by
      // widening the type frontier; mirror that (present types only).
      if (doc_node) {
        for (dg::TypeId t = 0; t < num_types; ++t) {
          frontier[t] = TypePresent(parts, t, chunk_lo, chunk_hi);
        }
        doc_node = false;
      } else {
        std::vector<bool> widened = frontier;
        for (dg::TypeId t = 0; t < num_types; ++t) {
          if (!frontier[t]) continue;
          for (dg::TypeId dt : g.DescendantTypes(t)) {
            if (TypePresent(parts, dt, chunk_lo, chunk_hi)) {
              widened[dt] = true;
            }
          }
        }
        frontier = std::move(widened);
      }
      continue;
    }

    std::vector<bool> next(num_types, false);
    if (doc_node) {
      if (step.axis == num::Axis::kChild) {
        for (dg::TypeId rt : g.roots()) {
          if (TypeMatches(g, rt, step.test) &&
              TypePresent(parts, rt, chunk_lo, chunk_hi)) {
            next[rt] = true;
          }
        }
      } else {
        for (dg::TypeId t = 0; t < num_types; ++t) {
          if (TypeMatches(g, t, step.test) &&
              TypePresent(parts, t, chunk_lo, chunk_hi)) {
            next[t] = true;
          }
        }
      }
      doc_node = false;
    } else {
      for (dg::TypeId t = 0; t < num_types; ++t) {
        if (!frontier[t]) continue;
        const std::vector<dg::TypeId> candidates =
            step.axis == num::Axis::kChild ? g.children(t)
                                           : g.DescendantTypes(t);
        for (dg::TypeId nt : candidates) {
          if (next[nt]) continue;
          if (TypeMatches(g, nt, step.test) &&
              TypePresent(parts, nt, chunk_lo, chunk_hi)) {
            next[nt] = true;
          }
        }
      }
    }

    for (dg::TypeId t = 0; t < num_types; ++t) {
      if (!next[t]) continue;
      for (const auto& pred : step.predicates) {
        if (PredDisprovedForGroup(stored, parts, t, *pred, chunk_lo,
                                  chunk_hi)) {
          next[t] = false;
          break;
        }
      }
    }

    bool any = false;
    for (dg::TypeId t = 0; t < num_types && !any; ++t) any = next[t];
    if (!any) return false;
    frontier = std::move(next);
  }

  // Results the group task keeps are rows inside its own range — spine-only
  // presence carries a type *through* intermediate steps but yields nothing
  // at the last one.
  for (dg::TypeId t = 0; t < num_types; ++t) {
    if (!frontier[t]) continue;
    auto [lo, hi] = parts.TypeRange(t, chunk_lo, chunk_hi);
    if (lo < hi) return true;
  }
  return false;
}

}  // namespace vpbn::query
