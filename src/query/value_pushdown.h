/// \file value_pushdown.h
/// \brief Shared planning pieces for pushing value predicates into the
/// dictionary-encoded value index (index/value_index.h).
///
/// Both set-at-a-time evaluation (query/eval_bulk.cc) and the per-node
/// indexed adapter (query/eval_indexed.h) recognize the same predicate
/// shapes and answer them from the same index structures:
///
///   [path op literal]        -> per terminal type, a postings lookup
///                               (equality) or a binary-searched slice of
///                               the numeric column (relational);
///   [@attr op literal]       -> a term-id mask over the context list;
///   [contains(path, lit)]    -> a term bitmap built by testing each
///   [starts-with(path, lit)]    distinct dictionary term once;
///
/// `path` must be a predicate-free child/descendant chain
/// (query::IsPredicateFreeChain), which is what makes type-level planning
/// exact: every instance of a resolved terminal type inside a context
/// node's subtree is connected to it by exactly the chain's steps.
///
/// Everything here mirrors the scan path's semantics (evaluator.h
/// CompareValues / contains / starts-with) *by construction*: literals are
/// rendered with the same number-to-string rules, numbers are parsed with
/// the same idx::ParseNumber, so pushdown answers are byte-identical to
/// per-node evaluation — the property tests/value_index_test.cc enforces.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dataguide/dataguide.h"
#include "index/value_index.h"
#include "query/exec_context.h"
#include "query/path_ast.h"

namespace vpbn::query {

/// \brief A comparison literal, prepared once per predicate: the exact text
/// the scan path would compare against, plus its numeric interpretation.
/// For kNumber literals the text is the scan path's rendering (integers
/// without ".0", otherwise std::to_string's 6-decimal form) and `num` is
/// that text re-parsed — using the expression's double directly would
/// diverge from the scan path for non-representable literals.
struct ValueLiteral {
  std::string text;
  bool numeric = false;
  double num = 0;
};

/// \brief Builds a ValueLiteral from a kString / kNumber expression.
ValueLiteral MakeLiteral(const Expr& literal);

/// \brief A recognized pushable predicate shape.
struct ValuePred {
  enum class Kind : uint8_t {
    kPathCompare,  ///< [path op literal] (either operand order)
    kAttrCompare,  ///< [@attr op literal]
    kPathString,   ///< [contains(path, lit)] / [starts-with(path, lit)]
    kAttrString,   ///< [contains(@attr, lit)] / [starts-with(@attr, lit)]
  };
  Kind kind = Kind::kPathCompare;
  const Path* path = nullptr;  ///< kPath*: predicate-free chain
  std::string attr;            ///< kAttr*: attribute name
  CompareOp op = CompareOp::kEq;               ///< k*Compare (mirrored if
                                               ///< the literal was on the
                                               ///< left)
  Expr::Kind str_fn = Expr::Kind::kContains;   ///< k*String
  ValueLiteral lit;
};

/// \brief Recognizes the pushable shapes above. False for anything else
/// (the caller falls back to per-node evaluation).
bool RecognizeValuePred(const Expr& e, ValuePred* out);

/// \brief Whether interned term \p term satisfies `term op lit`. Mirrors
/// CompareValues exactly: numeric when both sides are numbers, string
/// equality/inequality otherwise, relational ops strictly numeric. kNoTerm
/// (absent attribute) never matches — a missing value compares false under
/// every operator.
bool TermMatches(const idx::Dictionary& dict, uint32_t term, CompareOp op,
                 const ValueLiteral& lit);

/// \brief contains() / starts-with() over one term, mirroring evaluator.h.
inline bool TermMatchesString(std::string_view hay, Expr::Kind fn,
                              std::string_view needle) {
  return fn == Expr::Kind::kContains
             ? hay.find(needle) != std::string_view::npos
             : hay.substr(0, needle.size()) == needle;
}

/// \brief The ascending instance rows of \p col whose value satisfies
/// `value op lit`: a postings vector (equality), a numeric-column slice
/// (relational), or a term-column scan (!=). Counts index probes and rows
/// into \p ctx (nullable).
std::vector<uint32_t> CollectMatchingRows(const idx::TypeColumn& col,
                                          CompareOp op,
                                          const ValueLiteral& lit,
                                          ExecContext* ctx);

/// \brief CollectMatchingRows memoized in the execution's CachedVTypes
/// store under (\p pred, \p t) — every context group and every repetition
/// of the predicate reuses one collection. Uncached when \p ctx is null.
std::shared_ptr<const std::vector<uint32_t>> MatchingRows(
    const idx::TypeColumn& col, const Expr* pred, dg::TypeId t, CompareOp op,
    const ValueLiteral& lit, ExecContext* ctx);

/// \brief Terminal DataGuide types a predicate-free chain reaches from
/// \p context (type-level frontier walk; '//'-anonymous steps expand the
/// frontier with all descendant types). Sorted ascending.
std::vector<dg::TypeId> ResolveChainTypes(const dg::DataGuide& g,
                                          dg::TypeId context,
                                          const Path& path);

/// \brief ResolveChainTypes memoized per (\p path, \p context) in the
/// execution's CachedVTypes store (TypeId is uint32_t). Uncached when
/// \p ctx is null.
std::shared_ptr<const std::vector<dg::TypeId>> ChainTypes(
    const dg::DataGuide& g, const Path* path, dg::TypeId context,
    ExecContext* ctx);

/// \brief One byte per dictionary term, 1 where the term satisfies the
/// contains()/starts-with() needle — each distinct value is tested once,
/// then per-node checks are O(1) bitmap probes. Memoized per (dictionary,
/// function, needle) in \p ctx when non-null. \p dict must be immutable
/// for the bitmap's lifetime (the stored index's dictionary is).
std::shared_ptr<const std::vector<uint8_t>> TermBitmap(
    const idx::Dictionary& dict, Expr::Kind fn, std::string_view needle,
    ExecContext* ctx);

}  // namespace vpbn::query
