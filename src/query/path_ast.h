/// \file path_ast.h
/// \brief AST for the XPath subset used by the query layers.
///
/// Grammar (standard XPath 1.0 abbreviations):
///   path      := ('/' | '//') step (('/' | '//') step)*
///   step      := axis '::' nodetest predicates
///              | nodetest predicates          (child axis)
///              | '@' name                     (attribute axis)
///              | '..' | '.'
///   nodetest  := name | '*' | 'text()' | 'node()'
///   predicate := '[' expr ']'
///   expr      := orexpr; or/and/not; comparisons =, !=, <, <=, >, >=
///                between paths, literals, numbers, count(path), @attr
///
/// A bare number predicate is positional: [2] keeps the second node of the
/// context node's axis result. vPBN stores no sibling ordinals (§5.1:
/// data-centric applications treat data as unordered), so the evaluators
/// compute positions dynamically from the ordered result list, exactly as
/// the paper prescribes.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pbn/axis.h"

namespace vpbn::query {

/// \brief What a step selects, before predicates.
struct NodeTest {
  enum class Kind : uint8_t {
    kName,        ///< element with a specific name
    kAnyElement,  ///< *
    kText,        ///< text()
    kAnyNode,     ///< node()
  };
  Kind kind = Kind::kAnyElement;
  std::string name;  // only for kName

  bool Matches(bool is_element, const std::string& element_name) const {
    switch (kind) {
      case Kind::kName:
        return is_element && element_name == name;
      case Kind::kAnyElement:
        return is_element;
      case Kind::kText:
        return !is_element;
      case Kind::kAnyNode:
        return true;
    }
    return false;
  }
};

struct Expr;

/// \brief One location step.
struct Step {
  num::Axis axis = num::Axis::kChild;
  NodeTest test;
  std::vector<std::unique_ptr<Expr>> predicates;
};

/// \brief A parsed path. Paths are absolute: evaluation starts at the
/// (virtual) document node.
struct Path {
  std::vector<Step> steps;
};

/// \brief Comparison operators in predicates.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief Predicate expression tree.
struct Expr {
  enum class Kind : uint8_t {
    kPath,        ///< relative path; truthy iff non-empty
    kString,      ///< string literal
    kNumber,      ///< numeric literal
    kAttribute,   ///< @name of the context node
    kCount,       ///< count(relative path)
    kContains,    ///< contains(lhs, rhs): substring test on string values
    kStartsWith,  ///< starts-with(lhs, rhs)
    kCompare,     ///< lhs op rhs
    kAnd,
    kOr,
    kNot,
  };

  Kind kind = Kind::kPath;
  Path path;                      // kPath, kCount
  std::string str;                // kString, kAttribute
  double num = 0;                 // kNumber
  CompareOp op = CompareOp::kEq;  // kCompare
  std::unique_ptr<Expr> lhs;      // kCompare, kAnd, kOr, kNot
  std::unique_ptr<Expr> rhs;      // kCompare, kAnd, kOr
};

/// \brief True for the downward, predicate-free chains the value-pushdown
/// planner can reason about at the type level: child and descendant steps
/// (plus the '//'-style anonymous descendant-or-self step), no predicates
/// anywhere. For such a path, every instance of a terminal DataGuide type
/// inside a context node's subtree is connected to it by exactly the
/// chain's steps (type ids encode full root paths), which is what makes a
/// postings semi-join exact.
inline bool IsPredicateFreeChain(const Path& path) {
  for (const Step& step : path.steps) {
    switch (step.axis) {
      case num::Axis::kChild:
      case num::Axis::kDescendant:
        break;
      case num::Axis::kDescendantOrSelf:
        // Only the anonymous '//' form: a *named* descendant-or-self step
        // could select the context node itself, which the strictly
        // descending semi-join machinery does not model.
        if (step.test.kind != NodeTest::Kind::kAnyNode) return false;
        break;
      default:
        return false;
    }
    if (!step.predicates.empty()) return false;
  }
  return !path.steps.empty();
}

/// \brief Render a path back to XPath syntax (for diagnostics).
std::string PathToString(const Path& path);

}  // namespace vpbn::query
