/// \file eval_nav.h
/// \brief Navigational evaluation: plain tree walking over a Document.
///
/// The simplest substrate, used as the reference implementation in tests
/// and as the evaluator applied to *materialized* documents in the
/// materialize-then-query baseline.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/evaluator.h"
#include "query/path_parser.h"
#include "xml/document.h"

namespace vpbn::query {

/// \brief Adapter over a Document for PathEvaluator.
class NavAdapter {
 public:
  using Node = xml::NodeId;

  /// Document is immutable and the adapter's own state is built once in the
  /// constructor, so the const interface is safe for concurrent use.
  static constexpr bool kParallelSafe = true;

  explicit NavAdapter(const xml::Document& doc);

  std::vector<Node> DocumentRoots(const NodeTest& test) const;
  std::vector<Node> AllNodes(const NodeTest& test) const;
  std::vector<Node> Axis(const Node& n, num::Axis axis,
                         const NodeTest& test) const;
  void SortUnique(std::vector<Node>* nodes) const;
  std::string StringValue(const Node& n) const;
  Result<std::string> Attribute(const Node& n, const std::string& name) const;

  const xml::Document& doc() const { return *doc_; }

 private:
  bool Matches(Node n, const NodeTest& test) const;

  const xml::Document* doc_;
  std::vector<size_t> order_pos_;  // document-order position by NodeId
};

/// \brief Parse and evaluate \p path_text over \p doc.
Result<std::vector<xml::NodeId>> EvalNav(const xml::Document& doc,
                                         std::string_view path_text);

/// \brief Evaluate a pre-parsed path over \p doc. \p ctx (optional)
/// supplies a thread pool and collects ExecStats (see query/engine.h).
Result<std::vector<xml::NodeId>> EvalNav(const xml::Document& doc,
                                         const Path& path,
                                         ExecContext* ctx = nullptr);

}  // namespace vpbn::query
