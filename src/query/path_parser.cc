#include "query/path_parser.h"

#include <cctype>
#include <charconv>

#include "common/str_util.h"

namespace vpbn::query {

namespace {

class PathParser {
 public:
  explicit PathParser(std::string_view text) : text_(text) {}

  Result<Path> Run() {
    VPBN_ASSIGN_OR_RETURN(Path path, ParseAbsolutePath());
    SkipWhitespace();
    if (!AtEnd()) return Error("trailing input after path");
    return path;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("xpath, offset " + std::to_string(pos_) + ": " +
                              msg);
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':' || c == '#';
  }

  Result<std::string> ParseName() {
    SkipWhitespace();
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) {
      // "::" separates an axis from its node test; a single ':' is a
      // namespace prefix and stays part of the name.
      if (Peek() == ':' && PeekAt(1) == ':') break;
      ++pos_;
    }
    if (pos_ == start) return Error("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Path> ParseAbsolutePath() {
    SkipWhitespace();
    if (Peek() != '/') return Error("paths must be absolute ('/' or '//')");
    return ParseSteps();
  }

  /// Appends the steps for one ('/' | '//') step occurrence. '//child::X'
  /// is rewritten to 'descendant::X' — equivalent unless a positional
  /// predicate is present ('//x[1]' selects the first x *per parent*, not
  /// the first descendant) — and it avoids materializing the full node set
  /// for the anonymous descendant-or-self::node() step. Other axes and
  /// positional steps keep the anonymous step.
  Status AppendStep(bool deep, Path* path) {
    VPBN_ASSIGN_OR_RETURN(Step step, ParseStep());
    bool positional = false;
    for (const auto& pred : step.predicates) {
      if (pred->kind == Expr::Kind::kNumber) positional = true;
    }
    if (deep) {
      if (step.axis == num::Axis::kChild && !positional) {
        step.axis = num::Axis::kDescendant;
      } else {
        Step anon;
        anon.axis = num::Axis::kDescendantOrSelf;
        anon.test.kind = NodeTest::Kind::kAnyNode;
        path->steps.push_back(std::move(anon));
      }
    }
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  /// Parses (('/' | '//') step)+ from the current position (at a '/').
  Result<Path> ParseSteps() {
    Path path;
    for (;;) {
      SkipWhitespace();
      if (Peek() != '/') break;
      ++pos_;
      bool deep = Consume('/');
      VPBN_RETURN_NOT_OK(AppendStep(deep, &path));
    }
    if (path.steps.empty()) return Error("empty path");
    return path;
  }

  /// Parses a relative path (used inside predicates): step ( '/' step )*.
  Result<Path> ParseRelativePath() {
    Path path;
    VPBN_RETURN_NOT_OK(AppendStep(/*deep=*/false, &path));
    for (;;) {
      SkipWhitespace();
      if (Peek() != '/') break;
      ++pos_;
      bool deep = Consume('/');
      VPBN_RETURN_NOT_OK(AppendStep(deep, &path));
    }
    return path;
  }

  Result<Step> ParseStep() {
    SkipWhitespace();
    Step step;
    if (Peek() == '.' && PeekAt(1) == '.') {
      pos_ += 2;
      step.axis = num::Axis::kParent;
      step.test.kind = NodeTest::Kind::kAnyNode;
      return step;
    }
    if (Peek() == '.') {
      ++pos_;
      step.axis = num::Axis::kSelf;
      step.test.kind = NodeTest::Kind::kAnyNode;
      return step;
    }
    if (Peek() == '@') {
      ++pos_;
      VPBN_ASSIGN_OR_RETURN(std::string name, ParseName());
      step.axis = num::Axis::kAttribute;
      step.test.kind = NodeTest::Kind::kName;
      step.test.name = std::move(name);
      return step;
    }
    if (Peek() == '*') {
      ++pos_;
      step.axis = num::Axis::kChild;
      step.test.kind = NodeTest::Kind::kAnyElement;
      return ParsePredicates(std::move(step));
    }
    VPBN_ASSIGN_OR_RETURN(std::string word, ParseName());
    SkipWhitespace();
    if (Peek() == ':' && PeekAt(1) == ':') {
      pos_ += 2;
      VPBN_ASSIGN_OR_RETURN(num::Axis axis, num::AxisFromString(word));
      step.axis = axis;
      SkipWhitespace();
      if (Consume('*')) {
        step.test.kind = NodeTest::Kind::kAnyElement;
        return ParsePredicates(std::move(step));
      }
      VPBN_ASSIGN_OR_RETURN(word, ParseName());
    } else {
      step.axis = num::Axis::kChild;
    }
    if (word == "text" && Peek() == '(') {
      ++pos_;
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')' after text(");
      step.test.kind = NodeTest::Kind::kText;
      return ParsePredicates(std::move(step));
    }
    if (word == "node" && Peek() == '(') {
      ++pos_;
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')' after node(");
      step.test.kind = NodeTest::Kind::kAnyNode;
      return ParsePredicates(std::move(step));
    }
    step.test.kind = NodeTest::Kind::kName;
    step.test.name = std::move(word);
    return ParsePredicates(std::move(step));
  }

  Result<Step> ParsePredicates(Step step) {
    for (;;) {
      SkipWhitespace();
      if (Peek() != '[') return step;
      ++pos_;
      VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseOrExpr());
      SkipWhitespace();
      if (!Consume(']')) return Error("expected ']'");
      step.predicates.push_back(std::move(expr));
    }
  }

  Result<std::unique_ptr<Expr>> ParseOrExpr() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAndExpr());
    for (;;) {
      SkipWhitespace();
      size_t save = pos_;
      if (!ConsumeWord("or") || IsNameChar(Peek())) {
        pos_ = save;
        return lhs;
      }
      VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAndExpr());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<std::unique_ptr<Expr>> ParseAndExpr() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseCompareExpr());
    for (;;) {
      SkipWhitespace();
      size_t save = pos_;
      if (!ConsumeWord("and") || IsNameChar(Peek())) {
        pos_ = save;
        return lhs;
      }
      VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseCompareExpr());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<std::unique_ptr<Expr>> ParseCompareExpr() {
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePrimaryExpr());
    SkipWhitespace();
    CompareOp op;
    if (Consume('=')) {
      op = CompareOp::kEq;
    } else if (Peek() == '!' && PeekAt(1) == '=') {
      pos_ += 2;
      op = CompareOp::kNe;
    } else if (Peek() == '<' && PeekAt(1) == '=') {
      pos_ += 2;
      op = CompareOp::kLe;
    } else if (Peek() == '>' && PeekAt(1) == '=') {
      pos_ += 2;
      op = CompareOp::kGe;
    } else if (Consume('<')) {
      op = CompareOp::kLt;
    } else if (Consume('>')) {
      op = CompareOp::kGt;
    } else {
      return lhs;
    }
    VPBN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimaryExpr());
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<std::unique_ptr<Expr>> ParsePrimaryExpr() {
    SkipWhitespace();
    auto node = std::make_unique<Expr>();
    if (Peek() == '"' || Peek() == '\'') {
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated string literal");
      node->kind = Expr::Kind::kString;
      node->str = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      return node;
    }
    if (std::isdigit(static_cast<unsigned char>(Peek())) ||
        (Peek() == '-' &&
         std::isdigit(static_cast<unsigned char>(PeekAt(1))))) {
      size_t start = pos_;
      if (Peek() == '-') ++pos_;
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        ++pos_;
      }
      std::string_view lit = text_.substr(start, pos_ - start);
      double value = 0;
      auto [ptr, ec] =
          std::from_chars(lit.data(), lit.data() + lit.size(), value);
      if (ec != std::errc() || ptr != lit.data() + lit.size()) {
        return Error("bad number literal '" + std::string(lit) + "'");
      }
      node->kind = Expr::Kind::kNumber;
      node->num = value;
      return node;
    }
    if (Peek() == '@') {
      ++pos_;
      VPBN_ASSIGN_OR_RETURN(std::string name, ParseName());
      node->kind = Expr::Kind::kAttribute;
      node->str = std::move(name);
      return node;
    }
    if (Peek() == '(') {
      ++pos_;
      VPBN_ASSIGN_OR_RETURN(node, ParseOrExpr());
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return node;
    }
    size_t save = pos_;
    if (ConsumeWord("not") && (SkipWhitespace(), Peek() == '(')) {
      ++pos_;
      auto inner = ParseOrExpr();
      if (!inner.ok()) return inner.status();
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')' after not(");
      node->kind = Expr::Kind::kNot;
      node->lhs = std::move(inner).ValueUnsafe();
      return node;
    }
    pos_ = save;
    if (ConsumeWord("count") && (SkipWhitespace(), Peek() == '(')) {
      ++pos_;
      SkipWhitespace();
      auto path = Peek() == '/' ? ParseSteps() : ParseRelativePath();
      if (!path.ok()) return path.status();
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')' after count(");
      node->kind = Expr::Kind::kCount;
      node->path = std::move(path).ValueUnsafe();
      return node;
    }
    pos_ = save;
    for (auto [word, kind] :
         {std::pair{"contains", Expr::Kind::kContains},
          std::pair{"starts-with", Expr::Kind::kStartsWith}}) {
      if (ConsumeWord(word) && (SkipWhitespace(), Peek() == '(')) {
        ++pos_;
        auto lhs = ParseOrExpr();
        if (!lhs.ok()) return lhs.status();
        SkipWhitespace();
        if (!Consume(',')) {
          return Error(std::string("expected ',' in ") + word + "(");
        }
        auto rhs = ParseOrExpr();
        if (!rhs.ok()) return rhs.status();
        SkipWhitespace();
        if (!Consume(')')) {
          return Error(std::string("expected ')' after ") + word + "(");
        }
        node->kind = kind;
        node->lhs = std::move(lhs).ValueUnsafe();
        node->rhs = std::move(rhs).ValueUnsafe();
        return node;
      }
      pos_ = save;
    }
    // A relative (or absolute) path expression.
    auto path = Peek() == '/' ? ParseSteps() : ParseRelativePath();
    if (!path.ok()) return path.status();
    node->kind = Expr::Kind::kPath;
    node->path = std::move(path).ValueUnsafe();
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Path> ParsePath(std::string_view text) {
  return PathParser(text).Run();
}

std::string PathToString(const Path& path) {
  std::string out;
  for (const Step& step : path.steps) {
    if (step.axis == num::Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode &&
        step.predicates.empty()) {
      // Render the '//' shorthand's anonymous step.
      out += (out.empty() || out.back() != '/') ? "//" : "/";
      continue;
    }
    if (out.empty() || out.back() != '/') out += "/";
    out += num::AxisToString(step.axis);
    out += "::";
    switch (step.test.kind) {
      case NodeTest::Kind::kName:
        out += step.test.name;
        break;
      case NodeTest::Kind::kAnyElement:
        out += "*";
        break;
      case NodeTest::Kind::kText:
        out += "text()";
        break;
      case NodeTest::Kind::kAnyNode:
        out += "node()";
        break;
    }
    for (size_t i = 0; i < step.predicates.size(); ++i) out += "[...]";
  }
  return out;
}

}  // namespace vpbn::query
