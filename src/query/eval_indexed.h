/// \file eval_indexed.h
/// \brief Index-based evaluation over a StoredDocument: the classic
/// PBN-powered strategy (§4.2).
///
/// Name tests select candidate *types* from the DataGuide; the type index
/// supplies instances in document order; downward axes become containment
/// scans (binary search on the ordered per-type PBN lists); the remaining
/// axes are decided by pure number comparison (pbn/axis.h). This is the
/// query machinery whose virtual twin (eval_virtual.h) the paper builds.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/evaluator.h"
#include "query/path_parser.h"
#include "query/value_pushdown.h"
#include "storage/stored_document.h"

namespace vpbn::query {

/// \brief Adapter over a StoredDocument for PathEvaluator. Node handles are
/// PBN numbers.
class IndexedAdapter {
 public:
  using Node = num::Pbn;

  /// StoredDocument is fully immutable after Build (indexes included), so
  /// the const interface is safe for concurrent use.
  static constexpr bool kParallelSafe = true;

  /// \p ctx (optional) supplies the value-index knob and the per-query
  /// caches the pushdown paths memoize in; with a null ctx the adapter
  /// evaluates everything per node, as before.
  explicit IndexedAdapter(const storage::StoredDocument& stored,
                          ExecContext* ctx = nullptr)
      : stored_(&stored), ctx_(ctx) {}

  std::vector<Node> DocumentRoots(const NodeTest& test) const;
  std::vector<Node> AllNodes(const NodeTest& test) const;
  std::vector<Node> Axis(const Node& n, num::Axis axis,
                         const NodeTest& test) const;
  void SortUnique(std::vector<Node>* nodes) const;
  std::string StringValue(const Node& n) const;
  Result<std::string> Attribute(const Node& n, const std::string& name) const;

  /// String value served as a view into the value index's interned term
  /// when the node's type is covered (see AdapterHasFastStringValue).
  std::optional<std::string_view> FastStringValue(const Node& n) const;

  /// Whole-list predicate pushdown (see AdapterHasBatchPredicate):
  /// and/or/not trees over recognized value predicates and predicate-free
  /// existence chains become dictionary/numeric-column lookups intersected
  /// with packed subtree ranges. Declines (false) when the shape is not
  /// covered, a terminal type has no value column, or the value index is
  /// disabled.
  bool BatchPredicate(const Expr& pred, const std::vector<Node>& nodes,
                      std::vector<char>* keep) const;

  const storage::StoredDocument& stored() const { return *stored_; }

 private:
  struct BatchGroup;  // per context-type slice of a BatchPredicate call

  bool TypeMatches(dg::TypeId t, const NodeTest& test) const;
  std::vector<dg::TypeId> MatchingTypes(const NodeTest& test) const;
  dg::TypeId TypeOf(const Node& n) const;

  bool CanPushPredicate(const Expr& e,
                        const std::vector<dg::TypeId>& context_types) const;
  void EvalBatchPredicate(const Expr& e,
                          const std::vector<BatchGroup>& groups,
                          std::vector<char>* keep) const;

  const storage::StoredDocument* stored_;
  ExecContext* ctx_ = nullptr;
};

/// \brief Parse and evaluate \p path_text over the stored document.
Result<std::vector<num::Pbn>> EvalIndexed(
    const storage::StoredDocument& stored, std::string_view path_text);

/// \brief Evaluate a pre-parsed path. \p ctx (optional) supplies a thread
/// pool and collects ExecStats (see query/engine.h).
Result<std::vector<num::Pbn>> EvalIndexed(
    const storage::StoredDocument& stored, const Path& path,
    ExecContext* ctx = nullptr);

}  // namespace vpbn::query
