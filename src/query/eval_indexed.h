/// \file eval_indexed.h
/// \brief Index-based evaluation over a StoredDocument: the classic
/// PBN-powered strategy (§4.2).
///
/// Name tests select candidate *types* from the DataGuide; the type index
/// supplies instances in document order; downward axes become containment
/// scans (binary search on the ordered per-type PBN lists); the remaining
/// axes are decided by pure number comparison (pbn/axis.h). This is the
/// query machinery whose virtual twin (eval_virtual.h) the paper builds.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/evaluator.h"
#include "query/path_parser.h"
#include "storage/stored_document.h"

namespace vpbn::query {

/// \brief Adapter over a StoredDocument for PathEvaluator. Node handles are
/// PBN numbers.
class IndexedAdapter {
 public:
  using Node = num::Pbn;

  /// StoredDocument is fully immutable after Build (indexes included), so
  /// the const interface is safe for concurrent use.
  static constexpr bool kParallelSafe = true;

  explicit IndexedAdapter(const storage::StoredDocument& stored)
      : stored_(&stored) {}

  std::vector<Node> DocumentRoots(const NodeTest& test) const;
  std::vector<Node> AllNodes(const NodeTest& test) const;
  std::vector<Node> Axis(const Node& n, num::Axis axis,
                         const NodeTest& test) const;
  void SortUnique(std::vector<Node>* nodes) const;
  std::string StringValue(const Node& n) const;
  Result<std::string> Attribute(const Node& n, const std::string& name) const;

  const storage::StoredDocument& stored() const { return *stored_; }

 private:
  bool TypeMatches(dg::TypeId t, const NodeTest& test) const;
  std::vector<dg::TypeId> MatchingTypes(const NodeTest& test) const;
  dg::TypeId TypeOf(const Node& n) const;

  const storage::StoredDocument* stored_;
};

/// \brief Parse and evaluate \p path_text over the stored document.
Result<std::vector<num::Pbn>> EvalIndexed(
    const storage::StoredDocument& stored, std::string_view path_text);

/// \brief Evaluate a pre-parsed path. \p ctx (optional) supplies a thread
/// pool and collects ExecStats (see query/engine.h).
Result<std::vector<num::Pbn>> EvalIndexed(
    const storage::StoredDocument& stored, const Path& path,
    ExecContext* ctx = nullptr);

}  // namespace vpbn::query
