/// \file cost_model.h
/// \brief Costed plan and strategy selection over a StoredDocument, fed by
/// query/cardinality.h estimates and the value index's zone maps.
///
/// Every decision the evaluators used to make with a fixed threshold is a
/// method here, so the `ExecOptions::use_cost_model` knob swaps one layer:
///
///   * **Stored plan** (engine Prepare): bulk set-at-a-time joins vs the
///     per-node indexed evaluator, for paths inside the bulk fragment
///     (outside it, indexed is the only applicable plan — no decision).
///   * **Value-predicate strategy** (eval_bulk ApplyValuePred / the indexed
///     adapter's BatchPredicate): collect all matching rows as witnesses
///     and semi-join (wins at low selectivity — few witnesses), probe each
///     context's subtree range against the sorted matching-rows list (wins
///     for small contexts), or scan each context's term-column range with
///     zone-map block skipping, never materializing rows at all (wins at
///     high selectivity, where the witness sort alone costs more than the
///     whole scan).
///   * **Merge vs walk** (eval_virtual BatchAxis): replaces the fixed
///     kDefaultVJoinMinContext = 16 context-size threshold with a costed
///     comparison of the vtype merge join against per-node range walks.
///
/// Costs are abstract work units (roughly "one streamed row" = 1). The
/// zone-map survivor fraction is *computed, not estimated*: the per-block
/// min/max arrays are resident in ColumnStats, so the model counts exactly
/// how many blocks a range predicate can touch in O(row_count / 256).

#pragma once

#include <cstdint>
#include <vector>

#include "query/cardinality.h"

namespace vpbn::query {

/// \brief Abstract per-operation work weights. The defaults were calibrated
/// against the E12/E16 sweeps; they need only get the *ratios* right.
struct CostWeights {
  double row = 1.0;          ///< stream one row through a scan or merge
  double probe = 8.0;        ///< one binary-search descent level
  double materialize = 6.0;  ///< append one packed witness / heap Pbn
  double setup = 64.0;       ///< fixed per-structure overhead
};

/// \brief How a recognized [path op literal] predicate should be answered
/// for one (context type, context list). See PredStrategy choice docs in
/// the file header.
enum class PredStrategy : uint8_t {
  kWitness,    ///< matching rows -> packed witnesses -> semi-join (default)
  kRowsProbe,  ///< matching rows + per-context binary probe into them
  kScanProbe,  ///< per-context zone-skipped term-column range scan
};

/// \brief The chosen strategy plus the estimates that drove it.
struct PredPlan {
  PredStrategy strategy = PredStrategy::kWitness;
  double est_rows = 0;  ///< estimated matching rows over all terminal types
};

/// \brief Zone-map admissibility of \p col 256-row block \p b for
/// `value op lit`: false means no row of the block can satisfy the
/// predicate, so a scan skips it whole. Conservative by construction (the
/// zone bounds cover the full block even when a scan visits only part of
/// it); semantics mirror TermMatches — string equality on the interned
/// term-id bounds, numeric comparisons on the value bounds, != never
/// skips. \p eq_term is the literal's dictionary term for the
/// string-equality case (idx::kNoTerm otherwise).
bool ZoneBlockCanMatch(const idx::ColumnStats& s, size_t b, CompareOp op,
                       const ValueLiteral& lit, uint32_t eq_term);

class CostModel {
 public:
  explicit CostModel(const storage::StoredDocument& stored,
                     CostWeights weights = {})
      : stored_(&stored), card_(stored), w_(weights) {}

  const CardinalityEstimator& cardinality() const { return card_; }

  /// True when the set-at-a-time bulk plan is estimated cheaper than the
  /// per-node indexed plan. Call only for paths in the bulk fragment.
  bool BulkBeatsIndexed(const Path& path) const;

  /// Estimated result cardinality (ExecStats::est_rows).
  double EstimateResultRows(const Path& path) const {
    return card_.EstimateResultRows(path);
  }

  /// Strategy choice for one [path op literal] predicate against a context
  /// list of \p n_context instances of \p context_type, with resolved
  /// terminal types \p terminal_types.
  PredPlan ChoosePredStrategy(dg::TypeId context_type, size_t n_context,
                              const std::vector<dg::TypeId>& terminal_types,
                              CompareOp op, const ValueLiteral& lit) const;

  /// Fraction of \p col's zone-map blocks a `value op lit` scan must visit
  /// (the rest skip on their min/max bounds). Exact, O(blocks).
  static double ZoneSurvivorFraction(const idx::TypeColumn& col, CompareOp op,
                                     const ValueLiteral& lit);

  /// Costed merge-vs-walk for a virtual axis step: a vtype merge join
  /// streams context + candidates once after setup; a walk binary-searches
  /// the candidate list per context node. Replaces the fixed context-size
  /// threshold.
  bool MergeBeatsWalk(size_t n_context, size_t n_candidates) const {
    double merge = w_.setup + (static_cast<double>(n_context) +
                               static_cast<double>(n_candidates)) *
                                  w_.row;
    double walk = static_cast<double>(n_context) * w_.probe *
                  Log2(n_candidates);
    return merge < walk;
  }

 private:
  static double Log2(size_t n);

  const storage::StoredDocument* stored_;
  CardinalityEstimator card_;
  CostWeights w_;
};

}  // namespace vpbn::query
