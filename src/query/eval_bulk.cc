#include "query/eval_bulk.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/parallel.h"
#include "pbn/packed.h"
#include "pbn/structural_join.h"
#include "query/cost_model.h"
#include "query/eval_indexed.h"
#include "query/partition_pruner.h"
#include "query/value_pushdown.h"

namespace vpbn::query {

namespace {

using num::PackedPbnList;
using num::Pbn;

/// Surviving instances per type. The lists stay packed (one arena per
/// type-list, pbn/codec.h ordered encoding) end to end: joins, semi-joins
/// and merges all run over arena bytes, and heap Pbns exist only in the
/// final materialized result.
using State = std::map<dg::TypeId, PackedPbnList>;

/// Per-type predicate filtering fans out on the pool only when the
/// surviving type count reaches this (each task runs a whole relative-chain
/// evaluation, so even small counts amortize).
constexpr size_t kParallelPredicateCutoff = 2;

/// One partition-wise evaluation task's view of the type index: main-chain
/// candidate pulls see only the group's contiguous row range of each type
/// plus the spine rows (storage/partitions.h) — the ancestors every group
/// needs to route chunk-local results through. Owned by a single task, so
/// the restricted-list cache needs no locking. Restricting candidates can
/// only *remove* instances, and a result row's whole ancestor chain is
/// either in-range or on the spine (the spine is ancestor-closed), so the
/// task finds exactly the results whose rows land in its range.
struct PartitionScope {
  const storage::DocumentPartitions* parts;
  size_t chunk_lo;
  size_t chunk_hi;
  std::map<dg::TypeId, PackedPbnList> cache;

  const PackedPbnList& Restricted(const storage::StoredDocument& stored,
                                  dg::TypeId t) {
    auto it = cache.find(t);
    if (it != cache.end()) return it->second;
    const PackedPbnList& full = stored.PackedNodesOfType(t);
    auto [lo, hi] = parts->TypeRange(t, chunk_lo, chunk_hi);
    const std::vector<uint32_t>& spine = parts->spine_rows[t];
    PackedPbnList out;
    // Spine rows below the range, the contiguous range (spine rows inside
    // it included), spine rows above — ascending rows, so the list keeps
    // the PBN order every join relies on.
    size_t i = 0;
    for (; i < spine.size() && spine[i] < lo; ++i) out.Append(full[spine[i]]);
    out.AppendSlice(full, lo, hi);
    for (; i < spine.size(); ++i) {
      if (spine[i] >= hi) out.Append(full[spine[i]]);
    }
    return cache.emplace(t, std::move(out)).first->second;
  }
};

/// Main-chain candidate instances of type \p t: the whole type list, or the
/// scope's restricted view under partition-wise evaluation. Predicate
/// chains always pass a null scope — a predicate witnesses a context from
/// anywhere in the document, restricted or not.
const PackedPbnList& Candidates(const storage::StoredDocument& stored,
                                dg::TypeId t, PartitionScope* scope) {
  return scope == nullptr ? stored.PackedNodesOfType(t)
                          : scope->Restricted(stored, t);
}

common::ThreadPool* PoolOf(ExecContext* ctx) {
  return ctx != nullptr ? ctx->pool() : nullptr;
}

bool TypeMatches(const dg::DataGuide& g, dg::TypeId t, const NodeTest& test) {
  return test.Matches(!g.IsTextType(t), g.label(t));
}

/// Fragment test: child/descendant chains, name-ish tests, predicates that
/// are existence chains of the same shape or recognized value predicates
/// ([path op literal], [@attr op literal], contains()/starts-with() — see
/// query/value_pushdown.h).
bool InFragment(const Path& path) {
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& step = path.steps[i];
    switch (step.axis) {
      case num::Axis::kChild:
      case num::Axis::kDescendant:
        break;
      case num::Axis::kDescendantOrSelf:
        // Only the '//'-style anonymous step (no predicates).
        if (step.test.kind != NodeTest::Kind::kAnyNode ||
            !step.predicates.empty()) {
          return false;
        }
        break;
      default:
        return false;
    }
    for (const auto& pred : step.predicates) {
      if (pred->kind == Expr::Kind::kPath) {
        if (!InFragment(pred->path)) return false;
        continue;
      }
      ValuePred vp;
      if (!RecognizeValuePred(*pred, &vp)) return false;
    }
  }
  return !path.steps.empty();
}

/// Runs the packed structural join for one step edge and flushes its work
/// counters into the context.
std::vector<num::JoinPair> Join(num::Axis axis, const PackedPbnList& ancestors,
                                const PackedPbnList& descendants,
                                ExecContext* ctx) {
  num::JoinCounters jc;
  std::vector<num::JoinPair> pairs =
      axis == num::Axis::kChild
          ? num::ParentChildJoin(ancestors, descendants, PoolOf(ctx), &jc)
          : num::AncestorDescendantJoin(ancestors, descendants, PoolOf(ctx),
                                        &jc);
  if (ctx) {
    ctx->CountJoinPairs(pairs.size());
    ctx->CountComparisons(jc.comparisons, jc.bytes_compared);
    ctx->CountBlockSkips(jc.block_skips);
  }
  return pairs;
}

/// Retains the context instances that have at least one descendant in
/// `witnesses` (all witness types are descendants of the context type, so
/// the ancestor side of the join identifies survivors).
PackedPbnList SemiJoinAncestors(const PackedPbnList& context,
                                const PackedPbnList& witnesses,
                                ExecContext* ctx) {
  std::vector<num::JoinPair> pairs =
      Join(num::Axis::kDescendant, context, witnesses, ctx);
  std::vector<bool> keep(context.size(), false);
  for (const num::JoinPair& p : pairs) keep[p.ancestor_index] = true;
  PackedPbnList out;
  for (size_t i = 0; i < context.size(); ++i) {
    if (keep[i]) out.Append(context[i]);
  }
  return out;
}

/// Evaluates `path` starting from `state` (document node when
/// `from_document` is set), returning the surviving per-type lists.
/// \p scope restricts main-chain candidate pulls to one partition group
/// (null = whole document); predicate sub-chains always run unscoped.
State EvalChain(const storage::StoredDocument& stored, const Path& path,
                size_t first_step, State state, bool from_document,
                ExecContext* ctx, PartitionScope* scope = nullptr);

bool UseValueIndex(ExecContext* ctx) {
  return ctx == nullptr || ctx->use_value_index();
}

/// kScanProbe: answers a [path op literal] predicate per context instance by
/// scanning its terminal-row range in the term column directly — no
/// matching-rows materialization, no witness sort. Whole 256-row blocks the
/// zone maps rule out are skipped, and the scan stops at the first hit.
/// Chosen by the cost model at high selectivity, where the witness path's
/// global sort alone costs more than these early-exiting scans.
PackedPbnList PredScanProbe(const storage::StoredDocument& stored,
                            const ValuePred& vp,
                            const std::vector<dg::TypeId>& tts,
                            const PackedPbnList& list, ExecContext* ctx) {
  const idx::ValueIndex& vi = stored.value_index();
  const idx::Dictionary& dict = vi.dict();
  const bool string_eq = vp.op == CompareOp::kEq && !vp.lit.numeric;
  const uint32_t eq_term = string_eq ? dict.Find(vp.lit.text) : idx::kNoTerm;
  PackedPbnList out;
  uint64_t skips = 0;
  uint64_t tested = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    bool keep = false;
    for (dg::TypeId tt : tts) {
      if (string_eq && eq_term == idx::kNoTerm) break;  // literal not interned
      const idx::TypeColumn* col = vi.Column(tt);
      auto [first, last] = stored.TypeRangeWithin(tt, list[i]);
      size_t row = first;
      while (row < last && !keep) {
        const size_t b = row / idx::ColumnStats::kZoneBlockRows;
        const size_t block_end =
            std::min(last, (b + 1) * idx::ColumnStats::kZoneBlockRows);
        if (!ZoneBlockCanMatch(col->stats, b, vp.op, vp.lit, eq_term)) {
          ++skips;
          row = block_end;
          continue;
        }
        for (; row < block_end; ++row) {
          ++tested;
          if (TermMatches(dict, col->term_ids[row], vp.op, vp.lit)) {
            keep = true;
            break;
          }
        }
      }
      if (keep) break;
    }
    if (keep) out.Append(list[i]);
  }
  if (ctx != nullptr) {
    ctx->CountValueIndexLookups(list.size() * tts.size());
    ctx->CountValueIndexPostings(tested);
    ctx->CountZoneMapSkips(skips);
  }
  return out;
}

/// kRowsProbe: answers the predicate per context instance by probing the
/// (memoized) sorted matching-rows list against the context's terminal-row
/// range. Contexts arrive in ascending document order, so the probe keeps a
/// monotone cursor over the rows list and skips whole 256-entry blocks on
/// their last entry (the block's implicit max) — the postings-block
/// counterpart of the value zone maps. Chosen for small contexts, where
/// materializing packed witnesses for every matching row would dominate.
PackedPbnList PredRowsProbe(const storage::StoredDocument& stored,
                            const Expr* pred, const ValuePred& vp,
                            const std::vector<dg::TypeId>& tts,
                            const PackedPbnList& list, ExecContext* ctx) {
  const idx::ValueIndex& vi = stored.value_index();
  std::vector<bool> keep(list.size(), false);
  uint64_t skips = 0;
  for (dg::TypeId tt : tts) {
    const idx::TypeColumn* col = vi.Column(tt);
    auto rows = MatchingRows(*col, pred, tt, vp.op, vp.lit, ctx);
    if (rows->empty()) continue;
    const size_t n = rows->size();
    const size_t nblocks =
        (n + idx::ColumnStats::kZoneBlockRows - 1) /
        idx::ColumnStats::kZoneBlockRows;
    size_t blk = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      if (keep[i]) continue;
      auto [first, last] = stored.TypeRangeWithin(tt, list[i]);
      if (first >= last) continue;
      // Range starts are non-decreasing (nested same-type contexts start
      // no earlier than their ancestors), so blocks left behind are left
      // behind for good.
      while (blk < nblocks) {
        const size_t tail =
            std::min(n, (blk + 1) * idx::ColumnStats::kZoneBlockRows) - 1;
        if ((*rows)[tail] < first) {
          ++blk;
          ++skips;
        } else {
          break;
        }
      }
      if (blk == nblocks) break;
      auto it = std::lower_bound(
          rows->begin() + blk * idx::ColumnStats::kZoneBlockRows, rows->end(),
          static_cast<uint32_t>(first));
      if (it != rows->end() && *it < last) keep[i] = true;
    }
  }
  PackedPbnList out;
  for (size_t i = 0; i < list.size(); ++i) {
    if (keep[i]) out.Append(list[i]);
  }
  if (ctx != nullptr) {
    ctx->CountValueIndexLookups(list.size() * tts.size());
    ctx->CountZoneMapSkips(skips);
  }
  return out;
}

/// Applies one recognized value predicate to one type's surviving list.
///
/// Path-compare predicates collect witness instances from the terminal
/// types' dictionary postings / numeric slices (per-node string scan where
/// a type has no column or the index is disabled) and semi-join them
/// against the context; attribute predicates mask the context list with
/// per-row term tests; contains()/starts-with() on a path tests each
/// context instance's document-order-first terminal instance against a
/// term bitmap (XPath coerces a node set to its first node's value).
PackedPbnList ApplyValuePred(const storage::StoredDocument& stored,
                             const Expr* pred, const ValuePred& vp,
                             dg::TypeId t, const PackedPbnList& list,
                             ExecContext* ctx) {
  const idx::ValueIndex& vi = stored.value_index();
  const dg::DataGuide& g = stored.dataguide();
  const bool use_index = UseValueIndex(ctx);
  PackedPbnList out;
  switch (vp.kind) {
    case ValuePred::Kind::kAttrCompare:
    case ValuePred::Kind::kAttrString: {
      const bool is_compare = vp.kind == ValuePred::Kind::kAttrCompare;
      const idx::Dictionary& dict = vi.dict();
      const idx::AttrColumn* col = vi.Attr(t, vp.attr);
      std::shared_ptr<const std::vector<uint8_t>> bitmap;
      if (!is_compare && use_index) {
        bitmap = TermBitmap(dict, vp.str_fn, vp.lit.text, ctx);
      }
      const num::PackedPbnList& full = stored.PackedNodesOfType(t);
      const std::vector<xml::NodeId>& ids = stored.NodeIdsOfType(t);
      for (size_t i = 0; i < list.size(); ++i) {
        // The surviving instance's row in the full type list (exact hit).
        size_t row = full.LowerBound(list[i]);
        bool keep;
        if (use_index) {
          uint32_t term =
              col != nullptr ? col->term_ids[row] : idx::kNoTerm;
          keep = is_compare
                     ? TermMatches(dict, term, vp.op, vp.lit)
                     : (term == idx::kNoTerm ? vp.lit.text.empty()
                                             : (*bitmap)[term] != 0);
        } else {
          // Ablation baseline: fetch the attribute from the document. A
          // missing attribute compares false under every operator and
          // coerces to "" for the string functions.
          std::string hay;
          bool present = false;
          if (stored.doc().IsElement(ids[row])) {
            auto attr = stored.doc().AttributeValue(ids[row], vp.attr);
            if (attr.ok()) {
              present = true;
              hay = std::move(attr).ValueUnsafe();
            }
          }
          keep = is_compare
                     ? (present && CompareValues(hay, vp.op, vp.lit.text))
                     : TermMatchesString(hay, vp.str_fn, vp.lit.text);
        }
        if (keep) out.Append(list[i]);
      }
      if (ctx != nullptr) {
        if (use_index) {
          ctx->CountValueIndexLookups(list.size());
        } else {
          ctx->CountValueScanFallbacks(list.size());
        }
      }
      return out;
    }
    case ValuePred::Kind::kPathCompare: {
      auto tts = ChainTypes(g, vp.path, t, ctx);
      if (use_index && ctx != nullptr && ctx->use_cost_model()) {
        // Costed strategy choice, applicable when every terminal type has a
        // value column (all three strategies are byte-identical; an
        // uncovered type needs the scan fallback below either way).
        bool covered = true;
        for (dg::TypeId tt : *tts) {
          if (vi.Column(tt) == nullptr) {
            covered = false;
            break;
          }
        }
        if (covered && !tts->empty()) {
          CostModel cm(stored);
          PredPlan plan =
              cm.ChoosePredStrategy(t, list.size(), *tts, vp.op, vp.lit);
          if (plan.strategy == PredStrategy::kScanProbe) {
            return PredScanProbe(stored, vp, *tts, list, ctx);
          }
          if (plan.strategy == PredStrategy::kRowsProbe) {
            return PredRowsProbe(stored, pred, vp, *tts, list, ctx);
          }
          // kWitness falls through to the default path below.
        }
      }
      PackedPbnList witnesses;
      for (dg::TypeId tt : *tts) {
        const idx::TypeColumn* col = vi.Column(tt);
        const num::PackedPbnList& packed = stored.PackedNodesOfType(tt);
        if (use_index && col != nullptr) {
          auto rows = MatchingRows(*col, pred, tt, vp.op, vp.lit, ctx);
          for (uint32_t row : *rows) witnesses.Append(packed[row]);
        } else {
          // Uncovered terminal type (nested structure) or ablation: scan
          // every instance's assembled string value.
          const std::vector<xml::NodeId>& ids = stored.NodeIdsOfType(tt);
          for (size_t row = 0; row < ids.size(); ++row) {
            if (CompareValues(stored.doc().StringValue(ids[row]), vp.op,
                              vp.lit.text)) {
              witnesses.Append(packed[row]);
            }
          }
          if (ctx != nullptr) ctx->CountValueScanFallbacks(ids.size());
        }
      }
      witnesses.SortUnique();
      return SemiJoinAncestors(list, witnesses, ctx);
    }
    case ValuePred::Kind::kPathString: {
      auto tts = ChainTypes(g, vp.path, t, ctx);
      std::shared_ptr<const std::vector<uint8_t>> bitmap;
      if (use_index) bitmap = TermBitmap(vi.dict(), vp.str_fn, vp.lit.text, ctx);
      for (size_t i = 0; i < list.size(); ++i) {
        // Document-order-first terminal instance within this context
        // instance (the node the scan path's string coercion reads).
        bool have = false;
        dg::TypeId best_tt = dg::kNullType;
        size_t best_row = 0;
        num::PackedPbnRef best{nullptr, 0, 0};
        for (dg::TypeId tt : *tts) {
          auto [first, last] = stored.TypeRangeWithin(tt, list[i]);
          if (first >= last) continue;
          num::PackedPbnRef candidate = stored.PackedNodesOfType(tt)[first];
          if (!have || candidate < best) {
            have = true;
            best = candidate;
            best_tt = tt;
            best_row = first;
          }
        }
        bool keep;
        if (!have) {
          keep = vp.lit.text.empty();  // empty node set coerces to ""
        } else {
          const idx::TypeColumn* col = vi.Column(best_tt);
          if (use_index && col != nullptr) {
            keep = (*bitmap)[col->term_ids[best_row]] != 0;
          } else {
            keep = TermMatchesString(
                stored.doc().StringValue(
                    stored.NodeIdsOfType(best_tt)[best_row]),
                vp.str_fn, vp.lit.text);
            if (ctx != nullptr) ctx->CountValueScanFallbacks(1);
          }
        }
        if (keep) out.Append(list[i]);
      }
      if (ctx != nullptr && use_index) {
        ctx->CountValueIndexLookups(list.size());
      }
      return out;
    }
  }
  return out;
}

/// Rough work estimate for one predicate against the current state, used
/// to order a step's predicates cheapest (most selective machinery) first:
/// attribute masks touch only the context list; indexed path comparisons
/// touch their matching rows; everything else streams over the terminal
/// types' full instance lists. The row collections are memoized in the
/// context, so estimating does not duplicate work the application pass
/// would do anyway.
uint64_t EstimatePredCost(const storage::StoredDocument& stored,
                          const Expr& pred, const State& state,
                          ExecContext* ctx) {
  const dg::DataGuide& g = stored.dataguide();
  uint64_t total = 0;
  ValuePred vp;
  if (pred.kind != Expr::Kind::kPath && RecognizeValuePred(pred, &vp)) {
    if (vp.kind == ValuePred::Kind::kAttrCompare ||
        vp.kind == ValuePred::Kind::kAttrString) {
      for (const auto& [t, list] : state) total += list.size();
      return total;
    }
    const bool use_index = UseValueIndex(ctx);
    for (const auto& [t, list] : state) {
      auto tts = ChainTypes(g, vp.path, t, ctx);
      for (dg::TypeId tt : *tts) {
        const idx::TypeColumn* col = stored.value_index().Column(tt);
        if (vp.kind == ValuePred::Kind::kPathString) {
          total += use_index && col != nullptr
                       ? list.size()
                       : stored.PackedNodesOfType(tt).size();
        } else if (use_index && col != nullptr) {
          if (ctx != nullptr && ctx->use_cost_model()) {
            // Histogram estimate: order predicates without materializing
            // their matching-rows lists (a costed strategy may never need
            // them at all).
            total += static_cast<uint64_t>(
                CardinalityEstimator::ColumnSelectivity(*col, vp.op, vp.lit) *
                static_cast<double>(col->stats.row_count));
          } else {
            total +=
                MatchingRows(*col, &pred, tt, vp.op, vp.lit, ctx)->size();
          }
        } else {
          total += stored.PackedNodesOfType(tt).size();
        }
      }
    }
    return total;
  }
  // Existence chain: the semi-join streams over every terminal instance.
  for (const auto& [t, list] : state) {
    for (dg::TypeId tt : ResolveChainTypes(g, t, pred.path)) {
      total += stored.PackedNodesOfType(tt).size();
    }
  }
  return total;
}

/// Applies one step's predicates to every per-type list, cheapest first.
/// The per-type filters are independent (each anchors at one type and
/// reads only the immutable indexes and the context's thread-safe caches),
/// so they fan out on the pool; the filtered map is rebuilt in type order
/// afterwards, keeping the result identical to the sequential pass. All
/// predicate forms here are existential, so applying them in selectivity
/// order changes the work, never the result.
State ApplyPredicates(const storage::StoredDocument& stored, const Step& step,
                      State state, ExecContext* ctx) {
  std::vector<const Expr*> preds;
  preds.reserve(step.predicates.size());
  for (const auto& pred : step.predicates) preds.push_back(pred.get());
  if (preds.size() > 1) {
    std::vector<std::pair<uint64_t, const Expr*>> costed;
    costed.reserve(preds.size());
    for (const Expr* p : preds) {
      costed.emplace_back(EstimatePredCost(stored, *p, state, ctx), p);
    }
    std::stable_sort(
        costed.begin(), costed.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < costed.size(); ++i) preds[i] = costed[i].second;
  }
  for (const Expr* pred : preds) {
    ValuePred vp;
    const bool is_value =
        pred->kind != Expr::Kind::kPath && RecognizeValuePred(*pred, &vp);
    std::vector<std::pair<dg::TypeId, PackedPbnList>> entries(
        std::make_move_iterator(state.begin()),
        std::make_move_iterator(state.end()));
    std::vector<PackedPbnList> kept(entries.size());
    common::ParallelFor(
        entries.size() >= kParallelPredicateCutoff ? PoolOf(ctx) : nullptr,
        entries.size(), /*grain=*/1, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            auto& [t, list] = entries[i];
            if (list.empty()) continue;
            if (is_value) {
              kept[i] = ApplyValuePred(stored, pred, vp, t, list, ctx);
              continue;
            }
            // Evaluate the relative chain anchored at this type.
            State anchor;
            anchor.emplace(t, list);
            State terminal = EvalChain(stored, pred->path, 0,
                                       std::move(anchor),
                                       /*from_document=*/false, ctx);
            // Union of all terminal instances witnesses the predicate.
            PackedPbnList witnesses;
            for (auto& [tt, tlist] : terminal) {
              for (size_t j = 0; j < tlist.size(); ++j) {
                witnesses.Append(tlist[j]);
              }
            }
            witnesses.SortUnique();
            kept[i] = SemiJoinAncestors(list, witnesses, ctx);
          }
        });
    State filtered;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!kept[i].empty()) {
        filtered.emplace(entries[i].first, std::move(kept[i]));
      }
    }
    state = std::move(filtered);
  }
  return state;
}

State EvalChain(const storage::StoredDocument& stored, const Path& path,
                size_t first_step, State state, bool from_document,
                ExecContext* ctx, PartitionScope* scope) {
  const dg::DataGuide& g = stored.dataguide();
  bool doc_node = from_document;
  for (size_t s = first_step; s < path.steps.size(); ++s) {
    const Step& step = path.steps[s];
    if (step.axis == num::Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode) {
      // The '//' anonymous step: extend every context type with all of its
      // descendants (instances unrestricted below the context — the next
      // step's join against the context list does the real filtering, so
      // fold this step into the next by expanding the *type* frontier).
      State next = state;
      for (auto& [t, list] : state) {
        for (dg::TypeId dt : g.DescendantTypes(t)) {
          // Descendant instances within any context instance: join.
          const PackedPbnList& all = Candidates(stored, dt, scope);
          auto pairs = Join(num::Axis::kDescendant, list, all, ctx);
          std::vector<bool> mark(all.size(), false);
          for (const num::JoinPair& p : pairs) mark[p.descendant_index] = true;
          PackedPbnList kept;
          for (size_t i = 0; i < all.size(); ++i) {
            if (mark[i]) kept.Append(all[i]);
          }
          if (kept.empty()) continue;
          auto it = next.find(dt);
          if (it == next.end()) {
            next.emplace(dt, std::move(kept));
          } else {
            it->second = PackedPbnList::MergeUnique(it->second, kept);
          }
        }
      }
      if (doc_node) {
        // From the document node '//' reaches every type in full.
        next.clear();
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          next.emplace(t, Candidates(stored, t, scope));
        }
        doc_node = false;
      }
      state = std::move(next);
      continue;
    }

    State next;
    auto add = [&](dg::TypeId nt, PackedPbnList kept) {
      if (kept.empty()) return;
      if (ctx) ctx->CountNodes(kept.size());
      auto it = next.find(nt);
      if (it == next.end()) {
        next.emplace(nt, std::move(kept));
      } else {
        it->second = PackedPbnList::MergeUnique(it->second, kept);
      }
    };

    if (doc_node) {
      // Step from the document node.
      if (step.axis == num::Axis::kChild) {
        for (dg::TypeId rt : g.roots()) {
          if (TypeMatches(g, rt, step.test)) {
            add(rt, Candidates(stored, rt, scope));
          }
        }
      } else {  // descendant
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          if (TypeMatches(g, t, step.test)) {
            add(t, Candidates(stored, t, scope));
          }
        }
      }
      doc_node = false;
    } else {
      for (auto& [t, list] : state) {
        std::vector<dg::TypeId> candidates;
        if (step.axis == num::Axis::kChild) {
          candidates = g.children(t);
        } else {
          candidates = g.DescendantTypes(t);
        }
        for (dg::TypeId nt : candidates) {
          if (!TypeMatches(g, nt, step.test)) continue;
          const PackedPbnList& all = Candidates(stored, nt, scope);
          std::vector<num::JoinPair> pairs = Join(step.axis, list, all, ctx);
          std::vector<bool> mark(all.size(), false);
          for (const num::JoinPair& p : pairs) mark[p.descendant_index] = true;
          PackedPbnList kept;
          for (size_t i = 0; i < all.size(); ++i) {
            if (mark[i]) kept.Append(all[i]);
          }
          add(nt, std::move(kept));
        }
      }
    }
    state = std::move(next);
    state = ApplyPredicates(stored, step, std::move(state), ctx);
  }
  return state;
}

}  // namespace

bool InBulkFragment(const Path& path) { return InFragment(path); }

Result<std::vector<Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                  const Path& path, ExecContext* ctx) {
  if (!InFragment(path)) {
    return Status::NotImplemented(
        "bulk evaluation supports child/descendant chains with existence "
        "and value (comparison / contains / starts-with) predicates only");
  }
  State state =
      EvalChain(stored, path, 0, State(), /*from_document=*/true, ctx);
  std::vector<Pbn> out;
  for (auto& [t, list] : state) {
    for (size_t i = 0; i < list.size(); ++i) {
      out.push_back(list.Materialize(i));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                  std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalBulk(stored, path);
}

Result<std::vector<Pbn>> EvalBulkPartitioned(
    const storage::StoredDocument& stored, const Path& path, int partitions,
    ExecContext* ctx) {
  if (!InFragment(path)) {
    return Status::NotImplemented(
        "bulk evaluation supports child/descendant chains with existence "
        "and value (comparison / contains / starts-with) predicates only");
  }
  const storage::DocumentPartitions& parts = stored.partitions();
  const size_t chunks = parts.count();
  const size_t want = partitions > 0 ? static_cast<size_t>(partitions) : 0;
  if (chunks <= 1 || want <= 1) return EvalBulk(stored, path, ctx);

  // Group the build-time chunks into K balanced contiguous tasks, prune
  // groups the partition metadata proves empty, and evaluate the rest on
  // the pool. Each task reports only rows inside its own range; ranges
  // partition every type's rows, so the concatenation is duplicate-free and
  // — after the same sort EvalBulk runs — byte-identical to unpartitioned.
  const size_t k = std::min(want, chunks);
  struct Group {
    size_t chunk_lo;
    size_t chunk_hi;
  };
  std::vector<Group> groups;
  groups.reserve(k);
  uint64_t skips = 0;
  for (size_t i = 0; i < k; ++i) {
    Group grp{chunks * i / k, chunks * (i + 1) / k};
    if (PartitionGroupCanMatch(stored, path, grp.chunk_lo, grp.chunk_hi,
                               ctx)) {
      groups.push_back(grp);
    } else {
      ++skips;
    }
  }
  if (ctx != nullptr) {
    ctx->CountPartitionSkips(skips);
    ctx->CountPartitionsUsed(groups.size());
  }

  std::vector<std::vector<Pbn>> per_group(groups.size());
  common::ParallelFor(PoolOf(ctx), groups.size(), /*grain=*/1,
                      [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      PartitionScope scope{&parts, groups[i].chunk_lo, groups[i].chunk_hi,
                           {}};
      State st =
          EvalChain(stored, path, 0, State(), /*from_document=*/true, ctx,
                    &scope);
      std::vector<Pbn>& out = per_group[i];
      for (auto& [t, list] : st) {
        auto [lo, hi] =
            parts.TypeRange(t, groups[i].chunk_lo, groups[i].chunk_hi);
        if (lo >= hi) continue;
        // Keep survivors whose global row lands in this group's range —
        // spine survivors outside it belong to (and are found by) the
        // group that owns their row.
        const PackedPbnList& full = stored.PackedNodesOfType(t);
        for (size_t j = 0; j < list.size(); ++j) {
          const size_t row = full.LowerBound(list[j]);
          if (row >= lo && row < hi) out.push_back(list[j].Materialize());
        }
      }
    }
  });

  std::vector<Pbn> out;
  for (std::vector<Pbn>& g : per_group) {
    out.insert(out.end(), std::make_move_iterator(g.begin()),
               std::make_move_iterator(g.end()));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, const Path& path,
    ExecContext* ctx) {
  auto bulk = EvalBulk(stored, path, ctx);
  if (bulk.ok() || !bulk.status().IsNotImplemented()) return bulk;
  return EvalIndexed(stored, path, ctx);
}

Result<std::vector<Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalBulkOrIndexed(stored, path);
}

}  // namespace vpbn::query
