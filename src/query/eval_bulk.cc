#include "query/eval_bulk.h"

#include <algorithm>
#include <map>

#include "common/parallel.h"
#include "pbn/structural_join.h"
#include "query/eval_indexed.h"

namespace vpbn::query {

namespace {

using num::Pbn;

/// Surviving instances per type, lists kept in document order.
using State = std::map<dg::TypeId, std::vector<Pbn>>;

/// Per-type predicate filtering fans out on the pool only when the
/// surviving type count reaches this (each task runs a whole relative-chain
/// evaluation, so even small counts amortize).
constexpr size_t kParallelPredicateCutoff = 2;

common::ThreadPool* PoolOf(ExecContext* ctx) {
  return ctx != nullptr ? ctx->pool() : nullptr;
}

bool TypeMatches(const dg::DataGuide& g, dg::TypeId t, const NodeTest& test) {
  return test.Matches(!g.IsTextType(t), g.label(t));
}

/// Fragment test: child/descendant chains, name-ish tests, existence
/// predicates that are themselves such chains.
bool InFragment(const Path& path) {
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& step = path.steps[i];
    switch (step.axis) {
      case num::Axis::kChild:
      case num::Axis::kDescendant:
        break;
      case num::Axis::kDescendantOrSelf:
        // Only the '//'-style anonymous step (no predicates).
        if (step.test.kind != NodeTest::Kind::kAnyNode ||
            !step.predicates.empty()) {
          return false;
        }
        break;
      default:
        return false;
    }
    for (const auto& pred : step.predicates) {
      if (pred->kind != Expr::Kind::kPath) return false;
      if (!InFragment(pred->path)) return false;
    }
  }
  return !path.steps.empty();
}

/// Retains the context instances that have at least one descendant in
/// `witnesses` (all witness types are descendants of the context type, so
/// the ancestor side of the join identifies survivors).
std::vector<Pbn> SemiJoinAncestors(const std::vector<Pbn>& context,
                                   const std::vector<Pbn>& witnesses,
                                   ExecContext* ctx) {
  std::vector<num::JoinPair> pairs =
      num::AncestorDescendantJoin(context, witnesses, PoolOf(ctx));
  if (ctx) ctx->CountJoinPairs(pairs.size());
  std::vector<bool> keep(context.size(), false);
  for (const num::JoinPair& p : pairs) keep[p.ancestor_index] = true;
  std::vector<Pbn> out;
  for (size_t i = 0; i < context.size(); ++i) {
    if (keep[i]) out.push_back(context[i]);
  }
  return out;
}

/// Evaluates `path` starting from `state` (document node when
/// `from_document` is set), returning the surviving per-type lists.
State EvalChain(const storage::StoredDocument& stored, const Path& path,
                size_t first_step, State state, bool from_document,
                ExecContext* ctx);

/// Applies one step's existence predicates to every per-type list. The
/// per-type semi-joins are independent (each anchors the relative chain at
/// one type and reads only the immutable indexes), so they fan out on the
/// pool; the filtered map is rebuilt in type order afterwards, keeping the
/// result identical to the sequential pass.
State ApplyPredicates(const storage::StoredDocument& stored, const Step& step,
                      State state, ExecContext* ctx) {
  for (const auto& pred : step.predicates) {
    std::vector<std::pair<dg::TypeId, std::vector<Pbn>>> entries(
        std::make_move_iterator(state.begin()),
        std::make_move_iterator(state.end()));
    std::vector<std::vector<Pbn>> kept(entries.size());
    common::ParallelFor(
        entries.size() >= kParallelPredicateCutoff ? PoolOf(ctx) : nullptr,
        entries.size(), /*grain=*/1, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            auto& [t, list] = entries[i];
            if (list.empty()) continue;
            // Evaluate the relative chain anchored at this type.
            State anchor;
            anchor.emplace(t, list);
            State terminal = EvalChain(stored, pred->path, 0,
                                       std::move(anchor),
                                       /*from_document=*/false, ctx);
            // Union of all terminal instances witnesses the predicate.
            std::vector<Pbn> witnesses;
            for (auto& [tt, tlist] : terminal) {
              witnesses.insert(witnesses.end(), tlist.begin(), tlist.end());
            }
            std::sort(witnesses.begin(), witnesses.end());
            kept[i] = SemiJoinAncestors(list, witnesses, ctx);
          }
        });
    State filtered;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!kept[i].empty()) {
        filtered.emplace(entries[i].first, std::move(kept[i]));
      }
    }
    state = std::move(filtered);
  }
  return state;
}

State EvalChain(const storage::StoredDocument& stored, const Path& path,
                size_t first_step, State state, bool from_document,
                ExecContext* ctx) {
  const dg::DataGuide& g = stored.dataguide();
  common::ThreadPool* pool = PoolOf(ctx);
  bool doc_node = from_document;
  for (size_t s = first_step; s < path.steps.size(); ++s) {
    const Step& step = path.steps[s];
    if (step.axis == num::Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode) {
      // The '//' anonymous step: extend every context type with all of its
      // descendants (instances unrestricted below the context — the next
      // step's join against the context list does the real filtering, so
      // fold this step into the next by expanding the *type* frontier).
      State next = state;
      for (auto& [t, list] : state) {
        for (dg::TypeId dt : g.DescendantTypes(t)) {
          // Descendant instances within any context instance: join.
          auto pairs =
              num::AncestorDescendantJoin(list, stored.NodesOfType(dt), pool);
          if (ctx) ctx->CountJoinPairs(pairs.size());
          std::vector<Pbn> kept;
          const auto& all = stored.NodesOfType(dt);
          std::vector<bool> mark(all.size(), false);
          for (const num::JoinPair& p : pairs) mark[p.descendant_index] = true;
          for (size_t i = 0; i < all.size(); ++i) {
            if (mark[i]) kept.push_back(all[i]);
          }
          if (kept.empty()) continue;
          auto [it, inserted] = next.emplace(dt, kept);
          if (!inserted) {
            // Merge sorted unique.
            std::vector<Pbn> merged;
            std::merge(it->second.begin(), it->second.end(), kept.begin(),
                       kept.end(), std::back_inserter(merged));
            merged.erase(std::unique(merged.begin(), merged.end()),
                         merged.end());
            it->second = std::move(merged);
          }
        }
      }
      if (doc_node) {
        // From the document node '//' reaches every type in full.
        next.clear();
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          next.emplace(t, stored.NodesOfType(t));
        }
        doc_node = false;
      }
      state = std::move(next);
      continue;
    }

    State next;
    auto add = [&](dg::TypeId nt, std::vector<Pbn> kept) {
      if (kept.empty()) return;
      if (ctx) ctx->CountNodes(kept.size());
      auto [it, inserted] = next.emplace(nt, std::move(kept));
      if (!inserted) {
        std::vector<Pbn> merged;
        std::merge(it->second.begin(), it->second.end(), kept.begin(),
                   kept.end(), std::back_inserter(merged));
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        it->second = std::move(merged);
      }
    };

    if (doc_node) {
      // Step from the document node.
      if (step.axis == num::Axis::kChild) {
        for (dg::TypeId rt : g.roots()) {
          if (TypeMatches(g, rt, step.test)) add(rt, stored.NodesOfType(rt));
        }
      } else {  // descendant
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          if (TypeMatches(g, t, step.test)) add(t, stored.NodesOfType(t));
        }
      }
      doc_node = false;
    } else {
      for (auto& [t, list] : state) {
        std::vector<dg::TypeId> candidates;
        if (step.axis == num::Axis::kChild) {
          candidates = g.children(t);
        } else {
          candidates = g.DescendantTypes(t);
        }
        for (dg::TypeId nt : candidates) {
          if (!TypeMatches(g, nt, step.test)) continue;
          const std::vector<Pbn>& all = stored.NodesOfType(nt);
          std::vector<num::JoinPair> pairs =
              step.axis == num::Axis::kChild
                  ? num::ParentChildJoin(list, all, pool)
                  : num::AncestorDescendantJoin(list, all, pool);
          if (ctx) ctx->CountJoinPairs(pairs.size());
          std::vector<bool> mark(all.size(), false);
          for (const num::JoinPair& p : pairs) mark[p.descendant_index] = true;
          std::vector<Pbn> kept;
          for (size_t i = 0; i < all.size(); ++i) {
            if (mark[i]) kept.push_back(all[i]);
          }
          add(nt, std::move(kept));
        }
      }
    }
    state = std::move(next);
    state = ApplyPredicates(stored, step, std::move(state), ctx);
  }
  return state;
}

}  // namespace

bool InBulkFragment(const Path& path) { return InFragment(path); }

Result<std::vector<Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                  const Path& path, ExecContext* ctx) {
  if (!InFragment(path)) {
    return Status::NotImplemented(
        "bulk evaluation supports child/descendant chains with existence "
        "predicates only");
  }
  State state =
      EvalChain(stored, path, 0, State(), /*from_document=*/true, ctx);
  std::vector<Pbn> out;
  for (auto& [t, list] : state) {
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                  std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalBulk(stored, path);
}

Result<std::vector<Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, const Path& path,
    ExecContext* ctx) {
  auto bulk = EvalBulk(stored, path, ctx);
  if (bulk.ok() || !bulk.status().IsNotImplemented()) return bulk;
  return EvalIndexed(stored, path, ctx);
}

Result<std::vector<Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalBulkOrIndexed(stored, path);
}

}  // namespace vpbn::query
