#include "query/eval_bulk.h"

#include <algorithm>
#include <map>

#include "common/parallel.h"
#include "pbn/packed.h"
#include "pbn/structural_join.h"
#include "query/eval_indexed.h"

namespace vpbn::query {

namespace {

using num::PackedPbnList;
using num::Pbn;

/// Surviving instances per type. The lists stay packed (one arena per
/// type-list, pbn/codec.h ordered encoding) end to end: joins, semi-joins
/// and merges all run over arena bytes, and heap Pbns exist only in the
/// final materialized result.
using State = std::map<dg::TypeId, PackedPbnList>;

/// Per-type predicate filtering fans out on the pool only when the
/// surviving type count reaches this (each task runs a whole relative-chain
/// evaluation, so even small counts amortize).
constexpr size_t kParallelPredicateCutoff = 2;

common::ThreadPool* PoolOf(ExecContext* ctx) {
  return ctx != nullptr ? ctx->pool() : nullptr;
}

bool TypeMatches(const dg::DataGuide& g, dg::TypeId t, const NodeTest& test) {
  return test.Matches(!g.IsTextType(t), g.label(t));
}

/// Fragment test: child/descendant chains, name-ish tests, existence
/// predicates that are themselves such chains.
bool InFragment(const Path& path) {
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& step = path.steps[i];
    switch (step.axis) {
      case num::Axis::kChild:
      case num::Axis::kDescendant:
        break;
      case num::Axis::kDescendantOrSelf:
        // Only the '//'-style anonymous step (no predicates).
        if (step.test.kind != NodeTest::Kind::kAnyNode ||
            !step.predicates.empty()) {
          return false;
        }
        break;
      default:
        return false;
    }
    for (const auto& pred : step.predicates) {
      if (pred->kind != Expr::Kind::kPath) return false;
      if (!InFragment(pred->path)) return false;
    }
  }
  return !path.steps.empty();
}

/// Runs the packed structural join for one step edge and flushes its work
/// counters into the context.
std::vector<num::JoinPair> Join(num::Axis axis, const PackedPbnList& ancestors,
                                const PackedPbnList& descendants,
                                ExecContext* ctx) {
  num::JoinCounters jc;
  std::vector<num::JoinPair> pairs =
      axis == num::Axis::kChild
          ? num::ParentChildJoin(ancestors, descendants, PoolOf(ctx), &jc)
          : num::AncestorDescendantJoin(ancestors, descendants, PoolOf(ctx),
                                        &jc);
  if (ctx) {
    ctx->CountJoinPairs(pairs.size());
    ctx->CountComparisons(jc.comparisons, jc.bytes_compared);
  }
  return pairs;
}

/// Retains the context instances that have at least one descendant in
/// `witnesses` (all witness types are descendants of the context type, so
/// the ancestor side of the join identifies survivors).
PackedPbnList SemiJoinAncestors(const PackedPbnList& context,
                                const PackedPbnList& witnesses,
                                ExecContext* ctx) {
  std::vector<num::JoinPair> pairs =
      Join(num::Axis::kDescendant, context, witnesses, ctx);
  std::vector<bool> keep(context.size(), false);
  for (const num::JoinPair& p : pairs) keep[p.ancestor_index] = true;
  PackedPbnList out;
  for (size_t i = 0; i < context.size(); ++i) {
    if (keep[i]) out.Append(context[i]);
  }
  return out;
}

/// Evaluates `path` starting from `state` (document node when
/// `from_document` is set), returning the surviving per-type lists.
State EvalChain(const storage::StoredDocument& stored, const Path& path,
                size_t first_step, State state, bool from_document,
                ExecContext* ctx);

/// Applies one step's existence predicates to every per-type list. The
/// per-type semi-joins are independent (each anchors the relative chain at
/// one type and reads only the immutable indexes), so they fan out on the
/// pool; the filtered map is rebuilt in type order afterwards, keeping the
/// result identical to the sequential pass.
State ApplyPredicates(const storage::StoredDocument& stored, const Step& step,
                      State state, ExecContext* ctx) {
  for (const auto& pred : step.predicates) {
    std::vector<std::pair<dg::TypeId, PackedPbnList>> entries(
        std::make_move_iterator(state.begin()),
        std::make_move_iterator(state.end()));
    std::vector<PackedPbnList> kept(entries.size());
    common::ParallelFor(
        entries.size() >= kParallelPredicateCutoff ? PoolOf(ctx) : nullptr,
        entries.size(), /*grain=*/1, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            auto& [t, list] = entries[i];
            if (list.empty()) continue;
            // Evaluate the relative chain anchored at this type.
            State anchor;
            anchor.emplace(t, list);
            State terminal = EvalChain(stored, pred->path, 0,
                                       std::move(anchor),
                                       /*from_document=*/false, ctx);
            // Union of all terminal instances witnesses the predicate.
            PackedPbnList witnesses;
            for (auto& [tt, tlist] : terminal) {
              for (size_t j = 0; j < tlist.size(); ++j) {
                witnesses.Append(tlist[j]);
              }
            }
            witnesses.SortUnique();
            kept[i] = SemiJoinAncestors(list, witnesses, ctx);
          }
        });
    State filtered;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!kept[i].empty()) {
        filtered.emplace(entries[i].first, std::move(kept[i]));
      }
    }
    state = std::move(filtered);
  }
  return state;
}

State EvalChain(const storage::StoredDocument& stored, const Path& path,
                size_t first_step, State state, bool from_document,
                ExecContext* ctx) {
  const dg::DataGuide& g = stored.dataguide();
  bool doc_node = from_document;
  for (size_t s = first_step; s < path.steps.size(); ++s) {
    const Step& step = path.steps[s];
    if (step.axis == num::Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode) {
      // The '//' anonymous step: extend every context type with all of its
      // descendants (instances unrestricted below the context — the next
      // step's join against the context list does the real filtering, so
      // fold this step into the next by expanding the *type* frontier).
      State next = state;
      for (auto& [t, list] : state) {
        for (dg::TypeId dt : g.DescendantTypes(t)) {
          // Descendant instances within any context instance: join.
          const PackedPbnList& all = stored.PackedNodesOfType(dt);
          auto pairs = Join(num::Axis::kDescendant, list, all, ctx);
          std::vector<bool> mark(all.size(), false);
          for (const num::JoinPair& p : pairs) mark[p.descendant_index] = true;
          PackedPbnList kept;
          for (size_t i = 0; i < all.size(); ++i) {
            if (mark[i]) kept.Append(all[i]);
          }
          if (kept.empty()) continue;
          auto it = next.find(dt);
          if (it == next.end()) {
            next.emplace(dt, std::move(kept));
          } else {
            it->second = PackedPbnList::MergeUnique(it->second, kept);
          }
        }
      }
      if (doc_node) {
        // From the document node '//' reaches every type in full.
        next.clear();
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          next.emplace(t, stored.PackedNodesOfType(t));
        }
        doc_node = false;
      }
      state = std::move(next);
      continue;
    }

    State next;
    auto add = [&](dg::TypeId nt, PackedPbnList kept) {
      if (kept.empty()) return;
      if (ctx) ctx->CountNodes(kept.size());
      auto it = next.find(nt);
      if (it == next.end()) {
        next.emplace(nt, std::move(kept));
      } else {
        it->second = PackedPbnList::MergeUnique(it->second, kept);
      }
    };

    if (doc_node) {
      // Step from the document node.
      if (step.axis == num::Axis::kChild) {
        for (dg::TypeId rt : g.roots()) {
          if (TypeMatches(g, rt, step.test)) {
            add(rt, stored.PackedNodesOfType(rt));
          }
        }
      } else {  // descendant
        for (dg::TypeId t = 0; t < g.num_types(); ++t) {
          if (TypeMatches(g, t, step.test)) {
            add(t, stored.PackedNodesOfType(t));
          }
        }
      }
      doc_node = false;
    } else {
      for (auto& [t, list] : state) {
        std::vector<dg::TypeId> candidates;
        if (step.axis == num::Axis::kChild) {
          candidates = g.children(t);
        } else {
          candidates = g.DescendantTypes(t);
        }
        for (dg::TypeId nt : candidates) {
          if (!TypeMatches(g, nt, step.test)) continue;
          const PackedPbnList& all = stored.PackedNodesOfType(nt);
          std::vector<num::JoinPair> pairs = Join(step.axis, list, all, ctx);
          std::vector<bool> mark(all.size(), false);
          for (const num::JoinPair& p : pairs) mark[p.descendant_index] = true;
          PackedPbnList kept;
          for (size_t i = 0; i < all.size(); ++i) {
            if (mark[i]) kept.Append(all[i]);
          }
          add(nt, std::move(kept));
        }
      }
    }
    state = std::move(next);
    state = ApplyPredicates(stored, step, std::move(state), ctx);
  }
  return state;
}

}  // namespace

bool InBulkFragment(const Path& path) { return InFragment(path); }

Result<std::vector<Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                  const Path& path, ExecContext* ctx) {
  if (!InFragment(path)) {
    return Status::NotImplemented(
        "bulk evaluation supports child/descendant chains with existence "
        "predicates only");
  }
  State state =
      EvalChain(stored, path, 0, State(), /*from_document=*/true, ctx);
  std::vector<Pbn> out;
  for (auto& [t, list] : state) {
    for (size_t i = 0; i < list.size(); ++i) {
      out.push_back(list.Materialize(i));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<Pbn>> EvalBulk(const storage::StoredDocument& stored,
                                  std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalBulk(stored, path);
}

Result<std::vector<Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, const Path& path,
    ExecContext* ctx) {
  auto bulk = EvalBulk(stored, path, ctx);
  if (bulk.ok() || !bulk.status().IsNotImplemented()) return bulk;
  return EvalIndexed(stored, path, ctx);
}

Result<std::vector<Pbn>> EvalBulkOrIndexed(
    const storage::StoredDocument& stored, std::string_view path_text) {
  VPBN_ASSIGN_OR_RETURN(Path path, ParsePath(path_text));
  return EvalBulkOrIndexed(stored, path);
}

}  // namespace vpbn::query
