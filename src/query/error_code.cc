#include "query/error_code.h"

namespace vpbn::query {

const char* ErrorCodeToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOverload:
      return "overload";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

ErrorCode ErrorCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ErrorCode::kOk;
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
      return ErrorCode::kParse;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kOverload;
    case StatusCode::kInternal:
    case StatusCode::kNotImplemented:
      return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

}  // namespace vpbn::query
