/// \file eval_virtual.h
/// \brief Virtual evaluation: the paper's contribution applied to queries.
///
/// Path steps run directly against the vDataGuide's virtual type forest and
/// the original document's type index; axis membership between instances is
/// decided by vPBN number comparison (vpbn/vpbn.h). No data is transformed:
/// "our approach is to virtually transform only the data needed by the
/// query by applying the transformation at the level of the node numbers
/// used in the query" (§4.3).
///
/// Axis evaluation is join-based where the axis allows it: BatchAxis
/// partitions the context by virtual type and, for every (context-vtype,
/// result-vtype) pair the type forest can produce, runs one merge
/// (virt::MergeCompatiblePairs) over the pair's batch-decoded instance
/// columns — a linear pass per pair instead of |context| x |candidates|
/// predicate calls. Pairs whose intermediate chain is not provably intact
/// (ChainSafe) fall back to the exact per-node chain expansion, so results
/// are byte-identical to the per-candidate path.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/evaluator.h"
#include "query/path_parser.h"
#include "vpbn/virtual_document.h"

namespace vpbn::query {

/// \brief Adapter over a VirtualDocument for PathEvaluator.
class VirtualAdapter {
 public:
  using Node = virt::VirtualNode;

  /// VirtualDocument's only query-local scratch state is the pair of lazy
  /// caches (reachability bitmaps, decoded columns), which synchronize
  /// internally (virtual_document.h), so the const interface is safe for
  /// concurrent use.
  static constexpr bool kParallelSafe = true;

  /// \p ctx (optional) supplies the merge-join knobs, the MatchingVTypes
  /// cache and the stats counters; it must outlive the adapter.
  explicit VirtualAdapter(const virt::VirtualDocument& vdoc,
                          ExecContext* ctx = nullptr)
      : vdoc_(&vdoc), ctx_(ctx) {}

  std::vector<Node> DocumentRoots(const NodeTest& test) const;
  std::vector<Node> AllNodes(const NodeTest& test) const;
  std::vector<Node> Axis(const Node& n, num::Axis axis,
                         const NodeTest& test) const;

  /// Whole-context axis evaluation by vtype-pair merge joins (see the file
  /// comment). True: slots[i] holds Axis(context[i], axis, test) as a set,
  /// duplicate-free. False: axis not covered (self / order / sibling axes),
  /// merge joins disabled (ExecContext::virtual_join), or the context is
  /// too small for a full-list merge to beat the per-node range scans.
  bool BatchAxis(const std::vector<Node>& context, num::Axis axis,
                 const NodeTest& test,
                 std::vector<std::vector<Node>>* slots) const;

  /// BatchAxis without the per-slot materialization: appends every hit to
  /// \p out directly (task order; the caller's SortUnique restores document
  /// order). For steps with no predicates this skips one small vector
  /// allocation per context node — positional semantics never look at the
  /// per-slot lists there, and slots are duplicate-free, so the flattened
  /// result and the per-node counts are unchanged. Same false conditions
  /// as BatchAxis.
  bool BatchAxisFlat(const std::vector<Node>& context, num::Axis axis,
                     const NodeTest& test, std::vector<Node>* out) const;

  void SortUnique(std::vector<Node>* nodes) const;
  std::string StringValue(const Node& n) const;
  Result<std::string> Attribute(const Node& n, const std::string& name) const;

  /// String value served from the virtual document's per-vtype value
  /// column (intact vtypes reuse the stored index's column; covered
  /// non-intact vtypes read their lazily assembled column). nullopt when
  /// the vtype is not covered or the value index is disabled — the caller
  /// assembles the value per node, as before.
  std::optional<std::string_view> FastStringValue(const Node& n) const;

  const virt::VirtualDocument& vdoc() const { return *vdoc_; }

 private:
  struct ContextGroup;
  struct JoinTask;

  bool VTypeMatches(vdg::VTypeId t, const NodeTest& test) const;
  bool ChainSafe(vdg::VTypeId top, vdg::VTypeId bottom) const;
  std::shared_ptr<const std::vector<vdg::VTypeId>> MatchingVTypes(
      const NodeTest& test) const;

  /// Exact chain expansion for descendant types where ChainSafe fails,
  /// shared by Axis() and the batch fallback tasks: walks actual virtual
  /// children from \p n, emitting matching nodes of unsafe types.
  void DescendantWalkUnsafe(const Node& n, const NodeTest& test,
                            std::vector<Node>* out) const;
  /// Ancestor counterpart: climbs actual (reachable) virtual parents from
  /// \p n, emitting matching ancestors whose type the merges do not cover.
  void AncestorWalkUnsafe(const Node& n, const NodeTest& test,
                          std::vector<Node>* out) const;

  void RunJoinTask(const JoinTask& task, const std::vector<Node>& context,
                   num::Axis axis, const NodeTest& test,
                   std::vector<std::pair<uint32_t, Node>>* hits,
                   num::JoinCounters* counters) const;

  /// Shared core of BatchAxis / BatchAxisFlat: exactly one of \p slots and
  /// \p flat is non-null.
  bool BatchAxisImpl(const std::vector<Node>& context, num::Axis axis,
                     const NodeTest& test,
                     std::vector<std::vector<Node>>* slots,
                     std::vector<Node>* flat) const;

  const virt::VirtualDocument* vdoc_;
  ExecContext* ctx_;
};

/// \brief Parse and evaluate \p path_text over the virtual document.
Result<std::vector<virt::VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, std::string_view path_text);

/// \brief Evaluate a pre-parsed path. \p ctx (optional) supplies a thread
/// pool and collects ExecStats (see query/engine.h).
Result<std::vector<virt::VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, const Path& path,
    ExecContext* ctx = nullptr);

}  // namespace vpbn::query
