/// \file eval_virtual.h
/// \brief Virtual evaluation: the paper's contribution applied to queries.
///
/// Path steps run directly against the vDataGuide's virtual type forest and
/// the original document's type index; axis membership between instances is
/// decided by vPBN number comparison (vpbn/vpbn.h). No data is transformed:
/// "our approach is to virtually transform only the data needed by the
/// query by applying the transformation at the level of the node numbers
/// used in the query" (§4.3).

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/evaluator.h"
#include "query/path_parser.h"
#include "vpbn/virtual_document.h"

namespace vpbn::query {

/// \brief Adapter over a VirtualDocument for PathEvaluator.
class VirtualAdapter {
 public:
  using Node = virt::VirtualNode;

  /// VirtualDocument's only query-local scratch state is the reachability
  /// memo, which synchronizes internally (virtual_document.h), so the const
  /// interface is safe for concurrent use.
  static constexpr bool kParallelSafe = true;

  explicit VirtualAdapter(const virt::VirtualDocument& vdoc)
      : vdoc_(&vdoc) {}

  std::vector<Node> DocumentRoots(const NodeTest& test) const;
  std::vector<Node> AllNodes(const NodeTest& test) const;
  std::vector<Node> Axis(const Node& n, num::Axis axis,
                         const NodeTest& test) const;
  void SortUnique(std::vector<Node>* nodes) const;
  std::string StringValue(const Node& n) const;
  Result<std::string> Attribute(const Node& n, const std::string& name) const;

  const virt::VirtualDocument& vdoc() const { return *vdoc_; }

 private:
  bool VTypeMatches(vdg::VTypeId t, const NodeTest& test) const;
  bool ChainSafe(vdg::VTypeId top, vdg::VTypeId bottom) const;
  std::vector<vdg::VTypeId> MatchingVTypes(const NodeTest& test) const;

  const virt::VirtualDocument* vdoc_;
};

/// \brief Parse and evaluate \p path_text over the virtual document.
Result<std::vector<virt::VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, std::string_view path_text);

/// \brief Evaluate a pre-parsed path. \p ctx (optional) supplies a thread
/// pool and collects ExecStats (see query/engine.h).
Result<std::vector<virt::VirtualNode>> EvalVirtual(
    const virt::VirtualDocument& vdoc, const Path& path,
    ExecContext* ctx = nullptr);

}  // namespace vpbn::query
