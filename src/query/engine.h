/// \file engine.h
/// \brief QueryEngine: one facade over all three query substrates, with the
/// prepare/execute split the substrate free functions cannot express.
///
/// The free-function API (EvalNav / EvalIndexed / EvalBulk / EvalVirtual)
/// re-parses the path and re-picks the strategy on every call. QueryEngine
/// separates the two phases:
///
///   * **Prepare(path_text)** parses once and plans once — over a
///     StoredDocument it decides bulk-join vs per-node-indexed from the
///     path's shape; over a Document it plans navigational; over a
///     VirtualDocument, virtual (vPBN) evaluation.
///   * **Execute(prepared, ExecOverrides)** runs the plan, optionally on a
///     thread pool (partitioned structural joins, per-context-node
///     fan-out) and optionally collecting per-query ExecStats.
///
/// The same PreparedQuery can be executed many times with different
/// options; the engine caches its thread pool between calls. One engine
/// views exactly one substrate instance and holds no data. Engines share
/// ownership of their substrate (`std::shared_ptr<const ...>`), so a
/// long-running server can drop or reload a document while queries against
/// the old instance are still in flight — the engine keeps it alive.
///
/// \code
///   auto stored = std::make_shared<const storage::StoredDocument>(
///       storage::StoredDocument::Build(std::move(doc)));
///   query::QueryEngine engine(stored);   // or (doc) or (vdoc)
///   engine.SetDefaultOptions({.threads = 4});        // engine-level default
///   VPBN_ASSIGN_OR_RETURN(query::PreparedQuery q,
///                         engine.Prepare("//book[author/name]/title"));
///   VPBN_ASSIGN_OR_RETURN(query::QueryResult r,
///                         engine.Execute(q, {.collect_stats = true}));
///   for (const std::string& v : engine.StringValues(r)) ...
///   std::cout << r.stats().ToString();
/// \endcode
///
/// Execute takes **ExecOverrides** — per-request deltas merged over the
/// engine defaults (SetDefaultOptions / EffectiveOptions). A field left
/// unset falls through to the default; `{}` means "run with the defaults".

#pragma once

#include <atomic>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "query/exec_context.h"
#include "query/path_parser.h"
#include "storage/stored_document.h"
#include "vpbn/virtual_document.h"
#include "xml/document.h"

namespace vpbn::query {

/// \brief How a prepared query will be evaluated.
enum class PlanKind : uint8_t {
  kNav,      ///< tree walking on a Document
  kBulk,     ///< set-at-a-time structural joins on a StoredDocument
  kIndexed,  ///< per-node PBN index scans on a StoredDocument
  kVirtual,  ///< vPBN evaluation on a VirtualDocument
};

const char* PlanKindToString(PlanKind plan);

/// \brief A parsed, planned query. Created by QueryEngine::Prepare; execute
/// it any number of times (concurrently, if desired — it is immutable).
/// Copyable: the parsed Path (move-only itself) is held behind a shared
/// pointer, so cached plans hand out cheap handles to one immutable parse.
class PreparedQuery {
 public:
  const Path& path() const { return *path_; }
  PlanKind plan() const { return plan_; }
  const std::string& text() const { return text_; }

  /// The costed plan choice for a stored-document query (equals plan()
  /// when the cost model agrees with the fragment rule, or when only one
  /// plan applies). Execute picks cost_plan() when
  /// ExecOptions::use_cost_model is set, plan() otherwise — one cached
  /// PreparedQuery serves both settings.
  PlanKind cost_plan() const { return cost_plan_; }

  /// The planner's estimated result cardinality (stored substrate only;
  /// 0 elsewhere). Stamped into ExecStats::est_rows.
  uint64_t est_rows() const { return est_rows_; }

  /// \name Provenance stamp
  /// Which engine instance, document epoch, and statistics epoch this plan
  /// was prepared against. Execute refuses a plan whose stamp does not
  /// match, so a catalog reload can never silently run a plan prepared
  /// over the old document — or costed under stale statistics (the stale
  /// plan surfaces as an Internal error instead).
  /// @{
  uint64_t engine_id() const { return engine_id_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t stats_epoch() const { return stats_epoch_; }
  /// @}

 private:
  friend class QueryEngine;
  std::shared_ptr<const Path> path_;
  PlanKind plan_ = PlanKind::kNav;
  PlanKind cost_plan_ = PlanKind::kNav;
  std::string text_;
  uint64_t est_rows_ = 0;
  uint64_t engine_id_ = 0;
  uint64_t epoch_ = 0;
  uint64_t stats_epoch_ = 0;
};

/// \brief Fully resolved execution knobs. What Execute actually runs with:
/// either the engine defaults verbatim, or the defaults with an
/// ExecOverrides delta merged on top (EffectiveOptions).
struct ExecOptions {
  /// Thread budget: 1 = sequential (default), 0 = hardware concurrency,
  /// N > 1 = pool of N. Results are identical for every value.
  int threads = 1;
  /// Collect ExecStats (counters + per-step timings) into the result.
  bool collect_stats = false;
  /// Virtual plans only: evaluate eligible axis steps with vtype-
  /// partitioned merge joins (default) instead of per-candidate predicate
  /// scans. Results are identical either way; off is the benchmark
  /// baseline.
  bool virtual_join = true;
  /// Answer value predicates (equality / relational / contains) from the
  /// dictionary-encoded value index (default) instead of scanning each
  /// node's string value. Results are identical either way; off is the
  /// per-node-scan baseline the E12 benchmark measures.
  bool use_value_index = true;
  /// Pick plans and evaluation strategies with the cost model
  /// (query/cost_model.h) — cardinality-estimated bulk-vs-indexed,
  /// predicate strategy, merge-vs-walk — and skip value blocks via zone
  /// maps (default). Off reverts every decision to the fixed-threshold
  /// heuristics. Results are identical either way; off is the E16
  /// fixed-strategy baseline.
  bool use_cost_model = true;
  /// Stored bulk plans only: evaluate partition-wise over the document's
  /// subtree partitions, grouped into this many concurrent tasks with
  /// metadata-pruned groups skipped (ExecStats::partition_skips). 0 (the
  /// default) keeps the single-task path. Results are byte-identical for
  /// every value — like `threads`, this shapes the execution, never the
  /// answer.
  int partitions = 0;

  bool operator==(const ExecOptions&) const = default;
};

/// \brief A per-request delta over the engine's default ExecOptions: each
/// set field replaces the corresponding default, unset fields fall through.
/// Designated initializers read like the old per-call knobs —
/// `engine.Execute(q, {.threads = 4, .collect_stats = true})` — but a
/// server can now thread one ExecOverrides from the wire to the engine
/// without knowing (or clobbering) the engine's configured defaults.
struct ExecOverrides {
  std::optional<int> threads;
  std::optional<bool> collect_stats;
  std::optional<bool> virtual_join;
  std::optional<bool> use_value_index;
  std::optional<bool> use_cost_model;
  std::optional<int> partitions;
};

/// \brief Result nodes in the substrate's native handle type, plus stats.
class QueryResult {
 public:
  using NodeList = std::variant<std::vector<xml::NodeId>,
                                std::vector<num::Pbn>,
                                std::vector<virt::VirtualNode>>;

  size_t size() const;

  /// The full node list as a variant — for substrate-generic code (e.g.
  /// comparing results across runs) that has no business knowing the type.
  const NodeList& nodes() const { return nodes_; }

  /// \name Typed access — call the accessor matching the engine's substrate
  /// (nav for Document, pbn for StoredDocument, virtual_nodes for
  /// VirtualDocument). Calling the wrong one is a contract violation.
  /// @{
  const std::vector<xml::NodeId>& nav_nodes() const {
    return std::get<std::vector<xml::NodeId>>(nodes_);
  }
  const std::vector<num::Pbn>& pbn_nodes() const {
    return std::get<std::vector<num::Pbn>>(nodes_);
  }
  const std::vector<virt::VirtualNode>& virtual_nodes() const {
    return std::get<std::vector<virt::VirtualNode>>(nodes_);
  }
  /// @}

  /// Populated when ExecOptions::collect_stats was set (wall_ms, plan and
  /// threads are filled in either way).
  const ExecStats& stats() const { return stats_; }

 private:
  friend class QueryEngine;
  NodeList nodes_;
  ExecStats stats_;
};

/// \brief The unified query facade. Construct over any substrate; Prepare
/// then Execute. Thread-compatible: concurrent Execute calls on one engine
/// are safe (the pool is guarded; substrates are immutable).
class QueryEngine {
 public:
  /// \name Construction — shared substrate ownership
  /// The engine co-owns its substrate, so the substrate can never dangle
  /// under an in-flight query: a catalog that reloads a document just drops
  /// its reference and builds a new engine, and the old instance lives
  /// until the last Execute over it returns. For a substrate owned by
  /// something you already hold a shared_ptr to (e.g. the Document inside a
  /// shared StoredDocument), pass an aliasing shared_ptr.
  /// @{
  explicit QueryEngine(std::shared_ptr<const xml::Document> doc)
      : doc_(std::move(doc)) {}
  explicit QueryEngine(std::shared_ptr<const storage::StoredDocument> stored)
      : stored_(std::move(stored)) {}
  explicit QueryEngine(std::shared_ptr<const virt::VirtualDocument> vdoc)
      : vdoc_(std::move(vdoc)) {}
  /// @}

  /// \name Deprecated non-owning shims (one release)
  /// Pre-PR-6 constructors over caller-owned substrates. They wrap the
  /// reference in a shared_ptr with a no-op deleter, so the caller keeps
  /// the outlive-the-engine burden the shared_ptr constructors remove.
  /// @{
  [[deprecated("construct QueryEngine over std::shared_ptr<const Document>")]]
  explicit QueryEngine(const xml::Document& doc)
      : doc_(&doc, [](const xml::Document*) {}) {}
  [[deprecated(
      "construct QueryEngine over std::shared_ptr<const StoredDocument>")]]
  explicit QueryEngine(const storage::StoredDocument& stored)
      : stored_(&stored, [](const storage::StoredDocument*) {}) {}
  [[deprecated(
      "construct QueryEngine over std::shared_ptr<const VirtualDocument>")]]
  explicit QueryEngine(const virt::VirtualDocument& vdoc)
      : vdoc_(&vdoc, [](const virt::VirtualDocument*) {}) {}
  /// @}

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// \name Engine-level default options
  /// SetDefaultOptions replaces the defaults Execute resolves overrides
  /// against; EffectiveOptions is that merge, exposed so callers (the
  /// server's result-cache key) can see exactly what a request will run
  /// with. Thread-safe, but intended to be configured before the engine is
  /// shared.
  /// @{
  void SetDefaultOptions(const ExecOptions& options);
  ExecOptions default_options() const;
  ExecOptions EffectiveOptions(const ExecOverrides& overrides = {}) const;
  /// @}

  /// \name Document epoch
  /// An owner-assigned generation number stamped into every PreparedQuery
  /// (the server's catalog sets it to the entry's reload epoch). Changing
  /// it clears the plan cache and invalidates every outstanding
  /// PreparedQuery — Execute rejects plans whose stamp mismatches.
  /// @{
  void SetEpoch(uint64_t epoch);
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// @}

  /// \name Statistics epoch
  /// Generation number of the value-index statistics (histograms + zone
  /// maps) cached plans were costed under. A catalog that rebuilds or
  /// reloads statistics without swapping the document bumps this instead of
  /// the document epoch; like SetEpoch it clears the plan cache and makes
  /// Execute reject outstanding PreparedQuery handles, so a costed plan can
  /// never outlive the statistics that justified it.
  /// @{
  void SetStatsEpoch(uint64_t stats_epoch);
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_relaxed);
  }
  /// @}

  /// Process-unique identity of this engine instance (the other half of the
  /// PreparedQuery provenance stamp).
  uint64_t engine_id() const { return engine_id_; }

  /// Parses \p path_text and picks the execution plan for this substrate.
  /// Plans are memoized in a capacity-bounded LRU cache keyed by the path
  /// text, so repeated Prepare (and one-shot Execute) calls with the same
  /// text skip the parse and the plan choice entirely.
  Result<PreparedQuery> Prepare(std::string_view path_text) const;

  /// Resizes the prepared-plan cache (evicting LRU entries down to \p
  /// capacity); 0 disables caching. Default kDefaultPlanCacheCapacity.
  void SetPlanCacheCapacity(size_t capacity);

  /// \name Engine-lifetime plan-cache counters (also stamped into the
  /// ExecStats of every Execute call).
  /// @{
  uint64_t plan_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  size_t plan_cache_size() const;
  /// @}

  static constexpr size_t kDefaultPlanCacheCapacity = 128;

  /// Runs \p query with the engine defaults plus \p overrides merged on
  /// top. Deterministic: for any thread count the result nodes are
  /// identical and in document order. Fails with Internal if \p query was
  /// prepared by a different engine or under a different epoch.
  Result<QueryResult> Execute(const PreparedQuery& query,
                              const ExecOverrides& overrides = {}) const;

  /// Prepare + Execute in one call (for one-shot queries).
  Result<QueryResult> Execute(std::string_view path_text,
                              const ExecOverrides& overrides = {}) const;

  /// String values of the result nodes, substrate-appropriate: XML values
  /// for stored nodes (via the value index), assembled virtual values for
  /// virtual nodes, text content for navigational nodes.
  std::vector<std::string> StringValues(const QueryResult& result) const;

  /// StringValues without the per-result copy: stored-substrate values are
  /// views straight into the stored XML string, and virtual values of
  /// intact subtrees are views into the same string; only values that must
  /// be assembled (non-intact virtual subtrees, navigational text) are
  /// materialized, into \p owned. Every returned view is valid as long as
  /// both the substrate and \p owned live (a deque never relocates its
  /// elements). Views are byte-identical to StringValues.
  std::vector<std::string_view> StringValueViews(
      const QueryResult& result, std::deque<std::string>* owned) const;

 private:
  common::ThreadPool* PoolFor(int threads) const;

  /// Execute with fully resolved options (the merge already applied).
  Result<QueryResult> ExecuteResolved(const PreparedQuery& query,
                                      const ExecOptions& options) const;

  std::shared_ptr<const xml::Document> doc_;
  std::shared_ptr<const storage::StoredDocument> stored_;
  std::shared_ptr<const virt::VirtualDocument> vdoc_;

  static uint64_t NextEngineId();

  const uint64_t engine_id_ = NextEngineId();
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> stats_epoch_{0};

  mutable std::mutex defaults_mu_;
  ExecOptions defaults_;

  // Lazily built, reused across Execute calls, rebuilt when the requested
  // size changes. Guarded: Execute may be called concurrently.
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<common::ThreadPool> pool_;

  // Prepared-plan LRU: most-recent at the front of lru_, with index_
  // pointing into it by path text. Guarded by cache_mu_ (Prepare may be
  // called concurrently); the hit/miss counters are atomic so Execute can
  // stamp them without the lock.
  mutable std::mutex cache_mu_;
  mutable std::list<std::pair<std::string, PreparedQuery>> lru_;
  mutable std::unordered_map<
      std::string, std::list<std::pair<std::string, PreparedQuery>>::iterator>
      cache_index_;
  mutable size_t cache_capacity_ = kDefaultPlanCacheCapacity;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace vpbn::query
