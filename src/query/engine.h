/// \file engine.h
/// \brief QueryEngine: one facade over all three query substrates, with the
/// prepare/execute split the substrate free functions cannot express.
///
/// The free-function API (EvalNav / EvalIndexed / EvalBulk / EvalVirtual)
/// re-parses the path and re-picks the strategy on every call. QueryEngine
/// separates the two phases:
///
///   * **Prepare(path_text)** parses once and plans once — over a
///     StoredDocument it decides bulk-join vs per-node-indexed from the
///     path's shape; over a Document it plans navigational; over a
///     VirtualDocument, virtual (vPBN) evaluation.
///   * **Execute(prepared, ExecOptions)** runs the plan, optionally on a
///     thread pool (partitioned structural joins, per-context-node
///     fan-out) and optionally collecting per-query ExecStats.
///
/// The same PreparedQuery can be executed many times with different
/// options; the engine caches its thread pool between calls. One engine
/// views exactly one substrate instance and holds no data — all three
/// substrate objects stay owned by the caller and must outlive the engine.
///
/// \code
///   query::QueryEngine engine(stored);   // or (doc) or (vdoc)
///   VPBN_ASSIGN_OR_RETURN(query::PreparedQuery q,
///                         engine.Prepare("//book[author/name]/title"));
///   VPBN_ASSIGN_OR_RETURN(query::QueryResult r,
///                         engine.Execute(q, {.threads = 4,
///                                            .collect_stats = true}));
///   for (const std::string& v : engine.StringValues(r)) ...
///   std::cout << r.stats().ToString();
/// \endcode

#pragma once

#include <atomic>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "query/exec_context.h"
#include "query/path_parser.h"
#include "storage/stored_document.h"
#include "vpbn/virtual_document.h"
#include "xml/document.h"

namespace vpbn::query {

/// \brief How a prepared query will be evaluated.
enum class PlanKind : uint8_t {
  kNav,      ///< tree walking on a Document
  kBulk,     ///< set-at-a-time structural joins on a StoredDocument
  kIndexed,  ///< per-node PBN index scans on a StoredDocument
  kVirtual,  ///< vPBN evaluation on a VirtualDocument
};

const char* PlanKindToString(PlanKind plan);

/// \brief A parsed, planned query. Created by QueryEngine::Prepare; execute
/// it any number of times (concurrently, if desired — it is immutable).
/// Copyable: the parsed Path (move-only itself) is held behind a shared
/// pointer, so cached plans hand out cheap handles to one immutable parse.
class PreparedQuery {
 public:
  const Path& path() const { return *path_; }
  PlanKind plan() const { return plan_; }
  const std::string& text() const { return text_; }

 private:
  friend class QueryEngine;
  std::shared_ptr<const Path> path_;
  PlanKind plan_ = PlanKind::kNav;
  std::string text_;
};

/// \brief Per-Execute knobs.
struct ExecOptions {
  /// Thread budget: 1 = sequential (default), 0 = hardware concurrency,
  /// N > 1 = pool of N. Results are identical for every value.
  int threads = 1;
  /// Collect ExecStats (counters + per-step timings) into the result.
  bool collect_stats = false;
  /// Virtual plans only: evaluate eligible axis steps with vtype-
  /// partitioned merge joins (default) instead of per-candidate predicate
  /// scans. Results are identical either way; off is the benchmark
  /// baseline.
  bool virtual_join = true;
  /// Answer value predicates (equality / relational / contains) from the
  /// dictionary-encoded value index (default) instead of scanning each
  /// node's string value. Results are identical either way; off is the
  /// per-node-scan baseline the E12 benchmark measures.
  bool use_value_index = true;
};

/// \brief Result nodes in the substrate's native handle type, plus stats.
class QueryResult {
 public:
  using NodeList = std::variant<std::vector<xml::NodeId>,
                                std::vector<num::Pbn>,
                                std::vector<virt::VirtualNode>>;

  size_t size() const;

  /// The full node list as a variant — for substrate-generic code (e.g.
  /// comparing results across runs) that has no business knowing the type.
  const NodeList& nodes() const { return nodes_; }

  /// \name Typed access — call the accessor matching the engine's substrate
  /// (nav for Document, pbn for StoredDocument, virtual_nodes for
  /// VirtualDocument). Calling the wrong one is a contract violation.
  /// @{
  const std::vector<xml::NodeId>& nav_nodes() const {
    return std::get<std::vector<xml::NodeId>>(nodes_);
  }
  const std::vector<num::Pbn>& pbn_nodes() const {
    return std::get<std::vector<num::Pbn>>(nodes_);
  }
  const std::vector<virt::VirtualNode>& virtual_nodes() const {
    return std::get<std::vector<virt::VirtualNode>>(nodes_);
  }
  /// @}

  /// Populated when ExecOptions::collect_stats was set (wall_ms, plan and
  /// threads are filled in either way).
  const ExecStats& stats() const { return stats_; }

 private:
  friend class QueryEngine;
  NodeList nodes_;
  ExecStats stats_;
};

/// \brief The unified query facade. Construct over any substrate; Prepare
/// then Execute. Thread-compatible: concurrent Execute calls on one engine
/// are safe (the pool is guarded; substrates are immutable).
class QueryEngine {
 public:
  explicit QueryEngine(const xml::Document& doc) : doc_(&doc) {}
  explicit QueryEngine(const storage::StoredDocument& stored)
      : stored_(&stored) {}
  explicit QueryEngine(const virt::VirtualDocument& vdoc) : vdoc_(&vdoc) {}
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Parses \p path_text and picks the execution plan for this substrate.
  /// Plans are memoized in a capacity-bounded LRU cache keyed by the path
  /// text, so repeated Prepare (and one-shot Execute) calls with the same
  /// text skip the parse and the plan choice entirely.
  Result<PreparedQuery> Prepare(std::string_view path_text) const;

  /// Resizes the prepared-plan cache (evicting LRU entries down to \p
  /// capacity); 0 disables caching. Default kDefaultPlanCacheCapacity.
  void SetPlanCacheCapacity(size_t capacity);

  /// \name Engine-lifetime plan-cache counters (also stamped into the
  /// ExecStats of every Execute call).
  /// @{
  uint64_t plan_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  size_t plan_cache_size() const;
  /// @}

  static constexpr size_t kDefaultPlanCacheCapacity = 128;

  /// Runs \p query. Deterministic: for any thread count the result nodes
  /// are identical and in document order.
  Result<QueryResult> Execute(const PreparedQuery& query,
                              const ExecOptions& options = {}) const;

  /// Prepare + Execute in one call (for one-shot queries).
  Result<QueryResult> Execute(std::string_view path_text,
                              const ExecOptions& options = {}) const;

  /// String values of the result nodes, substrate-appropriate: XML values
  /// for stored nodes (via the value index), assembled virtual values for
  /// virtual nodes, text content for navigational nodes.
  std::vector<std::string> StringValues(const QueryResult& result) const;

  /// StringValues without the per-result copy: stored-substrate values are
  /// views straight into the stored XML string, and virtual values of
  /// intact subtrees are views into the same string; only values that must
  /// be assembled (non-intact virtual subtrees, navigational text) are
  /// materialized, into \p owned. Every returned view is valid as long as
  /// both the substrate and \p owned live (a deque never relocates its
  /// elements). Views are byte-identical to StringValues.
  std::vector<std::string_view> StringValueViews(
      const QueryResult& result, std::deque<std::string>* owned) const;

 private:
  common::ThreadPool* PoolFor(int threads) const;

  const xml::Document* doc_ = nullptr;
  const storage::StoredDocument* stored_ = nullptr;
  const virt::VirtualDocument* vdoc_ = nullptr;

  // Lazily built, reused across Execute calls, rebuilt when the requested
  // size changes. Guarded: Execute may be called concurrently.
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<common::ThreadPool> pool_;

  // Prepared-plan LRU: most-recent at the front of lru_, with index_
  // pointing into it by path text. Guarded by cache_mu_ (Prepare may be
  // called concurrently); the hit/miss counters are atomic so Execute can
  // stamp them without the lock.
  mutable std::mutex cache_mu_;
  mutable std::list<std::pair<std::string, PreparedQuery>> lru_;
  mutable std::unordered_map<
      std::string, std::list<std::pair<std::string, PreparedQuery>>::iterator>
      cache_index_;
  mutable size_t cache_capacity_ = kDefaultPlanCacheCapacity;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace vpbn::query
