#include "common/compress.h"

#ifdef VPBN_HAVE_ZLIB
#include <zlib.h>
#endif

namespace vpbn::common {

#ifdef VPBN_HAVE_ZLIB

bool CompressionAvailable() { return true; }

Status Deflate(std::string_view in, std::string* out) {
  uLong bound = compressBound(static_cast<uLong>(in.size()));
  out->resize(bound);
  uLongf dest_len = bound;
  int rc = compress2(reinterpret_cast<Bytef*>(out->data()), &dest_len,
                     reinterpret_cast<const Bytef*>(in.data()),
                     static_cast<uLong>(in.size()), Z_BEST_COMPRESSION);
  if (rc != Z_OK) {
    return Status::Internal("deflate failed: zlib error " +
                            std::to_string(rc));
  }
  out->resize(dest_len);
  return Status::OK();
}

Status Inflate(std::string_view in, size_t raw_size, std::string* out) {
  out->resize(raw_size);
  uLongf dest_len = static_cast<uLongf>(raw_size);
  int rc = uncompress(reinterpret_cast<Bytef*>(out->data()), &dest_len,
                      reinterpret_cast<const Bytef*>(in.data()),
                      static_cast<uLong>(in.size()));
  if (rc != Z_OK || dest_len != raw_size) {
    return Status::InvalidArgument("inflate: corrupt compressed section");
  }
  return Status::OK();
}

#else  // !VPBN_HAVE_ZLIB

bool CompressionAvailable() { return false; }

Status Deflate(std::string_view, std::string*) {
  return Status::NotImplemented("compiled without zlib");
}

Status Inflate(std::string_view, size_t, std::string*) {
  return Status::NotImplemented("compiled without zlib");
}

#endif

}  // namespace vpbn::common
