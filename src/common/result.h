/// \file result.h
/// \brief Result<T>: a value or a Status, in the style of arrow::Result.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace vpbn {

/// \brief Holds either a successfully computed T or the Status describing why
/// the computation failed.
///
/// Typical use:
/// \code
///   Result<Document> doc = Parse(text);
///   if (!doc.ok()) return doc.status();
///   Use(doc.value());
/// \endcode
/// or, inside a function that itself returns Status/Result:
/// \code
///   VPBN_ASSIGN_OR_RETURN(Document doc, Parse(text));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}

  /// Implicit conversion from a non-OK Status (failure). Constructing a
  /// Result from an OK status is a contract violation.
  Result(Status status) : repr_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(repr_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return repr_.index() == 0; }

  /// The failure Status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(repr_);
  }

  /// \name Value accessors. Calling these on a failed Result is a contract
  /// violation checked by assert.
  /// @{
  const T& value() const& {
    assert(ok());
    return std::get<0>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(repr_));
  }
  /// @}

  /// Move the value out without checking (used by VPBN_ASSIGN_OR_RETURN after
  /// an explicit ok() test).
  T&& ValueUnsafe() && { return std::get<0>(std::move(repr_)); }

  /// Returns the held value, or \p alternative on failure.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<0>(repr_) : std::move(alternative);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace vpbn
