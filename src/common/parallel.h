/// \file parallel.h
/// \brief Fork/join helpers on top of ThreadPool.
///
/// ParallelFor partitions an index range into contiguous chunks and runs
/// one task per chunk, blocking until every chunk finished. Design points:
///
///   * **Sequential cutoff.** With no pool, a 1-thread pool, or fewer than
///     \p grain indexes, the body runs inline on the caller — parallelism
///     never changes results, only who computes them.
///   * **Reentrancy.** A ParallelFor issued from inside a pool worker runs
///     inline. Workers are a bounded resource; recursively waiting on
///     tasks that need a worker to run is a classic self-deadlock.
///   * **Exceptions.** The first exception thrown by any chunk is captured
///     and rethrown on the joining thread after all chunks complete.

#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

#include "common/thread_pool.h"

namespace vpbn::common {

/// \brief Runs body(begin, end) over a partition of [0, n), possibly in
/// parallel on \p pool. Chunks are contiguous and in index order; the body
/// must only write state disjoint per index (or synchronize itself).
inline void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain ||
      ThreadPool::InWorker()) {
    body(0, n);
    return;
  }
  size_t max_chunks = static_cast<size_t>(pool->num_threads()) * 4;
  size_t num_chunks = std::min(max_chunks, (n + grain - 1) / grain);
  size_t chunk = (n + num_chunks - 1) / num_chunks;

  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  std::exception_ptr error;

  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    {
      std::lock_guard<std::mutex> lock(mu);
      ++pending;
    }
    pool->Submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      {
        // Notify under the lock: the joining thread destroys mu/cv as soon
        // as it observes pending == 0, so the notify must complete before
        // this task ever releases the mutex.
        std::lock_guard<std::mutex> lock(mu);
        --pending;
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return pending == 0; });
  if (error) std::rethrow_exception(error);
}

}  // namespace vpbn::common
