#include "common/hash.h"

#include <cstring>

namespace vpbn::common {

namespace {

inline uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

uint64_t Hash64(std::string_view data, uint64_t seed) {
  const char* p = data.data();
  size_t n = data.size();
  uint64_t h = Mix(seed ^ (0x9e3779b97f4a7c15ULL + n));
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h = Mix(h ^ w) * 0x2545f4914f6cdd1dULL;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = Mix(h ^ w ^ (static_cast<uint64_t>(n) << 56));
  }
  return Mix(h);
}

}  // namespace vpbn::common
