#include "common/status.h"

namespace vpbn {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->msg);
}

}  // namespace vpbn
