/// \file compress.h
/// \brief Thin deflate/inflate wrappers for snapshot sections.
///
/// Compression is an optional dependency: when the build finds no zlib the
/// writers fall back to storing sections uncompressed and the readers
/// reject compressed sections with InvalidArgument — the format stays
/// readable everywhere it can be.

#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace vpbn::common {

/// True when this build can deflate/inflate (zlib was found at configure
/// time). Writers must consult this before emitting compressed sections.
bool CompressionAvailable();

/// Deflates \p in into \p out (replacing its contents). NotImplemented when
/// CompressionAvailable() is false.
Status Deflate(std::string_view in, std::string* out);

/// Inflates \p in — which must decompress to exactly \p raw_size bytes —
/// into \p out (replacing its contents). InvalidArgument on corrupt input
/// or a size mismatch; NotImplemented without zlib.
Status Inflate(std::string_view in, size_t raw_size, std::string* out);

}  // namespace vpbn::common
