/// \file random.h
/// \brief Deterministic, seedable PRNG used by workload generators and
/// property tests. Identical seeds produce identical documents on every
/// platform (unlike std::mt19937 distribution wrappers).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vpbn {

/// \brief splitmix64-seeded xoshiro256** generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seed in place.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent \p s (s=0 is uniform).
  /// Used by workloads to skew element fan-out and value popularity.
  uint64_t Zipf(uint64_t n, double s);

  /// Random lowercase ASCII identifier of length in [min_len, max_len].
  std::string Identifier(int min_len, int max_len);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  size_t WeightedPick(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace vpbn
