#include "common/random.h"

#include <cassert>
#include <cmath>

namespace vpbn {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1 || s <= 0) return Uniform(n);
  // Inverse-CDF on the harmonic weights; O(n) worst case but cached callers
  // use modest n. Acceptable for workload generation.
  double h = 0;
  for (uint64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
  double u = NextDouble() * h;
  double acc = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::string Rng::Identifier(int min_len, int max_len) {
  int len = static_cast<int>(UniformRange(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

size_t Rng::WeightedPick(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double u = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace vpbn
