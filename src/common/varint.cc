#include "common/varint.h"

namespace vpbn {

void PutVarint32(std::string* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

namespace {

template <typename T>
Result<T> GetVarintImpl(std::string_view* in, int max_bytes) {
  T value = 0;
  int shift = 0;
  for (int i = 0; i < max_bytes; ++i) {
    if (static_cast<size_t>(i) >= in->size()) {
      return Status::InvalidArgument("varint: truncated input");
    }
    uint8_t byte = static_cast<uint8_t>((*in)[i]);
    value |= static_cast<T>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical encodings whose top byte spills past the type.
      if (shift > 0 && byte != 0 &&
          shift + 7 > static_cast<int>(sizeof(T) * 8) &&
          (byte >> (static_cast<int>(sizeof(T) * 8) - shift)) != 0) {
        return Status::InvalidArgument("varint: value overflows type");
      }
      in->remove_prefix(i + 1);
      return value;
    }
    shift += 7;
  }
  return Status::InvalidArgument("varint: encoding too long");
}

}  // namespace

Result<uint32_t> GetVarint32(std::string_view* in) {
  return GetVarintImpl<uint32_t>(in, 5);
}

Result<uint64_t> GetVarint64(std::string_view* in) {
  return GetVarintImpl<uint64_t>(in, 10);
}

int VarintLength32(uint32_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

int VarintLength64(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutDeltaU32Array(std::string* out, const uint32_t* values, size_t n) {
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    PutVarint32(out, values[i] - prev);
    prev = values[i];
  }
}

void PutDeltaU64Array(std::string* out, const uint64_t* values, size_t n) {
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    PutVarint64(out, values[i] - prev);
    prev = values[i];
  }
}

Status GetDeltaU32Array(std::string_view* in, size_t n,
                        std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(n <= in->size() ? n : in->size());
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    VPBN_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32(in));
    if (delta > UINT32_MAX - prev) {
      return Status::InvalidArgument("varint: delta array overflows");
    }
    prev += delta;
    out->push_back(prev);
  }
  return Status::OK();
}

Status GetDeltaU64Array(std::string_view* in, size_t n,
                        std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(n <= in->size() ? n : in->size());
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    VPBN_ASSIGN_OR_RETURN(uint64_t delta, GetVarint64(in));
    if (delta > UINT64_MAX - prev) {
      return Status::InvalidArgument("varint: delta array overflows");
    }
    prev += delta;
    out->push_back(prev);
  }
  return Status::OK();
}

}  // namespace vpbn
