#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vpbn::common {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("mmap: cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::InvalidArgument("mmap: cannot stat " + path + ": " +
                                   std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::InvalidArgument("mmap: cannot map " + path + ": " +
                                     std::strerror(err));
    }
  }
  // The mapping keeps the file content reachable; the descriptor is no
  // longer needed.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(addr, size));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr && size_ > 0) ::munmap(addr_, size_);
}

}  // namespace vpbn::common
