#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace vpbn::common {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("mmap: cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::InvalidArgument("mmap: cannot stat " + path + ": " +
                                   std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::InvalidArgument("mmap: cannot map " + path + ": " +
                                     std::strerror(err));
    }
  }
  // The mapping keeps the file content reachable; the descriptor is no
  // longer needed.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(addr, size, path));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr && size_ > 0) ::munmap(addr_, size_);
}

size_t MappedFile::ResidentBytes() const {
  if (addr_ == nullptr || size_ == 0) return 0;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> vec(pages);
  if (::mincore(addr_, size_, vec.data()) != 0) return 0;
  size_t resident = 0;
  for (size_t i = 0; i < pages; ++i) {
    if (vec[i] & 1) ++resident;
  }
  size_t bytes = resident * page;
  // The tail page is partial; do not report more than the mapping holds.
  return bytes > size_ ? size_ : bytes;
}

void MappedFile::EvictPages() const {
  if (addr_ == nullptr || size_ == 0) return;
  ::madvise(addr_, size_, MADV_DONTNEED);
  // madvise only drops the process's page tables; the pages themselves sit
  // in the page cache (MAP_SHARED of a file). fadvise asks the kernel to
  // drop those too, which is what makes the next touch actually cold.
  int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    // fadvise skips dirty pages, so flush a freshly-written file first
    // (fdatasync is permitted on a read-only descriptor).
    ::fdatasync(fd);
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  }
}

}  // namespace vpbn::common
