/// \file hash.h
/// \brief Fast 64-bit content hash for integrity checks.
///
/// Used by the snapshot format to checksum section payloads: a verified
/// checksum lets Load skip the expensive structural re-validation, while a
/// bit flip anywhere in the payload flips the digest. This is a corruption
/// detector, not a cryptographic MAC.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vpbn::common {

/// \brief Hash \p data with a 64-bit mixing hash (8 bytes per round, a
/// splitmix-style finalizer per chunk). Deterministic across platforms and
/// builds; seeds allow domain separation.
uint64_t Hash64(std::string_view data, uint64_t seed = 0);

}  // namespace vpbn::common
