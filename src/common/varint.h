/// \file varint.h
/// \brief LEB128-style variable-length integer codec.
///
/// Used by the PBN binary codec (pbn/codec.h) to pack prefix-based numbers
/// into as few bytes as possible, following the paper's remark (§4.2) that
/// "there are strategies for packing PBN numbers into as few bits as
/// possible, making PBN numbers relatively concise".

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vpbn {

/// \brief Append the unsigned LEB128 encoding of \p value to \p out.
void PutVarint32(std::string* out, uint32_t value);

/// \brief Append the unsigned LEB128 encoding of \p value to \p out.
void PutVarint64(std::string* out, uint64_t value);

/// \brief Decode one varint32 from the front of \p in.
///
/// On success advances \p in past the consumed bytes and returns the value.
/// Fails with InvalidArgument on truncation or overlong (>5-byte) encodings.
Result<uint32_t> GetVarint32(std::string_view* in);

/// \brief Decode one varint64 from the front of \p in (up to 10 bytes).
Result<uint64_t> GetVarint64(std::string_view* in);

/// \brief Number of bytes PutVarint32 would emit for \p value.
int VarintLength32(uint32_t value);

/// \brief Number of bytes PutVarint64 would emit for \p value.
int VarintLength64(uint64_t value);

/// \name Delta-compressed integer arrays
///
/// A non-decreasing sequence stores as first-value + successive deltas,
/// each LEB128-encoded — the postings/offset-table layout the snapshot
/// format and the blocked PBN codec share. The decoder rejects truncation,
/// overlong encodings, and deltas that overflow the element type, so a
/// decoded array is always well-formed and non-decreasing.
/// @{

/// \brief Append \p n values (which must be non-decreasing) as
/// first + deltas. Encoding an empty array appends nothing.
void PutDeltaU32Array(std::string* out, const uint32_t* values, size_t n);
void PutDeltaU64Array(std::string* out, const uint64_t* values, size_t n);

/// \brief Decode \p n values previously written by the matching Put. On
/// success advances \p in and fills \p out (resized to n). InvalidArgument
/// on truncation, overlong encodings, or accumulated overflow.
Status GetDeltaU32Array(std::string_view* in, size_t n,
                        std::vector<uint32_t>* out);
Status GetDeltaU64Array(std::string_view* in, size_t n,
                        std::vector<uint64_t>* out);
/// @}

}  // namespace vpbn
