#include "common/thread_pool.h"

#include <algorithm>

namespace vpbn::common {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace vpbn::common
