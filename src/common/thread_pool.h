/// \file thread_pool.h
/// \brief A small fixed-size thread pool for intra-query parallelism.
///
/// The pool is deliberately minimal: a shared FIFO of type-erased tasks,
/// N worker threads, blocking shutdown in the destructor. Query execution
/// (query/engine.h) owns one pool per engine and threads it through the
/// evaluators via ExecContext; nothing in this repository spawns threads
/// anywhere else, so thread-count budgeting stays in one place.
///
/// Tasks must not throw — higher-level fork/join helpers (parallel.h)
/// capture exceptions per task and rethrow them on the joining thread.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpbn::common {

class ThreadPool {
 public:
  /// Starts \p num_threads workers. 0 means std::thread::hardware_concurrency
  /// (at least 1). A 1-thread pool is valid and still runs tasks on its
  /// single worker.
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks are executed, then workers join. Blocks
  /// until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task. Must not be called after/while the destructor runs.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a worker of *any* ThreadPool. Fork/join
  /// helpers use this to run nested parallel regions inline instead of
  /// re-submitting (which could deadlock a fully busy pool).
  static bool InWorker();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vpbn::common
