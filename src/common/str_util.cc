#include "common/str_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace vpbn {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  if (input.empty()) return out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string EscapeXmlText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeXmlAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeXml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(s[i++]);
      continue;
    }
    std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out.push_back(static_cast<char>(code));
      } else {
        // Non-ASCII references are preserved verbatim (simplified model).
        out.append(s.substr(i, semi - i + 1));
      }
    } else {
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

bool IsValidXmlName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace vpbn
