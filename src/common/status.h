/// \file status.h
/// \brief Status: the library-wide error model.
///
/// No exceptions escape the vpbn library. Every fallible operation returns a
/// Status (or a Result<T>, see result.h) in the style of Apache Arrow and
/// RocksDB. A Status is cheap to copy in the OK case (a single pointer test).

#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace vpbn {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  /// Malformed input to a parser (XML, vDataGuide, XPath, XQuery).
  kParseError = 1,
  /// Arguments violate an API contract.
  kInvalidArgument = 2,
  /// A name/type/node lookup found nothing.
  kNotFound = 3,
  /// Internal invariant violated; indicates a library bug.
  kInternal = 4,
  /// Operation is valid but not supported by this build.
  kNotImplemented = 5,
  /// A resource limit (depth, size) was exceeded.
  kResourceExhausted = 6,
};

/// \brief Render a StatusCode as a stable human-readable string.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status; never allocates.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// @}

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Message text; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with \p context prepended to the message.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status copies are cheap; null means OK.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace vpbn

/// Propagate a non-OK Status to the caller.
#define VPBN_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::vpbn::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assign the value of a Result expression or propagate its error.
#define VPBN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueUnsafe();

#define VPBN_CONCAT_(a, b) a##b
#define VPBN_CONCAT(a, b) VPBN_CONCAT_(a, b)

#define VPBN_ASSIGN_OR_RETURN(lhs, rexpr) \
  VPBN_ASSIGN_OR_RETURN_IMPL(VPBN_CONCAT(_res_, __LINE__), lhs, rexpr)
