/// \file str_util.h
/// \brief Small string helpers shared across parsers and serializers.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vpbn {

/// \brief Split \p input on \p sep; empty input yields an empty vector.
/// Adjacent separators produce empty fields (no coalescing).
std::vector<std::string> SplitString(std::string_view input, char sep);

/// \brief Join \p parts with \p sep between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief True iff \p s begins with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief True iff \p s ends with \p suffix.
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Strip ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// \brief Escape XML text content: & < > (quotes left alone).
std::string EscapeXmlText(std::string_view s);

/// \brief Escape XML attribute content: & < > " '.
std::string EscapeXmlAttribute(std::string_view s);

/// \brief Decode the five predefined XML entities and numeric references.
/// Unknown entities are passed through verbatim.
std::string UnescapeXml(std::string_view s);

/// \brief Escape \p s for embedding in a JSON string literal: quotes,
/// backslashes and control characters. Does not add the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// \brief True iff \p c may start an XML name (letters, '_' — simplified,
/// ASCII-only subset).
bool IsNameStartChar(char c);

/// \brief True iff \p c may continue an XML name (adds digits, '-', '.').
bool IsNameChar(char c);

/// \brief True iff \p s is a valid (simplified) XML name.
bool IsValidXmlName(std::string_view s);

}  // namespace vpbn
