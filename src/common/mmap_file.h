/// \file mmap_file.h
/// \brief Read-only memory-mapped file with shared ownership.
///
/// The snapshot loader maps a .vpsn file and hands byte views of its
/// sections to the StoredDocument, which keeps the MappedFile alive via
/// shared_ptr for as long as any lazily-decoded section still references
/// the mapping. Because the mapping is MAP_SHARED of a read-only file,
/// every process that maps the same snapshot shares one copy of the bytes
/// in the page cache, and pages are faulted in only when touched.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace vpbn::common {

class MappedFile {
 public:
  /// Map \p path read-only. InvalidArgument if the file cannot be opened,
  /// stat'ed, or mapped. An empty file maps to an empty view (no mapping).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view bytes() const {
    return {static_cast<const char*>(addr_), size_};
  }
  size_t size() const { return size_; }

  /// Bytes of the mapping currently resident in the page cache (mincore
  /// walk). Observability only — the answer is stale the moment it returns.
  /// 0 for an empty mapping or when mincore is unavailable.
  size_t ResidentBytes() const;

  /// Drop this mapping's pages from the page cache where the kernel allows
  /// (madvise on the mapping plus posix_fadvise(DONTNEED) on a reopened
  /// descriptor — a MAP_SHARED file mapping's pages live in the page cache,
  /// which plain madvise cannot drain), simulating a cold start for load
  /// benchmarks. Best-effort.
  void EvictPages() const;

 private:
  MappedFile(void* addr, size_t size, std::string path)
      : addr_(addr), size_(size), path_(std::move(path)) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
  std::string path_;  // for EvictPages; the mapping itself needs no fd
};

}  // namespace vpbn::common
