/// \file mmap_file.h
/// \brief Read-only memory-mapped file with shared ownership.
///
/// The snapshot loader maps a .vpsn file and hands byte views of its
/// sections to the StoredDocument, which keeps the MappedFile alive via
/// shared_ptr for as long as any lazily-decoded section still references
/// the mapping. Because the mapping is MAP_SHARED of a read-only file,
/// every process that maps the same snapshot shares one copy of the bytes
/// in the page cache, and pages are faulted in only when touched.

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace vpbn::common {

class MappedFile {
 public:
  /// Map \p path read-only. InvalidArgument if the file cannot be opened,
  /// stat'ed, or mapped. An empty file maps to an empty view (no mapping).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view bytes() const {
    return {static_cast<const char*>(addr_), size_};
  }
  size_t size() const { return size_; }

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace vpbn::common
