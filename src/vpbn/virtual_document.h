/// \file virtual_document.h
/// \brief A document viewed through a vDataGuide — the object the paper's
/// virtualDoc() XQuery function denotes (§2).
///
/// No data moves: a *virtual node* is the pair (original node, virtual
/// type), and navigation is computed from the original document's indexes:
///
///   * a virtual child whose original type is an original *descendant* type
///     is found by a containment scan of the type index within the node's
///     subtree (Case 1);
///   * one whose original type is an original *ancestor* type is the unique
///     ancestor at that depth, read off the node's own PBN prefix (Case 2);
///   * one related through a least common ancestor type is found by a
///     containment scan under the node's ancestor instance at the LCA's
///     depth (Case 3) — "authors are related to the title through a (least
///     common) ancestor".
///
/// Only data the query actually touches is ever enumerated, which is the
/// paper's core efficiency argument (§4.3).

#pragma once

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/value_index.h"
#include "storage/stored_document.h"
#include "vdg/vdataguide.h"
#include "vpbn/vpbn.h"

namespace vpbn::virt {

/// \brief A node of the virtual hierarchy.
struct VirtualNode {
  xml::NodeId node = xml::kNullNode;
  vdg::VTypeId vtype = vdg::kNullVType;

  bool operator==(const VirtualNode&) const = default;
};

/// \brief A stored document re-hierarchized by a vDataGuide.
class VirtualDocument {
 public:
  /// An empty view; unusable until move-assigned from Open().
  VirtualDocument() = default;

  /// Movable (the cache mutexes are not moved — a moved document starts
  /// with fresh locks). Moving while other threads query is undefined, as
  /// usual.
  VirtualDocument(VirtualDocument&& other) noexcept;
  VirtualDocument& operator=(VirtualDocument&& other) noexcept;

  /// Expands \p spec_text against \p stored's DataGuide and builds the
  /// vPBN space (level arrays). \p stored must outlive the result.
  static Result<VirtualDocument> Open(const storage::StoredDocument& stored,
                                      std::string_view spec_text);

  /// Shared-ownership Open: the returned VirtualDocument co-owns \p stored
  /// (the control block holds both), so there is no outlive-the-view burden
  /// — exactly what a catalog that hot-swaps documents under queries needs.
  static Result<std::shared_ptr<const VirtualDocument>> OpenShared(
      std::shared_ptr<const storage::StoredDocument> stored,
      std::string_view spec_text);

  const storage::StoredDocument& stored() const { return *stored_; }
  const vdg::VDataGuide& vguide() const { return *vguide_; }
  const VpbnSpace& space() const { return space_; }

  /// The vPBN number of a virtual node: its original PBN plus (via the
  /// space) its type's level array.
  Vpbn VpbnOf(const VirtualNode& v) const {
    return Vpbn(stored_->numbering().OfNode(v.node), v.vtype);
  }

  /// Display name of a virtual node (element name, or "" for text).
  const std::string& name(const VirtualNode& v) const {
    return stored_->doc().name(v.node);
  }

  /// Text content for virtual text nodes.
  const std::string& text(const VirtualNode& v) const {
    return stored_->doc().text(v.node);
  }

  bool IsText(const VirtualNode& v) const {
    return stored_->doc().IsText(v.node);
  }

  /// \name Virtual navigation
  /// @{

  /// Roots of the virtual hierarchy, in virtual document order.
  std::vector<VirtualNode> Roots() const;

  /// All instances of one virtual type, in original document order.
  std::vector<VirtualNode> NodesOfVType(vdg::VTypeId t) const;

  /// Children of \p v in virtual document order.
  std::vector<VirtualNode> Children(const VirtualNode& v) const;

  /// Virtual parents of \p v (plural under duplication; empty for roots),
  /// in virtual document order.
  std::vector<VirtualNode> Parents(const VirtualNode& v) const;

  /// Nodes on \p axis relative to context \p v, in virtual document order.
  /// kAttribute yields nothing (attributes are element properties here).
  std::vector<VirtualNode> AxisNodes(const VirtualNode& v,
                                     num::Axis axis) const;
  /// @}

  /// String value of a virtual node: concatenated text of its virtual
  /// subtree, in virtual document order. Intact subtrees (whose virtual
  /// structure equals the original) are served by a physical subtree walk.
  std::string StringValue(const VirtualNode& v) const;

  /// True iff the virtual subtree of type \p t mirrors its original
  /// subtree (same types, same order, nothing added or removed). Values of
  /// such subtrees can be served physically (§6's optimization).
  bool IsIntactVType(vdg::VTypeId t) const { return intact_[t]; }

  /// The dictionary-encoded value column of vtype \p t, or nullptr when
  /// the vtype is not covered (its virtual string-value is not flat: some
  /// vguide child is an element vtype). Rows align index-for-index with
  /// NodeIdsOfType of the original type — stored().RowOfNode(v.node) is a
  /// node's row. Intact vtypes serve the stored index's column directly
  /// (their virtual string-values equal the original ones); other covered
  /// vtypes get an assembled-value column built lazily over every instance
  /// of the original type, memoized for the life of the document.
  /// Thread-safe.
  const idx::TypeColumn* ValueColumn(vdg::VTypeId t) const;

  /// \name Reachability
  ///
  /// A virtual node is *in* the virtual document only if a chain of virtual
  /// parents connects it to a root instance. The numbers alone cannot
  /// witness a missing intermediate instance (an orphaned author has a
  /// valid vPBN but no place in the document), so the query layer filters
  /// by reachability where it is not structurally guaranteed.
  /// @{

  /// True iff every instance of \p t is guaranteed reachable: each edge on
  /// its vtype path to the root places the parent's original type as an
  /// ancestor-or-self of the child's original type, so the parent instance
  /// is a prefix of the child's number and always exists.
  bool IsGuaranteedReachable(vdg::VTypeId t) const { return guaranteed_[t]; }

  /// True iff \p v has a virtual-parent chain to a root. Served from the
  /// per-vtype reachability bitmap (built lazily, memoized for the life of
  /// the document). Safe for concurrent calls: the bitmap store
  /// synchronizes internally, and a build runs lock-free on immutable
  /// state (two threads may race to build the same bitmap; both compute
  /// the same bits and the first store wins).
  bool IsReachable(const VirtualNode& v) const;

  /// Reachability of the \p index -th instance of vtype \p t (aligned with
  /// NodeIdsOfType of the original type) — the O(1) entry point for the
  /// merge joins, which hold candidate indexes rather than node ids.
  bool IsReachableAt(vdg::VTypeId t, size_t index) const {
    if (guaranteed_[t]) return true;
    return (*ReachableBitmap(t))[index] != 0;
  }

  /// The memoized per-vtype bitmap, aligned with NodeIdsOfType of the
  /// original type; nullptr when IsGuaranteedReachable(t) (every instance
  /// reachable, no bitmap is materialized). Built on first use by merging
  /// each instance list against its virtual parent type's (already-built)
  /// bitmap — one linear group merge per edge of the vtype path instead of
  /// a per-node parent-chain walk.
  const std::vector<uint8_t>* ReachableBitmap(vdg::VTypeId t) const;
  /// @}

  /// All instances of the original type \p t batch-decoded into a flat
  /// component column (pbn/packed.h), aligned index-for-index with
  /// NodeIdsOfType(t) / PackedNodesOfType(t). Built on first use and
  /// cached for the life of the document; \p built_now (optional) reports
  /// whether this call performed the decode (the ExecStats
  /// `decoded_batches` counter). Thread-safe.
  const num::DecodedPbnColumn& DecodedNodesOfType(
      dg::TypeId t, bool* built_now = nullptr) const;

  /// Sorts \p nodes into virtual document order and removes duplicates.
  void SortVirtualOrder(std::vector<VirtualNode>* nodes) const;

  /// Instances of type \p ct related to node \p x through their least
  /// common ancestor type, per the three LCA cases (the raw placement
  /// relation behind Children/Parents). Results in original document order.
  std::vector<VirtualNode> RelatedInstances(xml::NodeId x,
                                            vdg::VTypeId ct) const;

 private:
  /// An assembled per-vtype value column owning a private dictionary:
  /// columns are immutable once stored, and private dictionaries keep
  /// concurrent readers of finished columns independent of later builds
  /// (a shared growing dictionary would race).
  struct AssembledValueColumn {
    idx::Dictionary dict;
    idx::TypeColumn column;
  };

  std::vector<uint8_t> BuildReachableBitmap(vdg::VTypeId t) const;

  const storage::StoredDocument* stored_ = nullptr;
  // unique_ptr keeps the guide's address stable across moves of the
  // VirtualDocument; the VpbnSpace holds a pointer into it.
  std::unique_ptr<vdg::VDataGuide> vguide_;
  VpbnSpace space_;
  std::vector<bool> intact_;      // by VTypeId
  std::vector<bool> guaranteed_;  // by VTypeId
  // Lazily-built caches shared by concurrent query threads. Each mutex is
  // held only around slot access, never across a build (a bitmap build
  // recurses up the vtype path, which would self-deadlock); entries are
  // unique_ptr so a stored cache keeps a stable address across later
  // insertions, and a slot is written at most once (a losing racer's copy
  // is discarded). The bitmap recursion terminates because the vDataGuide
  // is a tree — every hop strictly shortens the vtype path to a root.
  mutable std::mutex decoded_mu_;
  mutable std::vector<std::unique_ptr<num::DecodedPbnColumn>>
      decoded_;  // by original TypeId
  mutable std::mutex reach_mu_;
  mutable std::vector<std::unique_ptr<std::vector<uint8_t>>>
      reach_;  // by VTypeId; null slot = not built (or guaranteed)
  mutable std::mutex vvalue_mu_;
  mutable std::vector<std::unique_ptr<AssembledValueColumn>>
      vvalue_cols_;  // by VTypeId; null slot = not built (or served stored)
};

}  // namespace vpbn::virt
