#include "vpbn/virtual_document.h"

#include <algorithm>

namespace vpbn::virt {

namespace {

/// A virtual type is intact iff its children are exactly the original
/// type's children (same originals, same order) and each child is intact.
std::vector<bool> ComputeIntactTypes(const vdg::VDataGuide& vg) {
  const dg::DataGuide& orig = vg.original_guide();
  std::vector<bool> intact(vg.num_vtypes(), false);
  std::vector<vdg::VTypeId> order = vg.PreOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    vdg::VTypeId t = *it;
    const std::vector<vdg::VTypeId>& vkids = vg.children(t);
    const std::vector<dg::TypeId>& okids = orig.children(vg.original(t));
    bool ok = vkids.size() == okids.size();
    for (size_t i = 0; ok && i < vkids.size(); ++i) {
      ok = vg.original(vkids[i]) == okids[i] && intact[vkids[i]];
    }
    intact[t] = ok;
  }
  return intact;
}

}  // namespace

VirtualDocument::VirtualDocument(VirtualDocument&& other) noexcept
    : stored_(other.stored_),
      vguide_(std::move(other.vguide_)),
      space_(std::move(other.space_)),
      intact_(std::move(other.intact_)),
      guaranteed_(std::move(other.guaranteed_)),
      reachable_memo_(std::move(other.reachable_memo_)) {}

VirtualDocument& VirtualDocument::operator=(VirtualDocument&& other) noexcept {
  if (this != &other) {
    stored_ = other.stored_;
    vguide_ = std::move(other.vguide_);
    space_ = std::move(other.space_);
    intact_ = std::move(other.intact_);
    guaranteed_ = std::move(other.guaranteed_);
    reachable_memo_ = std::move(other.reachable_memo_);
  }
  return *this;
}

Result<VirtualDocument> VirtualDocument::Open(
    const storage::StoredDocument& stored, std::string_view spec_text) {
  VirtualDocument out;
  out.stored_ = &stored;
  VPBN_ASSIGN_OR_RETURN(
      vdg::VDataGuide guide,
      vdg::VDataGuide::Create(spec_text, stored.dataguide()));
  out.vguide_ = std::make_unique<vdg::VDataGuide>(std::move(guide));
  VPBN_ASSIGN_OR_RETURN(out.space_, VpbnSpace::Create(*out.vguide_));
  out.intact_ = ComputeIntactTypes(*out.vguide_);

  // Guaranteed reachability: an edge guarantees its child instances'
  // parent exists when the parent's original type is an ancestor-or-self
  // of the child's (the parent instance is a prefix of the child's own
  // number). Roots are trivially in the document.
  const vdg::VDataGuide& vg = *out.vguide_;
  const dg::DataGuide& orig = stored.dataguide();
  out.guaranteed_.assign(vg.num_vtypes(), false);
  for (vdg::VTypeId t : vg.PreOrder()) {
    if (vg.parent(t) == vdg::kNullVType) {
      out.guaranteed_[t] = true;
    } else {
      out.guaranteed_[t] =
          out.guaranteed_[vg.parent(t)] &&
          orig.IsAncestorOrSelfType(vg.original(vg.parent(t)),
                                    vg.original(t));
    }
  }
  return out;
}

bool VirtualDocument::IsReachable(const VirtualNode& v) const {
  if (guaranteed_[v.vtype]) return true;
  uint64_t key = (static_cast<uint64_t>(v.node) << 32) | v.vtype;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = reachable_memo_.find(key);
    if (it != reachable_memo_.end()) return it->second;
  }
  // Compute outside the lock: the recursion climbs strictly toward vDataGuide
  // roots (no cycles), and a concurrent thread computing the same key derives
  // the same value from the same immutable structures.
  bool reachable = false;
  for (const VirtualNode& p : Parents(v)) {
    if (IsReachable(p)) {
      reachable = true;
      break;
    }
  }
  std::lock_guard<std::mutex> lock(memo_mu_);
  reachable_memo_.emplace(key, reachable);
  return reachable;
}

std::vector<VirtualNode> VirtualDocument::NodesOfVType(
    vdg::VTypeId t) const {
  const std::vector<xml::NodeId>& ids =
      stored_->NodeIdsOfType(vguide_->original(t));
  std::vector<VirtualNode> out;
  out.reserve(ids.size());
  for (xml::NodeId id : ids) out.push_back(VirtualNode{id, t});
  return out;
}

std::vector<VirtualNode> VirtualDocument::Roots() const {
  std::vector<VirtualNode> out;
  for (vdg::VTypeId rt : vguide_->roots()) {
    std::vector<VirtualNode> nodes = NodesOfVType(rt);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  SortVirtualOrder(&out);
  return out;
}

std::vector<VirtualNode> VirtualDocument::RelatedInstances(
    xml::NodeId x, vdg::VTypeId ct) const {
  const dg::DataGuide& orig = stored_->dataguide();
  dg::TypeId tx = stored_->TypeOfNode(x);
  dg::TypeId ty = vguide_->original(ct);
  dg::TypeId z = orig.LcaType(tx, ty);
  std::vector<VirtualNode> out;
  if (z == dg::kNullType) return out;  // unrelated trees: no instances

  const num::Pbn& xp = stored_->numbering().OfNode(x);
  if (z == ty) {
    // Case 2 (including ty == tx): the unique ancestor-or-self of x at the
    // original depth of ty, read straight off x's own number.
    num::Pbn anc = xp.Prefix(orig.length(ty));
    auto node = stored_->numbering().NodeOf(anc);
    if (node.ok()) out.push_back(VirtualNode{node.value(), ct});
    return out;
  }
  // Cases 1 and 3: scan instances of ty inside the subtree of x's ancestor
  // at the LCA's depth (which is x itself when z == tx).
  num::Pbn scope = xp.Prefix(orig.length(z));
  auto [first, last] = stored_->TypeRangeWithin(ty, scope);
  const std::vector<xml::NodeId>& ids = stored_->NodeIdsOfType(ty);
  out.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    out.push_back(VirtualNode{ids[i], ct});
  }
  return out;
}

std::vector<VirtualNode> VirtualDocument::Children(
    const VirtualNode& v) const {
  std::vector<VirtualNode> out;
  for (vdg::VTypeId ct : vguide_->children(v.vtype)) {
    std::vector<VirtualNode> related = RelatedInstances(v.node, ct);
    out.insert(out.end(), related.begin(), related.end());
  }
  SortVirtualOrder(&out);
  return out;
}

std::vector<VirtualNode> VirtualDocument::Parents(
    const VirtualNode& v) const {
  std::vector<VirtualNode> out;
  vdg::VTypeId pt = vguide_->parent(v.vtype);
  if (pt == vdg::kNullVType) return out;
  // A candidate parent instance must have v among its children; reuse the
  // relation in the other direction and keep candidates that relate back.
  std::vector<VirtualNode> candidates = RelatedInstances(v.node, pt);
  Vpbn vx = VpbnOf(v);
  for (const VirtualNode& c : candidates) {
    if (space_.VParent(VpbnOf(c), vx)) out.push_back(c);
  }
  SortVirtualOrder(&out);
  return out;
}

std::vector<VirtualNode> VirtualDocument::AxisNodes(const VirtualNode& v,
                                                    num::Axis axis) const {
  using num::Axis;
  std::vector<VirtualNode> out;
  switch (axis) {
    case Axis::kSelf:
      out.push_back(v);
      return out;
    case Axis::kChild:
      return Children(v);
    case Axis::kParent: {
      // The placement relation may name a parent instance that is itself
      // orphaned (no chain to a root); such a parent has no copy in the
      // virtual document, so it is not an XPath parent of any copy of v.
      for (const VirtualNode& p : Parents(v)) {
        if (IsReachable(p)) out.push_back(p);
      }
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf) out.push_back(v);
      std::vector<VirtualNode> frontier;
      for (const VirtualNode& p : Parents(v)) {
        if (IsReachable(p)) frontier.push_back(p);
      }
      while (!frontier.empty()) {
        std::vector<VirtualNode> next;
        for (const VirtualNode& p : frontier) {
          out.push_back(p);
          for (const VirtualNode& gp : Parents(p)) {
            if (IsReachable(gp)) next.push_back(gp);
          }
        }
        SortVirtualOrder(&next);
        frontier = std::move(next);
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf) out.push_back(v);
      std::vector<VirtualNode> frontier = Children(v);
      while (!frontier.empty()) {
        std::vector<VirtualNode> next;
        for (const VirtualNode& c : frontier) {
          out.push_back(c);
          std::vector<VirtualNode> down = Children(c);
          next.insert(next.end(), down.begin(), down.end());
        }
        SortVirtualOrder(&next);
        frontier = std::move(next);
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      // Candidates: reachable instances of every type in the virtual
      // forest (the order predicates span trees via forest order).
      Vpbn vx = VpbnOf(v);
      for (vdg::VTypeId t = 0; t < vguide_->num_vtypes(); ++t) {
        for (const VirtualNode& cand : NodesOfVType(t)) {
          Vpbn c = VpbnOf(cand);
          bool hit = axis == Axis::kFollowing ? space_.VFollowing(c, vx)
                                              : space_.VPreceding(c, vx);
          if (hit && IsReachable(cand)) out.push_back(cand);
        }
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Exact siblings: children of the node's actual virtual parents
      // (roots are siblings of the other roots), split by virtual order.
      std::vector<VirtualNode> sibs;
      if (vguide_->parent(v.vtype) == vdg::kNullVType) {
        sibs = Roots();
      } else {
        for (const VirtualNode& p : Parents(v)) {
          if (!IsReachable(p)) continue;  // no copies of p exist
          std::vector<VirtualNode> kids = Children(p);
          sibs.insert(sibs.end(), kids.begin(), kids.end());
        }
      }
      Vpbn vx = VpbnOf(v);
      for (const VirtualNode& cand : sibs) {
        if (cand == v) continue;
        auto cmp = space_.VCompare(VpbnOf(cand), vx);
        bool hit = axis == Axis::kFollowingSibling
                       ? cmp == std::weak_ordering::greater
                       : cmp == std::weak_ordering::less;
        if (hit) out.push_back(cand);
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kAttribute:
      return out;
  }
  return out;
}

std::string VirtualDocument::StringValue(const VirtualNode& v) const {
  if (IsText(v)) return text(v);
  if (intact_[v.vtype]) return stored_->doc().StringValue(v.node);
  std::string out;
  for (const VirtualNode& c : Children(v)) {
    out += StringValue(c);
  }
  return out;
}

void VirtualDocument::SortVirtualOrder(std::vector<VirtualNode>* nodes) const {
  std::stable_sort(nodes->begin(), nodes->end(),
                   [&](const VirtualNode& a, const VirtualNode& b) {
                     return space_.VCompare(VpbnOf(a), VpbnOf(b)) ==
                            std::weak_ordering::less;
                   });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace vpbn::virt
