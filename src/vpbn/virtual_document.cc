#include "vpbn/virtual_document.h"

#include <algorithm>
#include <unordered_map>

namespace vpbn::virt {

namespace {

/// A virtual type is intact iff its children are exactly the original
/// type's children (same originals, same order) and each child is intact.
std::vector<bool> ComputeIntactTypes(const vdg::VDataGuide& vg) {
  const dg::DataGuide& orig = vg.original_guide();
  std::vector<bool> intact(vg.num_vtypes(), false);
  std::vector<vdg::VTypeId> order = vg.PreOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    vdg::VTypeId t = *it;
    const std::vector<vdg::VTypeId>& vkids = vg.children(t);
    const std::vector<dg::TypeId>& okids = orig.children(vg.original(t));
    bool ok = vkids.size() == okids.size();
    for (size_t i = 0; ok && i < vkids.size(); ++i) {
      ok = vg.original(vkids[i]) == okids[i] && intact[vkids[i]];
    }
    intact[t] = ok;
  }
  return intact;
}

}  // namespace

VirtualDocument::VirtualDocument(VirtualDocument&& other) noexcept
    : stored_(other.stored_),
      vguide_(std::move(other.vguide_)),
      space_(std::move(other.space_)),
      intact_(std::move(other.intact_)),
      guaranteed_(std::move(other.guaranteed_)),
      decoded_(std::move(other.decoded_)),
      reach_(std::move(other.reach_)),
      vvalue_cols_(std::move(other.vvalue_cols_)) {}

VirtualDocument& VirtualDocument::operator=(VirtualDocument&& other) noexcept {
  if (this != &other) {
    stored_ = other.stored_;
    vguide_ = std::move(other.vguide_);
    space_ = std::move(other.space_);
    intact_ = std::move(other.intact_);
    guaranteed_ = std::move(other.guaranteed_);
    decoded_ = std::move(other.decoded_);
    reach_ = std::move(other.reach_);
    vvalue_cols_ = std::move(other.vvalue_cols_);
  }
  return *this;
}

Result<VirtualDocument> VirtualDocument::Open(
    const storage::StoredDocument& stored, std::string_view spec_text) {
  VirtualDocument out;
  out.stored_ = &stored;
  VPBN_ASSIGN_OR_RETURN(
      vdg::VDataGuide guide,
      vdg::VDataGuide::Create(spec_text, stored.dataguide()));
  out.vguide_ = std::make_unique<vdg::VDataGuide>(std::move(guide));
  VPBN_ASSIGN_OR_RETURN(out.space_, VpbnSpace::Create(*out.vguide_));
  out.intact_ = ComputeIntactTypes(*out.vguide_);

  // Guaranteed reachability: an edge guarantees its child instances'
  // parent exists when the parent's original type is an ancestor-or-self
  // of the child's (the parent instance is a prefix of the child's own
  // number). Roots are trivially in the document.
  const vdg::VDataGuide& vg = *out.vguide_;
  const dg::DataGuide& orig = stored.dataguide();
  out.guaranteed_.assign(vg.num_vtypes(), false);
  for (vdg::VTypeId t : vg.PreOrder()) {
    if (vg.parent(t) == vdg::kNullVType) {
      out.guaranteed_[t] = true;
    } else {
      out.guaranteed_[t] =
          out.guaranteed_[vg.parent(t)] &&
          orig.IsAncestorOrSelfType(vg.original(vg.parent(t)),
                                    vg.original(t));
    }
  }
  return out;
}

Result<std::shared_ptr<const VirtualDocument>> VirtualDocument::OpenShared(
    std::shared_ptr<const storage::StoredDocument> stored,
    std::string_view spec_text) {
  if (stored == nullptr) {
    return Status::InvalidArgument("OpenShared: null stored document");
  }
  VPBN_ASSIGN_OR_RETURN(VirtualDocument vdoc, Open(*stored, spec_text));
  // One control block owns both the view and the stored document it points
  // into; the aliasing pointer exposes only the view.
  struct Holder {
    std::shared_ptr<const storage::StoredDocument> keep_alive;
    VirtualDocument vdoc;
  };
  auto holder = std::make_shared<Holder>(
      Holder{std::move(stored), std::move(vdoc)});
  return std::shared_ptr<const VirtualDocument>(holder, &holder->vdoc);
}

const num::DecodedPbnColumn& VirtualDocument::DecodedNodesOfType(
    dg::TypeId t, bool* built_now) const {
  if (built_now != nullptr) *built_now = false;
  {
    std::lock_guard<std::mutex> lock(decoded_mu_);
    if (decoded_.size() <= t) decoded_.resize(stored_->dataguide().num_types());
    if (decoded_[t] != nullptr) return *decoded_[t];
  }
  // Decode outside the lock; a concurrent racer computes the same column.
  auto column = std::make_unique<num::DecodedPbnColumn>();
  column->FromList(stored_->PackedNodesOfType(t));
  std::lock_guard<std::mutex> lock(decoded_mu_);
  if (decoded_[t] == nullptr) {
    decoded_[t] = std::move(column);
    if (built_now != nullptr) *built_now = true;
  }
  return *decoded_[t];
}

const idx::TypeColumn* VirtualDocument::ValueColumn(vdg::VTypeId t) const {
  const vdg::VDataGuide& vg = *vguide_;
  // Covered iff the string-value is flat in the *virtual* shape: a text
  // vtype, or an element vtype whose vguide children are all text vtypes.
  if (!vg.IsTextVType(t)) {
    for (vdg::VTypeId c : vg.children(t)) {
      if (!vg.IsTextVType(c)) return nullptr;
    }
  }
  dg::TypeId ot = vg.original(t);
  if (intact_[t]) {
    // Intact subtree: virtual string-values equal the original ones, so
    // the stored index's column (same row alignment) serves directly.
    const idx::TypeColumn* col = stored_->value_index().Column(ot);
    if (col != nullptr) return col;
  }
  {
    std::lock_guard<std::mutex> lock(vvalue_mu_);
    if (vvalue_cols_.empty()) vvalue_cols_.resize(vg.num_vtypes());
    if (vvalue_cols_[t] != nullptr) return &vvalue_cols_[t]->column;
  }
  // Assemble outside the lock over *every* instance of the original type
  // (rows must align with NodeIdsOfType whether or not an instance is
  // reachable); a concurrent racer computes the same column and the first
  // store wins.
  const std::vector<xml::NodeId>& ids = stored_->NodeIdsOfType(ot);
  auto made = std::make_unique<AssembledValueColumn>();
  made->column = idx::ValueIndex::BuildColumn(
      ids.size(),
      [&](size_t row) { return StringValue(VirtualNode{ids[row], t}); },
      &made->dict);
  std::lock_guard<std::mutex> lock(vvalue_mu_);
  if (vvalue_cols_[t] == nullptr) vvalue_cols_[t] = std::move(made);
  return &vvalue_cols_[t]->column;
}

std::vector<uint8_t> VirtualDocument::BuildReachableBitmap(
    vdg::VTypeId t) const {
  const dg::DataGuide& orig = stored_->dataguide();
  dg::TypeId ot = vguide_->original(t);
  std::vector<uint8_t> bm(stored_->NodeIdsOfType(ot).size(), 0);
  // Only non-guaranteed types build bitmaps, and roots are guaranteed, so
  // t has a virtual parent type.
  vdg::VTypeId pt = vguide_->parent(t);
  dg::TypeId pot = vguide_->original(pt);
  // The placement relation is empty when the originals share no tree of
  // the DataGuide forest (RelatedInstances finds no LCA): no instance has
  // any parent, so none is reachable.
  if (orig.LcaType(pot, ot) == dg::kNullType) return bm;
  // An instance is reachable iff some compatible parent instance is (the
  // virtual parent relation *is* NumbersCompatible for a (parent-type,
  // child-type) pair — the type and level conditions hold structurally).
  const std::vector<uint8_t>* parent_bm =
      guaranteed_[pt] ? nullptr : ReachableBitmap(pt);
  VPairMergePlan plan =
      space_.PlanPairMerge(pt, t, orig.length(pot), orig.length(ot));
  MergeCompatiblePairs(plan, DecodedNodesOfType(pot), DecodedNodesOfType(ot),
                       nullptr, [&](size_t pi, size_t ci) {
                         if (parent_bm == nullptr || (*parent_bm)[pi] != 0) {
                           bm[ci] = 1;
                         }
                       });
  return bm;
}

const std::vector<uint8_t>* VirtualDocument::ReachableBitmap(
    vdg::VTypeId t) const {
  if (guaranteed_[t]) return nullptr;
  {
    std::lock_guard<std::mutex> lock(reach_mu_);
    if (reach_.size() <= t) reach_.resize(vguide_->num_vtypes());
    if (reach_[t] != nullptr) return reach_[t].get();
  }
  // Build outside the lock: the recursion climbs strictly toward vDataGuide
  // roots (no cycles), and a concurrent thread building the same bitmap
  // derives the same bits from the same immutable structures.
  auto bm = std::make_unique<std::vector<uint8_t>>(BuildReachableBitmap(t));
  std::lock_guard<std::mutex> lock(reach_mu_);
  if (reach_[t] == nullptr) reach_[t] = std::move(bm);
  return reach_[t].get();
}

bool VirtualDocument::IsReachable(const VirtualNode& v) const {
  if (guaranteed_[v.vtype]) return true;
  const std::vector<uint8_t>& bm = *ReachableBitmap(v.vtype);
  // Locate the node's index in its type's instance list: instances of one
  // type share one depth, so the containment range of the node's own
  // number is the node itself.
  dg::TypeId ot = vguide_->original(v.vtype);
  auto [first, last] =
      stored_->TypeRangeWithin(ot, stored_->numbering().OfNode(v.node));
  const std::vector<xml::NodeId>& ids = stored_->NodeIdsOfType(ot);
  for (size_t i = first; i < last; ++i) {
    if (ids[i] == v.node) return bm[i] != 0;
  }
  return false;
}

std::vector<VirtualNode> VirtualDocument::NodesOfVType(
    vdg::VTypeId t) const {
  const std::vector<xml::NodeId>& ids =
      stored_->NodeIdsOfType(vguide_->original(t));
  std::vector<VirtualNode> out;
  out.reserve(ids.size());
  for (xml::NodeId id : ids) out.push_back(VirtualNode{id, t});
  return out;
}

std::vector<VirtualNode> VirtualDocument::Roots() const {
  std::vector<VirtualNode> out;
  for (vdg::VTypeId rt : vguide_->roots()) {
    std::vector<VirtualNode> nodes = NodesOfVType(rt);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  SortVirtualOrder(&out);
  return out;
}

std::vector<VirtualNode> VirtualDocument::RelatedInstances(
    xml::NodeId x, vdg::VTypeId ct) const {
  const dg::DataGuide& orig = stored_->dataguide();
  dg::TypeId tx = stored_->TypeOfNode(x);
  dg::TypeId ty = vguide_->original(ct);
  dg::TypeId z = orig.LcaType(tx, ty);
  std::vector<VirtualNode> out;
  if (z == dg::kNullType) return out;  // unrelated trees: no instances

  const num::Pbn& xp = stored_->numbering().OfNode(x);
  if (z == ty) {
    // Case 2 (including ty == tx): the unique ancestor-or-self of x at the
    // original depth of ty, read straight off x's own number.
    num::Pbn anc = xp.Prefix(orig.length(ty));
    auto node = stored_->numbering().NodeOf(anc);
    if (node.ok()) out.push_back(VirtualNode{node.value(), ct});
    return out;
  }
  // Cases 1 and 3: scan instances of ty inside the subtree of x's ancestor
  // at the LCA's depth (which is x itself when z == tx).
  num::Pbn scope = xp.Prefix(orig.length(z));
  auto [first, last] = stored_->TypeRangeWithin(ty, scope);
  const std::vector<xml::NodeId>& ids = stored_->NodeIdsOfType(ty);
  out.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    out.push_back(VirtualNode{ids[i], ct});
  }
  return out;
}

std::vector<VirtualNode> VirtualDocument::Children(
    const VirtualNode& v) const {
  std::vector<VirtualNode> out;
  for (vdg::VTypeId ct : vguide_->children(v.vtype)) {
    std::vector<VirtualNode> related = RelatedInstances(v.node, ct);
    out.insert(out.end(), related.begin(), related.end());
  }
  SortVirtualOrder(&out);
  return out;
}

std::vector<VirtualNode> VirtualDocument::Parents(
    const VirtualNode& v) const {
  std::vector<VirtualNode> out;
  vdg::VTypeId pt = vguide_->parent(v.vtype);
  if (pt == vdg::kNullVType) return out;
  // A candidate parent instance must have v among its children; reuse the
  // relation in the other direction and keep candidates that relate back.
  std::vector<VirtualNode> candidates = RelatedInstances(v.node, pt);
  const num::Numbering& num = stored_->numbering();
  VpbnView vx(num.OfNode(v.node), v.vtype);
  for (const VirtualNode& c : candidates) {
    if (space_.VParent(VpbnView(num.OfNode(c.node), c.vtype), vx)) {
      out.push_back(c);
    }
  }
  SortVirtualOrder(&out);
  return out;
}

std::vector<VirtualNode> VirtualDocument::AxisNodes(const VirtualNode& v,
                                                    num::Axis axis) const {
  using num::Axis;
  std::vector<VirtualNode> out;
  switch (axis) {
    case Axis::kSelf:
      out.push_back(v);
      return out;
    case Axis::kChild:
      return Children(v);
    case Axis::kParent: {
      // The placement relation may name a parent instance that is itself
      // orphaned (no chain to a root); such a parent has no copy in the
      // virtual document, so it is not an XPath parent of any copy of v.
      for (const VirtualNode& p : Parents(v)) {
        if (IsReachable(p)) out.push_back(p);
      }
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf) out.push_back(v);
      std::vector<VirtualNode> frontier;
      for (const VirtualNode& p : Parents(v)) {
        if (IsReachable(p)) frontier.push_back(p);
      }
      while (!frontier.empty()) {
        std::vector<VirtualNode> next;
        for (const VirtualNode& p : frontier) {
          out.push_back(p);
          for (const VirtualNode& gp : Parents(p)) {
            if (IsReachable(gp)) next.push_back(gp);
          }
        }
        SortVirtualOrder(&next);
        frontier = std::move(next);
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf) out.push_back(v);
      std::vector<VirtualNode> frontier = Children(v);
      while (!frontier.empty()) {
        std::vector<VirtualNode> next;
        for (const VirtualNode& c : frontier) {
          out.push_back(c);
          std::vector<VirtualNode> down = Children(c);
          next.insert(next.end(), down.begin(), down.end());
        }
        SortVirtualOrder(&next);
        frontier = std::move(next);
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      // Candidates: reachable instances of every type in the virtual
      // forest (the order predicates span trees via forest order).
      Vpbn vx = VpbnOf(v);
      for (vdg::VTypeId t = 0; t < vguide_->num_vtypes(); ++t) {
        for (const VirtualNode& cand : NodesOfVType(t)) {
          Vpbn c = VpbnOf(cand);
          bool hit = axis == Axis::kFollowing ? space_.VFollowing(c, vx)
                                              : space_.VPreceding(c, vx);
          if (hit && IsReachable(cand)) out.push_back(cand);
        }
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Exact siblings: children of the node's actual virtual parents
      // (roots are siblings of the other roots), split by virtual order.
      std::vector<VirtualNode> sibs;
      if (vguide_->parent(v.vtype) == vdg::kNullVType) {
        sibs = Roots();
      } else {
        for (const VirtualNode& p : Parents(v)) {
          if (!IsReachable(p)) continue;  // no copies of p exist
          std::vector<VirtualNode> kids = Children(p);
          sibs.insert(sibs.end(), kids.begin(), kids.end());
        }
      }
      Vpbn vx = VpbnOf(v);
      for (const VirtualNode& cand : sibs) {
        if (cand == v) continue;
        auto cmp = space_.VCompare(VpbnOf(cand), vx);
        bool hit = axis == Axis::kFollowingSibling
                       ? cmp == std::weak_ordering::greater
                       : cmp == std::weak_ordering::less;
        if (hit) out.push_back(cand);
      }
      SortVirtualOrder(&out);
      return out;
    }
    case Axis::kAttribute:
      return out;
  }
  return out;
}

std::string VirtualDocument::StringValue(const VirtualNode& v) const {
  if (IsText(v)) return text(v);
  if (intact_[v.vtype]) return stored_->doc().StringValue(v.node);
  std::string out;
  for (const VirtualNode& c : Children(v)) {
    out += StringValue(c);
  }
  return out;
}

void VirtualDocument::SortVirtualOrder(std::vector<VirtualNode>* nodes) const {
  const size_t n = nodes->size();
  if (n <= 1) return;
  // Compare through borrowed views: OfNode hands out a stable reference,
  // so no Pbn is materialized per comparison.
  const num::Numbering& num = stored_->numbering();
  auto vless = [&](const VirtualNode& a, const VirtualNode& b) {
    return space_.VCompare(VpbnView(num.OfNode(a.node), a.vtype),
                           VpbnView(num.OfNode(b.node), b.vtype)) ==
           std::weak_ordering::less;
  };
  if (n < 32) {
    std::stable_sort(nodes->begin(), nodes->end(), vless);
    nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
    return;
  }

  // Large inputs: within one vtype every instance has the same number
  // length and the same level segmentation, so virtual order degenerates
  // to plain lexicographic PBN order — integer compares. Partition into
  // per-vtype runs, sort each run cheaply, and pay the full virtual-order
  // comparator only where runs interleave. Duplicates share a vtype, so
  // run-local dedup is complete.
  auto lexless = [&](const VirtualNode& a, const VirtualNode& b) {
    const std::vector<uint32_t>& ca = num.OfNode(a.node).components();
    const std::vector<uint32_t>& cb = num.OfNode(b.node).components();
    return std::lexicographical_compare(ca.begin(), ca.end(), cb.begin(),
                                        cb.end());
  };
  // Run-local order is plain document order, and the type index already
  // keeps an 8-byte ordered-codec sort key per instance. Decorating the
  // run with those keys turns the sortedness precheck into a flat uint64
  // scan and the sort into an integer sort; component compares fire only
  // on equal keys (numbers sharing their first eight encoded bytes).
  dg::TypeId memo_type = dg::kNullType;
  const uint64_t* memo_keys = nullptr;
  auto doc_key = [&](const VirtualNode& v) {
    const dg::TypeId t = stored_->TypeOfNode(v.node);
    if (t != memo_type) {
      memo_type = t;
      memo_keys = stored_->PackedNodesOfType(t).keys_data();
    }
    return memo_keys[stored_->RowOfNode(v.node)];
  };
  auto sort_run = [&](std::vector<VirtualNode>* run) {
    const size_t m = run->size();
    std::vector<uint64_t> keys(m);
    for (size_t i = 0; i < m; ++i) keys[i] = doc_key((*run)[i]);
    bool sorted = true;
    for (size_t i = 0; i + 1 < m; ++i) {
      if (keys[i] > keys[i + 1] ||
          (keys[i] == keys[i + 1] && lexless((*run)[i + 1], (*run)[i]))) {
        sorted = false;
        break;
      }
    }
    if (!sorted) {
      std::vector<std::pair<uint64_t, VirtualNode>> dec(m);
      for (size_t i = 0; i < m; ++i) dec[i] = {keys[i], (*run)[i]};
      std::sort(dec.begin(), dec.end(),
                [&](const std::pair<uint64_t, VirtualNode>& x,
                    const std::pair<uint64_t, VirtualNode>& y) {
                  if (x.first != y.first) return x.first < y.first;
                  return lexless(x.second, y.second);
                });
      for (size_t i = 0; i < m; ++i) (*run)[i] = dec[i].second;
    }
    run->erase(std::unique(run->begin(), run->end()), run->end());
  };
  bool single_vtype = true;
  for (const VirtualNode& v : *nodes) {
    if (v.vtype != nodes->front().vtype) {
      single_vtype = false;
      break;
    }
  }
  if (single_vtype) {
    // Merge-join output arrives per-target in candidate order, so it is
    // usually already sorted — worth one linear precheck.
    sort_run(nodes);
    return;
  }
  std::vector<std::vector<VirtualNode>> runs;
  {
    std::unordered_map<uint32_t, size_t> index;
    for (const VirtualNode& v : *nodes) {
      auto [it, inserted] = index.emplace(v.vtype, runs.size());
      if (inserted) runs.emplace_back();
      runs[it->second].push_back(v);
    }
  }
  for (std::vector<VirtualNode>& run : runs) {
    sort_run(&run);
  }
  if (runs.size() == 1) {
    *nodes = std::move(runs.front());
    return;
  }
  // K-way merge on run heads (k = distinct vtypes, small). Heads of
  // different vtypes never compare equivalent — a vPBN names one node —
  // so the min pick, and with it the output, is deterministic.
  nodes->clear();
  std::vector<size_t> pos(runs.size(), 0);
  for (;;) {
    size_t best = runs.size();
    for (size_t r = 0; r < runs.size(); ++r) {
      if (pos[r] == runs[r].size()) continue;
      if (best == runs.size() || vless(runs[r][pos[r]], runs[best][pos[best]])) {
        best = r;
      }
    }
    if (best == runs.size()) break;
    nodes->push_back(runs[best][pos[best]++]);
  }
}

}  // namespace vpbn::virt
