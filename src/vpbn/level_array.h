/// \file level_array.h
/// \brief Level arrays: the second half of a vPBN number (§5).
///
/// "The level array records the tree level of each component in a PBN
///  number." A vPBN number couples a node's *original* PBN number with the
///  level array of its virtual type. For most types the array has exactly
///  one entry per PBN component; for a type whose original is an ancestor of
///  its virtual parent's original (Case 2 of §5.2) the array is one entry
///  longer than the number — the extra entry marks the node's own level with
///  no corresponding component.
///
/// Level arrays are non-decreasing (a component can never locate a shallower
/// virtual ancestor than the component before it), which the builder checks.

#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace vpbn::virt {

/// \brief The tree level of each PBN component in the virtual hierarchy.
class LevelArray {
 public:
  LevelArray() = default;
  explicit LevelArray(std::vector<uint32_t> levels)
      : levels_(std::move(levels)) {
    assert(IsNonDecreasing());
  }

  size_t size() const { return levels_.size(); }
  bool empty() const { return levels_.empty(); }

  /// 1-based access, matching the paper's x_a[i] notation.
  uint32_t at1(size_t i) const { return levels_[i - 1]; }

  uint32_t operator[](size_t i) const { return levels_[i]; }

  /// The paper's max(x_a): the node's own virtual level. Because arrays are
  /// non-decreasing this is the last entry.
  uint32_t max() const { return levels_.empty() ? 0 : levels_.back(); }

  const std::vector<uint32_t>& levels() const { return levels_; }

  bool operator==(const LevelArray&) const = default;

  /// "[1,1,2,3]"
  std::string ToString() const;

  size_t MemoryUsage() const { return levels_.capacity() * sizeof(uint32_t); }

 private:
  bool IsNonDecreasing() const {
    for (size_t i = 1; i < levels_.size(); ++i) {
      if (levels_[i] < levels_[i - 1]) return false;
    }
    return true;
  }

  std::vector<uint32_t> levels_;
};

}  // namespace vpbn::virt
