#include "vpbn/virtual_value.h"

#include "common/str_util.h"

namespace vpbn::virt {

VirtualValueComputer::VirtualValueComputer(const VirtualDocument& vdoc,
                                           bool use_value_index)
    : vdoc_(&vdoc) {
  // Intactness is computed once per view by the VirtualDocument.
  intact_.resize(vdoc.vguide().num_vtypes());
  for (vdg::VTypeId t = 0; t < vdoc.vguide().num_vtypes(); ++t) {
    intact_[t] = use_value_index && vdoc.IsIntactVType(t);
  }
}

std::string VirtualValueComputer::Value(const VirtualNode& v) {
  std::string out;
  AppendValue(v, &out);
  return out;
}

bool VirtualValueComputer::ValueView(const VirtualNode& v,
                                     std::string_view* out) {
  if (!intact_[v.vtype]) return false;
  const storage::StoredDocument& stored = vdoc_->stored();
  auto range = stored.Value(stored.numbering().OfNode(v.node));
  if (!range.ok()) return false;
  *out = range.value();
  ++stats_.range_copies;
  return true;
}

void VirtualValueComputer::AppendValue(const VirtualNode& v,
                                       std::string* out) {
  const storage::StoredDocument& stored = vdoc_->stored();
  if (intact_[v.vtype]) {
    // One range copy through the value index (§6).
    auto range = stored.Value(stored.numbering().OfNode(v.node));
    if (range.ok()) {
      out->append(range.value());
      ++stats_.range_copies;
      return;
    }
  }
  ++stats_.constructed_nodes;
  const xml::Document& doc = stored.doc();
  if (doc.IsText(v.node)) {
    out->append(EscapeXmlText(doc.text(v.node)));
    return;
  }
  std::vector<VirtualNode> kids = vdoc_->Children(v);
  out->push_back('<');
  out->append(doc.name(v.node));
  for (const xml::Attribute& a : doc.attributes(v.node)) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EscapeXmlAttribute(a.value));
    out->push_back('"');
  }
  if (kids.empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (const VirtualNode& c : kids) AppendValue(c, out);
  out->append("</");
  out->append(doc.name(v.node));
  out->push_back('>');
}

}  // namespace vpbn::virt
