/// \file vpbn_codec.h
/// \brief Wire encoding for full vPBN numbers (number + level array).
///
/// The normal representation shares one level array per type (§5), but a
/// system shipping numbers across a wire (or storing them per node, the
/// naive layout E5 measures) needs a self-contained encoding. Level arrays
/// are non-decreasing, so they are delta-encoded: most deltas are 0 or 1
/// and fit a single varint byte.

#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "pbn/pbn.h"
#include "vpbn/level_array.h"

namespace vpbn::virt {

/// \brief Append the encoding of (\p pbn, \p levels) to \p out.
void EncodeVpbn(const num::Pbn& pbn, const LevelArray& levels,
                std::string* out);

/// \brief Size in bytes EncodeVpbn would emit.
size_t VpbnEncodedSize(const num::Pbn& pbn, const LevelArray& levels);

/// \brief Decoded pair.
struct DecodedVpbn {
  num::Pbn pbn;
  LevelArray levels;
};

/// \brief Decode one vPBN from the front of \p in, advancing it.
Result<DecodedVpbn> DecodeVpbn(std::string_view* in);

}  // namespace vpbn::virt
