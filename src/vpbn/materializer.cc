#include "vpbn/materializer.h"

namespace vpbn::virt {

namespace {

Status CopySubtree(const VirtualDocument& vdoc, const VirtualNode& v,
                   xml::NodeId parent, const MaterializeOptions& options,
                   Materialized* out) {
  if (out->doc.num_nodes() >= options.max_nodes) {
    return Status::ResourceExhausted(
        "materialize: output exceeds max_nodes=" +
        std::to_string(options.max_nodes));
  }
  const xml::Document& src = vdoc.stored().doc();
  xml::NodeId copy;
  if (src.IsText(v.node)) {
    copy = out->doc.AddText(src.text(v.node), parent);
  } else {
    copy = out->doc.AddElement(src.name(v.node), parent);
    for (const xml::Attribute& a : src.attributes(v.node)) {
      out->doc.AddAttribute(copy, a.name, a.value);
    }
  }
  out->provenance.push_back(v);
  for (const VirtualNode& c : vdoc.Children(v)) {
    VPBN_RETURN_NOT_OK(CopySubtree(vdoc, c, copy, options, out));
  }
  return Status::OK();
}

}  // namespace

Result<Materialized> Materialize(const VirtualDocument& vdoc,
                                 const MaterializeOptions& options) {
  Materialized out;
  for (const VirtualNode& root : vdoc.Roots()) {
    VPBN_RETURN_NOT_OK(
        CopySubtree(vdoc, root, xml::kNullNode, options, &out));
  }
  return out;
}

}  // namespace vpbn::virt
