/// \file vpbn.h
/// \brief Virtual prefix-based numbers and the space they live in (§5).
///
/// A vPBN number is a PBN number coupled with a level array. Because the
/// level array is shared by every node of a virtual type (§5.2), a Vpbn here
/// is the pair (original PBN, virtual type); the level array is looked up
/// per type in the VpbnSpace. This is the paper's space optimization: "the
/// level arrays do not have to be stored with the numbers since the level
/// array can be stored with each type".
///
/// VpbnSpace bundles a vDataGuide with its level-array map and implements
/// every virtual axis predicate of §5 plus the virtual document-order
/// comparator. All predicates follow the paper's two-part form: a
/// number-level test on (PBN, level array) pairs and a type-level test in
/// the virtual type forest.

#pragma once

#include <compare>

#include "common/result.h"
#include "pbn/axis.h"
#include "pbn/pbn.h"
#include "vdg/vdataguide.h"
#include "vpbn/level_array.h"
#include "vpbn/level_array_builder.h"

namespace vpbn::virt {

/// \brief A virtual node reference: the node's original PBN number plus its
/// virtual type. The referenced Pbn must outlive the reference.
struct Vpbn {
  const num::Pbn* pbn = nullptr;
  vdg::VTypeId vtype = vdg::kNullVType;

  Vpbn() = default;
  Vpbn(const num::Pbn& p, vdg::VTypeId t) : pbn(&p), vtype(t) {}
};

/// \brief The virtual numbering space of one vDataGuide.
class VpbnSpace {
 public:
  /// An empty space; unusable until move-assigned from Create().
  VpbnSpace() = default;

  /// Builds the level arrays (Algorithm 1) for \p guide. The guide must
  /// outlive the space.
  static Result<VpbnSpace> Create(const vdg::VDataGuide& guide);

  const vdg::VDataGuide& guide() const { return *guide_; }
  const LevelArrayMap& level_arrays() const { return arrays_; }
  const LevelArray& level_array(vdg::VTypeId t) const {
    return arrays_.of(t);
  }

  /// The node's virtual level: max(x_a).
  uint32_t VirtualLevel(const Vpbn& x) const {
    return arrays_.of(x.vtype).max();
  }

  /// \name Virtual axis predicates (§5). Each answers "is x <axis> of y in
  /// the virtual hierarchy?".
  /// @{
  bool VSelf(const Vpbn& x, const Vpbn& y) const;
  bool VAncestor(const Vpbn& x, const Vpbn& y) const;
  bool VParent(const Vpbn& x, const Vpbn& y) const;
  bool VDescendant(const Vpbn& x, const Vpbn& y) const;
  bool VChild(const Vpbn& x, const Vpbn& y) const;
  bool VAncestorOrSelf(const Vpbn& x, const Vpbn& y) const;
  bool VDescendantOrSelf(const Vpbn& x, const Vpbn& y) const;
  bool VPreceding(const Vpbn& x, const Vpbn& y) const;
  bool VFollowing(const Vpbn& x, const Vpbn& y) const;
  bool VPrecedingSibling(const Vpbn& x, const Vpbn& y) const;
  bool VFollowingSibling(const Vpbn& x, const Vpbn& y) const;
  /// @}

  /// Dispatch on \p axis (kAttribute is always false).
  bool VCheckAxis(num::Axis axis, const Vpbn& x, const Vpbn& y) const;

  /// Virtual document order: less = x comes before y. Nodes that compare
  /// equivalent are the same virtual node.
  ///
  /// The order is lexicographic over virtual levels. At each level the two
  /// nodes' *level segments* — the contiguous run of PBN components whose
  /// level-array entry equals that level — are compared element-wise; a
  /// Case-2 entry with no component sorts after any component, and when one
  /// segment is a proper prefix of the other the longer segment sorts first
  /// (this is what places a title's text before the authors in the paper's
  /// Figure 3). Segments that tie fall through to the pre-order index of
  /// the nodes' level-l ancestor types. Because every level comparison is a
  /// pure lexicographic key, the order is a strict weak ordering — safe for
  /// std::sort — which the naive "ordinal scan, then type order" reading of
  /// §5's formulas is not (it admits cycles when `*`/`**` expansions put
  /// differently-scoped types under one parent).
  std::weak_ordering VCompare(const Vpbn& x, const Vpbn& y) const;

  /// Render "1.2.2 [1,1,2]" for diagnostics.
  std::string ToString(const Vpbn& x) const;

 private:
  /// The number-level prefix test shared by VAncestor/VDescendant: at every
  /// aligned position where the level arrays agree, the PBN components must
  /// exist and agree.
  bool NumbersCompatible(const Vpbn& x, const Vpbn& y) const;

  /// First array position (1-based) of each level's segment for \p t, plus
  /// a final end marker: segment of level l is [starts[l-1], starts[l]).
  const std::vector<uint32_t>& SegmentStarts(vdg::VTypeId t) const {
    return segment_starts_[t];
  }

  const vdg::VDataGuide* guide_ = nullptr;
  LevelArrayMap arrays_;
  // Per vtype: ancestor vtype at each level (chain root..self).
  std::vector<std::vector<vdg::VTypeId>> chains_;
  // Per vtype: level-segment boundaries in its level array.
  std::vector<std::vector<uint32_t>> segment_starts_;
};

}  // namespace vpbn::virt
