/// \file vpbn.h
/// \brief Virtual prefix-based numbers and the space they live in (§5).
///
/// A vPBN number is a PBN number coupled with a level array. Because the
/// level array is shared by every node of a virtual type (§5.2), a Vpbn here
/// is the pair (original PBN, virtual type); the level array is looked up
/// per type in the VpbnSpace. This is the paper's space optimization: "the
/// level arrays do not have to be stored with the numbers since the level
/// array can be stored with each type".
///
/// VpbnSpace bundles a vDataGuide with its level-array map and implements
/// every virtual axis predicate of §5 plus the virtual document-order
/// comparator. All predicates follow the paper's two-part form: a
/// number-level test on (PBN, level array) pairs and a type-level test in
/// the virtual type forest.

#pragma once

#include <compare>
#include <vector>

#include "common/result.h"
#include "pbn/axis.h"
#include "pbn/packed.h"
#include "pbn/pbn.h"
#include "pbn/structural_join.h"
#include "vdg/vdataguide.h"
#include "vpbn/level_array.h"
#include "vpbn/level_array_builder.h"

namespace vpbn::virt {

/// \brief A virtual node reference: the node's original PBN number plus its
/// virtual type. The referenced Pbn must outlive the reference.
struct Vpbn {
  const num::Pbn* pbn = nullptr;
  vdg::VTypeId vtype = vdg::kNullVType;

  Vpbn() = default;
  Vpbn(const num::Pbn& p, vdg::VTypeId t) : pbn(&p), vtype(t) {}
};

/// \brief A borrowed, decoded view of a vPBN number: a raw component span
/// plus the virtual type. This is the packed-ref entry point into the axis
/// predicates — a PackedPbnRef from a columnar arena (pbn/packed.h) is
/// decoded once into a caller-owned buffer and then tested against many
/// candidates without materializing a heap Pbn per test. Every VpbnSpace
/// predicate has a VpbnView overload; the Vpbn overloads are thin wrappers
/// viewing the Pbn's own component storage.
struct VpbnView {
  const uint32_t* comps = nullptr;
  uint32_t len = 0;
  vdg::VTypeId vtype = vdg::kNullVType;

  VpbnView() = default;
  VpbnView(const num::Pbn& p, vdg::VTypeId t)
      : comps(p.components().data()),
        len(static_cast<uint32_t>(p.length())),
        vtype(t) {}
  VpbnView(const uint32_t* c, uint32_t n, vdg::VTypeId t)
      : comps(c), len(n), vtype(t) {}
  explicit VpbnView(const Vpbn& v) : VpbnView(*v.pbn, v.vtype) {}

  /// 1-based component access, matching the paper's x_n[i] notation.
  uint32_t at1(size_t i) const { return comps[i - 1]; }
  size_t length() const { return len; }
};

/// \brief Decode \p ref into \p buf (reused across calls) and view it as
/// the vPBN of virtual type \p t. The buffer must outlive the view.
inline VpbnView DecodeView(const num::PackedPbnRef& ref, vdg::VTypeId t,
                           std::vector<uint32_t>* buf) {
  ref.DecodeTo(buf);
  return VpbnView(buf->data(), static_cast<uint32_t>(buf->size()), t);
}

/// \brief The number-level compatibility test of one (vtype, vtype) pair,
/// compiled into a merge recipe.
///
/// NumbersCompatible(x, y) quantifies over the *aligned positions* of the
/// pair's two level arrays — the positions where the arrays carry the same
/// level. Those positions are fixed per type pair, so the per-instance test
/// splits into:
///
///   * `merge_prefix` — the longest leading run 1..k of aligned positions.
///     Compatibility on these is "the numbers share their first k
///     components", and because every instance of one DataGuide type has
///     the same number length, equal-k-prefix instances are contiguous in
///     each type's document-ordered list: a linear two-pointer group merge
///     enumerates all compatible pairs.
///   * `residual` — aligned positions after a gap (non-prefix). Verified
///     per emitted pair. For every pair the virtual type forest can
///     produce (ancestor/descendant or parent/child virtual types) the
///     aligned set is provably a pure prefix, so this stays empty; it
///     exists for exactness should a future caller plan an unrelated pair.
///   * `impossible` — an aligned position beyond one side's (uniform)
///     number length: no instance pair can witness agreement there, so the
///     whole pair joins empty (a Case-2 context whose extra entry aligns).
struct VPairMergePlan {
  uint32_t merge_prefix = 0;
  std::vector<uint32_t> residual;  // 1-based positions, ascending
  bool impossible = false;
};

/// \brief All compatible index pairs between two decoded, document-ordered
/// columns under \p plan, by group merge on the plan's shared prefix.
/// Emits sink(xi, yi) for every pair with NumbersCompatible(x[xi], y[yi]);
/// pairs arrive grouped by x index ascending, y ascending within a group.
/// Counts one comparison per group-order decision (merge_prefix components
/// = 4 * merge_prefix bytes) plus one per residual check into \p counters
/// (optional). A plan with merge_prefix == 0 degenerates to the full cross
/// product, which is the correct answer (every position is unaligned).
template <typename Sink>
void MergeCompatiblePairs(const VPairMergePlan& plan,
                          const num::DecodedPbnColumn& xs,
                          const num::DecodedPbnColumn& ys,
                          num::JoinCounters* counters, Sink&& sink) {
  if (plan.impossible) return;
  const size_t nx = xs.size();
  const size_t ny = ys.size();
  if (nx == 0 || ny == 0) return;
  const uint32_t k = plan.merge_prefix;
  uint64_t comparisons = 0;
  uint64_t pairs = 0;
  auto residual_ok = [&](size_t xi, size_t yi) {
    for (uint32_t p : plan.residual) {
      ++comparisons;
      bool x_has = p <= xs.length(xi);
      bool y_has = p <= ys.length(yi);
      if (!x_has || !y_has) return false;
      if (xs.comps(xi)[p - 1] != ys.comps(yi)[p - 1]) return false;
    }
    return true;
  };
  if (k == 0) {
    for (size_t xi = 0; xi < nx; ++xi) {
      for (size_t yi = 0; yi < ny; ++yi) {
        if (residual_ok(xi, yi)) {
          ++pairs;
          sink(xi, yi);
        }
      }
    }
  } else {
    // Both columns are document-ordered and (per type) uniform-length, so
    // they are sorted lexicographically by components; equal-k-prefix
    // groups are contiguous runs on both sides. The merge walks packed
    // 64-bit keys of the first min(k, 2) components — flat columns built
    // in one batched pass per side — and touches the component arrays
    // only when keys collide (k > 2 prefixes sharing both lead values).
    const bool two = k >= 2;
    auto build_keys = [two](const num::DecodedPbnColumn& c, size_t n) {
      std::vector<uint64_t> keys(n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t* a = c.comps(i);
        keys[i] = (static_cast<uint64_t>(a[0]) << 32) | (two ? a[1] : 0u);
      }
      return keys;
    };
    const std::vector<uint64_t> xk = build_keys(xs, nx);
    const std::vector<uint64_t> yk = build_keys(ys, ny);
    auto tail_cmp = [&](size_t xi, size_t yi) {
      const uint32_t* a = xs.comps(xi);
      const uint32_t* b = ys.comps(yi);
      for (uint32_t i = 2; i < k; ++i) {
        if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
      }
      return 0;
    };
    auto same_tail = [&](const uint32_t* a, const uint32_t* b) {
      for (uint32_t i = 2; i < k; ++i) {
        if (a[i] != b[i]) return false;
      }
      return true;
    };
    size_t xi = 0, yi = 0;
    while (xi < nx && yi < ny) {
      ++comparisons;
      int c;
      if (xk[xi] != yk[yi]) {
        c = xk[xi] < yk[yi] ? -1 : 1;
      } else {
        c = k > 2 ? tail_cmp(xi, yi) : 0;
      }
      if (c < 0) {
        ++xi;
      } else if (c > 0) {
        ++yi;
      } else {
        size_t xe = xi + 1;
        while (xe < nx && xk[xe] == xk[xi] &&
               (k <= 2 || same_tail(xs.comps(xe), xs.comps(xi)))) {
          ++xe;
        }
        size_t ye = yi + 1;
        while (ye < ny && yk[ye] == yk[yi] &&
               (k <= 2 || same_tail(ys.comps(ye), ys.comps(yi)))) {
          ++ye;
        }
        comparisons += (xe - xi - 1) + (ye - yi - 1);
        for (size_t i = xi; i < xe; ++i) {
          for (size_t j = yi; j < ye; ++j) {
            if (residual_ok(i, j)) {
              ++pairs;
              sink(i, j);
            }
          }
        }
        xi = xe;
        yi = ye;
      }
    }
  }
  if (counters != nullptr) {
    counters->comparisons += comparisons;
    counters->bytes_compared += comparisons * 4 * (k == 0 ? 1 : k);
    counters->vjoin_pairs += pairs;
  }
}

/// \brief The virtual numbering space of one vDataGuide.
class VpbnSpace {
 public:
  /// An empty space; unusable until move-assigned from Create().
  VpbnSpace() = default;

  /// Builds the level arrays (Algorithm 1) for \p guide. The guide must
  /// outlive the space.
  static Result<VpbnSpace> Create(const vdg::VDataGuide& guide);

  const vdg::VDataGuide& guide() const { return *guide_; }
  const LevelArrayMap& level_arrays() const { return arrays_; }
  const LevelArray& level_array(vdg::VTypeId t) const {
    return arrays_.of(t);
  }

  /// The node's virtual level: max(x_a).
  uint32_t VirtualLevel(const Vpbn& x) const {
    return arrays_.of(x.vtype).max();
  }
  uint32_t VirtualLevel(const VpbnView& x) const {
    return arrays_.of(x.vtype).max();
  }

  /// \name Virtual axis predicates (§5). Each answers "is x <axis> of y in
  /// the virtual hierarchy?". The VpbnView overloads carry the logic (and
  /// serve the packed query paths, which decode an arena ref once per
  /// candidate instead of materializing Pbns); the Vpbn overloads wrap.
  /// @{
  bool VSelf(const VpbnView& x, const VpbnView& y) const;
  bool VAncestor(const VpbnView& x, const VpbnView& y) const;
  bool VParent(const VpbnView& x, const VpbnView& y) const;
  bool VDescendant(const VpbnView& x, const VpbnView& y) const;
  bool VChild(const VpbnView& x, const VpbnView& y) const;
  bool VAncestorOrSelf(const VpbnView& x, const VpbnView& y) const;
  bool VDescendantOrSelf(const VpbnView& x, const VpbnView& y) const;
  bool VPreceding(const VpbnView& x, const VpbnView& y) const;
  bool VFollowing(const VpbnView& x, const VpbnView& y) const;
  bool VPrecedingSibling(const VpbnView& x, const VpbnView& y) const;
  bool VFollowingSibling(const VpbnView& x, const VpbnView& y) const;

  bool VSelf(const Vpbn& x, const Vpbn& y) const {
    return VSelf(VpbnView(x), VpbnView(y));
  }
  bool VAncestor(const Vpbn& x, const Vpbn& y) const {
    return VAncestor(VpbnView(x), VpbnView(y));
  }
  bool VParent(const Vpbn& x, const Vpbn& y) const {
    return VParent(VpbnView(x), VpbnView(y));
  }
  bool VDescendant(const Vpbn& x, const Vpbn& y) const {
    return VDescendant(VpbnView(x), VpbnView(y));
  }
  bool VChild(const Vpbn& x, const Vpbn& y) const {
    return VChild(VpbnView(x), VpbnView(y));
  }
  bool VAncestorOrSelf(const Vpbn& x, const Vpbn& y) const {
    return VAncestorOrSelf(VpbnView(x), VpbnView(y));
  }
  bool VDescendantOrSelf(const Vpbn& x, const Vpbn& y) const {
    return VDescendantOrSelf(VpbnView(x), VpbnView(y));
  }
  bool VPreceding(const Vpbn& x, const Vpbn& y) const {
    return VPreceding(VpbnView(x), VpbnView(y));
  }
  bool VFollowing(const Vpbn& x, const Vpbn& y) const {
    return VFollowing(VpbnView(x), VpbnView(y));
  }
  bool VPrecedingSibling(const Vpbn& x, const Vpbn& y) const {
    return VPrecedingSibling(VpbnView(x), VpbnView(y));
  }
  bool VFollowingSibling(const Vpbn& x, const Vpbn& y) const {
    return VFollowingSibling(VpbnView(x), VpbnView(y));
  }
  /// @}

  /// Dispatch on \p axis (kAttribute is always false).
  bool VCheckAxis(num::Axis axis, const VpbnView& x, const VpbnView& y) const;
  bool VCheckAxis(num::Axis axis, const Vpbn& x, const Vpbn& y) const {
    return VCheckAxis(axis, VpbnView(x), VpbnView(y));
  }

  /// Virtual document order: less = x comes before y. Nodes that compare
  /// equivalent are the same virtual node.
  ///
  /// The order is lexicographic over virtual levels. At each level the two
  /// nodes' *level segments* — the contiguous run of PBN components whose
  /// level-array entry equals that level — are compared element-wise; a
  /// Case-2 entry with no component sorts after any component, and when one
  /// segment is a proper prefix of the other the longer segment sorts first
  /// (this is what places a title's text before the authors in the paper's
  /// Figure 3). Segments that tie fall through to the pre-order index of
  /// the nodes' level-l ancestor types. Because every level comparison is a
  /// pure lexicographic key, the order is a strict weak ordering — safe for
  /// std::sort — which the naive "ordinal scan, then type order" reading of
  /// §5's formulas is not (it admits cycles when `*`/`**` expansions put
  /// differently-scoped types under one parent).
  std::weak_ordering VCompare(const VpbnView& x, const VpbnView& y) const;
  std::weak_ordering VCompare(const Vpbn& x, const Vpbn& y) const {
    return VCompare(VpbnView(x), VpbnView(y));
  }

  /// Render "1.2.2 [1,1,2]" for diagnostics.
  std::string ToString(const Vpbn& x) const;

  /// Compile the NumbersCompatible test of the type pair (\p x, \p y) into
  /// a merge recipe (symmetric in its arguments). \p x_len / \p y_len are
  /// the uniform PBN lengths of the types' instances — i.e.
  /// original_guide.length(original(t)) — which decide `impossible` once
  /// per pair instead of once per instance. The type-level and level
  /// conditions of the axis predicates are NOT part of the plan; the
  /// caller establishes them when enumerating pairs from the type forest.
  VPairMergePlan PlanPairMerge(vdg::VTypeId x, vdg::VTypeId y,
                               uint32_t x_len, uint32_t y_len) const;

 private:
  /// The number-level prefix test shared by VAncestor/VDescendant: at every
  /// aligned position where the level arrays agree, the PBN components must
  /// exist and agree.
  bool NumbersCompatible(const VpbnView& x, const VpbnView& y) const;

  /// First array position (1-based) of each level's segment for \p t, plus
  /// a final end marker: segment of level l is [starts[l-1], starts[l]).
  const std::vector<uint32_t>& SegmentStarts(vdg::VTypeId t) const {
    return segment_starts_[t];
  }

  const vdg::VDataGuide* guide_ = nullptr;
  LevelArrayMap arrays_;
  // Per vtype: ancestor vtype at each level (chain root..self).
  std::vector<std::vector<vdg::VTypeId>> chains_;
  // Per vtype: level-segment boundaries in its level array.
  std::vector<std::vector<uint32_t>> segment_starts_;
};

}  // namespace vpbn::virt
