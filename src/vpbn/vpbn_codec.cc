#include "vpbn/vpbn_codec.h"

#include "common/varint.h"
#include "pbn/codec.h"

namespace vpbn::virt {

void EncodeVpbn(const num::Pbn& pbn, const LevelArray& levels,
                std::string* out) {
  num::EncodeCompact(pbn, out);
  // The array length is the number's length or one more (Case 2); one bit
  // of information, sent as a byte for simplicity.
  out->push_back(static_cast<char>(levels.size() - pbn.length()));
  uint32_t prev = 0;
  for (uint32_t level : levels.levels()) {
    PutVarint32(out, level - prev);  // non-decreasing: deltas >= 0
    prev = level;
  }
}

size_t VpbnEncodedSize(const num::Pbn& pbn, const LevelArray& levels) {
  size_t total = num::CompactEncodedSize(pbn) + 1;
  uint32_t prev = 0;
  for (uint32_t level : levels.levels()) {
    total += static_cast<size_t>(VarintLength32(level - prev));
    prev = level;
  }
  return total;
}

Result<DecodedVpbn> DecodeVpbn(std::string_view* in) {
  VPBN_ASSIGN_OR_RETURN(num::Pbn pbn, num::DecodeCompact(in));
  if (in->empty()) {
    return Status::InvalidArgument("vpbn codec: truncated input");
  }
  uint8_t extra = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  if (extra > 1) {
    return Status::InvalidArgument(
        "vpbn codec: level array exceeds number length by more than one");
  }
  size_t n = pbn.length() + extra;
  std::vector<uint32_t> levels;
  levels.reserve(n);
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    VPBN_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32(in));
    prev += delta;
    levels.push_back(prev);
  }
  return DecodedVpbn{std::move(pbn), LevelArray(std::move(levels))};
}

}  // namespace vpbn::virt
