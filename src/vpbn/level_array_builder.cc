#include "vpbn/level_array_builder.h"

namespace vpbn::virt {

Result<LevelArrayMap> BuildLevelArrays(const vdg::VDataGuide& guide) {
  const dg::DataGuide& orig = guide.original_guide();
  LevelArrayMap map;
  map.arrays_.resize(guide.num_vtypes());

  for (vdg::VTypeId t : guide.PreOrder()) {
    uint32_t n = guide.level(t);
    uint32_t s = orig.length(guide.original(t));
    std::vector<uint32_t> levels;
    if (guide.parent(t) == vdg::kNullVType) {
      // Root type: every component of the original path is at level 1.
      levels.assign(s, 1);
    } else {
      dg::TypeId parent_orig = guide.original(guide.parent(t));
      dg::TypeId lca = orig.LcaType(guide.original(t), parent_orig);
      uint32_t k = (lca == dg::kNullType) ? 0 : orig.length(lca);
      const LevelArray& parent_la = map.arrays_[guide.parent(t)];
      if (k > parent_la.size() || k > s) {
        return Status::Internal(
            "level array builder: LCA length exceeds available prefix for "
            "virtual type '" +
            guide.vpath(t) + "'");
      }
      if (k < s) {
        // Cases 1 and 3: copy the shared prefix, then the new components
        // (z1 ... zm . y below the LCA) are all at level n.
        levels.reserve(s);
        for (uint32_t i = 1; i <= k; ++i) levels.push_back(parent_la.at1(i));
        for (uint32_t i = k + 1; i <= s; ++i) levels.push_back(n);
      } else {
        // Case 2: the original is an ancestor-or-self of the virtual
        // parent's original (k == s). The number has no new components; the
        // array gains one entry, n, with no corresponding component.
        levels.reserve(s + 1);
        for (uint32_t i = 1; i <= s; ++i) levels.push_back(parent_la.at1(i));
        levels.push_back(n);
      }
    }
    map.arrays_[t] = LevelArray(std::move(levels));
  }
  return map;
}

}  // namespace vpbn::virt
