/// \file level_array_builder.h
/// \brief Algorithm 1 (§5.2): build the map from virtual type to level array.
///
/// "Fortunately it is not necessary to assign a level array to each node
///  individually, rather the level array is the same for each type in a
///  vDataGuide." The builder traverses the vDataGuide once; for each virtual
///  type it extends its virtual parent's level array according to the three
///  cases of §5.2:
///
///  Case 1 — original descendant becomes a child: the new components (from
///  the least common ancestor down) are all at the child's level n.
///  Case 2 — original ancestor becomes a child: the type's original path is
///  the LCA itself, so no new components exist; the array is the parent's
///  array truncated to the number's length plus one extra entry n.
///  Case 3 — types related through a least common ancestor: identical to
///  Case 1 with the LCA strictly above the type's original.
///
/// All three cases reduce to:
///     k = length(lca(original(t), original(parent(t))))
///     s = length(original(t))
///     k < s:  la(t) = la(parent)[1..k] ++ [n] * (s - k)
///     k = s:  la(t) = la(parent)[1..s] ++ [n]
///
/// Worst-case time and space are O(cN) for N virtual types and deepest
/// original level c, as analyzed in the paper.

#pragma once

#include <vector>

#include "common/result.h"
#include "vdg/vdataguide.h"
#include "vpbn/level_array.h"

namespace vpbn::virt {

/// \brief Level arrays for every virtual type, indexed by VTypeId.
class LevelArrayMap {
 public:
  const LevelArray& of(vdg::VTypeId t) const { return arrays_[t]; }
  size_t size() const { return arrays_.size(); }

  size_t MemoryUsage() const {
    size_t total = arrays_.capacity() * sizeof(LevelArray);
    for (const auto& a : arrays_) total += a.MemoryUsage();
    return total;
  }

 private:
  friend Result<LevelArrayMap> BuildLevelArrays(const vdg::VDataGuide& guide);
  std::vector<LevelArray> arrays_;
};

/// \brief Run Algorithm 1 over \p guide.
Result<LevelArrayMap> BuildLevelArrays(const vdg::VDataGuide& guide);

}  // namespace vpbn::virt
