/// \file virtual_value.h
/// \brief Computing transformed values (§6).
///
/// The value of a node is the XML string of its subtree. After a virtual
/// transformation a node's value must be assembled in the *virtual* shape:
/// start tag, then the values of its virtual children in virtual document
/// order, then the end tag. The key optimization from §6: when a virtual
/// type's subtree is *intact* — structurally identical to its original
/// subtree — the value of any instance is a single substring of the stored
/// string, served through the value index without any assembly.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vpbn/virtual_document.h"

namespace vpbn::virt {

/// \brief Assembles virtual values, reusing stored byte ranges for intact
/// subtrees.
class VirtualValueComputer {
 public:
  /// \p vdoc must outlive the computer. \p use_value_index disables the
  /// intact-subtree range-copy optimization when false (every node is
  /// assembled piecewise) — the ablation the A1 benchmark measures.
  explicit VirtualValueComputer(const VirtualDocument& vdoc,
                                bool use_value_index = true);

  /// The XML value of virtual node \p v (text nodes yield escaped text,
  /// exactly as stored).
  std::string Value(const VirtualNode& v);

  /// Zero-copy variant: when \p v's subtree is intact its value is one
  /// substring of the stored string — set \p out to that view (valid as
  /// long as the stored document lives) and return true. False when the
  /// value must be assembled (caller falls back to Value()).
  bool ValueView(const VirtualNode& v, std::string_view* out);

  /// True iff the virtual subtree of type \p t mirrors its original subtree
  /// (same types, same order, nothing added or removed), so instance values
  /// can be served from the value index.
  bool IsIntact(vdg::VTypeId t) const { return intact_[t]; }

  /// \brief Accounting for the E6 benchmark.
  struct Stats {
    /// Subtrees served as one byte-range copy from the stored string.
    uint64_t range_copies = 0;
    /// Nodes assembled piece by piece.
    uint64_t constructed_nodes = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  void AppendValue(const VirtualNode& v, std::string* out);

  const VirtualDocument* vdoc_;
  std::vector<bool> intact_;  // by VTypeId
  Stats stats_;
};

}  // namespace vpbn::virt
