/// \file materializer.h
/// \brief Physically instantiate a virtual hierarchy.
///
/// This is the strategy the paper argues *against* for query evaluation
/// (§4.3: transform, store, renumber, re-index) — implemented in full, for
/// two reasons:
///
///   1. It is the baseline of the benchmarks: materialize + renumber +
///      evaluate versus virtual evaluation with vPBN (experiments E3/E4).
///   2. It is the oracle of the property tests: Theorem 1 says the virtual
///      axis predicates must coincide with physical relationships in the
///      materialized document.
///
/// Materialization copies nodes: a source node appearing at several places
/// in the virtual hierarchy (duplication through shared least common
/// ancestors) is copied once per placement. The provenance vector records,
/// for every materialized node, which virtual node it instantiates.

#pragma once

#include <vector>

#include "common/result.h"
#include "vpbn/virtual_document.h"

namespace vpbn::virt {

/// \brief A materialized virtual document plus provenance.
struct Materialized {
  xml::Document doc;
  /// For each materialized NodeId, the virtual node it copies.
  std::vector<VirtualNode> provenance;
};

/// \brief Options bounding materialization.
struct MaterializeOptions {
  /// Fail with ResourceExhausted beyond this many output nodes (duplication
  /// can make the output superlinear in the input).
  size_t max_nodes = 10'000'000;
};

/// \brief Instantiate every node of \p vdoc into a fresh document.
Result<Materialized> Materialize(const VirtualDocument& vdoc,
                                 const MaterializeOptions& options = {});

}  // namespace vpbn::virt
