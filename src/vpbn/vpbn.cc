#include "vpbn/vpbn.h"

#include <algorithm>

namespace vpbn::virt {

Result<VpbnSpace> VpbnSpace::Create(const vdg::VDataGuide& guide) {
  VpbnSpace space;
  space.guide_ = &guide;
  VPBN_ASSIGN_OR_RETURN(space.arrays_, BuildLevelArrays(guide));

  // Ancestor-vtype chains (root..self) and level-segment boundaries, used
  // by the document-order comparator.
  space.chains_.resize(guide.num_vtypes());
  space.segment_starts_.resize(guide.num_vtypes());
  for (vdg::VTypeId t = 0; t < guide.num_vtypes(); ++t) {
    std::vector<vdg::VTypeId>& chain = space.chains_[t];
    for (vdg::VTypeId a = t; a != vdg::kNullVType; a = guide.parent(a)) {
      chain.push_back(a);
    }
    std::reverse(chain.begin(), chain.end());

    // Level arrays are non-decreasing, so each level's positions form a
    // contiguous segment.
    const LevelArray& la = space.arrays_.of(t);
    uint32_t max_level = la.max();
    std::vector<uint32_t>& starts = space.segment_starts_[t];
    starts.assign(max_level + 1, static_cast<uint32_t>(la.size()) + 1);
    uint32_t level = 0;
    for (uint32_t i = 1; i <= la.size(); ++i) {
      while (level < la.at1(i)) {
        starts[level] = i;
        ++level;
      }
    }
    // starts[l-1] holds the first position of level l; trailing levels with
    // empty segments keep the end marker.
  }
  return space;
}

bool VpbnSpace::NumbersCompatible(const VpbnView& x, const VpbnView& y) const {
  const LevelArray& xa = arrays_.of(x.vtype);
  const LevelArray& ya = arrays_.of(y.vtype);
  size_t m = std::min(xa.size(), ya.size());
  for (size_t i = 1; i <= m; ++i) {
    if (xa.at1(i) != ya.at1(i)) continue;
    // Aligned position at the same virtual level: the components must exist
    // on both sides and agree (the paper's x_a[i] = y_a[i] => x_n[i] =
    // y_n[i]). A missing component (the Case-2 extra entry) cannot witness
    // agreement.
    if (i > x.length() || i > y.length()) return false;
    if (x.at1(i) != y.at1(i)) return false;
  }
  return true;
}

bool VpbnSpace::VSelf(const VpbnView& x, const VpbnView& y) const {
  return x.vtype == y.vtype && x.len == y.len &&
         std::equal(x.comps, x.comps + x.len, y.comps);
}

bool VpbnSpace::VAncestor(const VpbnView& x, const VpbnView& y) const {
  // Type-level: ancestor(typeOf(V,x), typeOf(V,y)) in the vDataGuide.
  if (!guide_->IsAncestorVType(x.vtype, y.vtype)) return false;
  // Number-level: max(y_a) > max(x_a) and prefix compatibility.
  if (VirtualLevel(y) <= VirtualLevel(x)) return false;
  return NumbersCompatible(x, y);
}

bool VpbnSpace::VDescendant(const VpbnView& x, const VpbnView& y) const {
  return VAncestor(y, x);
}

bool VpbnSpace::VParent(const VpbnView& x, const VpbnView& y) const {
  return VAncestor(x, y) && VirtualLevel(x) + 1 == VirtualLevel(y) &&
         guide_->IsChildVType(y.vtype, x.vtype);
}

bool VpbnSpace::VChild(const VpbnView& x, const VpbnView& y) const {
  return VParent(y, x);
}

bool VpbnSpace::VAncestorOrSelf(const VpbnView& x, const VpbnView& y) const {
  return VSelf(x, y) || VAncestor(x, y);
}

bool VpbnSpace::VDescendantOrSelf(const VpbnView& x, const VpbnView& y) const {
  return VSelf(x, y) || VDescendant(x, y);
}

bool VpbnSpace::VPreceding(const VpbnView& x, const VpbnView& y) const {
  // Document-order axes hold across any pair in the virtual forest (see the
  // worked example in §5 where a text node precedes an <author> whose type
  // is an ancestor type of the text's type). Defined through the canonical
  // document-order comparator so predicates, result ordering, and the
  // materializer always agree.
  if (VSelf(x, y) || VAncestor(x, y) || VDescendant(x, y)) return false;
  return VCompare(x, y) == std::weak_ordering::less;
}

bool VpbnSpace::VFollowing(const VpbnView& x, const VpbnView& y) const {
  if (VSelf(x, y) || VAncestor(x, y) || VDescendant(x, y)) return false;
  return VCompare(x, y) == std::weak_ordering::greater;
}

namespace {

/// Context positions are those strictly below the node's own level; sibling
/// nodes must agree on all of them (same virtual parent).
bool SiblingContextsMatch(const LevelArray& xa, const LevelArray& ya,
                          const VpbnView& x, const VpbnView& y) {
  size_t m = std::min(xa.size(), ya.size());
  uint32_t own_level = xa.max();  // == ya.max() (checked by caller)
  for (size_t i = 1; i <= m; ++i) {
    if (xa.at1(i) != ya.at1(i)) continue;
    if (xa.at1(i) == own_level) continue;  // final-level ordinals may differ
    if (i > x.length() || i > y.length()) return false;
    if (x.at1(i) != y.at1(i)) return false;
  }
  return true;
}

}  // namespace

bool VpbnSpace::VPrecedingSibling(const VpbnView& x, const VpbnView& y) const {
  // Type-level: virtual siblings share a virtual parent type.
  if (!guide_->SameParentVType(x.vtype, y.vtype)) return false;
  if (VirtualLevel(x) != VirtualLevel(y)) return false;
  if (VSelf(x, y)) return false;
  if (!SiblingContextsMatch(arrays_.of(x.vtype), arrays_.of(y.vtype), x, y)) {
    return false;
  }
  return VPreceding(x, y);
}

bool VpbnSpace::VFollowingSibling(const VpbnView& x, const VpbnView& y) const {
  if (!guide_->SameParentVType(x.vtype, y.vtype)) return false;
  if (VirtualLevel(x) != VirtualLevel(y)) return false;
  if (VSelf(x, y)) return false;
  if (!SiblingContextsMatch(arrays_.of(x.vtype), arrays_.of(y.vtype), x, y)) {
    return false;
  }
  return VFollowing(x, y);
}

bool VpbnSpace::VCheckAxis(num::Axis axis, const VpbnView& x,
                           const VpbnView& y) const {
  using num::Axis;
  switch (axis) {
    case Axis::kSelf:
      return VSelf(x, y);
    case Axis::kChild:
      return VChild(x, y);
    case Axis::kParent:
      return VParent(x, y);
    case Axis::kAncestor:
      return VAncestor(x, y);
    case Axis::kDescendant:
      return VDescendant(x, y);
    case Axis::kAncestorOrSelf:
      return VAncestorOrSelf(x, y);
    case Axis::kDescendantOrSelf:
      return VDescendantOrSelf(x, y);
    case Axis::kFollowing:
      return VFollowing(x, y);
    case Axis::kPreceding:
      return VPreceding(x, y);
    case Axis::kFollowingSibling:
      return VFollowingSibling(x, y);
    case Axis::kPrecedingSibling:
      return VPrecedingSibling(x, y);
    case Axis::kAttribute:
      return false;
  }
  return false;
}

std::weak_ordering VpbnSpace::VCompare(const VpbnView& x,
                                       const VpbnView& y) const {
  if (VSelf(x, y)) return std::weak_ordering::equivalent;
  // Pre-order: ancestors come first.
  if (VAncestor(x, y)) return std::weak_ordering::less;
  if (VAncestor(y, x)) return std::weak_ordering::greater;
  if (!guide_->SameTreeVType(x.vtype, y.vtype)) {
    // Different virtual trees: forest order.
    return guide_->pbn(x.vtype).at1(1) <=> guide_->pbn(y.vtype).at1(1);
  }

  // Lexicographic over virtual levels; see the declaration comment.
  const LevelArray& xa = arrays_.of(x.vtype);
  const LevelArray& ya = arrays_.of(y.vtype);
  const std::vector<uint32_t>& xs = SegmentStarts(x.vtype);
  const std::vector<uint32_t>& ys = SegmentStarts(y.vtype);
  const std::vector<vdg::VTypeId>& xchain = chains_[x.vtype];
  const std::vector<vdg::VTypeId>& ychain = chains_[y.vtype];
  uint32_t lx = xa.max();
  uint32_t ly = ya.max();
  constexpr uint64_t kMissing = UINT64_MAX;  // Case-2 entry: no component

  for (uint32_t l = 1; l <= std::min(lx, ly); ++l) {
    uint32_t xb = xs[l - 1], xe = xs[l];
    uint32_t yb = ys[l - 1], ye = ys[l];
    uint32_t nx = xe - xb, ny = ye - yb;
    for (uint32_t j = 0; j < std::min(nx, ny); ++j) {
      uint64_t cx = xb + j <= x.length() ? x.at1(xb + j) : kMissing;
      uint64_t cy = yb + j <= y.length() ? y.at1(yb + j) : kMissing;
      if (cx != cy) {
        return cx < cy ? std::weak_ordering::less
                       : std::weak_ordering::greater;
      }
    }
    if (nx != ny) {
      // One segment is a proper prefix of the other: the more specific
      // (longer) segment sorts first — this places a title's own text
      // before the authors pulled in through the book LCA (Figure 3).
      return nx > ny ? std::weak_ordering::less : std::weak_ordering::greater;
    }
    // Segments identical: fall to the level-l ancestor types.
    uint32_t px = guide_->preorder_index(xchain[l - 1]);
    uint32_t py = guide_->preorder_index(ychain[l - 1]);
    if (px != py) return px <=> py;
  }
  if (lx != ly) {
    // All shared levels tie: the shallower node comes first (pre-order).
    return lx <=> ly;
  }
  // Same depth, same segments, same ancestor types all the way down: the
  // same virtual type, so plain number order decides (and equal numbers
  // were handled by VSelf). Component-wise with prefix-before-extension,
  // exactly Pbn::operator<=>.
  size_t m = std::min(x.length(), y.length());
  for (size_t i = 1; i <= m; ++i) {
    if (x.at1(i) != y.at1(i)) {
      return x.at1(i) < y.at1(i) ? std::weak_ordering::less
                                 : std::weak_ordering::greater;
    }
  }
  if (x.length() == y.length()) return std::weak_ordering::equivalent;
  return x.length() < y.length() ? std::weak_ordering::less
                                 : std::weak_ordering::greater;
}

VPairMergePlan VpbnSpace::PlanPairMerge(vdg::VTypeId x, vdg::VTypeId y,
                                        uint32_t x_len,
                                        uint32_t y_len) const {
  const LevelArray& xa = arrays_.of(x);
  const LevelArray& ya = arrays_.of(y);
  uint32_t m = static_cast<uint32_t>(std::min(xa.size(), ya.size()));
  VPairMergePlan plan;
  bool in_prefix = true;
  for (uint32_t i = 1; i <= m; ++i) {
    if (xa.at1(i) != ya.at1(i)) {
      in_prefix = false;
      continue;
    }
    // Aligned position: the test requires components on both sides. Every
    // instance of one type has the same number length, so a position past
    // either length fails the whole pair, not just one instance.
    if (i > x_len || i > y_len) {
      plan.impossible = true;
      return plan;
    }
    if (in_prefix) {
      plan.merge_prefix = i;
    } else {
      plan.residual.push_back(i);
    }
  }
  return plan;
}

std::string VpbnSpace::ToString(const Vpbn& x) const {
  return x.pbn->ToString() + " " + arrays_.of(x.vtype).ToString();
}

}  // namespace vpbn::virt
