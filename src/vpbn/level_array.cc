#include "vpbn/level_array.h"

namespace vpbn::virt {

std::string LevelArray::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(levels_[i]);
  }
  out.push_back(']');
  return out;
}

}  // namespace vpbn::virt
