#include "pbn/numbering.h"

namespace vpbn::num {

Numbering Numbering::Number(const xml::Document& doc) {
  Numbering out;
  out.numbers_.resize(doc.num_nodes());
  out.by_pbn_.reserve(doc.num_nodes());

  // Iterative pre-order walk carrying the parent's number.
  struct Frame {
    xml::NodeId node;
    uint32_t ordinal;
    const Pbn* parent_pbn;
  };
  static const Pbn kRootPrefix;
  std::vector<Frame> stack;
  const auto& roots = doc.roots();
  for (size_t i = roots.size(); i > 0; --i) {
    stack.push_back(
        {roots[i - 1], static_cast<uint32_t>(i), &kRootPrefix});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    Pbn number = f.parent_pbn->Child(f.ordinal);
    out.numbers_[f.node] = std::move(number);
    const Pbn* self = &out.numbers_[f.node];
    out.by_pbn_.emplace(*self, f.node);
    std::vector<xml::NodeId> kids = doc.Children(f.node);
    for (size_t i = kids.size(); i > 0; --i) {
      stack.push_back({kids[i - 1], static_cast<uint32_t>(i), self});
    }
  }
  return out;
}

Numbering Numbering::FromNumbers(std::vector<Pbn> numbers) {
  Numbering out;
  out.numbers_ = std::move(numbers);
  out.by_pbn_.reserve(out.numbers_.size());
  for (size_t id = 0; id < out.numbers_.size(); ++id) {
    out.by_pbn_.emplace(out.numbers_[id], static_cast<xml::NodeId>(id));
  }
  return out;
}

Result<xml::NodeId> Numbering::NodeOf(const Pbn& pbn) const {
  auto it = by_pbn_.find(pbn);
  if (it == by_pbn_.end()) {
    return Status::NotFound("no node numbered " + pbn.ToString());
  }
  return it->second;
}

size_t Numbering::NumbersMemoryUsage() const {
  // The vector slots already charge one sizeof(Pbn) header per number, so
  // each element adds only its heap block (allocation overhead included).
  size_t total = numbers_.capacity() * sizeof(Pbn);
  for (const Pbn& p : numbers_) total += p.HeapMemoryUsage();
  return total;
}

}  // namespace vpbn::num
