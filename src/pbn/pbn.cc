#include "pbn/pbn.h"

#include <cassert>
#include <charconv>
#include <ostream>

#include "common/str_util.h"

namespace vpbn::num {

Result<Pbn> Pbn::FromString(std::string_view text) {
  if (text.empty()) return Pbn();
  std::vector<uint32_t> components;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      std::string_view part = text.substr(start, i - start);
      uint32_t value = 0;
      auto [ptr, ec] =
          std::from_chars(part.data(), part.data() + part.size(), value);
      if (ec != std::errc() || ptr != part.data() + part.size()) {
        return Status::ParseError("pbn: bad component '" + std::string(part) +
                                  "' in '" + std::string(text) + "'");
      }
      if (value == 0) {
        return Status::ParseError("pbn: components are 1-based, got 0 in '" +
                                  std::string(text) + "'");
      }
      components.push_back(value);
      start = i + 1;
    }
  }
  return Pbn(std::move(components));
}

std::string Pbn::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

Pbn Pbn::Parent() const {
  assert(!components_.empty());
  return Pbn(std::vector<uint32_t>(components_.begin(),
                                   components_.end() - 1));
}

Pbn Pbn::Child(uint32_t k) const {
  std::vector<uint32_t> c = components_;
  c.push_back(k);
  return Pbn(std::move(c));
}

Pbn Pbn::Prefix(size_t n) const {
  assert(n <= components_.size());
  return Pbn(std::vector<uint32_t>(components_.begin(),
                                   components_.begin() + n));
}

bool Pbn::IsPrefixOf(const Pbn& other) const {
  if (components_.size() > other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

bool Pbn::IsStrictPrefixOf(const Pbn& other) const {
  return components_.size() < other.components_.size() && IsPrefixOf(other);
}

size_t Pbn::CommonPrefixLength(const Pbn& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < n && components_[i] == other.components_[i]) ++i;
  return i;
}

std::strong_ordering Pbn::operator<=>(const Pbn& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] <=> other.components_[i];
    }
  }
  return components_.size() <=> other.components_.size();
}

std::ostream& operator<<(std::ostream& os, const Pbn& pbn) {
  return os << pbn.ToString();
}

}  // namespace vpbn::num
