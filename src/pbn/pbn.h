/// \file pbn.h
/// \brief Prefix-based numbers (Dewey order / containment encoding), §4.2.
///
/// A node is numbered p.k where p is its parent's number and k is its
/// 1-based sibling ordinal. All location-based relationships between nodes
/// can be decided by comparing numbers alone (see pbn/axis.h).

#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vpbn::num {

/// \brief A prefix-based number: a sequence of 1-based sibling ordinals from
/// the root down to the node. Example: "1.2.2" is the second child of the
/// second child of the first root.
class Pbn {
 public:
  Pbn() = default;
  explicit Pbn(std::vector<uint32_t> components)
      : components_(std::move(components)) {}
  Pbn(std::initializer_list<uint32_t> components) : components_(components) {}

  /// Parse the dotted decimal form, e.g. "1.2.2". Components must be >= 1.
  static Result<Pbn> FromString(std::string_view text);

  /// Dotted decimal form; the empty number renders as "" (used only as the
  /// virtual root sentinel).
  std::string ToString() const;

  /// Number of components ("length of the number"). A node's tree level in
  /// the original document equals its length.
  size_t length() const { return components_.size(); }
  bool empty() const { return components_.empty(); }

  /// 1-based component access, matching the paper's x_n[i] notation.
  uint32_t at1(size_t i) const { return components_[i - 1]; }

  /// 0-based component access.
  uint32_t operator[](size_t i) const { return components_[i]; }

  const std::vector<uint32_t>& components() const { return components_; }

  /// The parent's number (this number without its last component).
  /// Calling Parent() on an empty number is a contract violation.
  Pbn Parent() const;

  /// This number extended by child ordinal \p k.
  Pbn Child(uint32_t k) const;

  /// First \p n components.
  Pbn Prefix(size_t n) const;

  /// True iff *this is a (non-strict) prefix of \p other.
  bool IsPrefixOf(const Pbn& other) const;

  /// True iff *this is a strict (proper) prefix of \p other.
  bool IsStrictPrefixOf(const Pbn& other) const;

  /// Length of the longest common prefix with \p other.
  size_t CommonPrefixLength(const Pbn& other) const;

  /// Document-order comparison: component-wise; a strict prefix orders
  /// before its extensions (ancestors precede descendants).
  std::strong_ordering operator<=>(const Pbn& other) const;
  bool operator==(const Pbn& other) const = default;

  /// Typical allocator bookkeeping per heap block (header plus size-class
  /// rounding), charged to every non-empty number so the packed-vs-vector
  /// space comparison (E5/E10) reflects what the process actually pays.
  static constexpr size_t kAllocOverhead = 16;

  /// Bytes this number costs in a container slot: the std::vector header
  /// (sizeof(Pbn)) plus its heap block including allocation overhead.
  /// Containers that already charge sizeof(Pbn) per slot should sum
  /// HeapMemoryUsage() instead.
  size_t MemoryUsage() const { return sizeof(Pbn) + HeapMemoryUsage(); }

  /// Heap bytes alone: the component block plus allocation overhead; zero
  /// for an empty, never-allocated number.
  size_t HeapMemoryUsage() const {
    return components_.capacity() == 0
               ? 0
               : components_.capacity() * sizeof(uint32_t) + kAllocOverhead;
  }

 private:
  std::vector<uint32_t> components_;
};

/// \brief Hash functor so Pbn can key unordered containers. Hashes the
/// order-preserving encoded byte stream (pbn/codec.h) without materializing
/// it, so a Pbn and its packed form (pbn/packed.h, PackedPbnRef::Hash) hash
/// identically.
struct PbnHash {
  size_t operator()(const Pbn& p) const {
    // FNV-1a over the bytes EncodeOrdered would emit: per component a
    // length byte then big-endian payload, then the 0x00 terminator.
    uint64_t h = 1469598103934665603ULL;
    auto step = [&h](uint8_t byte) { h = (h ^ byte) * 1099511628211ULL; };
    for (uint32_t c : p.components()) {
      int nbytes = c > 0xFFFFFF ? 4 : c > 0xFFFF ? 3 : c > 0xFF ? 2 : 1;
      step(static_cast<uint8_t>(nbytes));
      for (int i = nbytes - 1; i >= 0; --i) {
        step(static_cast<uint8_t>((c >> (8 * i)) & 0xFF));
      }
    }
    step(0);
    return static_cast<size_t>(h);
  }
};

std::ostream& operator<<(std::ostream& os, const Pbn& pbn);

}  // namespace vpbn::num
