#include "pbn/packed.h"

#include <algorithm>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/varint.h"
#include "pbn/codec.h"

namespace vpbn::num {

size_t PackedPbnRef::CommonPrefixLength(const PackedPbnRef& o) const {
  ComponentIterator a(*this);
  ComponentIterator b(o);
  size_t n = 0;
  while (a.HasNext() && b.HasNext() && a.Next() == b.Next()) ++n;
  return n;
}

uint32_t PackedPbnRef::at1(size_t i) const {
  ComponentIterator it(*this);
  uint32_t c = 0;
  for (size_t k = 0; k < i; ++k) c = it.Next();
  return c;
}

void PackedPbnRef::DecodeTo(std::vector<uint32_t>* out) const {
  out->clear();
  out->reserve(length_);
  ComponentIterator it(*this);
  while (it.HasNext()) out->push_back(it.Next());
}

Pbn PackedPbnRef::Materialize() const {
  std::vector<uint32_t> components;
  DecodeTo(&components);
  return Pbn(std::move(components));
}

uint32_t PackedPbnRef::PrefixByteSize(size_t n) const {
  const char* p = data_;
  for (size_t k = 0; k < n; ++k) {
    p += 1 + static_cast<uint8_t>(*p);
  }
  return static_cast<uint32_t>(p - data_);
}

namespace {

/// The last component of \p x as a one-component sub-ref (terminator
/// borrowed from the parent encoding's own tail). Requires !x.empty().
PackedPbnRef LastComponent(const PackedPbnRef& x) {
  uint32_t parent_bytes = x.PrefixByteSize(x.length() - 1);
  return PackedPbnRef(x.data() + parent_bytes, x.size_bytes() - parent_bytes,
                      1);
}

}  // namespace

bool PackedIsSibling(const PackedPbnRef& x, const PackedPbnRef& y) {
  if (x.length() != y.length() || x.empty()) return false;
  // Same parent: the byte spans before the last component must be equal
  // (equal components encode to equal bytes and vice versa).
  uint32_t px = x.PrefixByteSize(x.length() - 1);
  uint32_t py = y.PrefixByteSize(y.length() - 1);
  return px == py && std::memcmp(x.data(), y.data(), px) == 0;
}

bool PackedIsFollowingSibling(const PackedPbnRef& x, const PackedPbnRef& y) {
  return PackedIsSibling(x, y) &&
         LastComponent(x).Compare(LastComponent(y)) > 0;
}

bool PackedIsPrecedingSibling(const PackedPbnRef& x, const PackedPbnRef& y) {
  return PackedIsSibling(x, y) &&
         LastComponent(x).Compare(LastComponent(y)) < 0;
}

bool PackedCheckAxis(Axis axis, const PackedPbnRef& x, const PackedPbnRef& y) {
  switch (axis) {
    case Axis::kSelf:
      return PackedIsSelf(x, y);
    case Axis::kChild:
      return PackedIsChild(x, y);
    case Axis::kParent:
      return PackedIsParent(x, y);
    case Axis::kAncestor:
      return PackedIsAncestor(x, y);
    case Axis::kDescendant:
      return PackedIsDescendant(x, y);
    case Axis::kAncestorOrSelf:
      return PackedIsAncestorOrSelf(x, y);
    case Axis::kDescendantOrSelf:
      return PackedIsDescendantOrSelf(x, y);
    case Axis::kFollowing:
      return PackedIsFollowing(x, y);
    case Axis::kPreceding:
      return PackedIsPreceding(x, y);
    case Axis::kFollowingSibling:
      return PackedIsFollowingSibling(x, y);
    case Axis::kPrecedingSibling:
      return PackedIsPrecedingSibling(x, y);
    case Axis::kAttribute:
      return false;
  }
  return false;
}

void PackedPbnList::FinishAppend(uint32_t num_components) {
  offsets_.push_back(static_cast<uint32_t>(arena_.size()));
  lengths_.push_back(num_components);
  uint32_t begin = offsets_[offsets_.size() - 2];
  keys_.push_back(PackedPbnRef::ComputeKey(
      arena_.data() + begin, static_cast<uint32_t>(arena_.size()) - begin));
}

void PackedPbnList::Append(const Pbn& pbn) {
  EncodeOrdered(pbn, &arena_);
  FinishAppend(static_cast<uint32_t>(pbn.length()));
}

void PackedPbnList::Append(const PackedPbnRef& ref) {
  arena_.append(ref.data(), ref.size_bytes());
  offsets_.push_back(static_cast<uint32_t>(arena_.size()));
  lengths_.push_back(ref.length());
  keys_.push_back(ref.key());
}

void PackedPbnList::AppendPrefix(const PackedPbnRef& ref, size_t n) {
  uint32_t bytes = ref.PrefixByteSize(n);
  arena_.append(ref.data(), bytes);
  arena_.push_back('\0');
  FinishAppend(static_cast<uint32_t>(n));
}

void PackedPbnList::AppendSlice(const PackedPbnList& other, size_t first,
                                size_t last) {
  if (first >= last) return;
  const uint32_t lo = other.offsets_[first];
  const uint32_t hi = other.offsets_[last];
  const uint32_t base = static_cast<uint32_t>(arena_.size());
  arena_.append(other.arena_.data() + lo, hi - lo);
  offsets_.reserve(offsets_.size() + (last - first));
  for (size_t i = first + 1; i <= last; ++i) {
    offsets_.push_back(base + (other.offsets_[i] - lo));
  }
  lengths_.insert(lengths_.end(), other.lengths_.begin() + first,
                  other.lengths_.begin() + last);
  keys_.insert(keys_.end(), other.keys_.begin() + first,
               other.keys_.begin() + last);
}

std::vector<Pbn> PackedPbnList::MaterializeAll() const {
  std::vector<Pbn> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(Materialize(i));
  return out;
}

PackedPbnList PackedPbnList::FromPbns(const std::vector<Pbn>& pbns) {
  PackedPbnList out;
  out.Reserve(pbns.size());
  for (const Pbn& p : pbns) out.Append(p);
  return out;
}

Result<PackedPbnList> PackedPbnList::FromArena(std::string arena,
                                               size_t count) {
  if (arena.size() > static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument("packed arena exceeds 32-bit offsets");
  }
  PackedPbnList out;
  out.offsets_.reserve(count + 1);
  out.lengths_.reserve(count);
  out.keys_.reserve(count);
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    size_t begin = pos;
    uint32_t components = 0;
    for (;;) {
      if (pos >= arena.size()) {
        return Status::InvalidArgument(
            "packed arena truncated inside an encoding");
      }
      uint8_t len = static_cast<uint8_t>(arena[pos]);
      if (len == 0) {
        ++pos;  // terminator
        break;
      }
      if (len > 4 || pos + 1 + len > arena.size()) {
        return Status::InvalidArgument("packed arena has a bad length byte");
      }
      pos += 1 + len;
      ++components;
    }
    if (components == 0) {
      return Status::InvalidArgument("packed arena encodes an empty number");
    }
    out.offsets_.push_back(static_cast<uint32_t>(pos));
    out.lengths_.push_back(components);
    out.keys_.push_back(PackedPbnRef::ComputeKey(
        arena.data() + begin, static_cast<uint32_t>(pos - begin)));
  }
  if (pos != arena.size()) {
    return Status::InvalidArgument("packed arena has trailing bytes");
  }
  out.arena_ = std::move(arena);
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i - 1].Compare(out[i]) >= 0) {
      return Status::InvalidArgument("packed arena is not document-ordered");
    }
  }
  return out;
}

void PackedPbnList::SortUnique() {
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*this)[a].Compare((*this)[b]) < 0;
  });
  PackedPbnList sorted;
  sorted.Reserve(size());
  for (size_t i = 0; i < order.size(); ++i) {
    PackedPbnRef r = (*this)[order[i]];
    if (i > 0 && r == sorted[sorted.size() - 1]) continue;
    sorted.Append(r);
  }
  *this = std::move(sorted);
}

PackedPbnList PackedPbnList::MergeUnique(const PackedPbnList& a,
                                         const PackedPbnList& b) {
  PackedPbnList out;
  out.Reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size()) {
      out.Append(a[i++]);
    } else if (i >= a.size()) {
      out.Append(b[j++]);
    } else {
      int c = a[i].Compare(b[j]);
      if (c < 0) {
        out.Append(a[i++]);
      } else if (c > 0) {
        out.Append(b[j++]);
      } else {
        out.Append(a[i++]);
        ++j;
      }
    }
  }
  return out;
}

size_t PackedPbnList::LowerBound(const PackedPbnRef& key) const {
  size_t lo = 0, hi = size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if ((*this)[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::pair<size_t, size_t> PackedPbnList::PrefixRange(
    const PackedPbnRef& scope) const {
  // Descendants-or-self of `scope` form one contiguous run starting at the
  // first element >= scope. The run's end is the first element that scope
  // does not prefix; since "scope prefixes e" implies e >= scope and the
  // prefixed elements are contiguous, a second binary search on the prefix
  // test finds it.
  size_t first = LowerBound(scope);
  size_t lo = first, hi = size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (scope.IsPrefixOf((*this)[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {first, lo};
}

void PackedPbnList::Reserve(size_t nodes, size_t bytes_per_node) {
  arena_.reserve(arena_.size() + nodes * bytes_per_node);
  offsets_.reserve(offsets_.size() + nodes);
  lengths_.reserve(lengths_.size() + nodes);
  keys_.reserve(keys_.size() + nodes);
}

// ---------------------------------------------------------------------------
// Batched compare kernels.
//
// One probe against a contiguous run of a packed list's columns. The key
// column decides document order outright for unequal keys and decides the
// strict-prefix test whenever the candidate's encoding fits in the key
// (k <= 8 masked compare — the PackedPbnRef::PrefixBytesMatch fast path).
// Equal-key lanes and long-prefix candidates are rare, so they resolve
// scalar per lane. Three implementations share one contract; the fastest
// the CPU supports is resolved once per process.

namespace {

struct ProbeCtx {
  uint64_t key;
  uint32_t size;
  const char* data;
};

// Scalar resolution of the decisions the key column could not finish for
// lane x: the long-prefix test and the equal-key order tie-break. Called
// only when keys[x] == probe.key.
inline void ResolveEqualLane(const uint32_t* offsets, const char* arena,
                             size_t x, const ProbeCtx& p, BatchCounts* bc) {
  const uint32_t as = offsets[x + 1] - offsets[x];
  const uint32_t k = as - 1;
  if (k > 8 && as < p.size &&
      std::memcmp(arena + offsets[x] + 8, p.data + 8, k - 8) == 0) {
    ++bc->prefix;
  }
  if (as > 8 && p.size > 8) {
    uint32_t t = (as < p.size ? as : p.size) - 8;
    int r = std::memcmp(arena + offsets[x] + 8, p.data + 8, t);
    bc->less += r != 0 ? r < 0 : as < p.size;
  }
}

void BatchScalar(const uint64_t* keys, const uint32_t* offsets,
                 const char* arena, size_t lo, size_t n, const ProbeCtx& p,
                 BatchCounts* bc) {
  for (size_t j = 0; j < n; ++j) {
    const size_t x = lo + j;
    const uint64_t akey = keys[x];
    if (akey != p.key) {
      bc->less += akey < p.key;
      const uint32_t as = offsets[x + 1] - offsets[x];
      const uint32_t k = as - 1;
      if (k <= 8) {
        uint64_t mask = k == 8 ? ~0ull : ~(~0ull >> (8 * k));
        bc->prefix += as < p.size && ((akey ^ p.key) & mask) == 0;
      }
      // k > 8 with unequal keys can never be a prefix (a prefix's first
      // eight real bytes are the probe's).
    } else {
      const uint32_t as = offsets[x + 1] - offsets[x];
      const uint32_t k = as - 1;
      if (k <= 8) bc->prefix += as < p.size;
      ResolveEqualLane(offsets, arena, x, p, bc);
    }
  }
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) void BatchAvx2(const uint64_t* keys,
                                               const uint32_t* offsets,
                                               const char* arena, size_t lo,
                                               size_t n, const ProbeCtx& p,
                                               BatchCounts* bc) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i pk_raw = _mm256_set1_epi64x(static_cast<long long>(p.key));
  const __m256i pk_biased = _mm256_xor_si256(pk_raw, bias);
  const __m256i psize = _mm256_set1_epi64x(static_cast<long long>(p.size));
  const __m256i ones = _mm256_set1_epi64x(1);
  const __m256i allf = _mm256_set1_epi64x(-1);
  const __m256i seven = _mm256_set1_epi64x(7);
  const __m256i nine = _mm256_set1_epi64x(9);
  __m256i less_acc = _mm256_setzero_si256();
  __m256i pref_acc = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const size_t x = lo + j;
    const __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + x));
    const __m256i kb = _mm256_xor_si256(k, bias);
    less_acc = _mm256_sub_epi64(less_acc, _mm256_cmpgt_epi64(pk_biased, kb));
    const __m128i off_lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(offsets + x));
    const __m128i off_hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(offsets + x + 1));
    const __m256i as = _mm256_cvtepu32_epi64(_mm_sub_epi32(off_hi, off_lo));
    const __m256i kk = _mm256_sub_epi64(as, ones);
    // mask = k >= 8 ? ~0 : ~(~0 >> 8k) — variable 64-bit shifts are AVX2.
    const __m256i shr = _mm256_srlv_epi64(allf, _mm256_slli_epi64(kk, 3));
    __m256i mask = _mm256_andnot_si256(shr, allf);
    mask = _mm256_or_si256(mask, _mm256_cmpgt_epi64(kk, seven));
    const __m256i pm = _mm256_cmpeq_epi64(
        _mm256_and_si256(_mm256_xor_si256(k, pk_raw), mask),
        _mm256_setzero_si256());
    const __m256i szlt = _mm256_cmpgt_epi64(psize, as);
    const __m256i kle8 = _mm256_cmpgt_epi64(nine, kk);
    pref_acc = _mm256_sub_epi64(
        pref_acc, _mm256_and_si256(_mm256_and_si256(pm, szlt), kle8));
    const int eq = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(k, pk_raw)));
    if (eq != 0) {
      for (int b = 0; b < 4; ++b) {
        if (eq & (1 << b)) ResolveEqualLane(offsets, arena, x + b, p, bc);
      }
    }
  }
  alignas(32) uint64_t tmp[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), less_acc);
  bc->less += tmp[0] + tmp[1] + tmp[2] + tmp[3];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), pref_acc);
  bc->prefix += tmp[0] + tmp[1] + tmp[2] + tmp[3];
  if (j < n) BatchScalar(keys, offsets, arena, lo + j, n - j, p, bc);
}

__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) void
BatchAvx512(const uint64_t* keys, const uint32_t* offsets, const char* arena,
            size_t lo, size_t n, const ProbeCtx& p, BatchCounts* bc) {
  const __m512i pk = _mm512_set1_epi64(static_cast<long long>(p.key));
  const __m512i psize = _mm512_set1_epi64(static_cast<long long>(p.size));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i seven = _mm512_set1_epi64(7);
  const __m512i eight = _mm512_set1_epi64(8);
  const __m512i allf = _mm512_set1_epi64(-1);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const size_t x = lo + j;
    const __m512i k = _mm512_loadu_si512(
        reinterpret_cast<const void*>(keys + x));
    bc->less += static_cast<unsigned>(
        _mm_popcnt_u32(_mm512_cmplt_epu64_mask(k, pk)));
    const __m256i off_lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(offsets + x));
    const __m256i off_hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(offsets + x + 1));
    const __m512i as =
        _mm512_cvtepu32_epi64(_mm256_sub_epi32(off_hi, off_lo));
    const __m512i kk = _mm512_sub_epi64(as, one);
    __m512i mask = _mm512_andnot_si512(
        _mm512_srlv_epi64(allf, _mm512_slli_epi64(kk, 3)), allf);
    mask = _mm512_mask_mov_epi64(mask, _mm512_cmpgt_epi64_mask(kk, seven),
                                 allf);
    const __mmask8 pm =
        _mm512_testn_epi64_mask(_mm512_xor_si512(k, pk), mask);
    const __mmask8 szlt = _mm512_cmplt_epi64_mask(as, psize);
    const __mmask8 kle8 =
        static_cast<__mmask8>(~_mm512_cmpgt_epi64_mask(kk, eight));
    bc->prefix += static_cast<unsigned>(_mm_popcnt_u32(pm & szlt & kle8));
    const __mmask8 eq = _mm512_cmpeq_epi64_mask(k, pk);
    if (eq != 0) {
      for (int b = 0; b < 8; ++b) {
        if (eq & (1 << b)) ResolveEqualLane(offsets, arena, x + b, p, bc);
      }
    }
  }
  if (j < n) BatchScalar(keys, offsets, arena, lo + j, n - j, p, bc);
}

#endif  // defined(__x86_64__)

using BatchFn = void (*)(const uint64_t*, const uint32_t*, const char*,
                         size_t, size_t, const ProbeCtx&, BatchCounts*);

struct BatchKernel {
  BatchFn fn;
  const char* isa;
};

BatchKernel ResolveBatchKernel() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return {BatchAvx512, "avx512"};
  }
  if (__builtin_cpu_supports("avx2")) return {BatchAvx2, "avx2"};
#endif
  return {BatchScalar, "scalar"};
}

const BatchKernel& GetBatchKernel() {
  static const BatchKernel kernel = ResolveBatchKernel();
  return kernel;
}

}  // namespace

BatchCounts CompareKeysBatch(const uint64_t* keys, const uint32_t* offsets,
                             const char* arena, size_t lo, size_t n,
                             const PackedPbnRef& probe) {
  BatchCounts bc;
  const ProbeCtx p{probe.key(), probe.size_bytes(), probe.data()};
  GetBatchKernel().fn(keys, offsets, arena, lo, n, p, &bc);
  return bc;
}

const char* BatchKernelIsa() { return GetBatchKernel().isa; }

// ---------------------------------------------------------------------------
// Blocked on-disk codec: front-coded entries in kPbnBlockEntries-entry
// blocks, a delta-varint block offset table and explicit per-block min/max
// sort keys.
//
//   varint entry_count | varint block_count
//   block end offsets  : delta varints (cumulative payload byte offsets)
//   block min/max keys : 8 + 8 bytes little-endian per block
//   payloads           : per block, entries as
//                          first:  varint size | size bytes
//                          rest:   varint lcp | varint suffix_len | suffix
//
// Every block's first entry is stored raw, so blocks decode independently
// of one another (DecodeBlock) and a lazily-decoded list touches only the
// payload pages it walks.

namespace {

void PutKeyLE(std::string* out, uint64_t key) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(key >> (8 * i)));
  }
}

uint64_t GetKeyLE(std::string_view in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeBlocked(const PackedPbnList& list) {
  const size_t n = list.size();
  const size_t blocks = (n + kPbnBlockEntries - 1) / kPbnBlockEntries;
  std::string payloads;
  payloads.reserve(list.arena_bytes() / 2 + 16);
  std::vector<uint64_t> ends;
  std::string dir_keys;
  ends.reserve(blocks);
  dir_keys.reserve(blocks * 16);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t first = b * kPbnBlockEntries;
    const size_t last = std::min(first + kPbnBlockEntries, n);
    PutKeyLE(&dir_keys, list[first].key());
    PutKeyLE(&dir_keys, list[last - 1].key());
    for (size_t i = first; i < last; ++i) {
      const PackedPbnRef cur = list[i];
      if (i == first) {
        PutVarint32(&payloads, cur.size_bytes());
        payloads.append(cur.data(), cur.size_bytes());
        continue;
      }
      const PackedPbnRef prev = list[i - 1];
      // Shareable span: everything but the terminators. The suffix always
      // carries at least the terminator byte.
      uint32_t limit = std::min(prev.size_bytes(), cur.size_bytes()) - 1;
      uint32_t lcp = 0;
      while (lcp < limit && prev.data()[lcp] == cur.data()[lcp]) ++lcp;
      PutVarint32(&payloads, lcp);
      PutVarint32(&payloads, cur.size_bytes() - lcp);
      payloads.append(cur.data() + lcp, cur.size_bytes() - lcp);
    }
    ends.push_back(payloads.size());
  }
  std::string out;
  PutVarint64(&out, n);
  PutVarint64(&out, blocks);
  PutDeltaU64Array(&out, ends.data(), ends.size());
  out.append(dir_keys);
  out.append(payloads);
  return out;
}

Status DecodeBlockScalar(std::string_view payload, size_t entries,
                         PackedPbnList* out) {
  std::string& arena = out->arena_;
  for (size_t e = 0; e < entries; ++e) {
    const uint32_t begin = static_cast<uint32_t>(arena.size());
    if (e == 0) {
      VPBN_ASSIGN_OR_RETURN(uint32_t size, GetVarint32(&payload));
      if (size > payload.size()) {
        return Status::InvalidArgument("blocked arena: truncated entry");
      }
      arena.append(payload.data(), size);
      payload.remove_prefix(size);
    } else {
      VPBN_ASSIGN_OR_RETURN(uint32_t lcp, GetVarint32(&payload));
      VPBN_ASSIGN_OR_RETURN(uint32_t suffix, GetVarint32(&payload));
      const uint32_t prev_begin = out->offsets_[out->offsets_.size() - 2];
      const uint32_t prev_size = begin - prev_begin;
      if (lcp >= prev_size || suffix > payload.size() ||
          lcp > UINT32_MAX - suffix) {
        return Status::InvalidArgument("blocked arena: bad front coding");
      }
      // The shared bytes live earlier in this same arena; append them
      // before the suffix. reserve() first so the self-referencing append
      // never reads through a reallocation.
      arena.reserve(arena.size() + lcp + suffix);
      arena.append(arena.data() + prev_begin, lcp);
      arena.append(payload.data(), suffix);
      payload.remove_prefix(suffix);
    }
    // Validate the assembled encoding's framing, counting components.
    const uint32_t size = static_cast<uint32_t>(arena.size()) - begin;
    uint32_t components = 0;
    uint32_t posn = 0;
    for (;;) {
      if (posn >= size) {
        return Status::InvalidArgument(
            "blocked arena: entry missing terminator");
      }
      const uint8_t len = static_cast<uint8_t>(arena[begin + posn]);
      if (len == 0) {
        ++posn;
        break;
      }
      if (len > 4 || posn + 1 + len > size) {
        return Status::InvalidArgument("blocked arena: bad length byte");
      }
      posn += 1 + len;
      ++components;
    }
    if (posn != size || components == 0) {
      return Status::InvalidArgument("blocked arena: malformed entry");
    }
    out->offsets_.push_back(static_cast<uint32_t>(arena.size()));
    out->lengths_.push_back(components);
    out->keys_.push_back(
        PackedPbnRef::ComputeKey(arena.data() + begin, size));
    const size_t i = out->size() - 1;
    if (i > 0 && (*out)[i - 1].Compare((*out)[i]) >= 0) {
      return Status::InvalidArgument("blocked arena: not document-ordered");
    }
  }
  if (!payload.empty()) {
    return Status::InvalidArgument("blocked arena: trailing block bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Batched DecodeBlock. The scalar decoder above interleaves varint parsing,
// arena growth, framing validation and the order check per entry; the
// batched form splits them into block-wide passes — parse every header into
// stack arrays, size the arena once and assemble with straight memcpys,
// validate framing, then check document order over the key column with a
// SIMD kernel that touches the arena only on equal-key pairs (the same
// key-column-first shape as CompareKeysBatch).

namespace {

/// Append to \p suspects every index i in [lo, hi) where the key column
/// does NOT prove keys[i-1] < keys[i] strictly; the caller re-checks those
/// pairs with the full scalar Compare. Keys are unsigned.
void OrderScalar(const uint64_t* keys, size_t lo, size_t hi,
                 std::vector<size_t>* suspects) {
  for (size_t i = lo; i < hi; ++i) {
    if (keys[i - 1] >= keys[i]) suspects->push_back(i);
  }
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) void OrderAvx2(const uint64_t* keys,
                                               size_t lo, size_t hi,
                                               std::vector<size_t>* suspects) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256i prev = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i - 1)),
        bias);
    const __m256i cur = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    const int ordered = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(cur, prev)));
    if (ordered != 0xF) {
      for (int b = 0; b < 4; ++b) {
        if ((ordered & (1 << b)) == 0) suspects->push_back(i + b);
      }
    }
  }
  if (i < hi) OrderScalar(keys, i, hi, suspects);
}

__attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) void
OrderAvx512(const uint64_t* keys, size_t lo, size_t hi,
            std::vector<size_t>* suspects) {
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512i prev =
        _mm512_loadu_si512(reinterpret_cast<const void*>(keys + i - 1));
    const __m512i cur =
        _mm512_loadu_si512(reinterpret_cast<const void*>(keys + i));
    const __mmask8 suspect = _mm512_cmple_epu64_mask(cur, prev);
    if (suspect != 0) {
      for (int b = 0; b < 8; ++b) {
        if (suspect & (1 << b)) suspects->push_back(i + b);
      }
    }
  }
  if (i < hi) OrderScalar(keys, i, hi, suspects);
}

#endif  // defined(__x86_64__)

using OrderFn = void (*)(const uint64_t*, size_t, size_t,
                         std::vector<size_t>*);

struct DecodeKernel {
  OrderFn fn;
  const char* isa;
};

DecodeKernel ResolveDecodeKernel() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return {OrderAvx512, "avx512"};
  }
  if (__builtin_cpu_supports("avx2")) return {OrderAvx2, "avx2"};
#endif
  return {OrderScalar, "scalar"};
}

const DecodeKernel& GetDecodeKernel() {
  static const DecodeKernel kernel = ResolveDecodeKernel();
  return kernel;
}

}  // namespace

const char* DecodeKernelIsa() { return GetDecodeKernel().isa; }

Status DecodeBlock(std::string_view payload, size_t entries,
                   PackedPbnList* out) {
  if (entries > kPbnBlockEntries) {
    // Oversized calls (not produced by EncodeBlocked) take the reference
    // path rather than spilling the header arrays to the heap.
    return DecodeBlockScalar(payload, entries, out);
  }
  // Pass 1: parse every front-coding header, remembering where each
  // entry's suffix bytes live. Validation here matches the scalar decoder
  // branch for branch.
  uint32_t lcps[kPbnBlockEntries];
  uint32_t suffixes[kPbnBlockEntries];
  const char* srcs[kPbnBlockEntries];
  uint32_t sizes[kPbnBlockEntries];
  size_t total = 0;
  for (size_t e = 0; e < entries; ++e) {
    if (e == 0) {
      VPBN_ASSIGN_OR_RETURN(uint32_t size, GetVarint32(&payload));
      if (size > payload.size()) {
        return Status::InvalidArgument("blocked arena: truncated entry");
      }
      lcps[e] = 0;
      suffixes[e] = size;
    } else {
      VPBN_ASSIGN_OR_RETURN(uint32_t lcp, GetVarint32(&payload));
      VPBN_ASSIGN_OR_RETURN(uint32_t suffix, GetVarint32(&payload));
      if (lcp >= sizes[e - 1] || suffix > payload.size() ||
          lcp > UINT32_MAX - suffix) {
        return Status::InvalidArgument("blocked arena: bad front coding");
      }
      lcps[e] = lcp;
      suffixes[e] = suffix;
    }
    srcs[e] = payload.data();
    payload.remove_prefix(suffixes[e]);
    sizes[e] = lcps[e] + suffixes[e];
    total += sizes[e];
  }
  if (!payload.empty()) {
    return Status::InvalidArgument("blocked arena: trailing block bytes");
  }

  // Pass 2: size the arena once and assemble every entry with two memcpys
  // (shared prefix from the previous entry, just written; suffix from the
  // payload). Adjacent regions never overlap.
  std::string& arena = out->arena_;
  const size_t base = arena.size();
  arena.resize(base + total);
  char* dst = arena.data() + base;
  const char* prev = nullptr;
  for (size_t e = 0; e < entries; ++e) {
    if (lcps[e] != 0) std::memcpy(dst, prev, lcps[e]);
    std::memcpy(dst + lcps[e], srcs[e], suffixes[e]);
    prev = dst;
    dst += sizes[e];
  }

  // Pass 3: validate each assembled encoding's framing (component length
  // bytes 1..4, one terminator, nothing after it) and push the columns.
  const size_t first_new = out->size();
  size_t begin = base;
  for (size_t e = 0; e < entries; ++e) {
    const uint32_t size = sizes[e];
    uint32_t components = 0;
    uint32_t posn = 0;
    for (;;) {
      if (posn >= size) {
        return Status::InvalidArgument(
            "blocked arena: entry missing terminator");
      }
      const uint8_t len = static_cast<uint8_t>(arena[begin + posn]);
      if (len == 0) {
        ++posn;
        break;
      }
      if (len > 4 || posn + 1 + len > size) {
        return Status::InvalidArgument("blocked arena: bad length byte");
      }
      posn += 1 + len;
      ++components;
    }
    if (posn != size || components == 0) {
      return Status::InvalidArgument("blocked arena: malformed entry");
    }
    out->offsets_.push_back(static_cast<uint32_t>(begin + size));
    out->lengths_.push_back(components);
    out->keys_.push_back(PackedPbnRef::ComputeKey(arena.data() + begin, size));
    begin += size;
  }

  // Pass 4: document-order check over the key column (the pair across the
  // previous block's boundary included). Unequal keys decide outright;
  // equal-key pairs — rare — re-check with the full comparison.
  const size_t lo = first_new == 0 ? 1 : first_new;
  const size_t hi = out->size();
  if (lo < hi) {
    std::vector<size_t> suspects;
    GetDecodeKernel().fn(out->keys_.data(), lo, hi, &suspects);
    for (size_t i : suspects) {
      if ((*out)[i - 1].Compare((*out)[i]) >= 0) {
        return Status::InvalidArgument("blocked arena: not document-ordered");
      }
    }
  }
  return Status::OK();
}

Result<PackedPbnList> DecodeBlocked(std::string_view blob, size_t count) {
  VPBN_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(&blob));
  VPBN_ASSIGN_OR_RETURN(uint64_t blocks, GetVarint64(&blob));
  if (n != count) {
    return Status::InvalidArgument("blocked arena: entry count mismatch");
  }
  const uint64_t want_blocks =
      (count + kPbnBlockEntries - 1) / kPbnBlockEntries;
  if (blocks != want_blocks) {
    return Status::InvalidArgument("blocked arena: block count mismatch");
  }
  std::vector<uint64_t> ends;
  VPBN_RETURN_NOT_OK(GetDeltaU64Array(&blob, blocks, &ends));
  if (blob.size() < blocks * 16) {
    return Status::InvalidArgument("blocked arena: truncated directory");
  }
  std::string_view dir_keys = blob.substr(0, blocks * 16);
  std::string_view payloads = blob.substr(blocks * 16);
  if ((ends.empty() ? 0 : ends.back()) != payloads.size()) {
    return Status::InvalidArgument("blocked arena: payload size mismatch");
  }
  PackedPbnList out;
  out.Reserve(count, 12);
  uint64_t prev_end = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    const size_t first = static_cast<size_t>(b) * kPbnBlockEntries;
    const size_t entries = std::min(kPbnBlockEntries, count - first);
    if (ends[b] < prev_end || ends[b] > payloads.size()) {
      return Status::InvalidArgument("blocked arena: bad block offset");
    }
    VPBN_RETURN_NOT_OK(DecodeBlock(
        payloads.substr(prev_end, ends[b] - prev_end), entries, &out));
    prev_end = ends[b];
    // The stored min/max keys drive block skipping; reject metadata that
    // disagrees with the decoded entries.
    if (GetKeyLE(dir_keys.substr(b * 16)) != out[first].key() ||
        GetKeyLE(dir_keys.substr(b * 16 + 8)) !=
            out[first + entries - 1].key()) {
      return Status::InvalidArgument("blocked arena: min/max key mismatch");
    }
  }
  return out;
}

void DecodedPbnColumn::FromList(const PackedPbnList& list) {
  values_.clear();
  starts_.assign(1, 0);
  size_t n = list.size();
  size_t total = 0;
  const uint32_t* lengths = list.lengths_data();
  for (size_t i = 0; i < n; ++i) total += lengths[i];
  values_.reserve(total);
  starts_.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    PackedPbnRef::ComponentIterator it(list[i]);
    while (it.HasNext()) values_.push_back(it.Next());
    starts_.push_back(static_cast<uint32_t>(values_.size()));
  }
}

}  // namespace vpbn::num
