#include "pbn/packed.h"

#include <algorithm>

#include "pbn/codec.h"

namespace vpbn::num {

size_t PackedPbnRef::CommonPrefixLength(const PackedPbnRef& o) const {
  ComponentIterator a(*this);
  ComponentIterator b(o);
  size_t n = 0;
  while (a.HasNext() && b.HasNext() && a.Next() == b.Next()) ++n;
  return n;
}

uint32_t PackedPbnRef::at1(size_t i) const {
  ComponentIterator it(*this);
  uint32_t c = 0;
  for (size_t k = 0; k < i; ++k) c = it.Next();
  return c;
}

void PackedPbnRef::DecodeTo(std::vector<uint32_t>* out) const {
  out->clear();
  out->reserve(length_);
  ComponentIterator it(*this);
  while (it.HasNext()) out->push_back(it.Next());
}

Pbn PackedPbnRef::Materialize() const {
  std::vector<uint32_t> components;
  DecodeTo(&components);
  return Pbn(std::move(components));
}

uint32_t PackedPbnRef::PrefixByteSize(size_t n) const {
  const char* p = data_;
  for (size_t k = 0; k < n; ++k) {
    p += 1 + static_cast<uint8_t>(*p);
  }
  return static_cast<uint32_t>(p - data_);
}

namespace {

/// The last component of \p x as a one-component sub-ref (terminator
/// borrowed from the parent encoding's own tail). Requires !x.empty().
PackedPbnRef LastComponent(const PackedPbnRef& x) {
  uint32_t parent_bytes = x.PrefixByteSize(x.length() - 1);
  return PackedPbnRef(x.data() + parent_bytes, x.size_bytes() - parent_bytes,
                      1);
}

}  // namespace

bool PackedIsSibling(const PackedPbnRef& x, const PackedPbnRef& y) {
  if (x.length() != y.length() || x.empty()) return false;
  // Same parent: the byte spans before the last component must be equal
  // (equal components encode to equal bytes and vice versa).
  uint32_t px = x.PrefixByteSize(x.length() - 1);
  uint32_t py = y.PrefixByteSize(y.length() - 1);
  return px == py && std::memcmp(x.data(), y.data(), px) == 0;
}

bool PackedIsFollowingSibling(const PackedPbnRef& x, const PackedPbnRef& y) {
  return PackedIsSibling(x, y) &&
         LastComponent(x).Compare(LastComponent(y)) > 0;
}

bool PackedIsPrecedingSibling(const PackedPbnRef& x, const PackedPbnRef& y) {
  return PackedIsSibling(x, y) &&
         LastComponent(x).Compare(LastComponent(y)) < 0;
}

bool PackedCheckAxis(Axis axis, const PackedPbnRef& x, const PackedPbnRef& y) {
  switch (axis) {
    case Axis::kSelf:
      return PackedIsSelf(x, y);
    case Axis::kChild:
      return PackedIsChild(x, y);
    case Axis::kParent:
      return PackedIsParent(x, y);
    case Axis::kAncestor:
      return PackedIsAncestor(x, y);
    case Axis::kDescendant:
      return PackedIsDescendant(x, y);
    case Axis::kAncestorOrSelf:
      return PackedIsAncestorOrSelf(x, y);
    case Axis::kDescendantOrSelf:
      return PackedIsDescendantOrSelf(x, y);
    case Axis::kFollowing:
      return PackedIsFollowing(x, y);
    case Axis::kPreceding:
      return PackedIsPreceding(x, y);
    case Axis::kFollowingSibling:
      return PackedIsFollowingSibling(x, y);
    case Axis::kPrecedingSibling:
      return PackedIsPrecedingSibling(x, y);
    case Axis::kAttribute:
      return false;
  }
  return false;
}

void PackedPbnList::FinishAppend(uint32_t num_components) {
  offsets_.push_back(static_cast<uint32_t>(arena_.size()));
  lengths_.push_back(num_components);
  uint32_t begin = offsets_[offsets_.size() - 2];
  keys_.push_back(PackedPbnRef::ComputeKey(
      arena_.data() + begin, static_cast<uint32_t>(arena_.size()) - begin));
}

void PackedPbnList::Append(const Pbn& pbn) {
  EncodeOrdered(pbn, &arena_);
  FinishAppend(static_cast<uint32_t>(pbn.length()));
}

void PackedPbnList::Append(const PackedPbnRef& ref) {
  arena_.append(ref.data(), ref.size_bytes());
  offsets_.push_back(static_cast<uint32_t>(arena_.size()));
  lengths_.push_back(ref.length());
  keys_.push_back(ref.key());
}

void PackedPbnList::AppendPrefix(const PackedPbnRef& ref, size_t n) {
  uint32_t bytes = ref.PrefixByteSize(n);
  arena_.append(ref.data(), bytes);
  arena_.push_back('\0');
  FinishAppend(static_cast<uint32_t>(n));
}

std::vector<Pbn> PackedPbnList::MaterializeAll() const {
  std::vector<Pbn> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(Materialize(i));
  return out;
}

PackedPbnList PackedPbnList::FromPbns(const std::vector<Pbn>& pbns) {
  PackedPbnList out;
  out.Reserve(pbns.size());
  for (const Pbn& p : pbns) out.Append(p);
  return out;
}

Result<PackedPbnList> PackedPbnList::FromArena(std::string arena,
                                               size_t count) {
  if (arena.size() > static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument("packed arena exceeds 32-bit offsets");
  }
  PackedPbnList out;
  out.offsets_.reserve(count + 1);
  out.lengths_.reserve(count);
  out.keys_.reserve(count);
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    size_t begin = pos;
    uint32_t components = 0;
    for (;;) {
      if (pos >= arena.size()) {
        return Status::InvalidArgument(
            "packed arena truncated inside an encoding");
      }
      uint8_t len = static_cast<uint8_t>(arena[pos]);
      if (len == 0) {
        ++pos;  // terminator
        break;
      }
      if (len > 4 || pos + 1 + len > arena.size()) {
        return Status::InvalidArgument("packed arena has a bad length byte");
      }
      pos += 1 + len;
      ++components;
    }
    if (components == 0) {
      return Status::InvalidArgument("packed arena encodes an empty number");
    }
    out.offsets_.push_back(static_cast<uint32_t>(pos));
    out.lengths_.push_back(components);
    out.keys_.push_back(PackedPbnRef::ComputeKey(
        arena.data() + begin, static_cast<uint32_t>(pos - begin)));
  }
  if (pos != arena.size()) {
    return Status::InvalidArgument("packed arena has trailing bytes");
  }
  out.arena_ = std::move(arena);
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i - 1].Compare(out[i]) >= 0) {
      return Status::InvalidArgument("packed arena is not document-ordered");
    }
  }
  return out;
}

void PackedPbnList::SortUnique() {
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*this)[a].Compare((*this)[b]) < 0;
  });
  PackedPbnList sorted;
  sorted.Reserve(size());
  for (size_t i = 0; i < order.size(); ++i) {
    PackedPbnRef r = (*this)[order[i]];
    if (i > 0 && r == sorted[sorted.size() - 1]) continue;
    sorted.Append(r);
  }
  *this = std::move(sorted);
}

PackedPbnList PackedPbnList::MergeUnique(const PackedPbnList& a,
                                         const PackedPbnList& b) {
  PackedPbnList out;
  out.Reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size()) {
      out.Append(a[i++]);
    } else if (i >= a.size()) {
      out.Append(b[j++]);
    } else {
      int c = a[i].Compare(b[j]);
      if (c < 0) {
        out.Append(a[i++]);
      } else if (c > 0) {
        out.Append(b[j++]);
      } else {
        out.Append(a[i++]);
        ++j;
      }
    }
  }
  return out;
}

size_t PackedPbnList::LowerBound(const PackedPbnRef& key) const {
  size_t lo = 0, hi = size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if ((*this)[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::pair<size_t, size_t> PackedPbnList::PrefixRange(
    const PackedPbnRef& scope) const {
  // Descendants-or-self of `scope` form one contiguous run starting at the
  // first element >= scope. The run's end is the first element that scope
  // does not prefix; since "scope prefixes e" implies e >= scope and the
  // prefixed elements are contiguous, a second binary search on the prefix
  // test finds it.
  size_t first = LowerBound(scope);
  size_t lo = first, hi = size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (scope.IsPrefixOf((*this)[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {first, lo};
}

void PackedPbnList::Reserve(size_t nodes, size_t bytes_per_node) {
  arena_.reserve(arena_.size() + nodes * bytes_per_node);
  offsets_.reserve(offsets_.size() + nodes);
  lengths_.reserve(lengths_.size() + nodes);
  keys_.reserve(keys_.size() + nodes);
}

void DecodedPbnColumn::FromList(const PackedPbnList& list) {
  values_.clear();
  starts_.assign(1, 0);
  size_t n = list.size();
  size_t total = 0;
  const uint32_t* lengths = list.lengths_data();
  for (size_t i = 0; i < n; ++i) total += lengths[i];
  values_.reserve(total);
  starts_.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    PackedPbnRef::ComponentIterator it(list[i]);
    while (it.HasNext()) values_.push_back(it.Next());
    starts_.push_back(static_cast<uint32_t>(values_.size()));
  }
}

}  // namespace vpbn::num
