/// \file structural_join.h
/// \brief Set-at-a-time structural joins on sorted PBN lists.
///
/// The per-type PBN lists of the type index are sorted in document order,
/// so the classic stack-based tree-merge join (Al-Khalifa et al., ICDE
/// 2002) computes all ancestor/descendant or parent/child pairs between
/// two lists in O(|A| + |D| + |output|) — the machinery underneath every
/// PBN-era XML query processor, and the set-oriented alternative to the
/// per-node containment scans used by the path evaluators.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "pbn/packed.h"
#include "pbn/pbn.h"

namespace vpbn::num {

/// \brief One join result: indexes into the input lists.
struct JoinPair {
  size_t ancestor_index;
  size_t descendant_index;

  bool operator==(const JoinPair&) const = default;
};

/// \brief All pairs (a, d) with ancestors[a] a proper ancestor of
/// descendants[d]. Both inputs must be sorted in document order (as the
/// type index provides). Output is ordered by descendant, then by
/// ancestor depth (outermost first).
std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<Pbn>& ancestors, const std::vector<Pbn>& descendants);

/// \brief All pairs (p, c) with parents[p] the parent of children[c].
/// Same input contract and output order.
std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children);

/// \brief Inputs below this many descendants always take the sequential
/// O(|A| + |D| + |out|) stack-tree path, even when a pool is supplied —
/// chunking overhead would dominate.
inline constexpr size_t kParallelJoinCutoff = 2048;

/// \name Partitioned parallel joins
///
/// Same contract and byte-identical output as the sequential variants. The
/// sorted descendant list is split into contiguous chunks; each chunk joins
/// independently against the binary-searched slice of the ancestor list that
/// can reach it (the enclosing ancestors of a chunk's first descendant are
/// exactly its PBN prefixes, found by binary search), and the per-chunk
/// outputs concatenate in document order. Sequential when \p pool is null,
/// single-threaded, or the input is below kParallelJoinCutoff.
/// @{
std::vector<JoinPair> AncestorDescendantJoin(const std::vector<Pbn>& ancestors,
                                             const std::vector<Pbn>& descendants,
                                             common::ThreadPool* pool);
std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children,
                                      common::ThreadPool* pool);
/// @}

/// \brief Work counters for the packed joins, so ExecStats can report how
/// many axis decisions and arena bytes a join actually touched. Each join
/// call accumulates into the struct when non-null.
struct JoinCounters {
  uint64_t comparisons = 0;     ///< prefix/order decisions made
  uint64_t bytes_compared = 0;  ///< encoded bytes fed to those decisions
  uint64_t vjoin_pairs = 0;     ///< pairs emitted by virtual merge joins
  uint64_t decoded_batches = 0; ///< arenas batch-decoded into flat columns
  uint64_t block_skips = 0;     ///< kPbnBlockEntries blocks skipped wholesale

  void Add(const JoinCounters& o) {
    comparisons += o.comparisons;
    bytes_compared += o.bytes_compared;
    vjoin_pairs += o.vjoin_pairs;
    decoded_batches += o.decoded_batches;
    block_skips += o.block_skips;
  }
};

/// \name Block-skipping toggle.
///
/// The packed joins stride over whole kPbnBlockEntries blocks whose min/max
/// sort keys prove no element can match or stop the merge (identical
/// output either way — property-tested). On by default; the toggle exists
/// so tests and benches can pin the unskipped baseline. Process-global.
/// @{
void SetJoinBlockSkipping(bool enabled);
bool JoinBlockSkippingEnabled();
/// @}

/// \name Packed structural joins
///
/// Same contract and byte-identical JoinPair output as the vector variants,
/// but streaming over the contiguous arenas of PackedPbnList: every axis
/// decision is a memcmp over encoded bytes and the chunk-seeding binary
/// search of the parallel variant is a memcmp bsearch over the offset
/// column. Sequential when \p pool is null/single-threaded or the input is
/// below kParallelJoinCutoff. Pool and counters are explicit (no defaults)
/// so brace-initialized vector calls never overload-clash with the vector
/// variants; pass nullptr for either.
/// @{
std::vector<JoinPair> AncestorDescendantJoin(const PackedPbnList& ancestors,
                                             const PackedPbnList& descendants,
                                             common::ThreadPool* pool,
                                             JoinCounters* counters);
std::vector<JoinPair> ParentChildJoin(const PackedPbnList& parents,
                                      const PackedPbnList& children,
                                      common::ThreadPool* pool,
                                      JoinCounters* counters);
/// @}

}  // namespace vpbn::num
