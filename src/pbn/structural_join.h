/// \file structural_join.h
/// \brief Set-at-a-time structural joins on sorted PBN lists.
///
/// The per-type PBN lists of the type index are sorted in document order,
/// so the classic stack-based tree-merge join (Al-Khalifa et al., ICDE
/// 2002) computes all ancestor/descendant or parent/child pairs between
/// two lists in O(|A| + |D| + |output|) — the machinery underneath every
/// PBN-era XML query processor, and the set-oriented alternative to the
/// per-node containment scans used by the path evaluators.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "pbn/pbn.h"

namespace vpbn::num {

/// \brief One join result: indexes into the input lists.
struct JoinPair {
  size_t ancestor_index;
  size_t descendant_index;

  bool operator==(const JoinPair&) const = default;
};

/// \brief All pairs (a, d) with ancestors[a] a proper ancestor of
/// descendants[d]. Both inputs must be sorted in document order (as the
/// type index provides). Output is ordered by descendant, then by
/// ancestor depth (outermost first).
std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<Pbn>& ancestors, const std::vector<Pbn>& descendants);

/// \brief All pairs (p, c) with parents[p] the parent of children[c].
/// Same input contract and output order.
std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children);

}  // namespace vpbn::num
