#include "pbn/structural_join.h"

namespace vpbn::num {

namespace {

/// Stack-tree join skeleton shared by both variants. The stack holds the
/// chain of ancestors enclosing the current position in document order;
/// each descendant is matched against the whole stack (ancestor variant)
/// or its top-most applicable entry (parent variant).
template <bool kParentOnly>
std::vector<JoinPair> StackTreeJoin(const std::vector<Pbn>& ancestors,
                                    const std::vector<Pbn>& descendants) {
  std::vector<JoinPair> out;
  std::vector<size_t> stack;  // indexes into `ancestors`
  size_t a = 0;
  for (size_t d = 0; d < descendants.size(); ++d) {
    const Pbn& dn = descendants[d];
    // Pop ancestors that cannot enclose dn (dn is past their subtree).
    while (!stack.empty() && !ancestors[stack.back()].IsStrictPrefixOf(dn)) {
      stack.pop_back();
    }
    // Push ancestors up to dn in document order that enclose dn.
    while (a < ancestors.size() && ancestors[a] < dn) {
      if (ancestors[a].IsStrictPrefixOf(dn)) {
        // Entering a deeper enclosing ancestor; anything it does not
        // nest in was popped above.
        stack.push_back(a);
      }
      ++a;
    }
    if constexpr (kParentOnly) {
      if (!stack.empty()) {
        size_t top = stack.back();
        if (ancestors[top].length() + 1 == dn.length()) {
          out.push_back(JoinPair{top, d});
        }
      }
    } else {
      for (size_t s : stack) out.push_back(JoinPair{s, d});
    }
  }
  return out;
}

}  // namespace

std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<Pbn>& ancestors, const std::vector<Pbn>& descendants) {
  return StackTreeJoin<false>(ancestors, descendants);
}

std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children) {
  return StackTreeJoin<true>(parents, children);
}

}  // namespace vpbn::num
