#include "pbn/structural_join.h"

#include <algorithm>

#include "common/parallel.h"

namespace vpbn::num {

namespace {

/// Stack-tree join skeleton shared by both variants and by the parallel
/// partitioning. The stack holds the chain of ancestors enclosing the
/// current position in document order; each descendant is matched against
/// the whole stack (ancestor variant) or its top-most applicable entry
/// (parent variant). \p stack and \p a describe the merge state as of
/// descendants[d_begin]: the enclosing chain of that descendant and the
/// first ancestor index not yet consumed.
template <bool kParentOnly>
void StackTreeJoinRange(const std::vector<Pbn>& ancestors,
                        const std::vector<Pbn>& descendants, size_t d_begin,
                        size_t d_end, std::vector<size_t> stack, size_t a,
                        std::vector<JoinPair>* out) {
  for (size_t d = d_begin; d < d_end; ++d) {
    const Pbn& dn = descendants[d];
    // Pop ancestors that cannot enclose dn (dn is past their subtree).
    while (!stack.empty() && !ancestors[stack.back()].IsStrictPrefixOf(dn)) {
      stack.pop_back();
    }
    // Push ancestors up to dn in document order that enclose dn.
    while (a < ancestors.size() && ancestors[a] < dn) {
      if (ancestors[a].IsStrictPrefixOf(dn)) {
        // Entering a deeper enclosing ancestor; anything it does not
        // nest in was popped above.
        stack.push_back(a);
      }
      ++a;
    }
    if constexpr (kParentOnly) {
      if (!stack.empty()) {
        size_t top = stack.back();
        if (ancestors[top].length() + 1 == dn.length()) {
          out->push_back(JoinPair{top, d});
        }
      }
    } else {
      for (size_t s : stack) out->push_back(JoinPair{s, d});
    }
  }
}

template <bool kParentOnly>
std::vector<JoinPair> StackTreeJoin(const std::vector<Pbn>& ancestors,
                                    const std::vector<Pbn>& descendants) {
  std::vector<JoinPair> out;
  StackTreeJoinRange<kParentOnly>(ancestors, descendants, 0,
                                  descendants.size(), {}, 0, &out);
  return out;
}

/// Reconstructs the merge state at descendants[d_begin] by binary search:
/// the ancestors enclosing it are exactly its proper PBN prefixes (any
/// earlier ancestor enclosing a later descendant of the chunk would — by
/// contiguity of subtree intervals in document order — enclose this one
/// too), and the scan pointer resumes at the first ancestor >= it.
template <bool kParentOnly>
void JoinChunk(const std::vector<Pbn>& ancestors,
               const std::vector<Pbn>& descendants, size_t d_begin,
               size_t d_end, std::vector<JoinPair>* out) {
  const Pbn& first = descendants[d_begin];
  std::vector<size_t> stack;
  for (size_t len = 1; len < first.length(); ++len) {
    Pbn prefix = first.Prefix(len);
    auto it = std::lower_bound(ancestors.begin(), ancestors.end(), prefix);
    // Duplicate entries (if callers pass non-deduped lists) all enclose.
    for (; it != ancestors.end() && *it == prefix; ++it) {
      stack.push_back(static_cast<size_t>(it - ancestors.begin()));
    }
  }
  size_t a = static_cast<size_t>(
      std::lower_bound(ancestors.begin(), ancestors.end(), first) -
      ancestors.begin());
  StackTreeJoinRange<kParentOnly>(ancestors, descendants, d_begin, d_end,
                                  std::move(stack), a, out);
}

template <bool kParentOnly>
std::vector<JoinPair> PartitionedJoin(const std::vector<Pbn>& ancestors,
                                      const std::vector<Pbn>& descendants,
                                      common::ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      descendants.size() < kParallelJoinCutoff || ancestors.empty()) {
    return StackTreeJoin<kParentOnly>(ancestors, descendants);
  }
  size_t num_chunks =
      std::min(static_cast<size_t>(pool->num_threads()) * 2,
               descendants.size() / (kParallelJoinCutoff / 4));
  num_chunks = std::max<size_t>(num_chunks, 1);
  size_t chunk = (descendants.size() + num_chunks - 1) / num_chunks;
  std::vector<std::vector<JoinPair>> parts(num_chunks);
  common::ParallelFor(pool, num_chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      size_t d_begin = c * chunk;
      size_t d_end = std::min(d_begin + chunk, descendants.size());
      if (d_begin >= d_end) continue;
      JoinChunk<kParentOnly>(ancestors, descendants, d_begin, d_end,
                             &parts[c]);
    }
  });
  // Chunks partition the descendant list in order, so concatenation keeps
  // the (descendant, ancestor-depth) output order of the sequential join.
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<JoinPair> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace

std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<Pbn>& ancestors, const std::vector<Pbn>& descendants) {
  return StackTreeJoin<false>(ancestors, descendants);
}

std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children) {
  return StackTreeJoin<true>(parents, children);
}

std::vector<JoinPair> AncestorDescendantJoin(const std::vector<Pbn>& ancestors,
                                             const std::vector<Pbn>& descendants,
                                             common::ThreadPool* pool) {
  return PartitionedJoin<false>(ancestors, descendants, pool);
}

std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children,
                                      common::ThreadPool* pool) {
  return PartitionedJoin<true>(parents, children, pool);
}

}  // namespace vpbn::num
