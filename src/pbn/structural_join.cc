#include "pbn/structural_join.h"

#include <algorithm>
#include <atomic>

#include "common/parallel.h"

namespace vpbn::num {

namespace {

std::atomic<bool> g_join_block_skipping{true};

}  // namespace

void SetJoinBlockSkipping(bool enabled) {
  g_join_block_skipping.store(enabled, std::memory_order_relaxed);
}

bool JoinBlockSkippingEnabled() {
  return g_join_block_skipping.load(std::memory_order_relaxed);
}

namespace {

/// Stack-tree join skeleton shared by both variants and by the parallel
/// partitioning. The stack holds the chain of ancestors enclosing the
/// current position in document order; each descendant is matched against
/// the whole stack (ancestor variant) or its top-most applicable entry
/// (parent variant). \p stack and \p a describe the merge state as of
/// descendants[d_begin]: the enclosing chain of that descendant and the
/// first ancestor index not yet consumed.
template <bool kParentOnly>
void StackTreeJoinRange(const std::vector<Pbn>& ancestors,
                        const std::vector<Pbn>& descendants, size_t d_begin,
                        size_t d_end, std::vector<size_t> stack, size_t a,
                        std::vector<JoinPair>* out) {
  for (size_t d = d_begin; d < d_end; ++d) {
    const Pbn& dn = descendants[d];
    // Pop ancestors that cannot enclose dn (dn is past their subtree).
    while (!stack.empty() && !ancestors[stack.back()].IsStrictPrefixOf(dn)) {
      stack.pop_back();
    }
    // Push ancestors up to dn in document order that enclose dn.
    while (a < ancestors.size() && ancestors[a] < dn) {
      if (ancestors[a].IsStrictPrefixOf(dn)) {
        // Entering a deeper enclosing ancestor; anything it does not
        // nest in was popped above.
        stack.push_back(a);
      }
      ++a;
    }
    if constexpr (kParentOnly) {
      if (!stack.empty()) {
        size_t top = stack.back();
        if (ancestors[top].length() + 1 == dn.length()) {
          out->push_back(JoinPair{top, d});
        }
      }
    } else {
      for (size_t s : stack) out->push_back(JoinPair{s, d});
    }
  }
}

template <bool kParentOnly>
std::vector<JoinPair> StackTreeJoin(const std::vector<Pbn>& ancestors,
                                    const std::vector<Pbn>& descendants) {
  std::vector<JoinPair> out;
  StackTreeJoinRange<kParentOnly>(ancestors, descendants, 0,
                                  descendants.size(), {}, 0, &out);
  return out;
}

/// Reconstructs the merge state at descendants[d_begin] by binary search:
/// the ancestors enclosing it are exactly its proper PBN prefixes (any
/// earlier ancestor enclosing a later descendant of the chunk would — by
/// contiguity of subtree intervals in document order — enclose this one
/// too), and the scan pointer resumes at the first ancestor >= it.
template <bool kParentOnly>
void JoinChunk(const std::vector<Pbn>& ancestors,
               const std::vector<Pbn>& descendants, size_t d_begin,
               size_t d_end, std::vector<JoinPair>* out) {
  const Pbn& first = descendants[d_begin];
  std::vector<size_t> stack;
  for (size_t len = 1; len < first.length(); ++len) {
    Pbn prefix = first.Prefix(len);
    auto it = std::lower_bound(ancestors.begin(), ancestors.end(), prefix);
    // Duplicate entries (if callers pass non-deduped lists) all enclose.
    for (; it != ancestors.end() && *it == prefix; ++it) {
      stack.push_back(static_cast<size_t>(it - ancestors.begin()));
    }
  }
  size_t a = static_cast<size_t>(
      std::lower_bound(ancestors.begin(), ancestors.end(), first) -
      ancestors.begin());
  StackTreeJoinRange<kParentOnly>(ancestors, descendants, d_begin, d_end,
                                  std::move(stack), a, out);
}

template <bool kParentOnly>
std::vector<JoinPair> PartitionedJoin(const std::vector<Pbn>& ancestors,
                                      const std::vector<Pbn>& descendants,
                                      common::ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      descendants.size() < kParallelJoinCutoff || ancestors.empty()) {
    return StackTreeJoin<kParentOnly>(ancestors, descendants);
  }
  size_t num_chunks =
      std::min(static_cast<size_t>(pool->num_threads()) * 2,
               descendants.size() / (kParallelJoinCutoff / 4));
  num_chunks = std::max<size_t>(num_chunks, 1);
  size_t chunk = (descendants.size() + num_chunks - 1) / num_chunks;
  std::vector<std::vector<JoinPair>> parts(num_chunks);
  common::ParallelFor(pool, num_chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      size_t d_begin = c * chunk;
      size_t d_end = std::min(d_begin + chunk, descendants.size());
      if (d_begin >= d_end) continue;
      JoinChunk<kParentOnly>(ancestors, descendants, d_begin, d_end,
                             &parts[c]);
    }
  });
  // Chunks partition the descendant list in order, so concatenation keeps
  // the (descendant, ancestor-depth) output order of the sequential join.
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<JoinPair> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// Packed mirror of StackTreeJoinRange: the merge state is byte-level. Every
/// IsStrictPrefixOf/order decision is a sort-key compare (arena memcmp only
/// past equal keys); with kCounted the counters tally decisions and the
/// bytes they touched. Counting is a template parameter so the uncounted
/// join carries zero bookkeeping in its inner loop.
template <bool kParentOnly, bool kCounted>
void PackedStackTreeJoinLoop(const PackedPbnList& ancestors,
                             const PackedPbnList& descendants, size_t d_begin,
                             size_t d_end, std::vector<size_t>& stack,
                             size_t a, std::vector<JoinPair>* out,
                             JoinCounters* counters) {
  uint64_t comparisons = 0;
  uint64_t bytes = 0;
  uint64_t block_skips = 0;
  const bool skip_blocks = JoinBlockSkippingEnabled();
  const size_t a_size = ancestors.size();
  const char* a_arena = ancestors.arena_data();
  const uint32_t* a_off = ancestors.offsets_data();
  const uint32_t* a_len = ancestors.lengths_data();
  const uint64_t* a_key = ancestors.keys_data();
  const char* d_arena = descendants.arena_data();
  const uint32_t* d_off = descendants.offsets_data();
  const uint32_t* d_len = descendants.lengths_data();
  const uint64_t* d_key = descendants.keys_data();
  for (size_t d = d_begin; d < d_end; ++d) {
    PackedPbnRef dn(d_arena + d_off[d], d_off[d + 1] - d_off[d], d_len[d],
                    d_key[d]);
    // Pop the chain entries whose subtrees ended before dn. A popped
    // entry's subtree is a contiguous document-order interval ending
    // before dn, so it would be popped for every later descendant too —
    // which is what lets the block skip below run on the drained stack.
    while (!stack.empty()) {
      const size_t s = stack.back();
      const PackedPbnRef top(a_arena + a_off[s], a_off[s + 1] - a_off[s],
                             a_len[s], a_key[s]);
      if constexpr (kCounted) {
        ++comparisons;
        bytes += top.size_bytes();
      }
      if (top.IsStrictPrefixOf(dn)) break;
      stack.pop_back();
    }
    if (skip_blocks && stack.empty()) {
      // No enclosing chain: once the ancestor scan is exhausted, no later
      // descendant can produce output.
      if (a >= a_size) break;
      // A whole descendant block strictly below the next ancestor key emits
      // nothing: every dn in it has an.key > dn.key, so the advance loop
      // breaks immediately with the stack still empty.
      size_t d0 = d;
      while (d_end - d >= kPbnBlockEntries &&
             a_key[a] > d_key[d + kPbnBlockEntries - 1]) {
        d += kPbnBlockEntries;
        ++block_skips;
      }
      if (d >= d_end) break;
      if (d != d0) {
        dn = PackedPbnRef(d_arena + d_off[d], d_off[d + 1] - d_off[d],
                          d_len[d], d_key[d]);
      }
    }
    if (skip_blocks && a < a_size) {
      // Ancestors with sort keys below this bound can be neither prefixes
      // of dn nor >= dn, so the advance loop would step over every one of
      // them without touching the stack. Stride whole blocks off the key
      // column, then finish the sub-block run without decoding arena bytes.
      const uint64_t bound = MinStrictPrefixKeyBound(dn);
      a = SkipBlocksBelow(a_key, a, a_size, bound, &block_skips);
      while (a < a_size && a_key[a] < bound) ++a;
    }
    while (a < a_size) {
      const PackedPbnRef an(a_arena + a_off[a], a_off[a + 1] - a_off[a],
                            a_len[a], a_key[a]);
      if constexpr (kCounted) {
        ++comparisons;
        bytes += std::min(an.size_bytes(), dn.size_bytes());
      }
      if (an.Compare(dn) >= 0) break;
      if (an.IsStrictPrefixOf(dn)) stack.push_back(a);
      ++a;
    }
    if constexpr (kParentOnly) {
      if (!stack.empty()) {
        size_t top = stack.back();
        if (ancestors[top].length() + 1 == dn.length()) {
          out->push_back(JoinPair{top, d});
        }
      }
    } else {
      for (size_t s : stack) out->push_back(JoinPair{s, d});
    }
  }
  if constexpr (kCounted) {
    counters->comparisons += comparisons;
    counters->bytes_compared += bytes;
    counters->block_skips += block_skips;
  }
}

template <bool kParentOnly>
void PackedStackTreeJoinRange(const PackedPbnList& ancestors,
                              const PackedPbnList& descendants,
                              size_t d_begin, size_t d_end,
                              std::vector<size_t> stack, size_t a,
                              std::vector<JoinPair>* out,
                              JoinCounters* counters) {
  if (counters != nullptr) {
    PackedStackTreeJoinLoop<kParentOnly, true>(ancestors, descendants,
                                               d_begin, d_end, stack, a, out,
                                               counters);
  } else {
    PackedStackTreeJoinLoop<kParentOnly, false>(ancestors, descendants,
                                                d_begin, d_end, stack, a, out,
                                                nullptr);
  }
}

/// Packed chunk seeding: the enclosing ancestors of the chunk's first
/// descendant are its proper prefixes, each found by a memcmp binary search
/// over the ancestor offsets; the scan pointer resumes at the first
/// ancestor >= it.
template <bool kParentOnly>
void PackedJoinChunk(const PackedPbnList& ancestors,
                     const PackedPbnList& descendants, size_t d_begin,
                     size_t d_end, std::vector<JoinPair>* out,
                     JoinCounters* counters) {
  const PackedPbnRef first = descendants[d_begin];
  std::vector<size_t> stack;
  // Prefixes share `first`'s leading bytes, so each prefix ref borrows
  // them; only the terminator differs, supplied by a one-byte buffer via
  // AppendPrefix into a scratch list.
  PackedPbnList scratch;
  scratch.Reserve(first.length());
  for (size_t len = 1; len < first.length(); ++len) {
    scratch.AppendPrefix(first, len);
  }
  for (size_t len = 1; len < first.length(); ++len) {
    PackedPbnRef prefix = scratch[len - 1];
    for (size_t i = ancestors.LowerBound(prefix);
         i < ancestors.size() && ancestors[i] == prefix; ++i) {
      stack.push_back(i);
    }
  }
  size_t a = ancestors.LowerBound(first);
  PackedStackTreeJoinRange<kParentOnly>(ancestors, descendants, d_begin,
                                        d_end, std::move(stack), a, out,
                                        counters);
}

template <bool kParentOnly>
std::vector<JoinPair> PackedPartitionedJoin(const PackedPbnList& ancestors,
                                            const PackedPbnList& descendants,
                                            common::ThreadPool* pool,
                                            JoinCounters* counters) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      descendants.size() < kParallelJoinCutoff || ancestors.empty()) {
    std::vector<JoinPair> out;
    PackedStackTreeJoinRange<kParentOnly>(ancestors, descendants, 0,
                                          descendants.size(), {}, 0, &out,
                                          counters);
    return out;
  }
  size_t num_chunks =
      std::min(static_cast<size_t>(pool->num_threads()) * 2,
               descendants.size() / (kParallelJoinCutoff / 4));
  num_chunks = std::max<size_t>(num_chunks, 1);
  size_t chunk = (descendants.size() + num_chunks - 1) / num_chunks;
  std::vector<std::vector<JoinPair>> parts(num_chunks);
  std::vector<JoinCounters> part_counters(num_chunks);
  common::ParallelFor(pool, num_chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      size_t d_begin = c * chunk;
      size_t d_end = std::min(d_begin + chunk, descendants.size());
      if (d_begin >= d_end) continue;
      PackedJoinChunk<kParentOnly>(ancestors, descendants, d_begin, d_end,
                                   &parts[c], &part_counters[c]);
    }
  });
  if (counters != nullptr) {
    for (const JoinCounters& pc : part_counters) counters->Add(pc);
  }
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<JoinPair> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace

std::vector<JoinPair> AncestorDescendantJoin(
    const std::vector<Pbn>& ancestors, const std::vector<Pbn>& descendants) {
  return StackTreeJoin<false>(ancestors, descendants);
}

std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children) {
  return StackTreeJoin<true>(parents, children);
}

std::vector<JoinPair> AncestorDescendantJoin(const std::vector<Pbn>& ancestors,
                                             const std::vector<Pbn>& descendants,
                                             common::ThreadPool* pool) {
  return PartitionedJoin<false>(ancestors, descendants, pool);
}

std::vector<JoinPair> ParentChildJoin(const std::vector<Pbn>& parents,
                                      const std::vector<Pbn>& children,
                                      common::ThreadPool* pool) {
  return PartitionedJoin<true>(parents, children, pool);
}

std::vector<JoinPair> AncestorDescendantJoin(const PackedPbnList& ancestors,
                                             const PackedPbnList& descendants,
                                             common::ThreadPool* pool,
                                             JoinCounters* counters) {
  return PackedPartitionedJoin<false>(ancestors, descendants, pool, counters);
}

std::vector<JoinPair> ParentChildJoin(const PackedPbnList& parents,
                                      const PackedPbnList& children,
                                      common::ThreadPool* pool,
                                      JoinCounters* counters) {
  return PackedPartitionedJoin<true>(parents, children, pool, counters);
}

}  // namespace vpbn::num
