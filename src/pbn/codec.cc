#include "pbn/codec.h"

#include "common/varint.h"

namespace vpbn::num {

void EncodeCompact(const Pbn& pbn, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(pbn.length()));
  for (uint32_t c : pbn.components()) PutVarint32(out, c);
}

Result<Pbn> DecodeCompact(std::string_view* in) {
  VPBN_ASSIGN_OR_RETURN(uint32_t n, GetVarint32(in));
  std::vector<uint32_t> components;
  components.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    VPBN_ASSIGN_OR_RETURN(uint32_t c, GetVarint32(in));
    if (c == 0) return Status::InvalidArgument("pbn codec: zero component");
    components.push_back(c);
  }
  return Pbn(std::move(components));
}

size_t CompactEncodedSize(const Pbn& pbn) {
  size_t total = VarintLength32(static_cast<uint32_t>(pbn.length()));
  for (uint32_t c : pbn.components()) total += VarintLength32(c);
  return total;
}

namespace {

// Component bytes: [0x01 + nbytes-1][big-endian payload]. The length byte
// starts at 0x01 so it is always greater than the 0x00 terminator; because a
// value needing fewer bytes is numerically smaller than any value needing
// more, (length byte, payload) compares like the component value.
void EncodeOrderedComponent(uint32_t c, std::string* out) {
  int nbytes = 1;
  if (c > 0xFFFFFF) {
    nbytes = 4;
  } else if (c > 0xFFFF) {
    nbytes = 3;
  } else if (c > 0xFF) {
    nbytes = 2;
  }
  out->push_back(static_cast<char>(nbytes));
  for (int i = nbytes - 1; i >= 0; --i) {
    out->push_back(static_cast<char>((c >> (8 * i)) & 0xFF));
  }
}

}  // namespace

void EncodeOrdered(const Pbn& pbn, std::string* out) {
  for (uint32_t c : pbn.components()) EncodeOrderedComponent(c, out);
  out->push_back('\0');
}

Result<Pbn> DecodeOrdered(std::string_view* in) {
  std::vector<uint32_t> components;
  for (;;) {
    if (in->empty()) {
      return Status::InvalidArgument("pbn codec: truncated ordered encoding");
    }
    uint8_t len = static_cast<uint8_t>((*in)[0]);
    in->remove_prefix(1);
    if (len == 0) break;
    if (len > 4 || in->size() < len) {
      return Status::InvalidArgument("pbn codec: corrupt ordered encoding");
    }
    uint32_t c = 0;
    for (int i = 0; i < len; ++i) {
      c = (c << 8) | static_cast<uint8_t>((*in)[i]);
    }
    in->remove_prefix(len);
    if (c == 0) return Status::InvalidArgument("pbn codec: zero component");
    components.push_back(c);
  }
  return Pbn(std::move(components));
}

}  // namespace vpbn::num
