/// \file packed.h
/// \brief Columnar, order-preserving PBN storage: one contiguous byte arena
/// of EncodeOrdered numbers plus offset/length columns.
///
/// The per-node `Pbn` (a heap-allocated `std::vector<uint32_t>`) is the
/// right API object but the wrong storage substrate: every axis decision in
/// the stack-tree joins and type-index scans chases a pointer per node. The
/// ordered codec (pbn/codec.h) already gives a byte encoding whose plain
/// memcmp *is* document order, so a whole type-index list packs into one
/// arena and the hot paths become contiguous byte compares:
///
///   arena_   : |enc(p_0)|enc(p_1)|...|enc(p_{n-1})|      (bytes)
///   offsets_ : |0|off_1|...|off_n|                        (n + 1 entries)
///   lengths_ : |len(p_0)|...|len(p_{n-1})|                (component counts)
///   keys_    : |key(p_0)|...|key(p_{n-1})|                (8-byte sort keys)
///
/// A PackedPbnRef is a non-owning view of one encoded number; it decides
/// every axis without materializing a Pbn. The length column caches the
/// component count (a node's tree level), which the child/sibling axes need
/// and which would otherwise cost a scan of the encoding.
///
/// The key column holds each encoding's first eight bytes as a big-endian
/// machine word, zero-padded past the terminator. Zero is the terminator
/// byte, so key order equals byte-string order over the first eight bytes,
/// and — because every encoding shorter than nine bytes embeds its
/// terminator inside the key — equal keys force either full equality or
/// both encodings longer than eight bytes. Most axis decisions (XMark-style
/// documents encode at 7–11 bytes/node) therefore resolve in one register
/// compare with no arena access at all; only equal-key pairs fall through
/// to a tail memcmp from byte eight.

#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "pbn/axis.h"
#include "pbn/pbn.h"

namespace vpbn::num {

/// \brief Non-owning view of one ordered-encoded PBN inside an arena. The
/// bytes (terminator included) compare in document order with memcmp; all
/// predicates run in O(min encoded length) with no allocation. The backing
/// arena must outlive the ref.
class PackedPbnRef {
 public:
  PackedPbnRef() = default;
  PackedPbnRef(const char* data, uint32_t size, uint32_t length)
      : data_(data), size_(size), length_(length),
        key_(ComputeKey(data, size)) {}
  /// Arena fast path: \p key must equal ComputeKey(data, size). The list
  /// stores precomputed keys so operator[] never re-reads the arena.
  PackedPbnRef(const char* data, uint32_t size, uint32_t length, uint64_t key)
      : data_(data), size_(size), length_(length), key_(key) {}

  /// Big-endian first-eight-bytes sort key, zero-padded past the
  /// terminator. Never reads beyond \p size bytes.
  static uint64_t ComputeKey(const char* data, uint32_t size) {
    uint64_t w = 0;
    // size == 0 keeps data out of memcpy: an empty ref may carry nullptr.
    if (size != 0) std::memcpy(&w, data, size < 8 ? size : 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return w;
#else
    return __builtin_bswap64(w);
#endif
  }

  /// The encoded bytes, trailing 0x00 terminator included.
  std::string_view bytes() const { return {data_, size_}; }
  const char* data() const { return data_; }
  uint32_t size_bytes() const { return size_; }
  uint64_t key() const { return key_; }

  /// Number of components ("length of the number").
  uint32_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Document-order comparison (<0, 0, >0). Encoded strings are prefix-free
  /// at component boundaries, so byte order over the shorter length decides
  /// and equality-over-min implies the shorter is the lesser (its
  /// terminator 0x00 sorts before any component length byte). The sort keys
  /// decide most pairs in one register compare; equal keys with either side
  /// at most eight bytes imply full equality (the shorter side's terminator
  /// sits inside the key, and a zero inside the other key could only be its
  /// terminator too), so the tail memcmp runs only when both run long.
  int Compare(const PackedPbnRef& o) const {
    if (key_ != o.key_) return key_ < o.key_ ? -1 : 1;
    if (size_ <= 8 || o.size_ <= 8) return 0;
    uint32_t n = (size_ < o.size_ ? size_ : o.size_) - 8;
    int r = std::memcmp(data_ + 8, o.data_ + 8, n);
    if (r != 0) return r;
    if (size_ == o.size_) return 0;
    return size_ < o.size_ ? -1 : 1;
  }

  bool operator==(const PackedPbnRef& o) const {
    return size_ == o.size_ && key_ == o.key_ &&
           (size_ <= 8 || std::memcmp(data_ + 8, o.data_ + 8, size_ - 8) == 0);
  }

  std::strong_ordering operator<=>(const PackedPbnRef& o) const {
    int c = Compare(o);
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// True iff *this is a (non-strict) component prefix of \p o: the
  /// encoding without its terminator is a byte prefix of o's encoding
  /// (component encodings are self-delimiting, so a byte match is a
  /// component match). A prefix of at most eight bytes is decided entirely
  /// inside the sort keys with one masked compare.
  bool IsPrefixOf(const PackedPbnRef& o) const {
    return size_ <= o.size_ && PrefixBytesMatch(o);
  }

  bool IsStrictPrefixOf(const PackedPbnRef& o) const {
    return size_ < o.size_ && PrefixBytesMatch(o);
  }

  /// Length (in components) of the longest common prefix with \p o.
  size_t CommonPrefixLength(const PackedPbnRef& o) const;

  /// 1-based component access (O(i) scan — the columnar paths iterate
  /// instead; this exists for parity with Pbn::at1).
  uint32_t at1(size_t i) const;

  /// Decode all components into \p out (resized to length()).
  void DecodeTo(std::vector<uint32_t>* out) const;

  /// Materialize a heap Pbn (the compatibility path back into the vector
  /// world).
  Pbn Materialize() const;

  /// Byte size of the encoding of the first \p n components (no
  /// terminator) — the byte span a length-n prefix of this number occupies.
  uint32_t PrefixByteSize(size_t n) const;

  /// FNV-1a over the encoded bytes (terminator included); consistent with
  /// PbnHash over the equivalent Pbn.
  size_t Hash() const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t i = 0; i < size_; ++i) {
      h = (h ^ static_cast<uint8_t>(data_[i])) * 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }

  /// \brief Streaming component decoder.
  class ComponentIterator {
   public:
    explicit ComponentIterator(const PackedPbnRef& ref) : p_(ref.data_) {}
    /// True while another component is available.
    bool HasNext() const { return static_cast<uint8_t>(*p_) != 0; }
    /// Decode and consume the next component.
    uint32_t Next() {
      uint8_t nbytes = static_cast<uint8_t>(*p_++);
      uint32_t c = 0;
      for (uint8_t i = 0; i < nbytes; ++i) {
        c = (c << 8) | static_cast<uint8_t>(*p_++);
      }
      return c;
    }

   private:
    const char* p_;
  };

 private:
  /// Do the first size_ - 1 bytes (the encoding minus its terminator) match
  /// \p o? Callers have already established size_ <= o.size_, so the first
  /// size_ - 1 bytes of o's key are real encoded bytes, never key padding.
  bool PrefixBytesMatch(const PackedPbnRef& o) const {
    uint32_t k = size_ - 1;
    if (k <= 8) {
      uint64_t mask = k == 8 ? ~0ull : ~(~0ull >> (8 * k));
      return ((key_ ^ o.key_) & mask) == 0;
    }
    return key_ == o.key_ && std::memcmp(data_ + 8, o.data_ + 8, k - 8) == 0;
  }

  const char* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t length_ = 0;
  uint64_t key_ = 0;
};

/// \brief Hash functor over PackedPbnRef (for unordered containers keyed by
/// packed numbers; equal to PbnHash of the materialized number).
struct PackedPbnRefHash {
  size_t operator()(const PackedPbnRef& r) const { return r.Hash(); }
};

/// \name Packed axis predicates — mirror pbn/axis.h over refs.
/// @{
inline bool PackedIsSelf(const PackedPbnRef& x, const PackedPbnRef& y) {
  return x == y;
}
inline bool PackedIsChild(const PackedPbnRef& x, const PackedPbnRef& y) {
  return x.length() == y.length() + 1 && y.IsPrefixOf(x);
}
inline bool PackedIsParent(const PackedPbnRef& x, const PackedPbnRef& y) {
  return PackedIsChild(y, x);
}
inline bool PackedIsAncestor(const PackedPbnRef& x, const PackedPbnRef& y) {
  return x.IsStrictPrefixOf(y);
}
inline bool PackedIsDescendant(const PackedPbnRef& x, const PackedPbnRef& y) {
  return y.IsStrictPrefixOf(x);
}
inline bool PackedIsAncestorOrSelf(const PackedPbnRef& x,
                                   const PackedPbnRef& y) {
  return x.IsPrefixOf(y);
}
inline bool PackedIsDescendantOrSelf(const PackedPbnRef& x,
                                     const PackedPbnRef& y) {
  return y.IsPrefixOf(x);
}
inline bool PackedIsFollowing(const PackedPbnRef& x, const PackedPbnRef& y) {
  return x.Compare(y) > 0 && !PackedIsDescendant(x, y);
}
inline bool PackedIsPreceding(const PackedPbnRef& x, const PackedPbnRef& y) {
  return x.Compare(y) < 0 && !PackedIsAncestor(x, y);
}
bool PackedIsSibling(const PackedPbnRef& x, const PackedPbnRef& y);
bool PackedIsFollowingSibling(const PackedPbnRef& x, const PackedPbnRef& y);
bool PackedIsPrecedingSibling(const PackedPbnRef& x, const PackedPbnRef& y);

/// \brief Dispatch on \p axis: is x <axis> of y? Identical truth table to
/// num::CheckAxis over the materialized numbers (property-tested).
bool PackedCheckAxis(Axis axis, const PackedPbnRef& x, const PackedPbnRef& y);
/// @}

/// \brief A packed list of PBN numbers: the columnar arena plus offset and
/// length columns. Append-only while building; random access by index
/// afterwards. Lists built from a document-ordered source stay sorted and
/// feed the memcmp binary searches and packed structural joins directly.
class PackedPbnList {
 public:
  PackedPbnList() { offsets_.push_back(0); }

  size_t size() const { return lengths_.size(); }
  bool empty() const { return lengths_.empty(); }

  PackedPbnRef operator[](size_t i) const {
    return PackedPbnRef(arena_.data() + offsets_[i],
                        offsets_[i + 1] - offsets_[i], lengths_[i], keys_[i]);
  }

  /// Encode and append \p pbn.
  void Append(const Pbn& pbn);

  /// Append a copy of an already-encoded number (possibly from another
  /// arena).
  void Append(const PackedPbnRef& ref);

  /// Append the first \p n components of \p ref (its ancestor at depth n).
  void AppendPrefix(const PackedPbnRef& ref, size_t n);

  /// Append rows [first, last) of \p other in one arena memcpy plus three
  /// column copies — the bulk path behind partition-restricted list
  /// construction and segment stitching, where per-element Append would
  /// re-touch every byte. \p other must not alias this list.
  void AppendSlice(const PackedPbnList& other, size_t first, size_t last);

  /// Materialize element \p i as a heap Pbn.
  Pbn Materialize(size_t i) const { return (*this)[i].Materialize(); }

  /// Materialize the whole list.
  std::vector<Pbn> MaterializeAll() const;

  /// Build from a vector of Pbns (preserves order).
  static PackedPbnList FromPbns(const std::vector<Pbn>& pbns);

  /// Rebuild a list from a raw ordered-codec arena holding exactly \p count
  /// encoded numbers (the snapshot restore path). The offset, length and key
  /// columns are re-derived by walking the codec framing. InvalidArgument if
  /// the bytes are not exactly \p count well-formed encodings (length byte
  /// 1..4 per component, 0x00 terminator, no trailing bytes) or the numbers
  /// are not strictly increasing in document order — arbitrary (corrupt)
  /// input must never produce a list that violates the sortedness the
  /// binary-search paths rely on.
  static Result<PackedPbnList> FromArena(std::string arena, size_t count);

  /// Sort into document order and drop duplicates (rebuilds the arena).
  void SortUnique();

  /// Merge two document-ordered lists, dropping duplicates.
  static PackedPbnList MergeUnique(const PackedPbnList& a,
                                   const PackedPbnList& b);

  /// First index whose element compares >= \p key (binary search; the list
  /// must be sorted in document order).
  size_t LowerBound(const PackedPbnRef& key) const;

  /// Index range [first, last) of elements that \p scope is a prefix of
  /// (descendants-or-self of scope), by memcmp binary search on both ends.
  std::pair<size_t, size_t> PrefixRange(const PackedPbnRef& scope) const;

  /// Reserve room for \p nodes elements of ~\p bytes_per_node encoded
  /// bytes.
  void Reserve(size_t nodes, size_t bytes_per_node = 8);

  /// Heap bytes held by the arena and columns.
  size_t MemoryUsage() const {
    return arena_.capacity() + offsets_.capacity() * sizeof(uint32_t) +
           lengths_.capacity() * sizeof(uint32_t) +
           keys_.capacity() * sizeof(uint64_t);
  }

  /// Arena bytes actually used (the packed size of the numbers).
  size_t arena_bytes() const { return arena_.size(); }

  /// \name Raw column access.
  /// The join inner loops hoist these base pointers into locals so output
  /// writes (which the compiler must assume alias the list members) do not
  /// force a reload per iteration.
  /// @{
  const char* arena_data() const { return arena_.data(); }
  const uint32_t* offsets_data() const { return offsets_.data(); }
  const uint32_t* lengths_data() const { return lengths_.data(); }
  const uint64_t* keys_data() const { return keys_.data(); }
  /// @}

 private:
  /// DecodeBlock front-codes against bytes already in arena_, so it appends
  /// through the members directly (Append(ref) cannot alias its own arena
  /// across a reallocation).
  friend Status DecodeBlock(std::string_view payload, size_t entries,
                            PackedPbnList* out);
  friend Status DecodeBlockScalar(std::string_view payload, size_t entries,
                                  PackedPbnList* out);

  /// Record the element whose encoding now ends the arena (the last
  /// offsets_ entry must already be pushed).
  void FinishAppend(uint32_t num_components);

  std::string arena_;
  std::vector<uint32_t> offsets_;  // size() + 1 entries; offsets_[0] == 0
  std::vector<uint32_t> lengths_;  // component counts
  std::vector<uint64_t> keys_;     // PackedPbnRef::ComputeKey per element
};

/// \name Batched compare/decode kernels and the blocked arena codec.
///
/// The packed lists are consumed in *runs*: a structural-join advance walks
/// a contiguous span of ancestors, a merge scans a group of equal-prefix
/// rows, the E10 decision kernel probes a window. Over a run the 8-byte
/// sort-key column decides almost every element, so the kernels below work
/// key-column-first: SIMD (AVX2/AVX-512, resolved once at runtime, scalar
/// fallback) over the uncompressed keys, with the arena touched only on
/// equal-key lanes — the scalar tie-break path, which XMark-style data hits
/// on well under 1% of decisions.
///
/// Sorted lists carry their per-block min/max sort keys implicitly: with a
/// fixed block size of kPbnBlockEntries, block b's minimum is keys[b*B] and
/// its maximum keys[min((b+1)*B, n) - 1], so block skipping needs no side
/// structure and never goes stale on append. The on-disk blocked codec
/// (EncodeBlocked) stores the same min/max explicitly per block and
/// front-codes the arena bytes; DecodeBlock amortizes the ordered-codec
/// decode over a whole block.
/// @{

/// Entries per block, shared by the in-memory skip stride and the on-disk
/// blocked codec. 256 entries of XMark-typical 8-16 byte encodings come to
/// roughly 2-4 KiB of arena per block.
inline constexpr size_t kPbnBlockEntries = 256;

/// \brief Result of CompareKeysBatch: how many run elements compare less
/// than the probe in document order, and how many are strict prefixes
/// (ancestors) of it.
struct BatchCounts {
  uint64_t less = 0;
  uint64_t prefix = 0;
};

/// \brief Batched decision kernel over the run [lo, lo+n) of a packed
/// list's columns: counts document-order-less and strict-prefix outcomes
/// against \p probe. Exactly the decisions PackedPbnRef::Compare and
/// IsStrictPrefixOf make, property-tested byte-identical; SIMD over the key
/// column with scalar tie-break only on equal keys.
BatchCounts CompareKeysBatch(const uint64_t* keys, const uint32_t* offsets,
                             const char* arena, size_t lo, size_t n,
                             const PackedPbnRef& probe);

/// \brief The instruction set the batched kernels resolved to at startup:
/// "avx512", "avx2" or "scalar".
const char* BatchKernelIsa();

/// \brief Smallest sort key any strict prefix (ancestor) of \p probe can
/// have: the key of its one-component prefix, which is probe's key masked
/// to the byte span of its first component. Every longer prefix keeps more
/// of probe's own bytes, so its key is >= this bound; every element with a
/// smaller key is neither an ancestor of probe nor >= probe.
inline uint64_t MinStrictPrefixKeyBound(const PackedPbnRef& probe) {
  if (probe.size_bytes() < 2) return 0;
  uint32_t pb = 1u + static_cast<uint8_t>(probe.data()[0]);
  if (pb >= 8) return probe.key();
  return probe.key() & ~(~0ull >> (8 * pb));
}

/// \brief Advance \p i over whole kPbnBlockEntries-blocks of the sorted key
/// column whose maximum key (the block's last key) is below \p bound.
/// Returns the first index not skipped; *skips (when non-null) counts the
/// blocks jumped. Only block-tail keys are read — skipped blocks cost one
/// key load each.
inline size_t SkipBlocksBelow(const uint64_t* keys, size_t i, size_t hi,
                              uint64_t bound, uint64_t* skips) {
  uint64_t n = 0;
  while (hi - i >= kPbnBlockEntries &&
         keys[i + kPbnBlockEntries - 1] < bound) {
    i += kPbnBlockEntries;
    ++n;
  }
  if (skips != nullptr) *skips += n;
  return i;
}

/// \brief Encode \p list (which must be sorted in document order) into the
/// blocked on-disk form: a delta-varint block offset table, per-block
/// min/max sort keys, and per-block front-coded entry payloads (first entry
/// raw, then lcp + suffix per entry).
std::string EncodeBlocked(const PackedPbnList& list);

/// \brief Decode one block payload of \p entries front-coded entries,
/// appending to \p out. Validates framing byte-for-byte (component length
/// bytes 1..4, terminator, lcp bounds) and strict document order against
/// the previously appended entry, so corrupt payloads fail with
/// InvalidArgument and never produce an out-of-order list.
///
/// Batched: headers are parsed in one pass, the arena is assembled with a
/// single resize and straight memcpys, and the document-order check runs
/// over the key column with the SIMD kernel (DecodeKernelIsa), touching the
/// arena only on equal-key pairs. Byte-identical to DecodeBlockScalar
/// (tests/packed_pbn_test.cc enforces this on random and corrupt inputs).
Status DecodeBlock(std::string_view payload, size_t entries,
                   PackedPbnList* out);

/// \brief The reference one-entry-at-a-time decoder DecodeBlock is checked
/// against. Same contract, same validation.
Status DecodeBlockScalar(std::string_view payload, size_t entries,
                         PackedPbnList* out);

/// \brief The instruction set DecodeBlock's order-check kernel resolved to
/// at startup: "avx512", "avx2" or "scalar".
const char* DecodeKernelIsa();

/// \brief Decode a full EncodeBlocked blob holding exactly \p count
/// entries. Validates the offset table, the per-block min/max keys and
/// every entry; arbitrary corrupt input returns InvalidArgument.
Result<PackedPbnList> DecodeBlocked(std::string_view blob, size_t count);
/// @}

/// \brief A batch-decoded PBN column: every number of a list expanded once
/// into one flat uint32 value column plus a start-offset column.
///
/// The ordered-codec arena is the right resident format, but a merge join
/// that revisits the same prefix components for every group comparison
/// should not re-run the byte decoder per visit. Decoding a whole
/// PackedPbnList into this layout costs one linear pass; afterwards the
/// join inner loops are plain aligned uint32 compares over contiguous
/// memory (SIMD-friendly, branch-free per lane), and component i of element
/// n is O(1) instead of an O(i) byte scan.
///
///   values_ : |c(p_0,1)..c(p_0,l_0)|c(p_1,1)..|...                (uint32)
///   starts_ : |0|l_0|l_0+l_1|...|total|          (size() + 1 entries)
class DecodedPbnColumn {
 public:
  size_t size() const { return starts_.empty() ? 0 : starts_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Component span of element \p i (length(i) entries).
  const uint32_t* comps(size_t i) const { return values_.data() + starts_[i]; }
  uint32_t length(size_t i) const { return starts_[i + 1] - starts_[i]; }

  /// Decode every element of \p list (one pass over the arena). Replaces
  /// the current contents.
  void FromList(const PackedPbnList& list);

  /// Append one already-decoded number (the non-arena entry point, e.g. a
  /// query context node whose Pbn is materialized anyway).
  void Append(const uint32_t* comps, uint32_t len) {
    values_.insert(values_.end(), comps, comps + len);
    starts_.push_back(static_cast<uint32_t>(values_.size()));
  }

  void Clear() {
    values_.clear();
    starts_.assign(1, 0);
  }

  void Reserve(size_t elements, size_t comps_per_element) {
    starts_.reserve(elements + 1);
    values_.reserve(elements * comps_per_element);
  }

  size_t MemoryUsage() const {
    return values_.capacity() * sizeof(uint32_t) +
           starts_.capacity() * sizeof(uint32_t);
  }

  DecodedPbnColumn() { starts_.push_back(0); }

 private:
  std::vector<uint32_t> values_;
  std::vector<uint32_t> starts_;
};

}  // namespace vpbn::num
