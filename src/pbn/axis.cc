#include "pbn/axis.h"

namespace vpbn::num {

const char* AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "unknown";
}

Result<Axis> AxisFromString(std::string_view name) {
  if (name == "self") return Axis::kSelf;
  if (name == "child") return Axis::kChild;
  if (name == "parent") return Axis::kParent;
  if (name == "ancestor") return Axis::kAncestor;
  if (name == "descendant") return Axis::kDescendant;
  if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
  if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
  if (name == "following") return Axis::kFollowing;
  if (name == "preceding") return Axis::kPreceding;
  if (name == "following-sibling") return Axis::kFollowingSibling;
  if (name == "preceding-sibling") return Axis::kPrecedingSibling;
  if (name == "attribute") return Axis::kAttribute;
  return Status::ParseError("unknown axis '" + std::string(name) + "'");
}

bool IsDownwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kAttribute:
      return true;
    default:
      return false;
  }
}

bool CheckAxis(Axis axis, const Pbn& x, const Pbn& y) {
  switch (axis) {
    case Axis::kSelf:
      return IsSelf(x, y);
    case Axis::kChild:
      return IsChild(x, y);
    case Axis::kParent:
      return IsParent(x, y);
    case Axis::kAncestor:
      return IsAncestor(x, y);
    case Axis::kDescendant:
      return IsDescendant(x, y);
    case Axis::kAncestorOrSelf:
      return IsAncestorOrSelf(x, y);
    case Axis::kDescendantOrSelf:
      return IsDescendantOrSelf(x, y);
    case Axis::kFollowing:
      return IsFollowing(x, y);
    case Axis::kPreceding:
      return IsPreceding(x, y);
    case Axis::kFollowingSibling:
      return IsFollowingSibling(x, y);
    case Axis::kPrecedingSibling:
      return IsPrecedingSibling(x, y);
    case Axis::kAttribute:
      return false;
  }
  return false;
}

}  // namespace vpbn::num
