/// \file codec.h
/// \brief Binary codecs for PBN numbers.
///
/// The paper (§4.2) notes that PBN numbers can be "packed into as few bits
/// as possible". Two encodings are provided:
///
///  * Compact: a varint component count followed by varint components.
///    Smallest; decoding is required before comparison.
///  * Ordered: each component is encoded in a prefix-free, byte-wise
///    order-preserving form, so encoded strings compare in *document order*
///    with plain memcmp — the property index structures need.

#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "pbn/pbn.h"

namespace vpbn::num {

/// \brief Append the compact encoding of \p pbn to \p out.
void EncodeCompact(const Pbn& pbn, std::string* out);

/// \brief Decode a compact-encoded Pbn from the front of \p in, advancing it.
Result<Pbn> DecodeCompact(std::string_view* in);

/// \brief Size in bytes of the compact encoding.
size_t CompactEncodedSize(const Pbn& pbn);

/// \brief Append the order-preserving encoding of \p pbn to \p out.
///
/// Each component c is emitted as one length byte (number of continuation
/// bytes, which sorts shorter-before-longer for smaller values) followed by
/// big-endian payload bytes; the sequence is terminated by a 0x00 byte that
/// orders prefixes (ancestors) before extensions (descendants).
void EncodeOrdered(const Pbn& pbn, std::string* out);

/// \brief Decode an order-preserving encoded Pbn from the front of \p in.
Result<Pbn> DecodeOrdered(std::string_view* in);

}  // namespace vpbn::num
