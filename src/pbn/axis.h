/// \file axis.h
/// \brief XPath axes and their decision procedures on raw PBN numbers (§4.2).
///
/// Every predicate answers "is x <axis> of y?" purely from the two numbers,
/// e.g. IsChild(x, y) is true iff the node numbered x is a child of the node
/// numbered y. These are the *physical* relationships; the virtual
/// counterparts live in vpbn/vaxis.h.

#pragma once

#include <string_view>

#include "common/result.h"
#include "pbn/pbn.h"

namespace vpbn::num {

/// \brief The location axes supported by the query layers.
enum class Axis : uint8_t {
  kSelf = 0,
  kChild,
  kParent,
  kAncestor,
  kDescendant,
  kAncestorOrSelf,
  kDescendantOrSelf,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
  kAttribute,
};

/// \brief Stable lowercase name ("following-sibling" etc.).
const char* AxisToString(Axis axis);

/// \brief Parse an axis name; accepts the XPath spellings.
Result<Axis> AxisFromString(std::string_view name);

/// \brief True for child/descendant/descendant-or-self/self/attribute: axes
/// whose result nodes lie within the subtree of the context node.
bool IsDownwardAxis(Axis axis);

/// x is the same node as y.
inline bool IsSelf(const Pbn& x, const Pbn& y) { return x == y; }

/// x is a child of y.
inline bool IsChild(const Pbn& x, const Pbn& y) {
  return x.length() == y.length() + 1 && y.IsPrefixOf(x);
}

/// x is the parent of y.
inline bool IsParent(const Pbn& x, const Pbn& y) { return IsChild(y, x); }

/// x is a proper ancestor of y.
inline bool IsAncestor(const Pbn& x, const Pbn& y) {
  return x.IsStrictPrefixOf(y);
}

/// x is a proper descendant of y.
inline bool IsDescendant(const Pbn& x, const Pbn& y) {
  return y.IsStrictPrefixOf(x);
}

inline bool IsAncestorOrSelf(const Pbn& x, const Pbn& y) {
  return x.IsPrefixOf(y);
}

inline bool IsDescendantOrSelf(const Pbn& x, const Pbn& y) {
  return y.IsPrefixOf(x);
}

/// x is after y in document order and not a descendant of y (XPath
/// "following").
inline bool IsFollowing(const Pbn& x, const Pbn& y) {
  return x > y && !IsDescendant(x, y);
}

/// x is before y in document order and not an ancestor of y (XPath
/// "preceding").
inline bool IsPreceding(const Pbn& x, const Pbn& y) {
  return x < y && !IsAncestor(x, y);
}

/// x and y share a parent (the empty prefix is the shared "parent" of
/// roots, matching the forest model).
inline bool IsSibling(const Pbn& x, const Pbn& y) {
  return x.length() == y.length() && !x.empty() &&
         x.CommonPrefixLength(y) >= x.length() - 1;
}

inline bool IsFollowingSibling(const Pbn& x, const Pbn& y) {
  return IsSibling(x, y) && x.at1(x.length()) > y.at1(y.length());
}

inline bool IsPrecedingSibling(const Pbn& x, const Pbn& y) {
  return IsSibling(x, y) && x.at1(x.length()) < y.at1(y.length());
}

/// \brief Dispatch on \p axis: is x <axis> of y? (kAttribute always false —
/// attributes are not numbered nodes.)
bool CheckAxis(Axis axis, const Pbn& x, const Pbn& y);

}  // namespace vpbn::num
