#include "pbn/dynamic.h"

#include <algorithm>
#include <cassert>

namespace vpbn::num {

void DynamicNumbering::NumberAll(const xml::Document& doc) {
  numbers_.clear();
  struct Frame {
    xml::NodeId node;
    uint32_t ordinal;
    Pbn prefix;
  };
  std::vector<Frame> stack;
  const auto& roots = doc.roots();
  for (size_t i = roots.size(); i > 0; --i) {
    stack.push_back({roots[i - 1], static_cast<uint32_t>(i) * gap_, Pbn()});
  }
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    Pbn number = f.prefix.Child(f.ordinal);
    std::vector<xml::NodeId> kids = doc.Children(f.node);
    for (size_t i = kids.size(); i > 0; --i) {
      stack.push_back(
          {kids[i - 1], static_cast<uint32_t>(i) * gap_, number});
    }
    numbers_.emplace(f.node, std::move(number));
  }
}

void DynamicNumbering::OnAppend(const xml::Document& doc, xml::NodeId node) {
  ++stats_.appends;
  xml::NodeId parent = doc.parent(node);
  Pbn prefix =
      parent == xml::kNullNode ? Pbn() : numbers_.at(parent);
  // Last logical ordinal among the node's numbered siblings.
  uint32_t max_ordinal = 0;
  if (parent == xml::kNullNode) {
    for (xml::NodeId r : doc.roots()) {
      if (r != node && Contains(r)) {
        max_ordinal = std::max(max_ordinal, OrdinalOf(r));
      }
    }
  } else {
    for (xml::NodeId s : xml::ChildRange(doc, parent)) {
      if (s != node && Contains(s)) {
        max_ordinal = std::max(max_ordinal, OrdinalOf(s));
      }
    }
  }
  // Saturate rather than overflow on pathological gap settings.
  uint32_t ordinal = max_ordinal > UINT32_MAX - gap_ ? UINT32_MAX
                                                     : max_ordinal + gap_;
  numbers_[node] = prefix.Child(ordinal);
}

void DynamicNumbering::OnInsertBefore(const xml::Document& doc,
                                      xml::NodeId node, xml::NodeId next) {
  ++stats_.inserts;
  assert(doc.parent(node) == doc.parent(next) &&
         "insert-before requires siblings");
  xml::NodeId parent = doc.parent(node);
  Pbn prefix = parent == xml::kNullNode ? Pbn() : numbers_.at(parent);
  uint32_t next_ordinal = OrdinalOf(next);

  // Find the logical predecessor's ordinal: the largest ordinal strictly
  // below next's among the numbered siblings.
  uint32_t prev_ordinal = 0;
  auto visit = [&](xml::NodeId s) {
    if (s == node || !Contains(s)) return;
    uint32_t o = OrdinalOf(s);
    if (o < next_ordinal) prev_ordinal = std::max(prev_ordinal, o);
  };
  if (parent == xml::kNullNode) {
    for (xml::NodeId r : doc.roots()) visit(r);
  } else {
    for (xml::NodeId s : xml::ChildRange(doc, parent)) visit(s);
  }

  if (next_ordinal - prev_ordinal > 1) {
    // A free ordinal exists: take the midpoint, renumber nothing.
    uint32_t mid = prev_ordinal + (next_ordinal - prev_ordinal) / 2;
    numbers_[node] = prefix.Child(mid);
    return;
  }

  // Gap exhausted: locally renumber the siblings (and their subtrees) in
  // logical order with `node` placed before `next`.
  ++stats_.renumber_events;
  std::vector<std::pair<uint32_t, xml::NodeId>> siblings;
  auto collect = [&](xml::NodeId s) {
    if (s != node && Contains(s)) siblings.emplace_back(OrdinalOf(s), s);
  };
  if (parent == xml::kNullNode) {
    for (xml::NodeId r : doc.roots()) collect(r);
  } else {
    for (xml::NodeId s : xml::ChildRange(doc, parent)) collect(s);
  }
  std::sort(siblings.begin(), siblings.end());
  uint32_t ordinal = gap_;
  for (const auto& [old_ordinal, sibling] : siblings) {
    if (sibling == next) {
      numbers_[node] = prefix.Child(ordinal);
      ordinal += gap_;
    }
    Renumber(doc, sibling, prefix, ordinal);
    ordinal += gap_;
  }
}

void DynamicNumbering::Renumber(const xml::Document& doc, xml::NodeId node,
                                const Pbn& prefix, uint32_t ordinal) {
  Pbn number = prefix.Child(ordinal);
  ++stats_.renumbered_nodes;
  for (xml::NodeId c : xml::ChildRange(doc, node)) {
    if (!Contains(c)) continue;
    Renumber(doc, c, number, OrdinalOf(c));
  }
  numbers_[node] = std::move(number);
}

}  // namespace vpbn::num
