/// \file dynamic.h
/// \brief Update-friendly PBN maintenance (the paper's §3 context).
///
/// The paper contrasts vPBN with *update renumbering*: "Update renumbering
/// physically changes the PBN number for every node in an edit" and cites
/// gap-based / dynamic-level strategies [12,18,25,30]. This module supplies
/// that infrastructure so the repository is a complete PBN system:
///
///   * DynamicNumbering assigns ordinals with configurable gaps
///     (10, 20, 30, ...), so an insertion between siblings usually finds a
///     free ordinal and renumbers nothing.
///   * When a gap is exhausted, the subtree's siblings are locally
///     renumbered (counted by stats(), so the amortized cost is visible —
///     the ablation benchmark A1 measures it).
///
/// All axis predicates in pbn/axis.h work unchanged on gapped numbers:
/// only relative order of ordinals matters, never density.

#pragma once

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "pbn/pbn.h"
#include "xml/document.h"

namespace vpbn::num {

/// \brief Maintains PBN numbers for a growing document.
class DynamicNumbering {
 public:
  /// \p gap is the ordinal stride for fresh siblings; 1 reproduces dense
  /// numbering (every mid-insert renumbers), larger gaps trade number width
  /// for fewer renumberings.
  explicit DynamicNumbering(uint32_t gap = 8) : gap_(gap == 0 ? 1 : gap) {}

  /// Numbers all current nodes of \p doc with gapped ordinals. Call once;
  /// afterwards keep the numbering in sync via the notification methods.
  void NumberAll(const xml::Document& doc);

  /// Notify that \p node was appended as the last child of its parent
  /// (or as a new root). Assigns it a number; never renumbers.
  void OnAppend(const xml::Document& doc, xml::NodeId node);

  /// Notify that \p node was logically inserted *before* sibling \p next
  /// (documents are append-only arenas, so the caller owns the logical
  /// sibling order; this class owns only the numbers). Renumbers the
  /// following siblings' subtrees only when the gap is exhausted.
  void OnInsertBefore(const xml::Document& doc, xml::NodeId node,
                      xml::NodeId next);

  /// The number of \p node.
  const Pbn& OfNode(xml::NodeId node) const { return numbers_.at(node); }

  bool Contains(xml::NodeId node) const {
    return numbers_.find(node) != numbers_.end();
  }

  size_t size() const { return numbers_.size(); }

  /// \brief Maintenance counters.
  struct Stats {
    uint64_t appends = 0;
    uint64_t inserts = 0;
    /// Nodes whose number changed due to gap exhaustion.
    uint64_t renumbered_nodes = 0;
    /// Local renumbering events.
    uint64_t renumber_events = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Renumber node's subtree to extend prefix with the given ordinal.
  void Renumber(const xml::Document& doc, xml::NodeId node,
                const Pbn& prefix, uint32_t ordinal);

  /// Logical previous sibling ordinal of `node`'s predecessor (0 if first).
  uint32_t OrdinalOf(xml::NodeId node) const {
    const Pbn& p = numbers_.at(node);
    return p.at1(p.length());
  }

  uint32_t gap_;
  std::unordered_map<xml::NodeId, Pbn> numbers_;
  Stats stats_;
};

}  // namespace vpbn::num
