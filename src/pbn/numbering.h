/// \file numbering.h
/// \brief Assigning PBN numbers to every node of a Document.
///
/// A Numbering is the bidirectional map NodeId <-> Pbn for one document.
/// Renumbering a document after a physical transformation — the expensive
/// operation the paper's virtual approach avoids (§4.3) — is just building a
/// fresh Numbering, so the baseline cost in the benchmarks is exactly this
/// class's constructor.

#pragma once

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "pbn/pbn.h"
#include "xml/document.h"

namespace vpbn::num {

/// \brief PBN numbers for all nodes of one document.
class Numbering {
 public:
  /// Number every node of \p doc: roots are 1, 2, ...; each child extends
  /// its parent's number with its 1-based sibling ordinal.
  static Numbering Number(const xml::Document& doc);

  /// Rebuild a Numbering from an already-computed NodeId -> Pbn column (the
  /// snapshot restore path; the reverse index is re-derived). Duplicate
  /// numbers collapse in the reverse index — callers that need to reject
  /// them compare reverse_index_size() against size().
  static Numbering FromNumbers(std::vector<Pbn> numbers);

  /// The number of node \p id.
  const Pbn& OfNode(xml::NodeId id) const { return numbers_[id]; }

  /// The node with number \p pbn, or NotFound.
  Result<xml::NodeId> NodeOf(const Pbn& pbn) const;

  /// True iff \p pbn numbers some node of the document.
  bool Contains(const Pbn& pbn) const {
    return by_pbn_.find(pbn) != by_pbn_.end();
  }

  size_t size() const { return numbers_.size(); }

  /// Entries in the reverse (Pbn -> NodeId) index; equals size() exactly
  /// when every number is distinct.
  size_t reverse_index_size() const { return by_pbn_.size(); }

  /// All numbers, indexed by NodeId.
  const std::vector<Pbn>& numbers() const { return numbers_; }

  /// Total heap bytes held by the numbers (E5 space accounting; excludes
  /// the reverse index, which is an optional structure).
  size_t NumbersMemoryUsage() const;

 private:
  std::vector<Pbn> numbers_;
  std::unordered_map<Pbn, xml::NodeId, PbnHash> by_pbn_;
};

}  // namespace vpbn::num
