#include "server/catalog.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/str_util.h"
#include "storage/snapshot.h"
#include "xml/parser.h"

namespace vpbn::server {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<std::shared_ptr<const query::QueryEngine>> CatalogEntry::EngineFor(
    const std::string& view_name) const {
  if (view_name.empty()) return engine;
  auto it = views.find(view_name);
  if (it == views.end()) {
    return Status::NotFound("document '" + name + "' has no view '" +
                            view_name + "'");
  }
  return it->second.engine;
}

Status Catalog::AddDocumentFile(const std::string& name,
                                const std::string& path) {
  DocumentSource source;
  source.kind = EndsWith(path, ".vpsn") ? DocumentSource::Kind::kSnapshotFile
                                        : DocumentSource::Kind::kXmlFile;
  source.value = path;
  VPBN_ASSIGN_OR_RETURN(std::shared_ptr<const CatalogEntry> entry,
                        BuildEntry(name, source, /*epoch=*/1, {}));
  std::lock_guard<std::mutex> lock(mu_);
  if (docs_.count(name) != 0) {
    return Status::InvalidArgument("document '" + name +
                                   "' already registered (use RELOAD)");
  }
  docs_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::AddDocumentXml(const std::string& name,
                               std::string xml_text) {
  DocumentSource source;
  source.kind = DocumentSource::Kind::kXmlText;
  source.value = std::move(xml_text);
  VPBN_ASSIGN_OR_RETURN(std::shared_ptr<const CatalogEntry> entry,
                        BuildEntry(name, source, /*epoch=*/1, {}));
  std::lock_guard<std::mutex> lock(mu_);
  if (docs_.count(name) != 0) {
    return Status::InvalidArgument("document '" + name +
                                   "' already registered (use RELOAD)");
  }
  docs_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::AddView(const std::string& doc_name,
                        const std::string& view_name,
                        const std::string& spec) {
  if (view_name.empty()) {
    return Status::InvalidArgument("view name must be non-empty");
  }
  std::shared_ptr<const CatalogEntry> current = Find(doc_name);
  if (current == nullptr) {
    return Status::NotFound("no document named '" + doc_name + "'");
  }
  // Open the view against the *current* stored document and republish the
  // entry with the view added. The stored document, its engine and the
  // existing views are shared with the old generation, not rebuilt.
  VPBN_ASSIGN_OR_RETURN(
      std::shared_ptr<const virt::VirtualDocument> vdoc,
      virt::VirtualDocument::OpenShared(current->stored, spec));
  auto view_engine = std::make_shared<query::QueryEngine>(vdoc);
  view_engine->SetDefaultOptions(default_options_);
  view_engine->SetEpoch(current->epoch);

  auto next = std::make_shared<CatalogEntry>(*current);
  CatalogView view;
  view.name = view_name;
  view.spec = spec;
  view.vdoc = std::move(vdoc);
  view.engine = std::move(view_engine);
  next->views[view_name] = std::move(view);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(doc_name);
  if (it == docs_.end() || it->second != current) {
    // The entry was reloaded (or dropped) while we built the view; the
    // caller should retry against the new generation.
    return Status::InvalidArgument("document '" + doc_name +
                                   "' changed while adding view '" +
                                   view_name + "'; retry");
  }
  it->second = std::move(next);
  return Status::OK();
}

Result<uint64_t> Catalog::Reload(const std::string& name) {
  std::shared_ptr<const CatalogEntry> current = Find(name);
  if (current == nullptr) {
    return Status::NotFound("no document named '" + name + "'");
  }
  std::map<std::string, std::string> view_specs;
  for (const auto& [vname, view] : current->views) {
    view_specs[vname] = view.spec;
  }
  const uint64_t next_epoch = current->epoch + 1;
  VPBN_ASSIGN_OR_RETURN(
      std::shared_ptr<const CatalogEntry> entry,
      BuildEntry(name, current->source, next_epoch, view_specs));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("document '" + name +
                            "' was dropped during reload");
  }
  if (it->second->epoch >= next_epoch) {
    // A concurrent reload won; its generation is at least as fresh.
    return it->second->epoch;
  }
  it->second = std::move(entry);
  return next_epoch;
}

Result<uint64_t> Catalog::ReplaceDocumentXml(const std::string& name,
                                             std::string xml_text) {
  std::shared_ptr<const CatalogEntry> current = Find(name);
  if (current == nullptr) {
    return Status::NotFound("no document named '" + name + "'");
  }
  if (current->source.kind != DocumentSource::Kind::kXmlText) {
    return Status::InvalidArgument("document '" + name +
                                   "' is not an in-memory XML document");
  }
  std::map<std::string, std::string> view_specs;
  for (const auto& [vname, view] : current->views) {
    view_specs[vname] = view.spec;
  }
  DocumentSource source;
  source.kind = DocumentSource::Kind::kXmlText;
  source.value = std::move(xml_text);
  const uint64_t next_epoch = current->epoch + 1;
  VPBN_ASSIGN_OR_RETURN(std::shared_ptr<const CatalogEntry> entry,
                        BuildEntry(name, source, next_epoch, view_specs));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("document '" + name +
                            "' was dropped during replace");
  }
  if (it->second->epoch >= next_epoch) {
    return it->second->epoch;
  }
  it->second = std::move(entry);
  return next_epoch;
}

std::shared_ptr<const CatalogEntry> Catalog::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const CatalogEntry>> Catalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const CatalogEntry>> out;
  out.reserve(docs_.size());
  for (const auto& [name, entry] : docs_) out.push_back(entry);
  return out;
}

size_t Catalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

Result<std::shared_ptr<const CatalogEntry>> Catalog::BuildEntry(
    const std::string& name, const DocumentSource& source, uint64_t epoch,
    const std::map<std::string, std::string>& view_specs) const {
  std::shared_ptr<const storage::StoredDocument> stored;
  switch (source.kind) {
    case DocumentSource::Kind::kSnapshotFile: {
      auto loaded =
          storage::Snapshot::LoadFile(source.value, nullptr, use_mmap_);
      if (!loaded.ok()) {
        return loaded.status().WithContext("loading snapshot for '" + name +
                                           "'");
      }
      stored = std::make_shared<const storage::StoredDocument>(
          std::move(*loaded));
      break;
    }
    case DocumentSource::Kind::kXmlFile:
    case DocumentSource::Kind::kXmlText: {
      std::string xml_text;
      if (source.kind == DocumentSource::Kind::kXmlFile) {
        VPBN_ASSIGN_OR_RETURN(xml_text, ReadFileBytes(source.value));
      } else {
        xml_text = source.value;
      }
      auto parsed = xml::Parse(xml_text);
      if (!parsed.ok()) {
        return parsed.status().WithContext("parsing document '" + name + "'");
      }
      stored = std::make_shared<const storage::StoredDocument>(
          storage::StoredDocument::Build(std::move(*parsed)));
      break;
    }
  }

  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = source;
  entry->epoch = epoch;
  entry->stored = stored;
  auto engine = std::make_shared<query::QueryEngine>(stored);
  engine->SetDefaultOptions(default_options_);
  engine->SetEpoch(epoch);
  // Value-index statistics (histograms, zone maps) are rebuilt with the
  // document, so the statistics generation tracks the document generation:
  // a reload invalidates every plan costed under the old histograms.
  engine->SetStatsEpoch(epoch);
  entry->engine = std::move(engine);

  for (const auto& [vname, spec] : view_specs) {
    auto vdoc = virt::VirtualDocument::OpenShared(stored, spec);
    if (!vdoc.ok()) {
      return vdoc.status().WithContext("opening view '" + vname + "' of '" +
                                       name + "'");
    }
    auto view_engine = std::make_shared<query::QueryEngine>(*vdoc);
    view_engine->SetDefaultOptions(default_options_);
    view_engine->SetEpoch(epoch);
    CatalogView view;
    view.name = vname;
    view.spec = spec;
    view.vdoc = std::move(*vdoc);
    view.engine = std::move(view_engine);
    entry->views[vname] = std::move(view);
  }
  return std::shared_ptr<const CatalogEntry>(std::move(entry));
}

}  // namespace vpbn::server
