#include "server/protocol.h"

#include <cstdlib>

#include "common/str_util.h"

namespace vpbn::server {

namespace {

bool IsSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Consume one whitespace-delimited token starting at \p pos; returns the
/// token and advances \p pos past it (and any leading whitespace).
std::string_view NextToken(std::string_view line, size_t* pos) {
  while (*pos < line.size() && IsSpace(line[*pos])) ++*pos;
  size_t start = *pos;
  while (*pos < line.size() && !IsSpace(line[*pos])) ++*pos;
  return line.substr(start, *pos - start);
}

Status ParseQueryOption(std::string_view token, query::ExecOverrides* out) {
  if (token == "--stats") {
    out->collect_stats = true;
    return Status::OK();
  }
  if (token == "--virtual-join") {
    out->virtual_join = true;
    return Status::OK();
  }
  if (token == "--no-virtual-join") {
    out->virtual_join = false;
    return Status::OK();
  }
  if (token == "--value-index") {
    out->use_value_index = true;
    return Status::OK();
  }
  if (token == "--no-value-index") {
    out->use_value_index = false;
    return Status::OK();
  }
  if (token == "--cost-model") {
    out->use_cost_model = true;
    return Status::OK();
  }
  if (token == "--no-cost-model") {
    out->use_cost_model = false;
    return Status::OK();
  }
  constexpr std::string_view kThreads = "--threads=";
  if (StartsWith(token, kThreads)) {
    std::string arg(token.substr(kThreads.size()));
    char* end = nullptr;
    long n = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || n < 0 || n > 4096) {
      return Status::ParseError("bad --threads value '" + arg + "'");
    }
    out->threads = static_cast<int>(n);
    return Status::OK();
  }
  constexpr std::string_view kPartitions = "--partitions=";
  if (StartsWith(token, kPartitions)) {
    std::string arg(token.substr(kPartitions.size()));
    char* end = nullptr;
    long n = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || n < 0 || n > 4096) {
      return Status::ParseError("bad --partitions value '" + arg + "'");
    }
    out->partitions = static_cast<int>(n);
    return Status::OK();
  }
  return Status::ParseError("unknown QUERY option '" + std::string(token) +
                            "'");
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  size_t pos = 0;
  std::string_view verb = NextToken(line, &pos);
  if (verb.empty()) {
    return Status::ParseError("empty request");
  }

  Request req;
  if (verb == "LIST") {
    req.verb = Request::Verb::kList;
    if (!NextToken(line, &pos).empty()) {
      return Status::ParseError("LIST takes no arguments");
    }
    return req;
  }
  if (verb == "STATS") {
    req.verb = Request::Verb::kStats;
    if (!NextToken(line, &pos).empty()) {
      return Status::ParseError("STATS takes no arguments");
    }
    return req;
  }
  if (verb == "SHUTDOWN") {
    req.verb = Request::Verb::kShutdown;
    if (!NextToken(line, &pos).empty()) {
      return Status::ParseError("SHUTDOWN takes no arguments");
    }
    return req;
  }
  if (verb == "RELOAD") {
    req.verb = Request::Verb::kReload;
    std::string_view doc = NextToken(line, &pos);
    if (doc.empty()) {
      return Status::ParseError("RELOAD needs a document name");
    }
    if (!NextToken(line, &pos).empty()) {
      return Status::ParseError("RELOAD takes exactly one argument");
    }
    req.doc = std::string(doc);
    return req;
  }
  if (verb == "QUERY") {
    req.verb = Request::Verb::kQuery;
    std::string_view target = NextToken(line, &pos);
    if (target.empty()) {
      return Status::ParseError("QUERY needs a target and a path");
    }
    // <doc> or <doc>/<view>. Document names cannot contain '/', so the
    // first slash splits (a view name may not contain '/' either).
    size_t slash = target.find('/');
    if (slash != std::string_view::npos) {
      req.doc = std::string(target.substr(0, slash));
      req.view = std::string(target.substr(slash + 1));
      if (req.doc.empty() || req.view.empty() ||
          req.view.find('/') != std::string::npos) {
        return Status::ParseError("bad QUERY target '" + std::string(target) +
                                  "' (want doc or doc/view)");
      }
    } else {
      req.doc = std::string(target);
    }
    // Option tokens until the first token that does not start with "--";
    // that token begins the path, which runs to the end of the line.
    while (true) {
      size_t before = pos;
      std::string_view token = NextToken(line, &pos);
      if (token.empty()) {
        return Status::ParseError("QUERY needs a path");
      }
      if (StartsWith(token, "--")) {
        VPBN_RETURN_NOT_OK(ParseQueryOption(token, &req.overrides));
        continue;
      }
      // Rewind to the token start: the path keeps its internal spacing.
      size_t path_start = before;
      while (path_start < line.size() && IsSpace(line[path_start])) {
        ++path_start;
      }
      std::string_view path = line.substr(path_start);
      while (!path.empty() && IsSpace(path.back())) path.remove_suffix(1);
      req.path = std::string(path);
      return req;
    }
  }
  return Status::ParseError("unknown verb '" + std::string(verb) + "'");
}

std::string ErrorResponse(const Status& status) {
  const query::ErrorCode code = query::ErrorCodeFromStatus(status);
  std::string out = "{\"code\":";
  out += std::to_string(static_cast<int>(code));
  out += ",\"error\":\"";
  out += query::ErrorCodeToString(code);
  out += "\",\"message\":\"";
  out += JsonEscape(status.message());
  out += "\"}";
  return out;
}

std::string JsonField(std::string_view key, std::string_view value) {
  std::string out = "\"";
  out += JsonEscape(key);
  out += "\":\"";
  out += JsonEscape(value);
  out += "\"";
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += JsonEscape(values[i]);
    out += '"';
  }
  out += ']';
  return out;
}

}  // namespace vpbn::server
