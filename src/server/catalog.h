/// \file catalog.h
/// \brief The vpbnd document catalog: named documents and named virtual
/// views, hot-reloadable under an epoch counter.
///
/// Every entry is an immutable bundle — the stored document, one prepared
/// QueryEngine over it, and one (VirtualDocument, QueryEngine) pair per
/// named view — published behind a `shared_ptr<const CatalogEntry>`. A
/// lookup hands out that shared_ptr; a reload *replaces* the pointer with a
/// freshly built bundle at epoch+1 and never mutates the old one, so
/// queries in flight against the old epoch finish correctly on the old
/// instance while new queries observe the new epoch (the paper's
/// virtual-hierarchies-as-cheap-views argument, applied to the document
/// lifecycle itself).
///
/// Epochs start at 1 on first load and increment on every reload. Each
/// entry's engines carry the entry's epoch (QueryEngine::SetEpoch), which
/// stamps every prepared plan — a plan prepared against a replaced document
/// cannot execute against the new one — and keys the server's result cache,
/// so a reload invalidates cached results for free.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/engine.h"
#include "storage/stored_document.h"
#include "vpbn/virtual_document.h"

namespace vpbn::server {

/// \brief Where a document's bytes come from on (re)load.
struct DocumentSource {
  enum class Kind {
    kXmlFile,       ///< parse + build from an XML file
    kSnapshotFile,  ///< storage::Snapshot load (PR 5 "VPSN")
    kXmlText,       ///< parse + build from in-memory XML (tests, benches)
  };
  Kind kind = Kind::kXmlFile;
  std::string value;  ///< file path, or the XML text itself for kXmlText
};

/// \brief One named virtual view of a catalog document.
struct CatalogView {
  std::string name;
  std::string spec;  ///< vDataGuide spec text
  std::shared_ptr<const virt::VirtualDocument> vdoc;
  std::shared_ptr<const query::QueryEngine> engine;
};

/// \brief One immutable generation of a named document. Never mutated after
/// publication; a reload builds a replacement at epoch+1.
struct CatalogEntry {
  std::string name;
  DocumentSource source;
  uint64_t epoch = 0;
  std::shared_ptr<const storage::StoredDocument> stored;
  std::shared_ptr<const query::QueryEngine> engine;  ///< over `stored`
  std::map<std::string, CatalogView> views;          ///< by view name

  /// The engine serving (this document, \p view_name): the view's engine,
  /// or the stored-document engine for an empty view name. NotFound for an
  /// unknown view.
  Result<std::shared_ptr<const query::QueryEngine>> EngineFor(
      const std::string& view_name) const;
};

/// \brief Thread-safe registry of named documents. Loads run outside the
/// registry lock, so a slow reload never blocks lookups.
class Catalog {
 public:
  /// \p default_options seeds every engine's SetDefaultOptions (the server
  /// passes its per-query thread budget and knobs here). \p use_mmap
  /// selects how `.vpsn` sources load: memory-mapped (the default — v2
  /// snapshots then serve straight from the page cache) or copied.
  explicit Catalog(query::ExecOptions default_options = {},
                   bool use_mmap = true)
      : default_options_(default_options), use_mmap_(use_mmap) {}

  /// \name Registration
  /// Adding a name that already exists is InvalidArgument (use Reload).
  /// @{

  /// Load from a file. Paths ending in ".vpsn" load as snapshots; anything
  /// else parses as XML.
  Status AddDocumentFile(const std::string& name, const std::string& path);

  /// Build from in-memory XML text.
  Status AddDocumentXml(const std::string& name, std::string xml_text);

  /// Attach a named virtual view to an existing document. Republishes the
  /// entry (same epoch — the document bytes did not change).
  Status AddView(const std::string& doc_name, const std::string& view_name,
                 const std::string& spec);
  /// @}

  /// \name Lifecycle
  /// @{

  /// Rebuild \p name from its source at epoch+1, re-opening every view.
  /// Returns the new epoch.
  Result<uint64_t> Reload(const std::string& name);

  /// Swap an in-memory document's XML text and reload — the reload path
  /// tests and benches drive without touching the filesystem.
  Result<uint64_t> ReplaceDocumentXml(const std::string& name,
                                      std::string xml_text);
  /// @}

  /// Current entry for \p name, or nullptr. The caller's shared_ptr keeps
  /// the whole generation (document, views, engines) alive across reloads.
  std::shared_ptr<const CatalogEntry> Find(const std::string& name) const;

  /// All current entries, ordered by name.
  std::vector<std::shared_ptr<const CatalogEntry>> List() const;

  size_t size() const;

 private:
  /// Load + index + open views; runs without holding mu_.
  Result<std::shared_ptr<const CatalogEntry>> BuildEntry(
      const std::string& name, const DocumentSource& source, uint64_t epoch,
      const std::map<std::string, std::string>& view_specs) const;

  const query::ExecOptions default_options_;
  const bool use_mmap_ = true;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const CatalogEntry>> docs_;
};

}  // namespace vpbn::server
