/// \file rate_limiter.h
/// \brief Admission control for vpbnd: a bounded in-flight gate and a
/// token-bucket rate limiter.
///
/// Both shed instead of queueing: an over-limit request gets an immediate
/// ResourceExhausted (wire code `overload`, ErrorCode::kOverload) and the
/// client decides whether to retry — unbounded queues only convert overload
/// into latency collapse. Counters record every shed so the STATS endpoint
/// can report shed rates.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace vpbn::server {

/// \brief Classic token bucket. `rate` tokens/second refill, up to `burst`
/// capacity; each admitted request consumes one token. rate <= 0 disables
/// limiting (always admits).
class TokenBucket {
 public:
  /// \p burst <= 0 defaults to max(rate, 1).
  TokenBucket(double rate_per_sec, double burst);

  /// Admit or shed, refilling from the monotonic clock.
  bool TryAcquire();

  /// Deterministic core for tests: \p now_sec is seconds on any
  /// monotonically nondecreasing clock.
  bool TryAcquireAt(double now_sec);

  bool unlimited() const { return rate_ <= 0; }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  const double rate_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  double last_sec_ = 0;
  bool primed_ = false;  ///< last_sec_ valid (first call seeds the clock)
  std::atomic<uint64_t> shed_{0};
};

/// \brief Bounded in-flight counter. TryEnter admits while fewer than
/// `max_inflight` holders are active; Exit releases. max_inflight <= 0
/// disables the bound.
class AdmissionGate {
 public:
  explicit AdmissionGate(int max_inflight) : max_(max_inflight) {}

  bool TryEnter();
  void Exit();

  int inflight() const { return inflight_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  /// RAII holder: admit on construction, release on destruction.
  class Ticket {
   public:
    explicit Ticket(AdmissionGate& gate)
        : gate_(gate), admitted_(gate.TryEnter()) {}
    ~Ticket() {
      if (admitted_) gate_.Exit();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    bool admitted() const { return admitted_; }

   private:
    AdmissionGate& gate_;
    const bool admitted_;
  };

 private:
  const int max_;
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace vpbn::server
