/// \file protocol.h
/// \brief The vpbnd line protocol: newline-delimited requests, one-line
/// JSON responses.
///
/// Request grammar (tokens separated by ASCII spaces/tabs; <path> is the
/// untokenized rest of the line, so XPath predicates may contain spaces):
///
///   QUERY <doc>[/<view>] [<option>...] <path>
///   LIST
///   RELOAD <doc>
///   STATS
///   SHUTDOWN
///
/// QUERY options (each a per-request override merged over the engine's
/// defaults — query/engine.h ExecOverrides):
///
///   --threads=N          thread budget (0 = hardware concurrency)
///   --partitions=N       partition-wise bulk tasks (0 = off); results are
///                        byte-identical to unpartitioned execution
///   --stats              attach the full ExecStats object to the response
///   --virtual-join / --no-virtual-join
///   --value-index / --no-value-index
///
/// Every response is exactly one JSON object on one line, and always leads
/// with `"code"` — the wire value of query::ErrorCode (0 ok, 1 parse,
/// 2 not_found, 3 overload, 4 internal). See docs/server.md for the full
/// response schemas.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/engine.h"
#include "query/error_code.h"

namespace vpbn::server {

/// \brief A parsed request line.
struct Request {
  enum class Verb { kQuery, kList, kReload, kStats, kShutdown };
  Verb verb = Verb::kList;
  std::string doc;                   ///< QUERY / RELOAD target
  std::string view;                  ///< optional QUERY view ("" = stored)
  std::string path;                  ///< QUERY path text
  query::ExecOverrides overrides;    ///< QUERY per-request options
};

/// \brief Parse one request line (no trailing newline). ParseError on
/// malformed input — unknown verb, missing arguments, unknown option.
Result<Request> ParseRequest(std::string_view line);

/// \name Response rendering
/// All single-line; the caller appends the '\n'.
/// @{

/// `{"code":N,"error":"<token>","message":"..."}` from a non-OK status.
std::string ErrorResponse(const Status& status);

/// `"k":"escaped"` fragment helpers for hand-assembled responses.
std::string JsonField(std::string_view key, std::string_view value);

/// `["a","b",...]` with every element escaped.
std::string JsonStringArray(const std::vector<std::string>& values);
/// @}

}  // namespace vpbn::server
