#include "server/rate_limiter.h"

#include <algorithm>

namespace vpbn::server {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec),
      burst_(burst > 0 ? burst : std::max(rate_per_sec, 1.0)),
      tokens_(burst_) {}

bool TokenBucket::TryAcquire() {
  const double now_sec =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return TryAcquireAt(now_sec);
}

bool TokenBucket::TryAcquireAt(double now_sec) {
  if (unlimited()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (!primed_) {
    last_sec_ = now_sec;
    primed_ = true;
  }
  if (now_sec > last_sec_) {
    tokens_ = std::min(burst_, tokens_ + (now_sec - last_sec_) * rate_);
    last_sec_ = now_sec;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool AdmissionGate::TryEnter() {
  if (max_ <= 0) return true;
  int cur = inflight_.load(std::memory_order_relaxed);
  while (true) {
    if (cur >= max_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel)) {
      return true;
    }
  }
}

void AdmissionGate::Exit() {
  if (max_ <= 0) return;
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace vpbn::server
