/// \file server.h
/// \brief vpbnd: the long-running concurrent query server over a Catalog.
///
/// Architecture: a tiny accept loop (one thread) hands each accepted
/// connection to a worker drawn from a common::ThreadPool — the same pool
/// type the query engine fans intra-query work out on, so thread budgeting
/// stays in one abstraction. Workers speak the newline-delimited protocol
/// (server/protocol.h): read a line, dispatch, write one JSON line back.
///
/// The full request path for QUERY:
///
///   admission gate (bounded in-flight)  ->  token bucket (rate limit)
///   ->  catalog lookup (shared_ptr pins the generation; reloads cannot
///       invalidate it mid-query)
///   ->  result cache probe keyed by (doc, view, path, options, epoch)
///   ->  on miss: engine Prepare (plan cache) + Execute + StringValues,
///       then populate the result cache
///
/// Shed requests fail fast with wire code `overload` (ErrorCode::kOverload)
/// instead of queueing. Every response carries the generation epoch it was
/// answered from.
///
/// `HandleLine` is the transport-free entry point: tests and the E14
/// closed-loop driver call it in-process (it is exactly what a connection
/// worker runs per line), so the whole dispatch/caching/admission stack is
/// exercised under TSan without sockets.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>

#include "common/result.h"
#include "common/thread_pool.h"
#include "query/exec_context.h"
#include "server/catalog.h"
#include "server/protocol.h"
#include "server/rate_limiter.h"
#include "server/result_cache.h"

namespace vpbn::server {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Bind address. Loopback by default: vpbnd has no auth layer.
  std::string host = "127.0.0.1";
  /// Connection worker threads (each serves one connection at a time).
  int num_workers = 8;
  /// Max concurrently executing queries; further QUERYs shed. <= 0: off.
  int max_inflight = 64;
  /// Sustained queries/second admitted by the token bucket. <= 0: off.
  double rate_limit = 0;
  /// Token-bucket burst capacity; <= 0 defaults to max(rate_limit, 1).
  double burst = 0;
  /// Result-cache capacity in entries; 0 disables the cache.
  size_t result_cache_capacity = 256;
};

/// \brief Cumulative counters exported by STATS.
struct ServerMetrics {
  std::atomic<uint64_t> requests{0};   ///< lines received (any verb)
  std::atomic<uint64_t> queries{0};    ///< QUERY lines admitted past parsing
  std::atomic<uint64_t> ok{0};         ///< code 0 responses
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> not_found{0};
  std::atomic<uint64_t> overload{0};
  std::atomic<uint64_t> internal{0};
  std::atomic<uint64_t> reloads{0};
};

class Server {
 public:
  /// \p catalog must outlive the server. The server never mutates it except
  /// through RELOAD requests.
  Server(Catalog* catalog, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept loop. InvalidArgument/Internal on
  /// socket failures.
  Status Start();

  /// Stop accepting, unblock every open connection, drain workers. Safe to
  /// call twice; also called by the destructor.
  void Stop();

  /// The bound port (after Start), even when options.port was 0.
  int port() const { return port_; }

  /// Serve one request line (without trailing newline) and return the
  /// one-line JSON response (without trailing newline). Thread-safe; this
  /// is the exact per-line path of a connection worker.
  std::string HandleLine(std::string_view line);

  /// True once a SHUTDOWN request was served (the transport is still up —
  /// the owner decides when to Stop()).
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Block until SHUTDOWN is requested or \p timeout elapses; returns
  /// shutdown_requested().
  bool WaitForShutdownRequest(std::chrono::milliseconds timeout);

  /// The STATS response body (also what the STATS verb returns).
  std::string StatsJson() const;

  const ServerMetrics& metrics() const { return metrics_; }
  const ResultCache& result_cache() const { return result_cache_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::string HandleQuery(const Request& req);
  std::string HandleList();
  std::string HandleReload(const Request& req);
  std::string HandleShutdown();
  std::string CountedResponse(std::string response);

  Catalog* const catalog_;
  const ServerOptions options_;

  ResultCache result_cache_;
  AdmissionGate gate_;
  TokenBucket bucket_;
  ServerMetrics metrics_;
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<common::ThreadPool> workers_;
  std::mutex conns_mu_;
  std::unordered_set<int> conns_;

  std::atomic<bool> shutdown_requested_{false};
  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
};

}  // namespace vpbn::server
