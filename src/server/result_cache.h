/// \file result_cache.h
/// \brief The vpbnd result cache: finished answers keyed by
/// (document, view, path, effective options, epoch).
///
/// Layered on the engine's prepared-plan cache: the plan cache skips
/// parse+plan, this cache skips execution entirely for repeated requests.
/// The epoch in the key is the invalidation story — a catalog reload bumps
/// the entry's epoch, so every cached answer for the old generation simply
/// stops being reachable (and ages out of the LRU); nothing is scanned or
/// purged on reload, and a cross-epoch hit is impossible by construction.
///
/// Entries are immutable shared_ptrs: a hit hands the caller a reference
/// that stays valid even if the entry is evicted mid-response.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/engine.h"

namespace vpbn::server {

class ResultCache {
 public:
  /// One finished answer: the string values plus the response metadata the
  /// server replays on a hit.
  struct Entry {
    std::vector<std::string> values;
    uint64_t result_nodes = 0;
    std::string plan;
    double wall_ms = 0;  ///< execution cost of the original (uncached) run
  };

  /// \p capacity 0 disables caching (every Get misses, Put drops).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// The canonical cache key. Only result-shaping inputs participate:
  /// threads, partitions, and collect_stats change how a query runs, not
  /// what it returns, so requests differing only in those share an entry.
  static std::string Key(const std::string& doc, const std::string& view,
                         const std::string& path,
                         const query::ExecOptions& effective, uint64_t epoch);

  /// nullptr on miss. Bumps the entry to most-recently-used on hit.
  std::shared_ptr<const Entry> Get(const std::string& key);

  /// Inserts (or refreshes) \p entry under \p key, evicting LRU entries
  /// beyond capacity.
  void Put(const std::string& key, std::shared_ptr<const Entry> entry);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const Entry>>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // most-recent first
  std::unordered_map<std::string, LruList::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace vpbn::server
