#include "server/result_cache.h"

namespace vpbn::server {

std::string ResultCache::Key(const std::string& doc, const std::string& view,
                             const std::string& path,
                             const query::ExecOptions& effective,
                             uint64_t epoch) {
  // '\x1f' (unit separator) cannot appear in names or paths the protocol
  // accepts, so the concatenation is unambiguous.
  std::string key;
  key.reserve(doc.size() + view.size() + path.size() + 24);
  key += doc;
  key += '\x1f';
  key += view;
  key += '\x1f';
  key += path;
  key += '\x1f';
  key += effective.virtual_join ? 'J' : 'j';
  key += effective.use_value_index ? 'V' : 'v';
  key += '\x1f';
  key += std::to_string(epoch);
  return key;
}

std::shared_ptr<const ResultCache::Entry> ResultCache::Get(
    const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const Entry> entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace vpbn::server
