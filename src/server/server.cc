#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "query/error_code.h"

namespace vpbn::server {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Write all of \p data to \p fd, riding out partial writes and EINTR.
/// MSG_NOSIGNAL: a client that hangs up mid-response must not SIGPIPE the
/// whole server.
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

Server::Server(Catalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      result_cache_(options_.result_cache_capacity),
      gate_(options_.max_inflight),
      bucket_(options_.rate_limit, options_.burst),
      start_time_(std::chrono::steady_clock::now()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(std::string("bind ") + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  workers_ = std::make_unique<common::ThreadPool>(
      options_.num_workers > 0 ? options_.num_workers : 1);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller still waits for the first teardown to finish (the
    // destructor racing an explicit Stop).
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Unblock every connection reader; each ServeConnection closes its own
    // fd on the way out.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  workers_.reset();  // blocks until every connection task has returned
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() from Stop lands here; anything else while running is a
      // transient accept failure worth retrying until stopped.
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(fd);
    }
    workers_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      std::string response = HandleLine(line);
      response += '\n';
      if (!WriteAll(fd, response)) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(fd);
  }
  ::close(fd);
}

std::string Server::HandleLine(std::string_view line) {
  metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    return CountedResponse(ErrorResponse(parsed.status()));
  }
  const Request& req = parsed.value();
  switch (req.verb) {
    case Request::Verb::kQuery:
      return CountedResponse(HandleQuery(req));
    case Request::Verb::kList:
      return CountedResponse(HandleList());
    case Request::Verb::kReload:
      return CountedResponse(HandleReload(req));
    case Request::Verb::kStats:
      return CountedResponse(StatsJson());
    case Request::Verb::kShutdown:
      return CountedResponse(HandleShutdown());
  }
  return CountedResponse(
      ErrorResponse(Status::Internal("unhandled verb")));  // unreachable
}

std::string Server::CountedResponse(std::string response) {
  // Every response leads with {"code":<digit>}; classify off that digit.
  constexpr std::string_view kPrefix = "{\"code\":";
  char digit =
      response.size() > kPrefix.size() ? response[kPrefix.size()] : '4';
  switch (digit) {
    case '0':
      metrics_.ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case '1':
      metrics_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    case '2':
      metrics_.not_found.fetch_add(1, std::memory_order_relaxed);
      break;
    case '3':
      metrics_.overload.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      metrics_.internal.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return response;
}

std::string Server::HandleQuery(const Request& req) {
  metrics_.queries.fetch_add(1, std::memory_order_relaxed);

  // Admission first: shed before touching the catalog or caches, so an
  // overloaded server does the minimum possible work per rejected request.
  AdmissionGate::Ticket ticket(gate_);
  if (!ticket.admitted()) {
    return ErrorResponse(Status::ResourceExhausted(
        "server at max in-flight queries (" +
        std::to_string(options_.max_inflight) + "); retry later"));
  }
  if (!bucket_.TryAcquire()) {
    return ErrorResponse(
        Status::ResourceExhausted("rate limit exceeded; retry later"));
  }

  std::shared_ptr<const CatalogEntry> entry = catalog_->Find(req.doc);
  if (!entry) {
    return ErrorResponse(Status::NotFound("no document '" + req.doc + "'"));
  }
  auto engine_result = entry->EngineFor(req.view);
  if (!engine_result.ok()) {
    return ErrorResponse(engine_result.status());
  }
  std::shared_ptr<const query::QueryEngine> engine =
      std::move(engine_result).value();

  const query::ExecOptions effective = engine->EffectiveOptions(req.overrides);
  const std::string key =
      ResultCache::Key(req.doc, req.view, req.path, effective, entry->epoch);
  const bool want_stats = effective.collect_stats;

  std::shared_ptr<const ResultCache::Entry> cached = result_cache_.Get(key);
  const bool cache_hit = cached != nullptr;
  std::string stats_json;
  if (!cached) {
    auto prepared = engine->Prepare(req.path);
    if (!prepared.ok()) {
      return ErrorResponse(prepared.status());
    }
    auto executed = engine->Execute(prepared.value(), req.overrides);
    if (!executed.ok()) {
      return ErrorResponse(executed.status());
    }
    const query::QueryResult& result = executed.value();
    auto fresh = std::make_shared<ResultCache::Entry>();
    fresh->values = engine->StringValues(result);
    fresh->result_nodes = result.size();
    fresh->plan = query::PlanKindToString(prepared.value().plan());
    fresh->wall_ms = result.stats().wall_ms;
    if (want_stats) stats_json = result.stats().ToJson();
    result_cache_.Put(key, fresh);
    cached = std::move(fresh);
  }

  std::string out = "{\"code\":0,";
  out += JsonField("doc", req.doc);
  out += ',';
  out += JsonField("view", req.view);
  out += ",\"epoch\":";
  out += std::to_string(entry->epoch);
  out += ",\"count\":";
  out += std::to_string(cached->result_nodes);
  out += ',';
  out += JsonField("plan", cached->plan);
  out += ",\"cached\":";
  out += cache_hit ? "true" : "false";
  out += ",\"wall_ms\":";
  out += FormatMs(cached->wall_ms);
  out += ",\"values\":";
  out += JsonStringArray(cached->values);
  if (!stats_json.empty()) {
    out += ",\"stats\":";
    out += stats_json;
  }
  out += '}';
  return out;
}

std::string Server::HandleList() {
  std::string out = "{\"code\":0,\"docs\":[";
  bool first_doc = true;
  for (const auto& entry : catalog_->List()) {
    if (!first_doc) out += ',';
    first_doc = false;
    out += '{';
    out += JsonField("name", entry->name);
    out += ",\"epoch\":";
    out += std::to_string(entry->epoch);
    out += ",\"nodes\":";
    out += std::to_string(entry->stored->doc().num_nodes());
    out += ",\"views\":[";
    bool first_view = true;
    for (const auto& [view_name, view] : entry->views) {
      (void)view;
      if (!first_view) out += ',';
      first_view = false;
      out += '"';
      out += JsonEscape(view_name);
      out += '"';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string Server::HandleReload(const Request& req) {
  Result<uint64_t> epoch = catalog_->Reload(req.doc);
  if (!epoch.ok()) {
    return ErrorResponse(epoch.status());
  }
  metrics_.reloads.fetch_add(1, std::memory_order_relaxed);
  std::string out = "{\"code\":0,";
  out += JsonField("doc", req.doc);
  out += ",\"epoch\":";
  out += std::to_string(epoch.value());
  out += '}';
  return out;
}

std::string Server::HandleShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_.store(true, std::memory_order_release);
  }
  shutdown_cv_.notify_all();
  return "{\"code\":0,\"message\":\"shutting down\"}";
}

bool Server::WaitForShutdownRequest(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait_for(lock, timeout, [this] {
    return shutdown_requested_.load(std::memory_order_acquire);
  });
  return shutdown_requested_.load(std::memory_order_acquire);
}

std::string Server::StatsJson() const {
  const auto& m = metrics_;
  // Plan-cache totals are summed over the *current* catalog generation's
  // engines (stored + every view); replaced generations take their counters
  // with them, which is the honest reading — those caches are gone.
  uint64_t plan_hits = 0, plan_misses = 0;
  for (const auto& entry : catalog_->List()) {
    plan_hits += entry->engine->plan_cache_hits();
    plan_misses += entry->engine->plan_cache_misses();
    for (const auto& [name, view] : entry->views) {
      (void)name;
      plan_hits += view.engine->plan_cache_hits();
      plan_misses += view.engine->plan_cache_misses();
    }
  }
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time_)
          .count();

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"code\":0,\"uptime_ms\":%.1f,\"documents\":%zu,"
      "\"requests\":%" PRIu64 ",\"queries\":%" PRIu64 ",\"ok\":%" PRIu64
      ",\"parse_errors\":%" PRIu64 ",\"not_found\":%" PRIu64
      ",\"overload\":%" PRIu64 ",\"internal\":%" PRIu64
      ",\"reloads\":%" PRIu64
      ",\"admission\":{\"inflight\":%d,\"max_inflight\":%d,"
      "\"gate_shed\":%" PRIu64 ",\"rate_shed\":%" PRIu64
      "},\"result_cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
      ",\"size\":%zu,\"capacity\":%zu},\"plan_cache\":{\"hits\":%" PRIu64
      ",\"misses\":%" PRIu64 "}}",
      uptime_ms, catalog_->size(), m.requests.load(), m.queries.load(),
      m.ok.load(), m.parse_errors.load(), m.not_found.load(),
      m.overload.load(), m.internal.load(), m.reloads.load(),
      gate_.inflight(), options_.max_inflight, gate_.shed(), bucket_.shed(),
      result_cache_.hits(), result_cache_.misses(), result_cache_.size(),
      result_cache_.capacity(), plan_hits, plan_misses);
  return buf;
}

}  // namespace vpbn::server
