#include "vpbn/vpbn_codec.h"

#include <gtest/gtest.h>

#include "pbn/codec.h"
#include "tests/test_util.h"
#include "vpbn/virtual_document.h"

namespace vpbn::virt {
namespace {

using num::Pbn;

TEST(VpbnCodecTest, RoundTripPaperFigure10Numbers) {
  // The (number, array) pairs of Figure 10.
  struct Case {
    Pbn pbn;
    LevelArray levels;
  };
  const Case cases[] = {
      {Pbn{1, 1, 1}, LevelArray({1, 1, 1})},
      {Pbn{1, 1, 1, 1}, LevelArray({1, 1, 1, 2})},
      {Pbn{1, 1, 2}, LevelArray({1, 1, 2})},
      {Pbn{1, 1, 2, 1}, LevelArray({1, 1, 2, 3})},
      {Pbn{1, 1, 2, 1, 1}, LevelArray({1, 1, 2, 3, 4})},
  };
  for (const Case& c : cases) {
    std::string buf;
    EncodeVpbn(c.pbn, c.levels, &buf);
    EXPECT_EQ(buf.size(), VpbnEncodedSize(c.pbn, c.levels));
    std::string_view in = buf;
    auto d = DecodeVpbn(&in);
    ASSERT_TRUE(d.ok()) << c.pbn;
    EXPECT_EQ(d->pbn, c.pbn);
    EXPECT_EQ(d->levels, c.levels);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VpbnCodecTest, Case2ArrayOneLongerThanNumber) {
  Pbn pbn{1, 1, 2};
  LevelArray levels({1, 1, 2, 3});  // one extra entry
  std::string buf;
  EncodeVpbn(pbn, levels, &buf);
  std::string_view in = buf;
  auto d = DecodeVpbn(&in);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->levels.size(), d->pbn.length() + 1);
}

TEST(VpbnCodecTest, DeltaEncodingIsCompact) {
  // A depth-6 identity-style array [1..6] costs one byte per entry.
  Pbn pbn{1, 2, 3, 4, 5, 6};
  LevelArray levels({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(VpbnEncodedSize(pbn, levels),
            num::CompactEncodedSize(pbn) + 1 + 6);
}

TEST(VpbnCodecTest, SequencesDecodeInOrder) {
  std::string buf;
  EncodeVpbn(Pbn{1, 2}, LevelArray({1, 1}), &buf);
  EncodeVpbn(Pbn{2}, LevelArray({1, 2}), &buf);
  std::string_view in = buf;
  auto first = DecodeVpbn(&in);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->pbn, (Pbn{1, 2}));
  auto second = DecodeVpbn(&in);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->levels, LevelArray({1, 2}));
  EXPECT_TRUE(in.empty());
}

TEST(VpbnCodecTest, CorruptInputsRejected) {
  std::string_view empty;
  EXPECT_FALSE(DecodeVpbn(&empty).ok());
  std::string buf;
  EncodeVpbn(Pbn{1, 2, 3}, LevelArray({1, 2, 3}), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    EXPECT_FALSE(DecodeVpbn(&in).ok()) << cut;
  }
  // Extra byte > 1 is structurally impossible and rejected.
  std::string bad;
  num::EncodeCompact(Pbn{1}, &bad);
  bad.push_back(5);
  std::string_view in = bad;
  EXPECT_FALSE(DecodeVpbn(&in).ok());
}

TEST(VpbnCodecTest, RoundTripsEveryTypeOfRealViews) {
  xml::Document doc = testutil::PaperFigure2();
  auto stored = storage::StoredDocument::Build(doc);
  for (const char* spec :
       {"data { ** }", "title { author { name } }", "name { author { book } }",
        "book { location title }"}) {
    auto v = VirtualDocument::Open(stored, spec);
    ASSERT_TRUE(v.ok()) << spec;
    for (vdg::VTypeId t = 0; t < v->vguide().num_vtypes(); ++t) {
      const LevelArray& levels = v->space().level_array(t);
      for (const VirtualNode& n : v->NodesOfVType(t)) {
        const num::Pbn& pbn = stored.numbering().OfNode(n.node);
        std::string buf;
        EncodeVpbn(pbn, levels, &buf);
        std::string_view in = buf;
        auto d = DecodeVpbn(&in);
        ASSERT_TRUE(d.ok()) << spec;
        EXPECT_EQ(d->pbn, pbn);
        EXPECT_EQ(d->levels, levels);
      }
    }
  }
}

}  // namespace
}  // namespace vpbn::virt
