#include "vdg/report.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace vpbn::vdg {
namespace {

struct Fixture {
  xml::Document doc;
  dg::DataGuide guide;

  Fixture() : doc(testutil::PaperFigure2()) {
    guide = dg::DataGuide::Build(doc);
  }

  VDataGuide Create(std::string_view spec) {
    auto vg = VDataGuide::Create(spec, guide);
    EXPECT_TRUE(vg.ok()) << vg.status();
    return std::move(vg).ValueUnsafe();
  }
};

TEST(ReportTest, IdentityHasFullCoverageAllCase1) {
  Fixture f;
  VDataGuide vg = f.Create("data { ** }");
  ViewReport r = AnalyzeView(vg);
  EXPECT_EQ(r.coverage, 1.0);
  EXPECT_TRUE(r.dropped.empty());
  EXPECT_TRUE(r.duplicated.empty());
  EXPECT_TRUE(r.possibly_orphaned.empty());
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kRoot)], 1u);
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kDescendant)],
            vg.num_vtypes() - 1);
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kAncestor)], 0u);
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kLca)], 0u);
}

TEST(ReportTest, SamViewClassification) {
  Fixture f;
  VDataGuide vg = f.Create(testutil::SamSpec());
  ViewReport r = AnalyzeView(vg);
  // title(root), title.#text(case1), author(case3), name(case1),
  // name.#text(case1).
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kRoot)], 1u);
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kLca)], 1u);
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kDescendant)], 3u);
  // Dropped: data, book, publisher, location, location.#text = 5 of 10.
  EXPECT_EQ(r.dropped.size(), 5u);
  EXPECT_NEAR(r.coverage, 0.5, 1e-9);
  // author hangs below a case-3 edge: possibly orphaned; so is everything
  // below it.
  EXPECT_FALSE(r.possibly_orphaned.empty());
}

TEST(ReportTest, InversionIsCase2) {
  Fixture f;
  VDataGuide vg = f.Create("name { author { book } }");
  ViewReport r = AnalyzeView(vg);
  EXPECT_EQ(r.case_counts[static_cast<int>(EdgeCase::kAncestor)], 2u);
  // Case-2 children can be orphaned: an author element with no name
  // descendant relates to no name instance and never appears. Both
  // inverted types are therefore flagged; the implicit text under name
  // (a case-1 edge from the root) is not.
  VTypeId author = vg.FindByVPath("name.author").value();
  VTypeId book = vg.FindByVPath("name.author.book").value();
  VTypeId name_text = vg.FindByVPath("name.#text").value();
  auto flagged = [&](VTypeId t) {
    for (VTypeId p : r.possibly_orphaned) {
      if (p == t) return true;
    }
    return false;
  };
  EXPECT_TRUE(flagged(author));
  EXPECT_TRUE(flagged(book));
  EXPECT_FALSE(flagged(name_text));
}

TEST(ReportTest, DuplicatedOriginalsListed) {
  Fixture f;
  VDataGuide vg = f.Create("book { title { name } author { name } }");
  ViewReport r = AnalyzeView(vg);
  ASSERT_FALSE(r.duplicated.empty());
  bool found = false;
  for (dg::TypeId t : r.duplicated) {
    if (f.guide.path(t) == "data.book.author.name") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ReportTest, ClassifyEdgeDirectly) {
  Fixture f;
  VDataGuide vg = f.Create(testutil::SamSpec());
  VTypeId title = vg.FindByVPath("title").value();
  VTypeId author = vg.FindByVPath("title.author").value();
  VTypeId name = vg.FindByVPath("title.author.name").value();
  EXPECT_EQ(ClassifyEdge(vg, title), EdgeCase::kRoot);
  EXPECT_EQ(ClassifyEdge(vg, author), EdgeCase::kLca);
  EXPECT_EQ(ClassifyEdge(vg, name), EdgeCase::kDescendant);
}

TEST(ReportTest, ToStringMentionsEverything) {
  Fixture f;
  VDataGuide vg = f.Create(testutil::SamSpec());
  ViewReport r = AnalyzeView(vg);
  std::string s = r.ToString(vg);
  EXPECT_NE(s.find("coverage: 50%"), std::string::npos) << s;
  EXPECT_NE(s.find("case3-lca=1"), std::string::npos) << s;
  EXPECT_NE(s.find("data.book.publisher"), std::string::npos) << s;
  EXPECT_NE(s.find("possibly orphaned"), std::string::npos) << s;
}

TEST(ReportTest, EdgeCaseNames) {
  EXPECT_STREQ(EdgeCaseToString(EdgeCase::kRoot), "root");
  EXPECT_STREQ(EdgeCaseToString(EdgeCase::kDescendant), "case1-descendant");
  EXPECT_STREQ(EdgeCaseToString(EdgeCase::kAncestor), "case2-ancestor");
  EXPECT_STREQ(EdgeCaseToString(EdgeCase::kLca), "case3-lca");
}

}  // namespace
}  // namespace vpbn::vdg
