/// \file auction_integration_test.cc
/// \brief End-to-end battery over the XMark-style auction workload: a set
/// of queries in the spirit of the XMark suite, each answered by every
/// evaluation strategy (navigation, per-node index, bulk joins where the
/// fragment allows) with mandatory agreement, plus virtual re-hierarchies
/// queried through vPBN and checked against materialization.

#include <gtest/gtest.h>

#include "query/eval_bulk.h"
#include "query/eval_indexed.h"
#include "query/eval_nav.h"
#include "query/eval_virtual.h"
#include "vpbn/materializer.h"
#include "workload/auctions.h"
#include "xquery/xq_engine.h"

namespace vpbn {
namespace {

class AuctionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::AuctionsOptions opts;
    opts.seed = 31;
    opts.num_items = 120;
    opts.num_people = 60;
    opts.num_auctions = 90;
    doc_ = new xml::Document(workload::GenerateAuctions(opts));
    stored_ = new storage::StoredDocument(
        storage::StoredDocument::Build(*doc_));
  }
  static void TearDownTestSuite() {
    delete stored_;
    delete doc_;
    stored_ = nullptr;
    doc_ = nullptr;
  }

  /// All strategies must agree; returns the result count.
  size_t AllAgree(std::string_view path) {
    auto nav = query::EvalNav(*doc_, path);
    auto idx = query::EvalIndexed(*stored_, path);
    EXPECT_TRUE(nav.ok()) << path << ": " << nav.status();
    EXPECT_TRUE(idx.ok()) << path << ": " << idx.status();
    if (!nav.ok() || !idx.ok()) return 0;
    EXPECT_EQ(nav->size(), idx->size()) << path;
    for (size_t i = 0; i < nav->size() && i < idx->size(); ++i) {
      EXPECT_EQ(stored_->numbering().OfNode((*nav)[i]), (*idx)[i]) << path;
    }
    auto bulk = query::EvalBulk(*stored_, path);
    if (bulk.ok()) {
      EXPECT_EQ(*bulk, *idx) << path << " (bulk)";
    } else {
      EXPECT_TRUE(bulk.status().IsNotImplemented()) << path;
    }
    return nav->size();
  }

  static xml::Document* doc_;
  static storage::StoredDocument* stored_;
};

xml::Document* AuctionFixture::doc_ = nullptr;
storage::StoredDocument* AuctionFixture::stored_ = nullptr;

TEST_F(AuctionFixture, Q1_ItemsPerRegion) {
  size_t total = 0;
  for (const char* region :
       {"africa", "asia", "australia", "europe", "namerica", "samerica"}) {
    total += AllAgree("/site/regions/" + std::string(region) + "/item");
  }
  EXPECT_EQ(total, 120u);
}

TEST_F(AuctionFixture, Q2_AllBidderPrices) {
  size_t prices = AllAgree("//bidder/price");
  EXPECT_GE(prices, 90u);  // at least one bidder per auction
}

TEST_F(AuctionFixture, Q3_AuctionsWithManyBidders) {
  size_t hot = AllAgree("//auction[count(bidder) > 2]");
  size_t all = AllAgree("//auction");
  EXPECT_EQ(all, 90u);
  EXPECT_LT(hot, all);
}

TEST_F(AuctionFixture, Q4_PeopleInOslo) {
  size_t oslo = AllAgree("//person[city = \"Oslo\"]/name");
  EXPECT_GT(oslo, 0u);
  EXPECT_LT(oslo, 60u);
}

TEST_F(AuctionFixture, Q5_ItemsWithQuantityAboveThree) {
  AllAgree("//item[quantity > 3]/name");
}

TEST_F(AuctionFixture, Q6_StructuralExistence) {
  EXPECT_EQ(AllAgree("//auction[bidder/personref]"), 90u);
  AllAgree("//regions//item[description]");
}

TEST_F(AuctionFixture, Q7_DeepTextScan) {
  size_t words = AllAgree("//auction//text()");
  EXPECT_GT(words, 200u);
}

TEST_F(AuctionFixture, Q8_VirtualAuctionsByItem) {
  // Re-hierarchize: auction { itemref bidder { price } }, then check the
  // virtual answers against the materialized instance.
  auto v = virt::VirtualDocument::Open(
      *stored_, "auction { itemref bidder { price } }");
  ASSERT_TRUE(v.ok()) << v.status();
  auto m = virt::Materialize(*v);
  ASSERT_TRUE(m.ok());
  const char* queries[] = {
      "//auction/bidder/price",
      "//auction[count(bidder) > 2]/itemref",
      "//bidder[price > 100]",
  };
  for (const char* q : queries) {
    auto virt_r = query::EvalVirtual(*v, q);
    auto phys_r = query::EvalNav(m->doc, q);
    ASSERT_TRUE(virt_r.ok()) << q << virt_r.status();
    ASSERT_TRUE(phys_r.ok()) << q;
    ASSERT_EQ(virt_r->size(), phys_r->size()) << q;
    for (size_t i = 0; i < virt_r->size(); ++i) {
      EXPECT_EQ(v->StringValue((*virt_r)[i]),
                m->doc.StringValue((*phys_r)[i]))
          << q;
    }
  }
}

TEST_F(AuctionFixture, Q9_VirtualPricesOnTop) {
  auto v = virt::VirtualDocument::Open(*stored_,
                                       "price { bidder { auction } }");
  ASSERT_TRUE(v.ok()) << v.status();
  auto roots = v->Roots();
  auto all_prices = query::EvalNav(*doc_, "//price");
  ASSERT_TRUE(all_prices.ok());
  EXPECT_EQ(roots.size(), all_prices->size());
  // Every price's virtual subtree reaches its auction.
  auto auctions = query::EvalVirtual(*v, "//price/bidder/auction");
  ASSERT_TRUE(auctions.ok());
  EXPECT_GT(auctions->size(), 0u);
}

TEST_F(AuctionFixture, Q10_XQueryReportPipeline) {
  xq::Engine engine;
  ASSERT_TRUE(engine.RegisterDocument("site.xml", doc_).ok());
  auto out = engine.RunToXml(R"(
      for $a in virtualDoc("site.xml",
                           "auction { itemref bidder { price } }")//auction
      where count($a/bidder) > 3
      order by $a/@id
      return <hot id="x">{count($a/bidder)}</hot>)");
  ASSERT_TRUE(out.ok()) << out.status();
  // Deterministic workload: just pin the shape (non-empty, ordered run).
  EXPECT_NE(out->find("<hot"), std::string::npos);
}

}  // namespace
}  // namespace vpbn
