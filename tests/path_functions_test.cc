/// \file path_functions_test.cc
/// \brief contains()/starts-with() in XPath predicates across all three
/// evaluators, plus multi-document XQuery and a tagged scale check.

#include <gtest/gtest.h>

#include "query/eval_indexed.h"
#include "query/eval_nav.h"
#include "query/eval_virtual.h"
#include "tests/test_util.h"
#include "vpbn/materializer.h"
#include "workload/books.h"
#include "workload/treebank.h"
#include "xquery/xq_engine.h"

namespace vpbn::query {
namespace {

struct Fixture {
  xml::Document doc;
  storage::StoredDocument stored;

  Fixture() : doc(testutil::PaperFigure2()),
              stored(storage::StoredDocument::Build(doc)) {}
};

TEST(PathFunctionsTest, ContainsInPredicate) {
  Fixture f;
  auto r = EvalNav(f.doc, "//book[contains(author/name, \"C\")]/title");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(f.doc.StringValue((*r)[0]), "X");
}

TEST(PathFunctionsTest, StartsWithInPredicate) {
  auto parsed = xml::Parse(
      "<r><p><n>Alice</n></p><p><n>Albert</n></p><p><n>Bob</n></p></r>");
  ASSERT_TRUE(parsed.ok());
  auto al = EvalNav(*parsed, "//p[starts-with(n, \"Al\")]");
  ASSERT_TRUE(al.ok());
  EXPECT_EQ(al->size(), 2u);
  auto exact = EvalNav(*parsed, "//p[starts-with(n, \"Alice\")]");
  EXPECT_EQ(exact->size(), 1u);
  auto none = EvalNav(*parsed, "//p[starts-with(n, \"lice\")]");
  EXPECT_TRUE(none->empty());
}

TEST(PathFunctionsTest, ContainsWithAttribute) {
  auto parsed = xml::Parse(
      "<r><b id=\"alpha-1\"/><b id=\"beta-2\"/></r>");
  ASSERT_TRUE(parsed.ok());
  auto r = EvalNav(*parsed, "//b[contains(@id, \"alpha\")]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(PathFunctionsTest, AllEvaluatorsAgree) {
  Fixture f;
  const char* paths[] = {
      "//book[contains(title, \"X\")]",
      "//book[starts-with(publisher/location, \"W\")]/title",
      "//name[contains(., \"D\")]",
  };
  for (const char* path : paths) {
    auto nav = EvalNav(f.doc, path);
    auto idx = EvalIndexed(f.stored, path);
    ASSERT_TRUE(nav.ok()) << path << nav.status();
    ASSERT_TRUE(idx.ok()) << path << idx.status();
    EXPECT_EQ(nav->size(), idx->size()) << path;
  }
}

TEST(PathFunctionsTest, ContainsOnVirtualDocument) {
  Fixture f;
  auto v = virt::VirtualDocument::Open(f.stored, testutil::SamSpec());
  ASSERT_TRUE(v.ok());
  auto r = EvalVirtual(*v, "//title[contains(author/name, \"D\")]");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(v->StringValue((*r)[0]), "YD");
}

TEST(PathFunctionsTest, ParseErrors) {
  Fixture f;
  EXPECT_FALSE(EvalNav(f.doc, "//b[contains(title)]").ok());
  EXPECT_FALSE(EvalNav(f.doc, "//b[contains(title, ]").ok());
  EXPECT_FALSE(EvalNav(f.doc, "//b[starts-with(a \"x\")]").ok());
}

TEST(MultiDocumentTest, JoinAcrossDocuments) {
  xml::Document books = testutil::PaperFigure2();
  auto parsed = xml::Parse(
      "<people><person><name>C</name><city>Logan</city></person>"
      "<person><name>E</name><city>Oslo</city></person></people>");
  ASSERT_TRUE(parsed.ok());
  xml::Document people = std::move(parsed).ValueUnsafe();
  xq::Engine engine;
  ASSERT_TRUE(engine.RegisterDocument("books", &books).ok());
  ASSERT_TRUE(engine.RegisterDocument("people", &people).ok());
  auto out = engine.RunToXml(R"(
      for $n in doc("books")//name, $p in doc("people")//person
      where $n/text() = $p/name/text()
      return <match>{$n/text()}{$p/city/text()}</match>)");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, "<match>CLogan</match>");
}

TEST(TreebankTest, DeepRecursionTypesAndQueries) {
  workload::TreebankOptions opts;
  opts.num_sentences = 20;
  opts.max_depth = 12;
  xml::Document doc = workload::GenerateTreebank(opts);
  storage::StoredDocument stored = storage::StoredDocument::Build(doc);
  // Recursive nesting creates distinct per-level types.
  EXPECT_GT(stored.dataguide().num_types(), 40u);
  // All three evaluators agree on recursive paths.
  const char* paths[] = {"//NP//word", "//VP/NP", "//S/descendant::word"};
  for (const char* path : paths) {
    auto nav = EvalNav(doc, path);
    auto idx = EvalIndexed(stored, path);
    ASSERT_TRUE(nav.ok()) << path;
    ASSERT_TRUE(idx.ok()) << path;
    EXPECT_EQ(nav->size(), idx->size()) << path;
  }
}

TEST(ScaleTest, LargeDocumentVirtualEquivalence) {
  // One larger configuration end-to-end: 4000 books (~44k nodes).
  workload::BooksOptions opts;
  opts.seed = 3;
  opts.num_books = 4000;
  xml::Document doc = workload::GenerateBooks(opts);
  storage::StoredDocument stored = storage::StoredDocument::Build(doc);
  auto v = virt::VirtualDocument::Open(stored, testutil::SamSpec());
  ASSERT_TRUE(v.ok());
  auto m = virt::Materialize(*v);
  ASSERT_TRUE(m.ok());
  const char* kQuery = "//title[contains(author/name, \"Hopper\")]";
  auto virtual_result = EvalVirtual(*v, kQuery);
  auto physical_result = EvalNav(m->doc, kQuery);
  ASSERT_TRUE(virtual_result.ok());
  ASSERT_TRUE(physical_result.ok());
  ASSERT_EQ(virtual_result->size(), physical_result->size());
  ASSERT_GT(virtual_result->size(), 0u);
  for (size_t i = 0; i < virtual_result->size(); ++i) {
    EXPECT_EQ(v->StringValue((*virtual_result)[i]),
              m->doc.StringValue((*physical_result)[i]));
  }
}

}  // namespace
}  // namespace vpbn::query
