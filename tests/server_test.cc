/// \file server_test.cc
/// \brief The vpbnd server: the transport-free HandleLine dispatch path
/// (QUERY/LIST/RELOAD/STATS/SHUTDOWN, result-cache behaviour, admission
/// shedding), one end-to-end TCP exchange, and the reload-under-load stress
/// that proves epoch-keyed caching never serves a cross-epoch result.

#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/catalog.h"

namespace vpbn::server {
namespace {

constexpr const char* kBooksV1 =
    "<catalog><book><title>A</title></book>"
    "<book><title>B</title></book></catalog>";
constexpr const char* kBooksV2 =
    "<catalog><book><title>A</title></book>"
    "<book><title>B</title></book>"
    "<book><title>C</title></book></catalog>";
constexpr const char* kAuctions =
    "<site><auction><price>10</price></auction>"
    "<auction><price>20</price></auction></site>";

/// Pulls the integer after `"<key>":` out of a one-line JSON response.
/// (The responses are machine-assembled with a fixed field order, so a
/// substring scan is reliable enough for tests.)
int64_t JsonInt(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + needle.size());
}

bool JsonBool(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  return pos != std::string::npos &&
         json.compare(pos + needle.size(), 4, "true") == 0;
}

struct ServerFixture {
  Catalog catalog;
  ServerOptions options;
  std::unique_ptr<Server> server;

  explicit ServerFixture(ServerOptions opts = {}) : options(opts) {
    EXPECT_TRUE(catalog.AddDocumentXml("books", kBooksV1).ok());
    EXPECT_TRUE(catalog.AddDocumentXml("auctions", kAuctions).ok());
    EXPECT_TRUE(catalog.AddView("books", "titles", "book { title }").ok());
    server = std::make_unique<Server>(&catalog, options);
  }
};

TEST(ServerTest, QueryAnswersWithEpochCountAndValues) {
  ServerFixture f;
  std::string r = f.server->HandleLine("QUERY books //book/title");
  EXPECT_EQ(r.rfind("{\"code\":0", 0), 0u) << r;
  EXPECT_EQ(JsonInt(r, "epoch"), 1);
  EXPECT_EQ(JsonInt(r, "count"), 2);
  EXPECT_FALSE(JsonBool(r, "cached"));
  EXPECT_NE(r.find("\"values\":[\"<title>A</title>\",\"<title>B</title>\"]"), std::string::npos) << r;
  EXPECT_EQ(r.find('\n'), std::string::npos);  // one line, no newline

  // A second document resolves independently.
  std::string a = f.server->HandleLine("QUERY auctions //auction/price");
  EXPECT_EQ(JsonInt(a, "count"), 2);

  // Views dispatch to the view engine.
  std::string v = f.server->HandleLine("QUERY books/titles //title");
  EXPECT_EQ(v.rfind("{\"code\":0", 0), 0u) << v;
  EXPECT_EQ(JsonInt(v, "count"), 2);
  EXPECT_NE(v.find("\"view\":\"titles\""), std::string::npos) << v;
}

TEST(ServerTest, RepeatQueryHitsTheResultCache) {
  ServerFixture f;
  std::string miss = f.server->HandleLine("QUERY books //book/title");
  EXPECT_FALSE(JsonBool(miss, "cached"));
  std::string hit = f.server->HandleLine("QUERY books //book/title");
  EXPECT_TRUE(JsonBool(hit, "cached"));
  EXPECT_EQ(JsonInt(hit, "count"), 2);
  EXPECT_NE(hit.find("\"values\":[\"<title>A</title>\",\"<title>B</title>\"]"), std::string::npos);
  EXPECT_EQ(f.server->result_cache().hits(), 1u);

  // --threads / --stats change execution shape only: still a hit.
  std::string shaped =
      f.server->HandleLine("QUERY books --threads=2 //book/title");
  EXPECT_TRUE(JsonBool(shaped, "cached"));

  // A semantics-bearing option is a different key.
  std::string other =
      f.server->HandleLine("QUERY books --no-value-index //book/title");
  EXPECT_FALSE(JsonBool(other, "cached"));
}

TEST(ServerTest, StatsOptionAttachesExecStats) {
  ServerFixture f;
  std::string r = f.server->HandleLine("QUERY books --stats //book/title");
  EXPECT_EQ(r.rfind("{\"code\":0", 0), 0u) << r;
  size_t stats_pos = r.find("\"stats\":{");
  ASSERT_NE(stats_pos, std::string::npos) << r;
  // The embedded object is the single ExecStats serializer's output.
  EXPECT_NE(r.find("\"wall_ms\":", stats_pos), std::string::npos);
  EXPECT_NE(r.find("\"result_nodes\":", stats_pos), std::string::npos);
  EXPECT_NE(r.find("\"plan\":", stats_pos), std::string::npos);
}

TEST(ServerTest, ErrorTaxonomyOnTheWire) {
  ServerFixture f;
  // 1: malformed request line and malformed path.
  EXPECT_EQ(f.server->HandleLine("FROB").rfind("{\"code\":1", 0), 0u);
  EXPECT_EQ(f.server->HandleLine("QUERY books //book[").rfind("{\"code\":1", 0),
            0u);
  // 2: unknown document / unknown view.
  EXPECT_EQ(f.server->HandleLine("QUERY nope //x").rfind("{\"code\":2", 0),
            0u);
  EXPECT_EQ(f.server->HandleLine("QUERY books/nope //x").rfind("{\"code\":2", 0),
            0u);
  EXPECT_EQ(f.server->HandleLine("RELOAD nope").rfind("{\"code\":2", 0), 0u);

  EXPECT_EQ(f.server->metrics().parse_errors.load(), 2u);
  EXPECT_EQ(f.server->metrics().not_found.load(), 3u);
  EXPECT_EQ(f.server->metrics().requests.load(), 5u);
  EXPECT_EQ(f.server->metrics().ok.load(), 0u);
}

TEST(ServerTest, RateLimitShedsWithOverloadCode) {
  ServerOptions opts;
  opts.rate_limit = 0.001;  // ~one token per 1000s: only the burst admits
  opts.burst = 2;
  ServerFixture f(opts);

  EXPECT_EQ(f.server->HandleLine("QUERY books //book").rfind("{\"code\":0", 0),
            0u);
  EXPECT_EQ(f.server->HandleLine("QUERY books //book").rfind("{\"code\":0", 0),
            0u);
  std::string shed = f.server->HandleLine("QUERY books //book");
  EXPECT_EQ(shed.rfind("{\"code\":3,\"error\":\"overload\"", 0), 0u) << shed;
  EXPECT_EQ(f.server->metrics().overload.load(), 1u);

  // Sheds are QUERY-only: control verbs stay available under overload.
  EXPECT_EQ(f.server->HandleLine("STATS").rfind("{\"code\":0", 0), 0u);
  EXPECT_EQ(f.server->HandleLine("LIST").rfind("{\"code\":0", 0), 0u);
}

TEST(ServerTest, ListAndStatsReportTheCatalogAndCounters) {
  ServerFixture f;
  f.server->HandleLine("QUERY books //book/title");
  f.server->HandleLine("QUERY books //book/title");

  std::string list = f.server->HandleLine("LIST");
  EXPECT_EQ(list.rfind("{\"code\":0", 0), 0u) << list;
  EXPECT_NE(list.find("\"name\":\"auctions\""), std::string::npos);
  EXPECT_NE(list.find("\"name\":\"books\""), std::string::npos);
  EXPECT_NE(list.find("\"views\":[\"titles\"]"), std::string::npos) << list;

  std::string stats = f.server->HandleLine("STATS");
  EXPECT_EQ(stats.rfind("{\"code\":0", 0), 0u) << stats;
  EXPECT_EQ(JsonInt(stats, "documents"), 2);
  EXPECT_EQ(JsonInt(stats, "queries"), 2);
  EXPECT_EQ(JsonInt(stats, "hits"), 1);    // result_cache.hits
  EXPECT_EQ(JsonInt(stats, "misses"), 1);  // result_cache.misses
  EXPECT_NE(stats.find("\"admission\":{"), std::string::npos);
  EXPECT_NE(stats.find("\"plan_cache\":{"), std::string::npos);
  EXPECT_NE(stats.find("\"uptime_ms\":"), std::string::npos);
}

TEST(ServerTest, ReloadBumpsEpochAndNeverServesCrossEpochResults) {
  ServerFixture f;
  std::string before = f.server->HandleLine("QUERY books //book/title");
  EXPECT_EQ(JsonInt(before, "epoch"), 1);
  EXPECT_EQ(JsonInt(before, "count"), 2);
  EXPECT_TRUE(JsonBool(f.server->HandleLine("QUERY books //book/title"),
                       "cached"));

  // Change the document out from under the server (the XML-text analogue
  // of editing the file RELOAD would re-read).
  ASSERT_TRUE(f.catalog.ReplaceDocumentXml("books", kBooksV2).ok());

  std::string after = f.server->HandleLine("QUERY books //book/title");
  EXPECT_EQ(JsonInt(after, "epoch"), 2);
  EXPECT_EQ(JsonInt(after, "count"), 3);       // new data, not the cached 2
  EXPECT_FALSE(JsonBool(after, "cached"));     // epoch key -> forced miss
  EXPECT_NE(after.find("\"values\":[\"<title>A</title>\",\"<title>B</title>\",\"<title>C</title>\"]"), std::string::npos)
      << after;

  // The RELOAD verb itself: rebuilds from source at epoch+1.
  std::string reload = f.server->HandleLine("RELOAD books");
  EXPECT_EQ(reload.rfind("{\"code\":0", 0), 0u) << reload;
  EXPECT_EQ(JsonInt(reload, "epoch"), 3);
  EXPECT_EQ(f.server->metrics().reloads.load(), 1u);
  EXPECT_FALSE(JsonBool(f.server->HandleLine("QUERY books //book/title"),
                        "cached"));
}

TEST(ServerTest, ShutdownVerbRequestsShutdown) {
  ServerFixture f;
  EXPECT_FALSE(f.server->shutdown_requested());
  EXPECT_FALSE(
      f.server->WaitForShutdownRequest(std::chrono::milliseconds(1)));
  std::string r = f.server->HandleLine("SHUTDOWN");
  EXPECT_EQ(r.rfind("{\"code\":0", 0), 0u) << r;
  EXPECT_TRUE(f.server->shutdown_requested());
  EXPECT_TRUE(
      f.server->WaitForShutdownRequest(std::chrono::milliseconds(1)));
}

/// One round trip over a real socket: connect, write a line, read a line.
std::string RoundTrip(int port, const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string out = line + "\n";
  EXPECT_EQ(::send(fd, out.data(), out.size(), 0),
            static_cast<ssize_t>(out.size()));
  std::string response;
  char buf[4096];
  while (response.find('\n') == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

TEST(ServerTest, ServesQueriesOverTcp) {
  ServerOptions opts;
  opts.num_workers = 2;
  ServerFixture f(opts);
  ASSERT_TRUE(f.server->Start().ok());
  ASSERT_GT(f.server->port(), 0);

  std::string r = RoundTrip(f.server->port(), "QUERY books //book/title");
  EXPECT_EQ(r.rfind("{\"code\":0", 0), 0u) << r;
  EXPECT_EQ(JsonInt(r, "count"), 2);

  // Two concurrent connections are served by the worker pool.
  std::string a, b;
  std::thread ta([&] { a = RoundTrip(f.server->port(), "LIST"); });
  std::thread tb([&] { b = RoundTrip(f.server->port(), "STATS"); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.rfind("{\"code\":0", 0), 0u) << a;
  EXPECT_EQ(b.rfind("{\"code\":0", 0), 0u) << b;

  f.server->Stop();
}

/// The reload-under-load stress (the TSan build runs this too): readers
/// hammer QUERY on the stored document and a view while a writer keeps
/// republishing alternating document contents. Epoch parity determines the
/// only correct answer — epoch 1,3,5,... is kBooksV1 (2 titles), epoch
/// 2,4,6,... is kBooksV2 (3 titles) — so any cross-epoch result-cache hit
/// or torn generation shows up as a count/epoch mismatch.
TEST(ServerTest, ReloadUnderLoadServesConsistentEpochs) {
  ServerFixture f;
  constexpr int kReaders = 4;
  constexpr int kIterations = 150;
  constexpr int kReloads = 25;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> served{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      const char* line = (t % 2 == 0) ? "QUERY books //book/title"
                                      : "QUERY books/titles //title";
      for (int i = 0; i < kIterations && !done.load(); ++i) {
        std::string r = f.server->HandleLine(line);
        if (r.rfind("{\"code\":0", 0) != 0) {
          mismatches.fetch_add(1);
          continue;
        }
        int64_t epoch = JsonInt(r, "epoch");
        int64_t count = JsonInt(r, "count");
        int64_t expected = (epoch % 2 == 1) ? 2 : 3;
        if (count != expected) mismatches.fetch_add(1);
        served.fetch_add(1);
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < kReloads; ++i) {
      const char* xml = (i % 2 == 0) ? kBooksV2 : kBooksV1;  // epoch i+2
      auto epoch = f.catalog.ReplaceDocumentXml("books", xml);
      ASSERT_TRUE(epoch.ok()) << epoch.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  writer.join();
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  // The cache saw traffic; with 26 epochs and hundreds of requests the
  // steady phases repeat keys, so some hits are expected — and every hit
  // was epoch-consistent (asserted above).
  EXPECT_GT(f.server->result_cache().hits() +
                f.server->result_cache().misses(),
            0u);
}

}  // namespace
}  // namespace vpbn::server
