#include "xml/binary_io.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "workload/books.h"
#include "xml/serializer.h"

namespace vpbn::xml {
namespace {

TEST(BinaryIoTest, RoundTripPaperFigure2) {
  Document doc = testutil::PaperFigure2();
  std::string blob = WriteBinary(doc);
  auto loaded = ReadBinary(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeDocument(*loaded), SerializeDocument(doc));
  EXPECT_EQ(loaded->num_nodes(), doc.num_nodes());
}

TEST(BinaryIoTest, RoundTripWithAttributesAndEntities) {
  auto parsed = Parse(
      "<a x=\"1 &amp; 2\" y='\"quoted\"'><b>text &lt;tag&gt;</b><c/></a>");
  ASSERT_TRUE(parsed.ok());
  std::string blob = WriteBinary(*parsed);
  auto loaded = ReadBinary(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeDocument(*loaded), SerializeDocument(*parsed));
  EXPECT_EQ(loaded->AttributeValue(loaded->roots()[0], "x").value(),
            "1 & 2");
}

TEST(BinaryIoTest, RoundTripForest) {
  Document doc;
  doc.AddElement("a", kNullNode);
  NodeId b = doc.AddElement("b", kNullNode);
  doc.AddText("t", b);
  std::string blob = WriteBinary(doc);
  auto loaded = ReadBinary(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->roots().size(), 2u);
}

TEST(BinaryIoTest, RoundTripEmptyDocument) {
  Document doc;
  auto loaded = ReadBinary(WriteBinary(doc));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 0u);
}

TEST(BinaryIoTest, RoundTripWorkloads) {
  workload::BooksOptions opts;
  opts.num_books = 120;
  Document doc = workload::GenerateBooks(opts);
  auto loaded = ReadBinary(WriteBinary(doc));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(SerializeDocument(*loaded), SerializeDocument(doc));
  // NodeIds are preserved exactly (arena order).
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    EXPECT_EQ(loaded->kind(id), doc.kind(id));
    EXPECT_EQ(loaded->parent(id), doc.parent(id));
    EXPECT_EQ(loaded->name(id), doc.name(id));
  }
}

TEST(BinaryIoTest, SnapshotSmallerThanXmlForRepetitiveData) {
  workload::BooksOptions opts;
  opts.num_books = 200;
  Document doc = workload::GenerateBooks(opts);
  std::string xml_form = SerializeDocument(doc);
  std::string blob = WriteBinary(doc);
  // Interned names make the snapshot competitive; exact ratio varies.
  EXPECT_LT(blob.size(), xml_form.size());
}

TEST(BinaryIoTest, RejectsBadMagicAndVersion) {
  EXPECT_TRUE(ReadBinary("").status().IsInvalidArgument());
  EXPECT_TRUE(ReadBinary("XXXX").status().IsInvalidArgument());
  Document doc = testutil::PaperFigure2();
  std::string blob = WriteBinary(doc);
  std::string bad_version = blob;
  bad_version[4] = 99;  // version byte
  EXPECT_TRUE(ReadBinary(bad_version).status().IsInvalidArgument());
}

TEST(BinaryIoTest, RejectsTruncation) {
  Document doc = testutil::PaperFigure2();
  std::string blob = WriteBinary(doc);
  for (size_t cut = 5; cut < blob.size(); cut += 7) {
    auto r = ReadBinary(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(r.ok()) << cut;
  }
}

TEST(BinaryIoTest, RejectsTrailingGarbage) {
  Document doc = testutil::PaperFigure2();
  std::string blob = WriteBinary(doc) + "junk";
  EXPECT_TRUE(ReadBinary(blob).status().IsInvalidArgument());
}

TEST(BinaryIoTest, FuzzRandomMutationsNeverCrash) {
  Document doc = testutil::PaperFigure2();
  std::string blob = WriteBinary(doc);
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = blob;
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    auto r = ReadBinary(mutated);  // must not crash; may fail or succeed
    if (r.ok()) {
      // If it parses, the document must be internally consistent.
      for (NodeId id = 0; id < r->num_nodes(); ++id) {
        NodeId p = r->parent(id);
        ASSERT_TRUE(p == kNullNode || p < id);
      }
    }
  }
}

}  // namespace
}  // namespace vpbn::xml
