#include "pbn/dynamic.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "pbn/axis.h"
#include "xml/builder.h"

namespace vpbn::num {
namespace {

using xml::Document;
using xml::NodeId;

TEST(DynamicNumberingTest, NumberAllUsesGaps) {
  xml::DocumentBuilder b;
  b.Open("r").Open("a").Close().Open("b").Close().Open("c").Close().Close();
  Document doc = std::move(b).Finish();
  DynamicNumbering n(10);
  n.NumberAll(doc);
  NodeId r = doc.roots()[0];
  std::vector<NodeId> kids = doc.Children(r);
  EXPECT_EQ(n.OfNode(r).ToString(), "10");
  EXPECT_EQ(n.OfNode(kids[0]).ToString(), "10.10");
  EXPECT_EQ(n.OfNode(kids[1]).ToString(), "10.20");
  EXPECT_EQ(n.OfNode(kids[2]).ToString(), "10.30");
}

TEST(DynamicNumberingTest, GapOneIsDense) {
  xml::DocumentBuilder b;
  b.Open("r").Open("a").Close().Open("b").Close().Close();
  Document doc = std::move(b).Finish();
  DynamicNumbering n(1);
  n.NumberAll(doc);
  EXPECT_EQ(n.OfNode(doc.Children(doc.roots()[0])[1]).ToString(), "1.2");
}

TEST(DynamicNumberingTest, AxisPredicatesHoldOnGappedNumbers) {
  xml::DocumentBuilder b;
  b.Open("r").Open("a").Open("x").Close().Close().Open("b").Close().Close();
  Document doc = std::move(b).Finish();
  DynamicNumbering n(10);
  n.NumberAll(doc);
  NodeId r = doc.roots()[0];
  NodeId a = doc.Children(r)[0];
  NodeId x = doc.Children(a)[0];
  NodeId bb = doc.Children(r)[1];
  EXPECT_TRUE(IsChild(n.OfNode(a), n.OfNode(r)));
  EXPECT_TRUE(IsDescendant(n.OfNode(x), n.OfNode(r)));
  EXPECT_TRUE(IsFollowingSibling(n.OfNode(bb), n.OfNode(a)));
  EXPECT_TRUE(IsPreceding(n.OfNode(x), n.OfNode(bb)));
}

TEST(DynamicNumberingTest, AppendNeverRenumbers) {
  Document doc;
  NodeId r = doc.AddElement("r", xml::kNullNode);
  DynamicNumbering n(10);
  n.NumberAll(doc);
  for (int i = 0; i < 100; ++i) {
    NodeId c = doc.AddElement("c", r);
    n.OnAppend(doc, c);
  }
  EXPECT_EQ(n.stats().appends, 100u);
  EXPECT_EQ(n.stats().renumbered_nodes, 0u);
  EXPECT_EQ(n.stats().renumber_events, 0u);
  // Ordinals are strictly increasing with the configured gap.
  std::vector<NodeId> kids = doc.Children(r);
  for (size_t i = 1; i < kids.size(); ++i) {
    EXPECT_LT(n.OfNode(kids[i - 1]), n.OfNode(kids[i]));
  }
}

TEST(DynamicNumberingTest, InsertIntoGapAvoidsRenumbering) {
  Document doc;
  NodeId r = doc.AddElement("r", xml::kNullNode);
  NodeId a = doc.AddElement("a", r);
  NodeId b = doc.AddElement("b", r);
  DynamicNumbering n(10);
  n.NumberAll(doc);
  // Logically insert c before b: ordinal lands strictly between a and b.
  NodeId c = doc.AddElement("c", r);
  n.OnInsertBefore(doc, c, b);
  EXPECT_EQ(n.stats().renumber_events, 0u);
  EXPECT_LT(n.OfNode(a), n.OfNode(c));
  EXPECT_LT(n.OfNode(c), n.OfNode(b));
  EXPECT_TRUE(IsPrecedingSibling(n.OfNode(c), n.OfNode(b)));
}

TEST(DynamicNumberingTest, ExhaustedGapTriggersLocalRenumber) {
  Document doc;
  NodeId r = doc.AddElement("r", xml::kNullNode);
  NodeId first = doc.AddElement("a", r);
  NodeId last = doc.AddElement("b", r);
  DynamicNumbering n(2);  // tiny gap: exhausted after one mid-insert
  n.NumberAll(doc);
  std::vector<NodeId> inserted;
  for (int i = 0; i < 8; ++i) {
    NodeId c = doc.AddElement("m", r);
    n.OnInsertBefore(doc, c, last);
    inserted.push_back(c);
  }
  EXPECT_GT(n.stats().renumber_events, 0u);
  EXPECT_GT(n.stats().renumbered_nodes, 0u);
  // Logical order is preserved: first, inserted..., last.
  EXPECT_LT(n.OfNode(first), n.OfNode(inserted[0]));
  for (size_t i = 1; i < inserted.size(); ++i) {
    EXPECT_LT(n.OfNode(inserted[i - 1]), n.OfNode(inserted[i])) << i;
  }
  EXPECT_LT(n.OfNode(inserted.back()), n.OfNode(last));
}

TEST(DynamicNumberingTest, RenumberPreservesSubtreePrefixes) {
  Document doc;
  NodeId r = doc.AddElement("r", xml::kNullNode);
  NodeId a = doc.AddElement("a", r);
  NodeId leaf = doc.AddElement("leaf", a);
  NodeId b = doc.AddElement("b", r);
  DynamicNumbering n(1);  // dense: every mid-insert renumbers
  n.NumberAll(doc);
  NodeId c = doc.AddElement("c", r);
  n.OnInsertBefore(doc, c, b);
  // a's subtree kept consistent: leaf still prefixed by a.
  EXPECT_TRUE(n.OfNode(a).IsStrictPrefixOf(n.OfNode(leaf)));
  EXPECT_TRUE(IsChild(n.OfNode(leaf), n.OfNode(a)));
  EXPECT_LT(n.OfNode(a), n.OfNode(c));
  EXPECT_LT(n.OfNode(c), n.OfNode(b));
}

TEST(DynamicNumberingTest, LargerGapsRenumberLess) {
  auto churn = [](uint32_t gap) {
    Document doc;
    NodeId r = doc.AddElement("r", xml::kNullNode);
    NodeId last = doc.AddElement("z", r);
    DynamicNumbering n(gap);
    n.NumberAll(doc);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      NodeId c = doc.AddElement("m", r);
      n.OnInsertBefore(doc, c, last);
    }
    return n.stats().renumbered_nodes;
  };
  uint64_t dense = churn(1);
  uint64_t gapped = churn(64);
  EXPECT_GT(dense, gapped);
}

TEST(DynamicNumberingTest, RootInsertion) {
  Document doc;
  NodeId r1 = doc.AddElement("a", xml::kNullNode);
  DynamicNumbering n(10);
  n.NumberAll(doc);
  NodeId r2 = doc.AddElement("b", xml::kNullNode);
  n.OnAppend(doc, r2);
  EXPECT_EQ(n.OfNode(r2).ToString(), "20");
  NodeId r0 = doc.AddElement("c", xml::kNullNode);
  n.OnInsertBefore(doc, r0, r1);
  EXPECT_LT(n.OfNode(r0), n.OfNode(r1));
}

TEST(DynamicNumberingTest, RandomChurnKeepsTotalOrderConsistent) {
  Document doc;
  NodeId r = doc.AddElement("r", xml::kNullNode);
  DynamicNumbering n(8);
  n.NumberAll(doc);
  Rng rng(77);
  // Maintain the logical sibling order externally and verify the numbers
  // always agree with it.
  std::vector<NodeId> logical;
  for (int i = 0; i < 300; ++i) {
    NodeId c = doc.AddElement("x", r);
    if (logical.empty() || rng.Bernoulli(0.5)) {
      n.OnAppend(doc, c);
      logical.push_back(c);
    } else {
      size_t pos = rng.Uniform(logical.size());
      n.OnInsertBefore(doc, c, logical[pos]);
      logical.insert(logical.begin() + pos, c);
    }
  }
  for (size_t i = 1; i < logical.size(); ++i) {
    ASSERT_LT(n.OfNode(logical[i - 1]), n.OfNode(logical[i])) << i;
    ASSERT_TRUE(IsFollowingSibling(n.OfNode(logical[i]),
                                   n.OfNode(logical[i - 1])));
  }
}

}  // namespace
}  // namespace vpbn::num
