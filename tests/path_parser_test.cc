#include "query/path_parser.h"

#include <gtest/gtest.h>

namespace vpbn::query {
namespace {

Path MustParse(std::string_view text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).ValueUnsafe();
}

TEST(PathParserTest, SimpleChildSteps) {
  Path p = MustParse("/data/book/title");
  ASSERT_EQ(p.steps.size(), 3u);
  for (const Step& s : p.steps) {
    EXPECT_EQ(s.axis, num::Axis::kChild);
    EXPECT_EQ(s.test.kind, NodeTest::Kind::kName);
  }
  EXPECT_EQ(p.steps[0].test.name, "data");
  EXPECT_EQ(p.steps[2].test.name, "title");
}

TEST(PathParserTest, DoubleSlashRewritesToDescendant) {
  // '//child::X' is parsed as 'descendant::X' (equivalent without
  // positional predicates).
  Path p = MustParse("//book");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].axis, num::Axis::kDescendant);
  EXPECT_EQ(p.steps[0].test.name, "book");
}

TEST(PathParserTest, MidPathDoubleSlash) {
  Path p = MustParse("/data//name");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, num::Axis::kDescendant);
  EXPECT_EQ(p.steps[1].test.name, "name");
}

TEST(PathParserTest, DoubleSlashWithExplicitAxisKeepsAnonymousStep) {
  Path p = MustParse("//self::book");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, num::Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[0].test.kind, NodeTest::Kind::kAnyNode);
  EXPECT_EQ(p.steps[1].axis, num::Axis::kSelf);
}

TEST(PathParserTest, ExplicitAxes) {
  Path p = MustParse("/data/descendant::name/ancestor::book");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[1].axis, num::Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, num::Axis::kAncestor);
}

TEST(PathParserTest, AllAxisNamesAccepted) {
  for (const char* axis :
       {"self", "child", "parent", "ancestor", "descendant",
        "ancestor-or-self", "descendant-or-self", "following", "preceding",
        "following-sibling", "preceding-sibling"}) {
    std::string text = std::string("/a/") + axis + "::b";
    EXPECT_TRUE(ParsePath(text).ok()) << text;
  }
}

TEST(PathParserTest, Wildcards) {
  Path p = MustParse("/*/text()");
  EXPECT_EQ(p.steps[0].test.kind, NodeTest::Kind::kAnyElement);
  EXPECT_EQ(p.steps[1].test.kind, NodeTest::Kind::kText);
  Path q = MustParse("/a/node()");
  EXPECT_EQ(q.steps[1].test.kind, NodeTest::Kind::kAnyNode);
}

TEST(PathParserTest, DotAndDotDot) {
  Path p = MustParse("/a/../b/.");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[1].axis, num::Axis::kParent);
  EXPECT_EQ(p.steps[3].axis, num::Axis::kSelf);
}

TEST(PathParserTest, ExistencePredicate) {
  Path p = MustParse("/book[author]");
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  EXPECT_EQ(p.steps[0].predicates[0]->kind, Expr::Kind::kPath);
}

TEST(PathParserTest, ComparisonPredicates) {
  Path p = MustParse("/book[title = \"X\"][@year >= 1990]");
  ASSERT_EQ(p.steps[0].predicates.size(), 2u);
  const Expr& first = *p.steps[0].predicates[0];
  EXPECT_EQ(first.kind, Expr::Kind::kCompare);
  EXPECT_EQ(first.op, CompareOp::kEq);
  EXPECT_EQ(first.lhs->kind, Expr::Kind::kPath);
  EXPECT_EQ(first.rhs->kind, Expr::Kind::kString);
  const Expr& second = *p.steps[0].predicates[1];
  EXPECT_EQ(second.op, CompareOp::kGe);
  EXPECT_EQ(second.lhs->kind, Expr::Kind::kAttribute);
  EXPECT_EQ(second.lhs->str, "year");
  EXPECT_EQ(second.rhs->kind, Expr::Kind::kNumber);
  EXPECT_EQ(second.rhs->num, 1990);
}

TEST(PathParserTest, CountPredicate) {
  Path p = MustParse("/book[count(author) > 1]");
  const Expr& e = *p.steps[0].predicates[0];
  EXPECT_EQ(e.kind, Expr::Kind::kCompare);
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kCount);
  ASSERT_EQ(e.lhs->path.steps.size(), 1u);
  EXPECT_EQ(e.lhs->path.steps[0].test.name, "author");
}

TEST(PathParserTest, BooleanConnectives) {
  Path p = MustParse("/b[title and not(publisher) or author = 'C']");
  const Expr& e = *p.steps[0].predicates[0];
  EXPECT_EQ(e.kind, Expr::Kind::kOr);
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kAnd);
  EXPECT_EQ(e.lhs->rhs->kind, Expr::Kind::kNot);
}

TEST(PathParserTest, NestedPathPredicates) {
  Path p = MustParse("/book[author/name = \"C\"]/title");
  const Expr& e = *p.steps[0].predicates[0];
  ASSERT_EQ(e.lhs->path.steps.size(), 2u);
  EXPECT_EQ(e.lhs->path.steps[1].test.name, "name");
}

TEST(PathParserTest, NegativeAndDecimalNumbers) {
  Path p = MustParse("/a[x > -2][y <= 3.5]");
  EXPECT_EQ(p.steps[0].predicates[0]->rhs->num, -2);
  EXPECT_EQ(p.steps[0].predicates[1]->rhs->num, 3.5);
}

TEST(PathParserTest, Errors) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("book").ok());  // must be absolute
  EXPECT_FALSE(ParsePath("/").ok());
  EXPECT_FALSE(ParsePath("/a[").ok());
  EXPECT_FALSE(ParsePath("/a[]").ok());
  EXPECT_FALSE(ParsePath("/a[x=\"unterminated]").ok());
  EXPECT_FALSE(ParsePath("/a/sideways::b").ok());
  EXPECT_FALSE(ParsePath("/a trailing").ok());
}

TEST(PathParserTest, PositionalPredicateParses) {
  // A bare number predicate is positional (evaluated dynamically, §5.1).
  auto r = ParsePath("/a[2]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->steps[0].predicates[0]->kind, Expr::Kind::kNumber);
  EXPECT_EQ(r->steps[0].predicates[0]->num, 2);
}

TEST(PathParserTest, ToStringRenders) {
  Path p = MustParse("//book/title");
  std::string s = PathToString(p);
  EXPECT_NE(s.find("book"), std::string::npos);
  EXPECT_NE(s.find("title"), std::string::npos);
}

}  // namespace
}  // namespace vpbn::query
