#include "pbn/numbering.h"

#include <gtest/gtest.h>

#include "xml/builder.h"
#include "xml/parser.h"

namespace vpbn::num {
namespace {

using xml::Document;
using xml::NodeId;

TEST(NumberingTest, PaperFigure8) {
  // Figure 8 gives the PBN numbers of the Figure 2 instance.
  auto doc = xml::Parse(R"(
    <data>
      <book><title>X</title>
        <author><name>C</name></author>
        <publisher><location>W</location></publisher>
      </book>
      <book><title>Y</title>
        <author><name>D</name></author>
        <publisher><location>M</location></publisher>
      </book>
    </data>)");
  ASSERT_TRUE(doc.ok());
  Numbering n = Numbering::Number(*doc);

  auto pbn_of_path = [&](std::initializer_list<int> path) {
    NodeId cur = doc->roots()[0];
    for (int ordinal : path) {
      cur = doc->Children(cur)[ordinal - 1];
    }
    return n.OfNode(cur).ToString();
  };

  EXPECT_EQ(pbn_of_path({}), "1");                // <data>
  EXPECT_EQ(pbn_of_path({1}), "1.1");             // first <book>
  EXPECT_EQ(pbn_of_path({2}), "1.2");             // second <book>
  EXPECT_EQ(pbn_of_path({1, 1}), "1.1.1");        // <title>X
  EXPECT_EQ(pbn_of_path({1, 2}), "1.1.2");        // <author>
  EXPECT_EQ(pbn_of_path({1, 3}), "1.1.3");        // <publisher>
  EXPECT_EQ(pbn_of_path({1, 2, 1}), "1.1.2.1");   // <name>
  EXPECT_EQ(pbn_of_path({1, 2, 1, 1}), "1.1.2.1.1");  // "C"
  EXPECT_EQ(pbn_of_path({2, 2, 1, 1}), "1.2.2.1.1");  // "D"
  EXPECT_EQ(pbn_of_path({2, 3, 1}), "1.2.3.1");   // <location>
}

TEST(NumberingTest, ForestRootsNumbered) {
  Document doc;
  doc.AddElement("a", xml::kNullNode);
  doc.AddElement("b", xml::kNullNode);
  NodeId c = doc.AddElement("c", doc.roots()[1]);
  Numbering n = Numbering::Number(doc);
  EXPECT_EQ(n.OfNode(doc.roots()[0]).ToString(), "1");
  EXPECT_EQ(n.OfNode(doc.roots()[1]).ToString(), "2");
  EXPECT_EQ(n.OfNode(c).ToString(), "2.1");
}

TEST(NumberingTest, ReverseLookup) {
  Document doc;
  NodeId root = doc.AddElement("r", xml::kNullNode);
  NodeId kid = doc.AddElement("k", root);
  Numbering n = Numbering::Number(doc);
  EXPECT_EQ(n.NodeOf(Pbn{1}).value(), root);
  EXPECT_EQ(n.NodeOf(Pbn{1, 1}).value(), kid);
  EXPECT_TRUE(n.NodeOf(Pbn{1, 2}).status().IsNotFound());
  EXPECT_TRUE(n.Contains(Pbn{1, 1}));
  EXPECT_FALSE(n.Contains(Pbn{2}));
}

TEST(NumberingTest, TextNodesAreNumbered) {
  xml::DocumentBuilder b;
  b.Open("t").Text("one").Open("b").Close().Text("two").Close();
  Document doc = std::move(b).Finish();
  Numbering n = Numbering::Number(doc);
  std::vector<NodeId> kids = doc.Children(doc.roots()[0]);
  EXPECT_EQ(n.OfNode(kids[0]).ToString(), "1.1");
  EXPECT_EQ(n.OfNode(kids[1]).ToString(), "1.2");
  EXPECT_EQ(n.OfNode(kids[2]).ToString(), "1.3");
}

TEST(NumberingTest, LengthEqualsDepth) {
  xml::DocumentBuilder b;
  b.Open("a").Open("b").Open("c").Leaf("d", "x").Close().Close().Close();
  Document doc = std::move(b).Finish();
  Numbering n = Numbering::Number(doc);
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    EXPECT_EQ(n.OfNode(id).length(), doc.Depth(id)) << id;
  }
}

TEST(NumberingTest, OrdinalMatchesSiblingPosition) {
  xml::DocumentBuilder b;
  b.Open("p");
  for (int i = 0; i < 10; ++i) b.Open("c").Close();
  b.Close();
  Document doc = std::move(b).Finish();
  Numbering n = Numbering::Number(doc);
  std::vector<NodeId> kids = doc.Children(doc.roots()[0]);
  for (size_t i = 0; i < kids.size(); ++i) {
    const Pbn& p = n.OfNode(kids[i]);
    EXPECT_EQ(p.at1(p.length()), i + 1);
  }
}

TEST(NumberingTest, AllNumbersDistinct) {
  xml::DocumentBuilder b;
  b.Open("r");
  for (int i = 0; i < 5; ++i) {
    b.Open("x");
    for (int j = 0; j < 4; ++j) b.Leaf("y", "t");
    b.Close();
  }
  b.Close();
  Document doc = std::move(b).Finish();
  Numbering n = Numbering::Number(doc);
  std::set<std::string> seen;
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    EXPECT_TRUE(seen.insert(n.OfNode(id).ToString()).second);
  }
  EXPECT_EQ(seen.size(), doc.num_nodes());
}

TEST(NumberingTest, MemoryUsageScalesWithNodes) {
  xml::DocumentBuilder b1;
  b1.Open("a").Close();
  Document d1 = std::move(b1).Finish();
  xml::DocumentBuilder b2;
  b2.Open("a");
  for (int i = 0; i < 100; ++i) b2.Open("b").Close();
  b2.Close();
  Document d2 = std::move(b2).Finish();
  EXPECT_GT(Numbering::Number(d2).NumbersMemoryUsage(),
            Numbering::Number(d1).NumbersMemoryUsage());
}

}  // namespace
}  // namespace vpbn::num
